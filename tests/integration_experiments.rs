//! End-to-end checks of the paper's headline claims across the whole
//! experiment harness.

use flexsim_arch::Accelerator;
use flexsim_experiments::arches::ArchSet;
use flexsim_experiments::{find, run_suite, SuiteConfig, REGISTRY};
use flexsim_model::{workloads, Network};

/// The four paper-scale (~256 PE) engines for `net`.
fn paper_arches(net: &Network) -> Vec<Box<dyn Accelerator>> {
    ArchSet::builder().build(net).into_vec()
}

#[test]
fn abstract_speedup_claims_hold_in_shape() {
    // "it acquires 2-10x performance speedup ... compared with three
    // state-of-the-art accelerator architectures". We verify the shape:
    // FlexFlow beats every baseline on every workload, and the speedup
    // over the *weakest* baseline reaches >5x somewhere while the
    // speedup over the *strongest* stays above 1x everywhere.
    let mut min_vs_best = f64::MAX;
    let mut max_vs_worst: f64 = 0.0;
    for net in workloads::all() {
        let mut gops = Vec::new();
        for mut acc in paper_arches(&net) {
            gops.push(acc.run_network(&net).gops());
        }
        let ff = gops[3];
        let best = gops[..3].iter().cloned().fold(f64::MIN, f64::max);
        let worst = gops[..3].iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            ff > best,
            "{}: FlexFlow {ff:.0} <= best baseline {best:.0}",
            net.name()
        );
        min_vs_best = min_vs_best.min(ff / best);
        max_vs_worst = max_vs_worst.max(ff / worst);
    }
    assert!(min_vs_best > 1.0);
    assert!(max_vs_worst > 5.0, "max speedup only {max_vs_worst:.1}x");
}

#[test]
fn abstract_efficiency_claims_hold_in_shape() {
    // "2.5-10x power efficiency improvement": FlexFlow has the best
    // GOPS/W on every workload and >2.5x over the weakest baseline on
    // the small nets.
    for net in workloads::all() {
        let mut eff = Vec::new();
        for mut acc in paper_arches(&net) {
            eff.push(acc.run_network(&net).efficiency_gops_per_w());
        }
        let ff = eff[3];
        for (i, &e) in eff[..3].iter().enumerate() {
            assert!(ff > e, "{}: baseline {i} more efficient", net.name());
        }
    }
    let lenet = workloads::lenet5();
    let mut worst = f64::MAX;
    let mut ff_eff = 0.0;
    for mut acc in paper_arches(&lenet) {
        let e = acc.run_network(&lenet).efficiency_gops_per_w();
        if acc.name() == "FlexFlow" {
            ff_eff = e;
        } else {
            worst = worst.min(e);
        }
    }
    assert!(ff_eff / worst > 2.5, "only {:.1}x", ff_eff / worst);
}

#[test]
fn areas_match_section_6_2_1_within_tolerance() {
    let net = workloads::lenet5();
    for (acc, (name, paper)) in paper_arches(&net)
        .iter()
        .zip(flexsim_experiments::paper::AREAS_MM2)
    {
        assert_eq!(acc.name(), name);
        let ours = acc.area().total_mm2();
        assert!(
            (ours - paper).abs() / paper < 0.08,
            "{name}: {ours:.2} vs paper {paper:.2} mm²"
        );
    }
}

#[test]
fn flexflow_area_is_largest_as_the_paper_reports() {
    // "The area of FlexFlow is slightly larger than other baselines
    // since the local stores equipped in each PE dictating part of area
    // budget."
    let net = workloads::lenet5();
    let areas: Vec<f64> = paper_arches(&net)
        .iter()
        .map(|a| a.area().total_mm2())
        .collect();
    let ff = areas[3];
    for &a in &areas[..3] {
        assert!(ff > a);
        assert!(ff / a < 1.35, "FlexFlow should be only slightly larger");
    }
}

#[test]
fn routing_share_declines_with_scale() {
    // Section 6.2.5's 28.3% -> 25.97% -> 21.3% trend: the CDB share of
    // FlexFlow's area/power budget declines as the engine grows.
    let mut prev = f64::MAX;
    for d in [16usize, 32, 64] {
        let ff = flexflow::FlexFlow::new(d);
        let share = ff.area().interconnect_fraction();
        assert!(share < prev, "share must decline at {d}x{d}");
        prev = share;
    }
}

#[test]
fn all_experiments_run_and_render() {
    let experiments: Vec<_> = REGISTRY.iter().filter(|e| e.in_sweep()).copied().collect();
    let report = run_suite(&experiments, &SuiteConfig::default());
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    // `profile` and `tune` are opt-in diagnostics excluded from the
    // sweep.
    let swept = flexsim_experiments::experiment_ids()
        .iter()
        .filter(|&&id| id != "profile" && id != "tune")
        .count();
    assert_eq!(report.results.len(), swept);
    for r in &report.results {
        assert!(!r.table.rows().is_empty(), "{} is empty", r.id);
        let text = r.to_string();
        assert!(text.contains(&r.id));
        let json = r.to_json();
        assert!(json.contains(&r.id));
    }
}

#[test]
fn experiment_lookup_by_id_and_alias() {
    for id in flexsim_experiments::experiment_ids() {
        assert_eq!(
            find(id).map(flexsim_experiments::Experiment::id),
            Some(*id),
            "{id} not resolvable"
        );
    }
    for (alias, id) in [
        ("fig1", "fig01"),
        ("table3", "table03"),
        ("table7", "table07"),
    ] {
        assert_eq!(find(alias).unwrap().id(), id);
    }
    assert!(find("fig99").is_none());
}

#[test]
fn dram_acc_per_op_beats_eyeriss_baseline() {
    // Table 7's headline: FlexFlow 0.0049 < Eyeriss 0.006 Acc/Op.
    let net = workloads::alexnet();
    let t = flexsim_arch::dram::network_traffic(&net, 16 * 1024, 16 * 1024);
    let per_op = t.per_op(net.conv_macs());
    assert!(
        per_op < 0.006 * 1.6,
        "acc/op {per_op:.4} too far above Eyeriss"
    );
    assert!(per_op > 0.002, "acc/op {per_op:.4} implausibly low");
}
