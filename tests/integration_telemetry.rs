//! Integration tests for host-side runtime telemetry: the acceptance
//! bar for the `flexsim-telemetry` work.
//!
//! * Simulation output is byte-identical with telemetry on vs. off, at
//!   `--jobs 1` and `--jobs 4` — observation never perturbs results.
//! * A telemetry-instrumented sweep exercises every declared phase,
//!   and every merged worker reconciles exactly: busy + idle == wall.
//! * A panicking experiment produces a flight-recorder dump while its
//!   sibling experiments complete untouched.
//!
//! Telemetry state is process-global, so every test serializes on one
//! lock and restores the disabled state before releasing it.

use flexsim_experiments::{run_suite, SuiteConfig, REGISTRY};
use flexsim_obs::telemetry::{self, Phase};
use std::sync::{Mutex, MutexGuard, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders the full sweep (every in-sweep experiment) to one JSON blob.
fn sweep_json(jobs: usize) -> String {
    let experiments: Vec<_> = REGISTRY.iter().filter(|e| e.in_sweep()).copied().collect();
    let report = run_suite(&experiments, &SuiteConfig { jobs, trace: false });
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    let blobs: Vec<String> = report
        .results
        .iter()
        .map(flexsim_experiments::ExperimentResult::to_json)
        .collect();
    format!("[{}]", blobs.join(",\n"))
}

#[test]
fn sweep_output_is_byte_identical_with_telemetry_on_and_off() {
    let _guard = serialize();
    telemetry::disable();
    let off_1 = sweep_json(1);
    let off_4 = sweep_json(4);
    assert_eq!(off_1, off_4, "jobs levels diverged with telemetry off");

    telemetry::enable();
    telemetry::reset();
    let on_1 = sweep_json(1);
    let on_4 = sweep_json(4);
    telemetry::disable();

    assert_eq!(off_1, on_1, "telemetry perturbed the --jobs 1 output");
    assert_eq!(off_4, on_4, "telemetry perturbed the --jobs 4 output");
}

#[test]
fn stats_sweep_reports_every_phase_and_workers_reconcile() {
    let _guard = serialize();
    let cli = flexsim_experiments::cli::Cli {
        stats: true,
        jobs: Some(2),
        ..Default::default()
    };
    let (result, failures) = flexsim_experiments::stats::run(&cli);
    assert_eq!(failures, 0, "sweep failed under telemetry:\n{result}");
    // The flexcheck gate caches verdicts process-wide, so a sweep run
    // by an earlier test may have warmed it; `lint::run` opens the
    // flexcheck phase unconditionally, exactly as `flexsim lint` does.
    let (_lint, errors) = flexsim_experiments::lint::run();
    assert_eq!(errors, 0);
    let snap = telemetry::snapshot();
    telemetry::disable();

    for p in Phase::ALL {
        assert!(
            snap.phase_calls(p) > 0,
            "phase {} never fired (snapshot: {:?})",
            p.name(),
            snap.phases
        );
        let text = result.to_string();
        assert!(
            text.contains(p.name()),
            "{} missing from:\n{text}",
            p.name()
        );
    }
    assert!(!snap.workers.is_empty(), "no worker stats merged");
    for (i, w) in &snap.workers {
        assert_eq!(
            w.busy_us + w.idle_us,
            w.wall_us,
            "worker {i}: busy+idle must equal wall exactly: {w:?}"
        );
    }
    let tasks: u64 = snap.workers.iter().map(|(_, w)| w.tasks).sum();
    assert!(tasks > 0, "no tasks attributed to any worker");
    assert!(snap.queue_high_water > 0, "queue never saw a task");
    assert!(
        snap.experiment_wall.count() > 0,
        "experiment histogram is empty"
    );
    assert!(
        snap.layer_sim_wall.count() > 0,
        "layer-sim histogram is empty"
    );
    assert!(snap.task_wall.count() > 0, "task histogram is empty");
}

#[test]
fn panicking_experiment_dumps_flight_and_leaves_siblings_intact() {
    use flexsim_experiments::{Experiment, ExperimentCtx, ExperimentResult, Table};

    struct Fine;
    impl Experiment for Fine {
        fn id(&self) -> &'static str {
            "fine"
        }
        fn title(&self) -> &'static str {
            "completes"
        }
        fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
            let vals = ctx.map((0..8).collect(), |i| format!("v{i}"), |_t, i: usize| i + 1);
            let mut table = Table::new(["sum"]);
            table.push_row([vals.iter().sum::<usize>().to_string()]);
            ExperimentResult {
                id: "fine".into(),
                title: "completes".into(),
                notes: vec![],
                table,
            }
        }
    }
    struct Poisoned;
    impl Experiment for Poisoned {
        fn id(&self) -> &'static str {
            "poisoned"
        }
        fn title(&self) -> &'static str {
            "panics in a task"
        }
        fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
            ctx.map(
                vec![0usize, 1, 2],
                |i| format!("p{i}"),
                |_t, i: usize| {
                    assert!(i != 1, "flight-test boom at {i}");
                    i
                },
            );
            unreachable!("the map above must panic")
        }
    }

    let _guard = serialize();
    let dir = std::env::temp_dir().join(format!("flexsim_flight_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    telemetry::enable();
    telemetry::reset();
    telemetry::flight::set_dir(Some(&dir));

    let report = run_suite(
        &[&Fine, &Poisoned, &Fine],
        &SuiteConfig {
            jobs: 4,
            trace: false,
        },
    );

    telemetry::flight::set_dir(None);
    telemetry::disable();

    // Siblings of the poisoned experiment are intact.
    assert_eq!(report.results.len(), 3);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].id, "poisoned");
    assert!(report.failures[0].message.contains("flight-test boom at 1"));
    assert_eq!(report.results[0].table.rows()[0][0], "36");
    assert_eq!(report.results[2].table.rows()[0][0], "36");

    // At least one flight dump landed in the configured directory, and
    // it records the panic.
    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    assert!(!dumps.is_empty(), "no flight dump written to {dir:?}");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    let doc = flexsim_testkit::json::Json::parse(&text).expect("flight dump parses");
    let flexsim_testkit::json::Json::Obj(fields) = &doc else {
        panic!("flight dump is not an object:\n{text}");
    };
    assert_eq!(
        fields.iter().find(|(k, _)| k == "flexsim_flight"),
        Some(&(
            "flexsim_flight".to_owned(),
            flexsim_testkit::json::Json::Int(1)
        )),
        "missing schema marker in {text}"
    );
    assert!(
        text.contains("task-panic") && text.contains("flight-test boom"),
        "panic event missing from dump:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
