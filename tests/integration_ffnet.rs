//! End-to-end tests of the workload frontend: `.ffnet` fixture nets,
//! CLI diagnostics, and the DAG-evaluation invariants.
//!
//! Three concerns:
//!
//! * **Fixture goldens** — the shipped `examples/*.ffnet` nets (a
//!   ResNet-style residual block, a MobileNet-style depthwise-separable
//!   block, and a dilated/strided context net) have committed full-net
//!   reference checksums in `tests/fixtures/ffnet_checksums.txt`, and
//!   every architecture's functional model must reproduce those bits
//!   exactly (the stride-1/dilation-1 Systolic and 2D-Mapping models
//!   cover the layers they support, as in `integration_fixtures`).
//! * **CLI diagnostics** — malformed `.ffnet` files each produce one
//!   actionable error with line/path context and exit code 2 from
//!   `flexsim run`.
//! * **Schedule invariance** — a property test: any legal random DAG's
//!   functional reference output is invariant under permutation of the
//!   node insertion order (which permutes the topological linearization
//!   the whole stack consumes).
//!
//! Regenerate the checksums after an intentional numerics change with:
//! `FLEXSIM_REGEN_FIXTURES=1 cargo test -q -p flexsim-experiments --test integration_ffnet`

use flexflow::array::PeArray;
use flexflow::{Compiler, FlexFlow};
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_dataflow::search::best_unroll;
use flexsim_model::graph::{Graph, GraphBuilder, GraphOp};
use flexsim_model::tensor::KernelSet;
use flexsim_model::{reference, Layer, Network, Shape, Tensor3, WorkloadRegistry};
use flexsim_testkit::prop::{self, fnv1a};
use flexsim_testkit::{prop_assert_eq, SplitMix64};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// The shipped fixture nets with their pinned operand seeds.
fn fixture_nets() -> Vec<(Network, u64)> {
    let reg = WorkloadRegistry::new().with_dir(repo_path("examples"));
    vec![
        (reg.resolve("resnet_block").expect("fixture parses"), 47),
        (reg.resolve("mobilenet_block").expect("fixture parses"), 48),
        (reg.resolve("dilated").expect("fixture parses"), 49),
    ]
}

/// FNV-1a over shape + raw Q7.8 little-endian words (the same digest
/// as `integration_fixtures`).
fn tensor_checksum(t: &Tensor3) -> u64 {
    let mut bytes = Vec::with_capacity(t.maps() * t.rows() * t.cols() * 2 + 12);
    for &dim in &[t.maps(), t.rows(), t.cols()] {
        bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    }
    for m in 0..t.maps() {
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                bytes.extend_from_slice(&t[(m, r, c)].raw().to_le_bytes());
            }
        }
    }
    fnv1a(&bytes)
}

fn render_line(net: &Network, seed: u64, out: &Tensor3) -> String {
    format!(
        "{name} seed={seed} layers={layers} out={m}x{r}x{c} checksum={checksum:016x}",
        name = net.name(),
        layers = net.layers().len(),
        m = out.maps(),
        r = out.rows(),
        c = out.cols(),
        checksum = tensor_checksum(out),
    )
}

// ------------------------------------------------- fixture net goldens

#[test]
fn fixture_nets_match_committed_checksums() {
    let path = repo_path("tests/fixtures/ffnet_checksums.txt");
    let golden: Vec<String> = fixture_nets()
        .into_iter()
        .map(|(net, seed)| {
            let (input, kernels) = reference::random_network_data(&net, seed);
            let out = reference::network(&net, &input, &kernels);
            render_line(&net, seed, &out)
        })
        .collect();
    if std::env::var("FLEXSIM_REGEN_FIXTURES").is_ok() {
        let mut body = String::from(
            "# Golden full-network reference checksums for the shipped .ffnet fixtures.\n\
             # Format: <net> seed=<s> layers=<n> out=<MxRxC> checksum=<fnv1a64>\n\
             # Regenerate: FLEXSIM_REGEN_FIXTURES=1 cargo test -q -p flexsim-experiments --test integration_ffnet\n",
        );
        for line in &golden {
            let _ = writeln!(body, "{line}");
        }
        std::fs::write(&path, body).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with FLEXSIM_REGEN_FIXTURES=1",
            path.display()
        )
    });
    let committed: Vec<&str> = committed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .collect();
    assert_eq!(committed.len(), golden.len(), "fixture entry count drifted");
    for (line, want) in golden.iter().zip(&committed) {
        assert_eq!(
            line, want,
            "fixture net reference output drifted from the committed checksum"
        );
    }
}

#[test]
fn flexflow_engine_runs_fixture_nets_bit_exactly() {
    // The compiled program executed on the cycle-stepped engine must
    // reproduce the full-net golden reference output — DAG routing
    // (residual add, concat of per-map depthwise outputs, slices),
    // pooling, and dilated/strided layers included.
    for (net, seed) in fixture_nets() {
        let (input, kernels) = reference::random_network_data(&net, seed);
        let want = reference::network(&net, &input, &kernels);
        let program = Compiler::new(16).compile(&net);
        let trace = FlexFlow::new(16).execute(&program, &net, input, &kernels);
        assert_eq!(trace.output, want, "{} engine output drifted", net.name());
        assert!(trace.cycles > 0);
    }
}

#[test]
fn all_simulators_reproduce_fixture_layers_bit_exactly() {
    // Per CONV layer of each fixture net, with the layer's *actual*
    // in-network input (routing materialized from the reference walk):
    // all four architectures' functional models must match the
    // reference. Systolic and 2D-Mapping are stride-1/dilation-1
    // machines and skip the layers they cannot express (the dilated
    // fixture exists to exercise exactly that split).
    for (net, seed) in fixture_nets() {
        let (source, kernels) = reference::random_network_data(&net, seed);
        let mut outputs: Vec<Option<Tensor3>> = vec![None; net.layers().len()];
        let mut kernel_iter = kernels.iter();
        for step in net.steps() {
            let data = step.input.materialize(&source, &outputs);
            let out = match step.layer {
                Layer::Conv(layer) => {
                    let kset = kernel_iter.next().expect("kernel per conv");
                    let want = reference::conv(layer, &data, kset);
                    if layer.stride() == 1 && layer.dilation() == 1 {
                        assert_eq!(
                            Systolic::dc_cnn().forward(layer, &data, kset),
                            want,
                            "Systolic drifted on {}/{}",
                            net.name(),
                            layer.name()
                        );
                        assert_eq!(
                            Mapping2d::shidiannao().forward(layer, &data, kset),
                            want,
                            "2D-Mapping drifted on {}/{}",
                            net.name(),
                            layer.name()
                        );
                    }
                    assert_eq!(
                        TilingArray::diannao().forward(layer, &data, kset),
                        want,
                        "Tiling drifted on {}/{}",
                        net.name(),
                        layer.name()
                    );
                    let choice = best_unroll(layer, 16, None);
                    let mut array = PeArray::new(16);
                    let report = array.run_layer(layer, choice.unroll, &data, kset);
                    assert_eq!(
                        report.output,
                        want,
                        "FlexFlow drifted on {}/{}",
                        net.name(),
                        layer.name()
                    );
                    want
                }
                Layer::Pool(pool) => reference::pool(pool, &data),
                Layer::Fc(_) => {
                    let _ = kernel_iter.next();
                    continue; // no FC layers in the shipped fixtures
                }
            };
            outputs[step.index] = Some(out);
        }
    }
}

// ----------------------------------------------------- CLI diagnostics

/// Writes `text` to a scratch `.ffnet` file and runs
/// `flexsim run <file>`, returning (exit code, stderr).
fn run_cli_on(text: &str, tag: &str) -> (Option<i32>, String) {
    let dir = std::env::temp_dir().join(format!("flexsim-ffnet-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(format!("{tag}.ffnet"));
    std::fs::write(&file, text).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_flexsim"))
        .args(["run", file.to_str().unwrap()])
        .output()
        .expect("flexsim runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn malformed_ffnet_files_produce_actionable_errors_and_exit_2() {
    // One case per failure class: unknown field, shape mismatch at a
    // join, cycle, dangling edge, and a raw syntax error. Each must
    // exit 2 with a single diagnostic naming where the problem is.
    let cases: [(&str, &str, &str); 5] = [
        (
            "unknown_field",
            r#"{"name": "x", "input": {"maps": 1, "size": 8},
               "nodes": [{"id": "c1", "op": "conv", "m": 2, "kernel": 3}]}"#,
            "nodes[0].kernel",
        ),
        (
            "shape_mismatch",
            r#"{"name": "x", "input": {"maps": 2, "size": 8},
               "nodes": [
                 {"id": "c1", "op": "conv", "m": 4, "k": 3},
                 {"id": "sum", "op": "add", "in": ["c1", "input"]}]}"#,
            "sum",
        ),
        (
            "cycle",
            r#"{"name": "x", "input": {"maps": 1, "size": 8},
               "nodes": [
                 {"id": "a", "op": "conv", "m": 2, "k": 1, "in": "b"},
                 {"id": "b", "op": "conv", "m": 2, "k": 1, "in": "a"}]}"#,
            "cycle",
        ),
        (
            "dangling_edge",
            r#"{"name": "x", "input": {"maps": 1, "size": 8},
               "nodes": [{"id": "c1", "op": "conv", "m": 2, "k": 3, "in": "ghost"}]}"#,
            "ghost",
        ),
        (
            "syntax_error",
            "{\"name\": \"x\",\n  \"input\": {\"maps\": 1, \"size\": 8},\n  \"nodes\": [}",
            ".ffnet:3:",
        ),
    ];
    for (tag, text, needle) in cases {
        let (code, stderr) = run_cli_on(text, tag);
        assert_eq!(code, Some(2), "{tag}: expected exit 2\n{stderr}");
        assert!(
            stderr.contains(needle),
            "{tag}: diagnostic should mention {needle:?}\n{stderr}"
        );
        assert!(
            stderr.contains(&format!("{tag}.ffnet")),
            "{tag}: diagnostic should name the file\n{stderr}"
        );
        // One actionable error, not a spray: a single flexsim: line.
        assert_eq!(
            stderr.matches("flexsim: ").count(),
            1,
            "{tag}: expected exactly one diagnostic\n{stderr}"
        );
    }
}

#[test]
fn run_on_a_fixture_reports_all_four_architectures() {
    let out = Command::new(env!("CARGO_BIN_EXE_flexsim"))
        .args([
            "run",
            repo_path("examples/resnet_block.ffnet").to_str().unwrap(),
        ])
        .output()
        .expect("flexsim runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for arch in ["Systolic", "2D-Mapping", "Tiling", "FlexFlow"] {
        assert!(stdout.contains(arch), "missing {arch}:\n{stdout}");
    }
    assert!(stdout.contains("exact"), "{stdout}");
    assert!(!stdout.contains("VIOLATED"), "{stdout}");
}

#[test]
fn workloads_json_lists_the_fixture_nets() {
    let out = Command::new(env!("CARGO_BIN_EXE_flexsim"))
        .current_dir(repo_path(""))
        .args(["workloads", "--json"])
        .output()
        .expect("flexsim runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let doc = flexsim_testkit::json::Json::parse(&stdout).expect("valid JSON");
    // Byte-stable: re-emitting the parsed document is the identity.
    let mut roundtrip = doc.pretty();
    roundtrip.push('\n');
    assert_eq!(roundtrip, stdout);
    for name in ["resnet_block", "mobilenet_block", "dilated", "AlexNet"] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

// ------------------------------------------- schedule-invariance property

/// One randomly generated node: id, op, and input refs — kept abstract
/// so the same spec can be inserted in any topological order.
#[derive(Clone, Debug)]
struct NodeSpec {
    id: String,
    op: GraphOp,
    inputs: Vec<String>,
}

/// Generates a legal random DAG over `rng`: a mix of shape-preserving
/// 1×1 convs, shrinking k×k convs, residual adds over equal shapes,
/// and concats over equal sizes. Every node's shape is tracked so all
/// joins are legal by construction.
fn random_dag(rng: &mut SplitMix64) -> (Shape, Vec<NodeSpec>) {
    let source = Shape {
        maps: rng.gen_range(1usize..=3),
        size: rng.gen_range(6usize..=9),
    };
    let mut values: Vec<(String, Shape)> = vec![("input".to_owned(), source)];
    let mut specs = Vec::new();
    let n_nodes = rng.gen_range(3usize..=6);
    for i in 0..n_nodes {
        let id = format!("n{i}");
        let (op, inputs, shape) = match rng.bounded(4) {
            // Residual add: two distinct prior values with equal shape.
            0 if equal_shape_pair(&values).is_some() => {
                let (a, b, shape) = equal_shape_pair(&values).unwrap();
                (GraphOp::Add, vec![a, b], shape)
            }
            // Concat: two prior values with equal size.
            1 if equal_size_pair(&values).is_some() => {
                let (a, b, sa, sb) = equal_size_pair(&values).unwrap();
                (
                    GraphOp::Concat,
                    vec![a, b],
                    Shape {
                        maps: sa.maps + sb.maps,
                        size: sa.size,
                    },
                )
            }
            // Shrinking conv over any prior value.
            2 => {
                let (from, shape) = pick(rng, &values);
                let k = rng.gen_range(1usize..=3.min(shape.size));
                let m = rng.gen_range(1usize..=4);
                (
                    GraphOp::conv(m, k),
                    vec![from],
                    Shape {
                        maps: m,
                        size: shape.size - k + 1,
                    },
                )
            }
            // Shape-preserving 1×1 conv (keeps join candidates alive).
            _ => {
                let (from, shape) = pick(rng, &values);
                let m = rng.gen_range(1usize..=4);
                (
                    GraphOp::conv(m, 1),
                    vec![from],
                    Shape {
                        maps: m,
                        size: shape.size,
                    },
                )
            }
        };
        values.push((id.clone(), shape));
        specs.push(NodeSpec { id, op, inputs });
    }
    (source, specs)
}

fn pick(rng: &mut SplitMix64, values: &[(String, Shape)]) -> (String, Shape) {
    let (id, shape) = &values[rng.bounded(values.len() as u64) as usize];
    (id.clone(), *shape)
}

fn equal_shape_pair(values: &[(String, Shape)]) -> Option<(String, String, Shape)> {
    for (i, (a, sa)) in values.iter().enumerate() {
        for (b, sb) in &values[i + 1..] {
            if sa == sb {
                return Some((a.clone(), b.clone(), *sa));
            }
        }
    }
    None
}

fn equal_size_pair(values: &[(String, Shape)]) -> Option<(String, String, Shape, Shape)> {
    for (i, (a, sa)) in values.iter().enumerate() {
        for (b, sb) in &values[i + 1..] {
            if sa.size == sb.size {
                return Some((a.clone(), b.clone(), *sa, *sb));
            }
        }
    }
    None
}

/// Builds the DAG from `specs` inserted in the given order.
fn build_in_order(source: Shape, specs: &[NodeSpec], order: &[usize]) -> Graph {
    let mut b = GraphBuilder::new("prop-dag", source);
    for &i in order {
        let spec = &specs[i];
        b = b.node(
            &spec.id,
            spec.op.clone(),
            spec.inputs.iter().map(String::as_str),
        );
    }
    // Fixed output regardless of insertion order: the last-generated
    // node (every permutation contains it).
    b.output(&specs[specs.len() - 1].id)
        .build()
        .expect("legal DAG")
}

/// A random insertion order that respects dependencies: repeatedly
/// pick any not-yet-inserted node whose inputs are all available.
fn random_topo_order(rng: &mut SplitMix64, specs: &[NodeSpec]) -> Vec<usize> {
    let mut placed: Vec<usize> = Vec::new();
    let available = |placed: &[usize], i: usize| {
        specs[i]
            .inputs
            .iter()
            .all(|inp| inp == "input" || placed.iter().any(|&p| specs[p].id == *inp))
    };
    while placed.len() < specs.len() {
        let ready: Vec<usize> = (0..specs.len())
            .filter(|i| !placed.contains(i) && available(&placed, *i))
            .collect();
        let pick = ready[rng.bounded(ready.len() as u64) as usize];
        placed.push(pick);
    }
    placed
}

/// Kernels keyed by layer name, so the same weights follow a layer
/// through any linearization.
fn kernels_by_name(net: &Network, kernels: &[KernelSet]) -> HashMap<String, KernelSet> {
    net.steps()
        .filter(|s| !matches!(s.layer, Layer::Pool(_)))
        .zip(kernels)
        .map(|(s, k)| (s.layer.name().to_owned(), k.clone()))
        .collect()
}

#[test]
fn reference_output_is_invariant_under_topological_permutation() {
    prop::check(
        "reference_output_is_invariant_under_topological_permutation",
        64,
        0u64..=999_999,
        |&seed| {
            let mut rng = SplitMix64::new(seed);
            let (source, specs) = random_dag(&mut rng);
            let base_order: Vec<usize> = (0..specs.len()).collect();
            let net_a = build_in_order(source, &specs, &base_order)
                .into_network()
                .map_err(|e| format!("base DAG failed to lower: {e}"))?;
            let (input, kernels) = reference::random_network_data(&net_a, seed);
            let named = kernels_by_name(&net_a, &kernels);
            let want = reference::network(&net_a, &input, &kernels);
            let perm = random_topo_order(&mut rng, &specs);
            let net_b = build_in_order(source, &specs, &perm)
                .into_network()
                .map_err(|e| format!("permuted DAG failed to lower: {e}"))?;
            let kernels_b: Vec<KernelSet> = net_b
                .steps()
                .filter(|s| !matches!(s.layer, Layer::Pool(_)))
                .map(|s| named[s.layer.name()].clone())
                .collect();
            let got = reference::network(&net_b, &input, &kernels_b);
            prop_assert_eq!(
                tensor_checksum(&got),
                tensor_checksum(&want),
                "permutation {:?} changed the output",
                perm
            );
            Ok(())
        },
    );
}
