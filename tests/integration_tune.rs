//! Integration tests for `flexsim tune`, the mapping auto-tuner.
//!
//! Four guarantees, each backed by a different oracle:
//!
//! 1. **Legality** — every tuner-selected mapping passes the full
//!    flexcheck rule set (FXC01–FXC09), both as a per-layer candidate
//!    and as the assembled tuned program.
//! 2. **Semantics** — tuned mappings are functionally equivalent to
//!    the paper-default mappings: bit-identical outputs against the
//!    golden reference convolution on the functional PE array.
//! 3. **Monotonicity** — a tuned mapping never scores worse than the
//!    paper-default mapping *or* the repo compiler's DP plan, and no
//!    randomly sampled legal candidate beats the exhaustive winner.
//! 4. **Determinism** — the rendered report and `BENCH_tune.json`
//!    document are byte-identical at `--jobs` 1, 2, and 8 and across
//!    repeated runs (the `integration_pool` guarantee, extended to the
//!    tuner's two-stage fan-out).
//!
//! Plus mutation coverage: corrupting the tuner's emitted table (swap
//! two layer entries, inflate an unroll factor) must be caught by
//! flexcheck, and tampering with a claimed cycle count must be caught
//! by re-verification against the cycle-stepped engine.

use flexcheck::ArchParams;
use flexflow::array::PeArray;
use flexsim_experiments::tune::{
    analytic_ledger, bench_json, paper_defaults, recorded_ledger, report, tune_network,
    tune_workloads, tuned_program, Budget,
};
use flexsim_experiments::ExperimentCtx;
use flexsim_model::{reference, workloads, Network};
use flexsim_testkit::rng::SplitMix64;

const D: usize = 16;

/// The four small Table 1 workloads: cheap enough for the exhaustive
/// budget in every test below.
fn small_nets() -> Vec<Network> {
    vec![
        workloads::pv(),
        workloads::fr(),
        workloads::lenet5(),
        workloads::hg(),
    ]
}

#[test]
fn tuned_mappings_lint_clean_on_every_workload() {
    // The assembled tuned program and every selected mapping must pass
    // all nine flexcheck rules — on the full sweep, not just the small
    // nets (smoke budget keeps AlexNet/VGG enumeration fast; the
    // engine verification inside tune_network is budget-independent).
    let ctx = ExperimentCtx::serial("tune");
    let arch = ArchParams::flexflow_paper();
    for net in workloads::all() {
        let outcome = tune_network(&ctx, &net, Budget::Smoke);
        let diags = flexcheck::check(&outcome.program, &net, &arch);
        assert!(
            !flexcheck::has_errors(&diags),
            "{}: {}",
            net.name(),
            flexcheck::render(&diags)
        );
        let idxs = net.conv_indices();
        for (pos, (layer, rep)) in net.conv_layers().zip(&outcome.layers).enumerate() {
            let pruned = flexcheck::prune_candidates(layer, idxs[pos], &[rep.tuned.unroll], &arch);
            assert_eq!(
                pruned.legal,
                vec![rep.tuned.unroll],
                "{}/{}: tuned mapping rejected by the candidate rules",
                net.name(),
                layer.name()
            );
        }
    }
}

#[test]
fn tuned_mappings_match_the_golden_reference() {
    // Mappings change the schedule, never the semantics: on every
    // valid-convolution layer the tuned unrolling must produce
    // bit-identical outputs to the reference (and to the paper-default
    // mapping), while never taking more compute steps.
    for (i, net) in small_nets().iter().enumerate() {
        let ctx = ExperimentCtx::serial("tune");
        let outcome = tune_network(&ctx, net, Budget::Full);
        for (layer, rep) in net.conv_layers().zip(&outcome.layers) {
            if !layer.is_valid_convolution() {
                continue; // padded layers have no functional operands
            }
            let (input, kernels) = reference::random_layer_data(layer, 7000 + i as u64);
            let want = reference::conv(layer, &input, &kernels);
            let tuned = PeArray::new(D).run_layer(layer, rep.tuned.unroll, &input, &kernels);
            assert_eq!(
                tuned.output,
                want,
                "{}/{}: tuned mapping diverges from the reference",
                net.name(),
                layer.name()
            );
            let default = PeArray::new(D).run_layer(layer, rep.default.unroll, &input, &kernels);
            assert_eq!(
                default.output,
                want,
                "{}/{}: default mapping diverges from the reference",
                net.name(),
                layer.name()
            );
            assert!(
                tuned.compute_steps <= default.compute_steps,
                "{}/{}: tuned mapping takes more compute steps",
                net.name(),
                layer.name()
            );
        }
    }
}

#[test]
fn tuning_is_monotonic_and_improves_three_workloads() {
    // Monotonic per layer against both seeds, and the known outcome of
    // the exhaustive sweep: PV, LeNet-5, and HG recover residue cycles
    // over the paper's published Table 4 factors, while FR's published
    // factors are certified already cycle-optimal.
    let ctx = ExperimentCtx::serial("tune");
    let outcomes = tune_workloads(&ctx, &small_nets(), Budget::Full);
    for o in &outcomes {
        for l in &o.layers {
            assert!(
                l.delta.after_total() <= l.delta.before_total(),
                "{}/{}: tuned loses to the paper default",
                o.workload,
                l.default.layer
            );
            assert!(
                l.tuned.cycles <= l.planned.cycles,
                "{}/{}: tuned loses to the compiler plan",
                o.workload,
                l.default.layer
            );
        }
    }
    let improved: Vec<&str> = outcomes
        .iter()
        .filter(|o| o.improved())
        .map(|o| o.workload.as_str())
        .collect();
    assert_eq!(improved, ["PV", "LeNet-5", "HG"]);
    // The recoveries are exact tile-count differences (paper factors
    // vs the free per-layer optimum) times the 256-PE array.
    let by_name = |n: &str| outcomes.iter().find(|o| o.workload == n).unwrap();
    assert_eq!(by_name("PV").residue_edge_recovered(), 120 * 256);
    assert_eq!(by_name("LeNet-5").residue_edge_recovered(), 84 * 256);
    assert_eq!(by_name("HG").residue_edge_recovered(), 48 * 256);
    assert_eq!(by_name("FR").recovered_pe_cycles(), 0);
}

#[test]
fn no_sampled_candidate_beats_the_exhaustive_winner() {
    // Property check on the optimality certificate: random legal
    // unrollings never score below the tuner's winner.
    let ctx = ExperimentCtx::serial("tune");
    let net = workloads::lenet5();
    let outcome = tune_network(&ctx, &net, Budget::Full);
    let mut rng = SplitMix64::new(0x0F1E_F10F);
    for (layer, rep) in net.conv_layers().zip(&outcome.layers) {
        let space = flexsim_dataflow::tune::full_candidates(layer, D, None);
        let best = analytic_ledger(layer, rep.tuned.unroll).attributed_lost();
        for _ in 0..64 {
            let u = space[rng.gen_range(0..=space.len() as u64 - 1) as usize];
            assert!(
                analytic_ledger(layer, u).attributed_lost() >= best,
                "{}: sampled {u} beats the winner",
                layer.name()
            );
        }
    }
}

/// Renders one tuner run (report text + JSON + bench document) to a
/// single string for byte-comparison.
fn render_sweep(jobs: usize) -> String {
    let ctx = ExperimentCtx::parallel("tune", jobs);
    let outcomes = tune_workloads(&ctx, &small_nets(), Budget::Full);
    let result = report(&outcomes, Budget::Full);
    format!(
        "{}\n{}\n{}",
        result,
        result.to_json(),
        bench_json(&outcomes, Budget::Full).pretty()
    )
}

#[test]
fn tune_output_is_byte_identical_across_jobs_levels_and_reruns() {
    let serial = render_sweep(1);
    for jobs in [2usize, 8] {
        assert_eq!(serial, render_sweep(jobs), "jobs={jobs} diverged");
    }
    assert_eq!(serial, render_sweep(1), "rerun diverged");
}

#[test]
fn swapped_table_entries_are_caught_by_flexcheck() {
    // Mutation 1: swap two layer entries in the tuner's emitted table.
    // LeNet-5 C3's factors need Tn=3 input maps; C1 only has one, so
    // the swapped program must fail the factor-bounds rules.
    let ctx = ExperimentCtx::serial("tune");
    let net = workloads::lenet5();
    let outcome = tune_network(&ctx, &net, Budget::Full);
    let mut choices: Vec<_> = outcome.layers.iter().map(|l| l.tuned.clone()).collect();
    choices.swap(0, 1);
    let mutated = tuned_program(&net, D, choices);
    let diags = flexcheck::check(&mutated, &net, &ArchParams::flexflow_paper());
    assert!(
        flexcheck::has_errors(&diags),
        "swapped mapping table passed flexcheck"
    );
}

#[test]
fn inflated_unroll_factors_are_caught_by_flexcheck() {
    // Mutation 2: inflate one unroll factor past the array. The tuned
    // winners sit at Constraint (1)'s boundary, so doubling Tm
    // over-occupies the columns.
    let ctx = ExperimentCtx::serial("tune");
    let net = workloads::lenet5();
    let outcome = tune_network(&ctx, &net, Budget::Full);
    let mut choices: Vec<_> = outcome.layers.iter().map(|l| l.tuned.clone()).collect();
    choices[1].unroll.tm *= 2;
    let mutated = tuned_program(&net, D, choices);
    let diags = flexcheck::check(&mutated, &net, &ArchParams::flexflow_paper());
    assert!(
        flexcheck::has_errors(&diags),
        "inflated unroll factor passed flexcheck"
    );
}

#[test]
fn tampered_cycle_claims_are_caught_by_the_engine() {
    // Mutation 3: a corrupted cycle claim in the emitted table cannot
    // survive re-verification — the recorded engine ledger is the
    // ground truth the analytic score must reproduce exactly.
    let net = workloads::lenet5();
    let (default, _) = &paper_defaults(&net)[0];
    let layer = net.conv_layers().next().unwrap();
    let honest = recorded_ledger(layer, default.unroll);
    assert_eq!(honest.total_cycles, default.cycles + 8, "fill offset");
    let tampered = default.cycles + 1; // the "corrupted table" claim
    assert_ne!(honest.total_cycles, tampered + 8);
}
