//! Property tests of the unrolling compiler: the factor search's
//! choices must *cover* every loop bound without waste, and its
//! predicted utilization `Ut` must match what the cycle-level FlexFlow
//! simulator actually achieves during PE-active cycles.

use flexflow::array::PeArray;
use flexsim_dataflow::search::{best_unroll, plan_network};
use flexsim_dataflow::utilization::{ceil_div, tile_count, total_utilization};
use flexsim_dataflow::{TileIter, Unroll};
use flexsim_model::{reference, ConvLayer, Network, PoolKind, PoolLayer};
use flexsim_testkit::prop::{self, option_of};
use flexsim_testkit::{prop_assert, prop_assert_eq};

const CASES: u32 = 64;
const D: usize = 16;

/// Raw `(m, n, s, k)` parameters for a small random CONV layer.
fn small_layer_params() -> (
    std::ops::RangeInclusive<usize>,
    std::ops::RangeInclusive<usize>,
    std::ops::RangeInclusive<usize>,
    std::ops::RangeInclusive<usize>,
) {
    (1..=6, 1..=5, 2..=9, 1..=5)
}

fn small_layer((m, n, s, k): (usize, usize, usize, usize)) -> ConvLayer {
    ConvLayer::new(format!("U{m}x{n}x{s}x{k}"), m, n, s, k)
}

/// Asserts one factor divides-or-covers its loop bound: it never
/// exceeds the bound, and the last tile of the `⌈bound/factor⌉` walk is
/// non-empty (no fully wasted tile).
fn assert_covers(factor: usize, bound: usize, what: &str) -> Result<(), String> {
    prop_assert!(factor >= 1, "{what}: zero factor");
    prop_assert!(
        factor <= bound,
        "{what}: factor {factor} exceeds loop bound {bound}"
    );
    let tiles = ceil_div(bound, factor);
    prop_assert!(
        factor * (tiles - 1) < bound,
        "{what}: last of {tiles} tiles is empty (factor {factor}, bound {bound})"
    );
    Ok(())
}

fn assert_unroll_covers(u: &Unroll, layer: &ConvLayer) -> Result<(), String> {
    assert_covers(u.tm, layer.m(), "Tm")?;
    assert_covers(u.tn, layer.n(), "Tn")?;
    assert_covers(u.tr, layer.s(), "Tr")?;
    assert_covers(u.tc, layer.s(), "Tc")?;
    assert_covers(u.ti, layer.k(), "Ti")?;
    assert_covers(u.tj, layer.k(), "Tj")?;
    Ok(())
}

#[test]
fn search_factors_divide_or_cover_loop_bounds() {
    // best_unroll never picks a factor that overshoots its bound or
    // schedules an empty trailing tile, under any R·C bound.
    prop::check(
        "search_factors_divide_or_cover_loop_bounds",
        CASES,
        (small_layer_params(), option_of(1usize..=8)),
        |&(lp, rc_bound)| {
            let layer = small_layer(lp);
            let choice = best_unroll(&layer, D, rc_bound);
            assert_unroll_covers(&choice.unroll, &layer)?;
            // Coverage also means the tile walk reproduces the exact
            // MAC total — no work dropped, none invented.
            let walked: u64 = TileIter::new(&layer, choice.unroll).map(|t| t.macs()).sum();
            prop_assert_eq!(walked, layer.macs());
            Ok(())
        },
    );
}

#[test]
fn planner_factors_divide_or_cover_across_networks() {
    // The whole-network planner (with IADP coupling) obeys the same
    // coverage discipline on every layer it plans.
    prop::check(
        "planner_factors_divide_or_cover_across_networks",
        CASES,
        (1usize..=8, 4usize..=12, 1usize..=4, 1usize..=8, 1usize..=3),
        |&(m1, s1, k1, m2, k2)| {
            let s2_in = (s1 / 2).max(k2);
            let s2 = (s2_in - k2 + 1).max(1);
            let net = Network::builder("prop")
                .conv(ConvLayer::new("C1", m1, 1, s1, k1))
                .pool(PoolLayer::new("P", PoolKind::Max, 2, m1, s1))
                .conv(ConvLayer::new("C2", m2, m1, s2, k2).with_input_size(s2_in))
                .build();
            for (layer, choice) in net.conv_layers().zip(plan_network(&net, D)) {
                assert_unroll_covers(&choice.unroll, layer)?;
            }
            Ok(())
        },
    );
}

#[test]
fn predicted_utilization_matches_simulated_pe_active_cycles() {
    // The model's Ut (Eqs. 2-4) must equal the *simulated* occupancy:
    // executed MACs over PE-active compute steps times D² — measured by
    // the cycle-level array, not the analytic schedule.
    prop::check(
        "predicted_utilization_matches_simulated_pe_active_cycles",
        CASES,
        (small_layer_params(), 0u64..=9_999),
        |&(lp, seed)| {
            let layer = small_layer(lp);
            let choice = best_unroll(&layer, D, None);
            let (input, kernels) = reference::random_layer_data(&layer, seed);
            let mut array = PeArray::new(D);
            let report = array.run_layer(&layer, choice.unroll, &input, &kernels);

            prop_assert_eq!(report.compute_steps, tile_count(&layer, &choice.unroll));
            let simulated = report.macs as f64 / (report.compute_steps as f64 * (D * D) as f64);
            let predicted = total_utilization(&layer, &choice.unroll, D);
            prop_assert!(
                (simulated - predicted).abs() < 1e-9,
                "{}: predicted Ut {predicted} vs simulated {simulated}",
                layer.name()
            );
            // The search's own bookkeeping agrees with both.
            prop_assert!((choice.total_utilization() - predicted).abs() < 1e-9);
            Ok(())
        },
    );
}

#[test]
fn utilization_prediction_holds_under_arbitrary_feasible_unrollings() {
    // Not just the search's picks: any feasible unrolling's predicted
    // Ut matches the simulated PE-active occupancy (folding six raw
    // factor draws into the loop bounds as 1 + (raw-1) % bound).
    let f = || 1usize..=8;
    prop::check(
        "utilization_prediction_holds_under_arbitrary_feasible_unrollings",
        CASES,
        prop::filter(
            (
                small_layer_params(),
                (f(), f(), f(), f(), f(), f()),
                0u64..=9_999,
            ),
            |&(lp, (rm, rn, rr, rc, ri, rj), _)| {
                let layer = small_layer(lp);
                let fold = |raw: usize, bound: usize| 1 + (raw - 1) % bound;
                let u = Unroll::new(
                    fold(rm, layer.m()),
                    fold(rn, layer.n()),
                    fold(rr, layer.s()),
                    fold(rc, layer.s()),
                    fold(ri, layer.k()),
                    fold(rj, layer.k()),
                );
                u.rows_used() <= D && u.cols_used() <= D
            },
        ),
        |&(lp, (rm, rn, rr, rc, ri, rj), seed)| {
            let layer = small_layer(lp);
            let fold = |raw: usize, bound: usize| 1 + (raw - 1) % bound;
            let u = Unroll::new(
                fold(rm, layer.m()),
                fold(rn, layer.n()),
                fold(rr, layer.s()),
                fold(rc, layer.s()),
                fold(ri, layer.k()),
                fold(rj, layer.k()),
            );
            let (input, kernels) = reference::random_layer_data(&layer, seed);
            let mut array = PeArray::new(D);
            let report = array.run_layer(&layer, u, &input, &kernels);
            let simulated = report.macs as f64 / (report.compute_steps as f64 * (D * D) as f64);
            let predicted = total_utilization(&layer, &u, D);
            prop_assert!(
                (simulated - predicted).abs() < 1e-9,
                "{} under {u}: predicted {predicted} vs simulated {simulated}",
                layer.name()
            );
            Ok(())
        },
    );
}
