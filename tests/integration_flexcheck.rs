//! Mutation harness for the `flexcheck` static verifier.
//!
//! The verifier's contract has two sides, and this suite proves both
//! per rule:
//!
//! * **Static precision** — corrupting exactly one field of a clean
//!   schedule trips exactly the rule that owns that invariant (every
//!   reported diagnostic carries that rule's id, and at least one is an
//!   `Error`).
//! * **Dynamic soundness** — the same corruption, driven into the
//!   cycle-level hardware models, is caught at runtime (an assert
//!   naming the rule, a decoder rejection, or a measured/claimed
//!   divergence). Statically-clean schedules therefore cannot trip the
//!   dynamic guards: static ⊆ dynamic.
//!
//! Layout: one `fxcNN_static_*` test asserting rule exactness and one
//! `fxcNN_dynamic_*` test demonstrating the runtime catch, for each of
//! the plan rules (`FXC01`–`FXC08`) and the symbolic rules
//! (`FXC10`–`FXC12`), plus the all-clean sweep.

use flexcheck::{check, check_layer_plan, check_network, has_errors, render};
use flexcheck::{
    check_cycle_exactness_all, check_interference, predicted_ledgers, ArchParams, EngineGeometry,
    LayerPlan, RuleId, Severity,
};
use flexflow::adder_tree::RowPorts;
use flexflow::cdb::StepClaims;
use flexflow::compiler::Program;
use flexflow::decoder::Decoder;
use flexflow::fsm::AddrFsm;
use flexflow::local_store::{LocalStore, STORE_WORDS};
use flexflow::mapping::Mapping;
use flexflow::{analytic, array::PeArray, Compiler, FlexFlow};
use flexsim_arch::Accelerator;
use flexsim_dataflow::Unroll;
use flexsim_experiments::arches::{ArchSet, ARCH_NAMES};
use flexsim_model::reference;
use flexsim_model::{workloads, ConvLayer, Fx16, Network};
use flexsim_obs::attrib::{ledgers, LossLedger, StallCause};
use flexsim_obs::cycles::{CycleEvent, CycleEventKind, CycleRecorder, SinkHandle};
use std::sync::Arc;

/// A deep layer whose chunk walk needs 3 segments on the paper store:
/// `chunks = 96·3·1 = 288`, `slice = 96` resident words per segment.
fn deep_layer() -> ConvLayer {
    ConvLayer::new("C5", 16, 96, 8, 3)
}

fn deep_unroll() -> Unroll {
    Unroll::new(2, 1, 2, 2, 1, 3) // 8 rows x 3 cols
}

/// A wide layer/unroll pair occupying 12 PE columns (for the bank
/// rule): `chunks = 3·3·2 = 18`, single segment.
fn wide_layer() -> ConvLayer {
    ConvLayer::new("C3", 16, 6, 10, 5)
}

fn wide_unroll() -> Unroll {
    Unroll::new(2, 2, 1, 2, 2, 3) // 4 rows x 12 cols
}

fn plan(layer: &ConvLayer, u: Unroll) -> LayerPlan {
    LayerPlan::derive(layer, 0, u, u, 16, STORE_WORDS).expect("clean plan derives")
}

/// Asserts every diagnostic names `rule` and at least one is an error —
/// the "trips exactly that rule" obligation.
fn assert_only(diags: &[flexcheck::Diagnostic], rule: RuleId) {
    assert!(!diags.is_empty(), "expected {rule} to fire");
    for d in diags {
        assert_eq!(d.rule, rule, "foreign rule fired:\n{}", render(diags));
    }
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error),
        "{rule} fired only below Error:\n{}",
        render(diags)
    );
}

// ---------------------------------------------------------------- clean

#[test]
fn every_workload_is_error_free_on_all_four_architectures() {
    for net in workloads::all() {
        for arch in ArchParams::paper_suite(net.name()) {
            let diags = check_network(&net, &arch);
            assert!(
                !has_errors(&diags),
                "{} on {}:\n{}",
                net.name(),
                arch.kind.name(),
                render(&diags)
            );
        }
    }
}

#[test]
fn flexflow_programs_are_completely_clean() {
    // On FlexFlow itself not even warnings: the compiler emits no dead
    // code and every plan is bank/store/bus-safe by construction.
    for net in workloads::all() {
        let program = Compiler::new(16).compile(&net);
        let diags = check(&program, &net, &ArchParams::flexflow_paper());
        assert!(diags.is_empty(), "{}:\n{}", net.name(), render(&diags));
    }
}

#[test]
fn harness_base_plans_are_clean() {
    let arch = ArchParams::flexflow_paper();
    for (layer, u) in [(deep_layer(), deep_unroll()), (wide_layer(), wide_unroll())] {
        let p = plan(&layer, u);
        let diags = check_layer_plan(&p, &arch);
        assert!(diags.is_empty(), "{u}:\n{}", render(&diags));
    }
    assert_eq!(plan(&deep_layer(), deep_unroll()).slice_words, 96);
}

// --------------------------------------------- FXC01 local-store capacity

#[test]
fn fxc01_static_half_size_store_cannot_hold_the_slice() {
    // Corruption: the target hardware's store is halved (the ablation
    // configuration); the 96-word slice no longer fits.
    let mut arch = ArchParams::flexflow_paper();
    arch.store_words = 64;
    let diags = check_layer_plan(&plan(&deep_layer(), deep_unroll()), &arch);
    assert_only(&diags, RuleId::LsCapacity);
}

#[test]
#[should_panic(expected = "address out of range")]
fn fxc01_dynamic_half_size_store_overflows() {
    // The same slice streamed into a 64-word store runs off its end.
    let p = plan(&deep_layer(), deep_unroll());
    let mut store = LocalStore::new(64);
    for addr in 0..p.slice_words {
        store.write(addr, Fx16::ONE);
    }
}

// ------------------------------------------------------- FXC02 CDB race

#[test]
fn fxc02_static_widened_walk_races_the_vertical_buses() {
    // Corruption: the Configure instruction walks Tj=6 synapse columns
    // per step while the mapping only spreads 3 residue classes.
    let mut p = plan(&deep_layer(), deep_unroll());
    p.walk.tj = 2 * p.mapping.tj;
    let diags = check_layer_plan(&p, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::CdbRace);
}

#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "FXC02"))]
fn fxc02_dynamic_widened_walk_trips_the_bus_guard() {
    // Replaying one corrupted step against the hardware's per-cycle
    // write-exclusivity guard: the 4th..6th synapse-column offsets land
    // on already-claimed buses.
    let u = deep_unroll();
    let mapping = Mapping::new(u);
    let mut claims = StepClaims::new(u.cols_used());
    for dn in 0..u.tn {
        for di in 0..u.ti {
            for dj in 0..2 * u.tj {
                claims.claim(mapping.operand_col(dn, 0, 0, di, dj, 1, 1));
            }
        }
    }
}

// ----------------------------------------------- FXC03 adder-tree ports

#[test]
fn fxc03_static_widened_batch_contends_for_row_ports() {
    // Corruption: the Configure batch covers Tc=4 output columns while
    // the mapping owns 2 residue classes.
    let mut p = plan(&deep_layer(), deep_unroll());
    p.batch.tc = 2 * p.mapping.tc;
    let diags = check_layer_plan(&p, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::AdderTreePort);
}

#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "FXC03"))]
fn fxc03_dynamic_widened_batch_trips_the_port_guard() {
    let u = deep_unroll();
    let mapping = Mapping::new(u);
    let mut ports = RowPorts::new(u.rows_used());
    let mut output = 0usize;
    for dm in 0..u.tm {
        for dr in 0..u.tr {
            for dc in 0..2 * u.tc {
                ports.claim(mapping.output_row(dm, dr, dc), output);
                output += 1;
            }
        }
    }
}

// --------------------------------------------------- FXC04 FSM bounds

#[test]
fn fxc04_static_one_extra_window_escapes_the_slice() {
    // Corruption: one extra window per row pushes the FSM's maximum
    // address from slice−1 to slice.
    let mut p = plan(&deep_layer(), deep_unroll());
    p.neuron_fsm.config.windows_per_row += 1;
    let diags = check_layer_plan(&p, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::FsmBounds);
}

#[test]
#[should_panic(expected = "address out of range")]
fn fxc04_dynamic_one_extra_window_reads_past_the_slice() {
    let p = plan(&deep_layer(), deep_unroll());
    let mut cfg = p.neuron_fsm.config;
    cfg.windows_per_row += 1;
    let mut store = LocalStore::new(p.slice_words);
    let mut fsm = AddrFsm::new(cfg);
    for _ in 0..cfg.windows_per_row * cfg.window {
        store.read(fsm.next_addr());
    }
}

// ------------------------------------------------- FXC05 ISA protocol

#[test]
fn fxc05_static_dropped_halt_breaks_the_stream_protocol() {
    let net = workloads::lenet5();
    let compiled = Compiler::new(16).compile(&net);
    let mut instrs = compiled.instrs().to_vec();
    assert_eq!(instrs.pop(), Some(flexflow::isa::Instr::Halt));
    let corrupted = Program::from_parts("LeNet-5", 16, compiled.choices().to_vec(), instrs);
    let diags = check(&corrupted, &net, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::IsaProtocol);
}

#[test]
fn fxc05_dynamic_decoder_rejects_the_haltless_stream() {
    let net = workloads::lenet5();
    let compiled = Compiler::new(16).compile(&net);
    let mut words = compiled.encode();
    words.pop(); // drop the Halt word
    assert!(Decoder::new(16).decode_stream(&words).is_err());
}

// ------------------------------------------------ FXC06 unroll bounds

#[test]
fn fxc06_static_over_occupied_engine_is_rejected_at_derive() {
    // Corruption: 32 PE rows demanded of a 16x16 engine.
    let u = Unroll::new(8, 1, 2, 2, 1, 1);
    let err = LayerPlan::derive(&deep_layer(), 0, u, u, 16, STORE_WORDS).unwrap_err();
    assert_eq!(err.rule, RuleId::UnrollBounds);
    assert_eq!(err.severity, Severity::Error);
}

#[test]
#[should_panic(expected = "unrolling exceeds")]
fn fxc06_dynamic_over_occupied_engine_panics_the_scheduler() {
    let u = Unroll::new(8, 1, 2, 2, 1, 1);
    analytic::schedule(&deep_layer(), u, 16, STORE_WORDS);
}

// ------------------------------------------------ FXC07 bank conflicts

#[test]
fn fxc07_static_halved_banks_cannot_stream_the_iadp_layout() {
    // Corruption: 8-bank buffers under a 12-column IADP layout.
    let mut arch = ArchParams::flexflow_paper();
    arch.buffer_banks = 8;
    let diags = check_layer_plan(&plan(&wide_layer(), wide_unroll()), &arch);
    assert_only(&diags, RuleId::BankConflict);
}

#[test]
#[should_panic(expected = "fit the physical banks")]
fn fxc07_dynamic_halved_banks_panic_the_iadp_layout() {
    let u = wide_unroll();
    flexflow::buffers::NeuronLayout::new(u.tn, u.ti, u.tj, 8);
}

// -------------------------------------------- FXC08 utilization sanity

#[test]
fn fxc08_static_tampered_mac_count_breaks_the_identities() {
    let mut p = plan(&wide_layer(), wide_unroll());
    p.schedule.macs += 1;
    let diags = check_layer_plan(&p, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::UtilSanity);
}

#[test]
fn fxc08_dynamic_functional_macs_diverge_from_the_tampered_claim() {
    // The cycle-stepped array measures the true MAC count; the engine's
    // schedule-vs-trace asserts would reject the tampered claim.
    let layer = wide_layer();
    let u = wide_unroll();
    let tampered = plan(&layer, u).schedule.macs + 1;
    let (input, kernels) = reference::random_layer_data(&layer, 7);
    let report = PeArray::new(16).run_layer(&layer, u, &input, &kernels);
    assert_eq!(report.macs, layer.macs());
    assert_ne!(report.macs, tampered);
}

// ------------------------------------------- FXC10 cycle exactness

/// Engine-recorded per-layer ledgers of `net` on a `d×d` FlexFlow.
fn recorded_flexflow(net: &Network, d: usize) -> Vec<LossLedger> {
    let rec = Arc::new(CycleRecorder::new());
    let mut engine = FlexFlow::new(d);
    engine.attach_sink(SinkHandle::new(rec.clone()));
    let _ = engine.run_network(net);
    ledgers(&rec.take())
}

#[test]
fn fxc10_static_tampered_prediction_trips_cycle_exactness() {
    // Corruption: the symbolic evaluator's first claim is off by one
    // cycle — the weakest possible divergence the rule must still see.
    let net = workloads::lenet5();
    let geom = EngineGeometry::FlexFlow {
        d: 16,
        store_words: STORE_WORDS,
    };
    let mut predicted = predicted_ledgers(&geom, &net);
    predicted[0].total_cycles += 1;
    let diags = check_cycle_exactness_all(&predicted, &recorded_flexflow(&net, 16));
    assert_only(&diags, RuleId::CycleExactness);
}

#[test]
fn fxc10_dynamic_tampered_recording_diverges_from_the_proof() {
    // The mirror corruption: the engine-side recording gains a stall
    // span the hardware never executed; the untouched prediction
    // rejects it (both the cycle total and the fill bucket move).
    let net = workloads::lenet5();
    let geom = EngineGeometry::FlexFlow {
        d: 16,
        store_words: STORE_WORDS,
    };
    let predicted = predicted_ledgers(&geom, &net);
    let rec = Arc::new(CycleRecorder::new());
    let mut engine = FlexFlow::new(16);
    engine.attach_sink(SinkHandle::new(rec.clone()));
    let _ = engine.run_network(&net);
    let mut timelines = rec.take();
    let end = timelines[0]
        .events
        .iter()
        .map(|e| e.start_cycle + e.cycles)
        .max()
        .unwrap();
    timelines[0].events.push(CycleEvent::new(
        CycleEventKind::Stall(StallCause::PipelineFill),
        end,
        4,
        0,
    ));
    let diags = check_cycle_exactness_all(&predicted, &ledgers(&timelines));
    assert_only(&diags, RuleId::CycleExactness);
}

#[test]
fn fxc10_holds_on_all_table1_pairs() {
    // The prover's clean sweep: on every (workload, architecture) pair
    // the closed-form prediction equals the recorded run exactly.
    for net in workloads::all() {
        let suite = ArchParams::paper_suite(net.name());
        for idx in 0..ARCH_NAMES.len() {
            let geom = EngineGeometry::from_arch(&suite[idx], 16);
            let predicted = predicted_ledgers(&geom, &net);
            let rec = Arc::new(CycleRecorder::new());
            let mut acc = ArchSet::builder()
                .sink(SinkHandle::new(rec.clone()))
                .build_one(&net, idx);
            let _ = acc.run_network(&net);
            let diags = check_cycle_exactness_all(&predicted, &ledgers(&rec.take()));
            assert!(
                diags.is_empty(),
                "{}/{}:\n{}",
                net.name(),
                ARCH_NAMES[idx],
                render(&diags)
            );
        }
    }
}

// --------------------------------------------- FXC11 ISA coverage

/// `net`'s compiled program with its first `Configure` duplicated in
/// place: the first copy's symbolic state dies unread (shadowed).
fn shadowed_program(net: &Network) -> (Program, usize) {
    let program = Compiler::new(16).compile(net);
    let mut instrs = program.instrs().to_vec();
    let pos = instrs
        .iter()
        .position(|i| matches!(i, flexflow::isa::Instr::Configure { .. }))
        .unwrap();
    let dup = instrs[pos];
    instrs.insert(pos + 1, dup);
    (
        Program::from_parts(
            program.name().to_owned(),
            program.d(),
            program.choices().to_vec(),
            instrs,
        ),
        pos,
    )
}

#[test]
fn fxc11_static_shadowed_configure_trips_isa_coverage() {
    // Corruption: a Configure overwritten before any Conv observes it.
    // FXC05's protocol/dead-code checks cannot see it (the stream still
    // round-trips and every instruction is reachable); only the
    // symbolic liveness walk does — the full check() reports exactly
    // the coverage rule.
    let net = workloads::lenet5();
    let (mutated, pos) = shadowed_program(&net);
    let diags = check(&mutated, &net, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::IsaCoverage);
    assert_eq!(diags[0].location.pc, Some(pos));
}

#[test]
fn fxc11_dynamic_shadowed_claim_diverges_from_the_overriding_run() {
    // Why shadowing matters at runtime: the engine executes the *last*
    // Configure's factors, so a proof timed from the shadowed claim's
    // factors no longer matches the hardware. Model the shadowed claim
    // as a fully serial unroll — the engine (running the compiler's
    // real choice) finishes in fewer cycles than the dead claim
    // predicts, and the exactness check rejects the pairing.
    let net = workloads::lenet5();
    let geom = EngineGeometry::FlexFlow {
        d: 16,
        store_words: STORE_WORDS,
    };
    let first = net.conv_layers().next().unwrap();
    let shadowed_claim = LossLedger::from_timeline(&flexcheck::predict_conv(
        &geom,
        first,
        Some(Unroll::new(1, 1, 1, 1, 1, 1)),
    ));
    let recorded = recorded_flexflow(&net, 16);
    let diags = flexcheck::check_cycle_exactness(&shadowed_claim, &recorded[0]);
    assert_only(&diags, RuleId::CycleExactness);
}

// ------------------------------------- FXC12 interference freedom

#[test]
fn fxc12_static_widened_walk_breaks_interval_disjointness() {
    // Same corruption family as FXC02, caught by the O(1) interval
    // form: the walk's bus interval escapes its residue period.
    let mut p = plan(&wide_layer(), wide_unroll());
    p.walk.tj += 1;
    let diags = check_interference(&p, &ArchParams::flexflow_paper());
    assert_only(&diags, RuleId::InterferenceFreedom);
    assert!(
        diags[0].message.contains("bus access intervals"),
        "{}",
        diags[0].message
    );
}

#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "FXC02"))]
fn fxc12_dynamic_widened_walk_collides_on_a_claimed_bus() {
    // The interval overlap FXC12 proves statically is a literal bus
    // collision at runtime — on the wide 12-column configuration, a
    // distinct instance from the FXC02 harness's deep one.
    let u = wide_unroll();
    let mapping = Mapping::new(u);
    let mut claims = StepClaims::new(u.cols_used());
    for dn in 0..u.tn {
        for di in 0..u.ti {
            for dj in 0..u.tj + 1 {
                claims.claim(mapping.operand_col(dn, 0, 0, di, dj, 1, 1));
            }
        }
    }
}
