//! Integration tests for the `flexsim-pool` scheduler and its
//! experiment-layer integration: determinism across `--jobs` levels,
//! panic isolation at the pool and the suite level, and a property
//! sweep over random task batches (no lost or duplicated results).

use flexsim_experiments::{run_suite, SuiteConfig, REGISTRY};
use flexsim_pool::{Outcome, Pool, Task};
use flexsim_testkit::prop::{self, vec_of};
use flexsim_testkit::rng::SplitMix64;
use flexsim_testkit::{prop_assert, prop_assert_eq};

/// Renders the full sweep (every in-sweep experiment) to one JSON blob.
fn sweep_json(jobs: usize) -> String {
    let experiments: Vec<_> = REGISTRY.iter().filter(|e| e.in_sweep()).copied().collect();
    let report = run_suite(&experiments, &SuiteConfig { jobs, trace: false });
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    let blobs: Vec<String> = report
        .results
        .iter()
        .map(flexsim_experiments::ExperimentResult::to_json)
        .collect();
    format!("[{}]", blobs.join(",\n"))
}

#[test]
fn full_sweep_is_byte_identical_across_jobs_levels() {
    // The tentpole guarantee: `--jobs N` output is byte-for-byte the
    // serial output, for every N.
    let serial = sweep_json(1);
    for jobs in [2, 8] {
        assert_eq!(
            serial,
            sweep_json(jobs),
            "jobs={jobs} diverged from serial output"
        );
    }
}

#[test]
fn random_task_batches_are_deterministic_across_jobs_and_seeds() {
    // Three seeded random batches, each with uneven per-task work so
    // completion order genuinely scrambles under parallelism; result
    // order must stay submission order at every jobs level.
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED_5EED_5EED] {
        let mut rng = SplitMix64::new(seed);
        let inputs: Vec<(usize, u64)> = (0..64).map(|i| (i, rng.gen_range(0u64..=2_000))).collect();
        let expect: Vec<u64> = inputs.iter().map(|&(i, spin)| spin_sum(i, spin)).collect();
        for jobs in [1usize, 2, 8] {
            let pool = Pool::new(jobs);
            let tasks: Vec<Task<u64>> = inputs
                .iter()
                .map(|&(i, spin)| Task::new(format!("t{i}"), move || spin_sum(i, spin)))
                .collect();
            let got: Vec<u64> = pool
                .run(tasks)
                .into_iter()
                .map(|o| o.done().expect("no task panics here"))
                .collect();
            assert_eq!(got, expect, "seed {seed:#x} jobs {jobs}");
        }
    }
}

/// A tiny spin of data-dependent work (keeps the optimizer honest
/// without timers).
fn spin_sum(i: usize, spin: u64) -> u64 {
    let mut acc = i as u64;
    for k in 0..spin {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

#[test]
fn panicking_tasks_are_isolated_and_labelled() {
    for jobs in [1usize, 4] {
        let pool = Pool::new(jobs);
        let tasks: Vec<Task<usize>> = (0..16)
            .map(|i| {
                Task::new(format!("task{i}"), move || {
                    assert!(i % 5 != 3, "unlucky {i}");
                    i * 2
                })
            })
            .collect();
        let outcomes = pool.run(tasks);
        assert_eq!(outcomes.len(), 16);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            if i % 5 == 3 {
                let failure = outcome.failure().expect("task panicked").clone();
                assert_eq!(failure.label, format!("task{i}"));
                assert!(failure.message.contains(&format!("unlucky {i}")));
            } else {
                assert_eq!(outcome.done(), Some(i * 2), "jobs={jobs} task{i}");
            }
        }
    }
}

#[test]
fn suite_survives_a_poisoned_experiment() {
    use flexsim_experiments::{Experiment, ExperimentCtx, ExperimentResult, Table};

    struct Fine;
    impl Experiment for Fine {
        fn id(&self) -> &'static str {
            "fine"
        }
        fn title(&self) -> &'static str {
            "completes"
        }
        fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
            let vals = ctx.map((0..8).collect(), |i| format!("v{i}"), |_t, i: usize| i + 1);
            let mut table = Table::new(["sum"]);
            table.push_row([vals.iter().sum::<usize>().to_string()]);
            ExperimentResult {
                id: "fine".into(),
                title: "completes".into(),
                notes: vec![],
                table,
            }
        }
    }
    struct Poisoned;
    impl Experiment for Poisoned {
        fn id(&self) -> &'static str {
            "poisoned"
        }
        fn title(&self) -> &'static str {
            "panics in a task"
        }
        fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
            ctx.map(
                vec![0usize, 1, 2],
                |i| format!("p{i}"),
                |_t, i: usize| {
                    assert!(i != 1, "boom at {i}");
                    i
                },
            );
            unreachable!("the map above must panic")
        }
    }

    let report = run_suite(
        &[&Fine, &Poisoned, &Fine],
        &SuiteConfig {
            jobs: 4,
            trace: false,
        },
    );
    assert_eq!(report.results.len(), 3);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].id, "poisoned");
    assert!(report.failures[0].message.contains("boom at 1"));
    assert!(report.failures[0].message.contains("poisoned/p1"));
    // Healthy neighbours are untouched, the failed one is a placeholder.
    assert_eq!(report.results[0].table.rows()[0][0], "36");
    assert_eq!(report.results[2].table.rows()[0][0], "36");
    assert!(report.results[1].notes[0].starts_with("FAILED:"));
}

#[test]
fn random_batches_lose_and_duplicate_nothing() {
    // 1000 random (batch, jobs) shapes through the pool: every result
    // slot must hold exactly its own task's output — nothing lost,
    // nothing duplicated, nothing reordered.
    prop::check(
        "pool_preserves_batches",
        1000,
        (vec_of(0u32..=50_000, 0..=48), 1usize..=9),
        |case| {
            let (values, jobs) = case.clone();
            let pool = Pool::new(jobs);
            let tasks: Vec<Task<(usize, u32)>> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| Task::new(format!("n{i}"), move || (i, v)))
                .collect();
            let outcomes = pool.run(tasks);
            prop_assert_eq!(outcomes.len(), values.len());
            for (i, outcome) in outcomes.into_iter().enumerate() {
                let (slot, value) = match outcome {
                    Outcome::Done(pair) => pair,
                    Outcome::Panicked(f) => return Err(format!("unexpected panic: {f}")),
                };
                prop_assert_eq!(slot, i, "result landed in the wrong slot");
                prop_assert!(
                    value == values[i],
                    "slot {i}: got {value}, expected {}",
                    values[i]
                );
            }
            Ok(())
        },
    );
}
