//! Property suite for exact cycle-loss attribution (flexcheck FXC09)
//! and the `flexsim profile` report.
//!
//! Three layers of guarantees:
//!
//! 1. **Exactness identity** — for every (workload, architecture) pair
//!    of the Table 1 sweep, every layer's ledger balances:
//!    `busy_pe_cycles + Σ attributed_lost == total_cycles × pe_count`,
//!    with busy PE-cycles equal to the analytic MAC count. No
//!    "unattributed" bucket exists to hide an emitter bug in.
//! 2. **Taxonomy reachability** — every [`StallCause`] variant is
//!    actually produced by some simulator on some Table 1 layer; a
//!    cause that nothing can emit is dead weight in the taxonomy.
//! 3. **Mutation coverage** — corrupting a timeline (gap, overlap)
//!    trips exactly flexcheck rule FXC09, proving the gate detects the
//!    corruption classes it claims to.

use flexsim_experiments::arches::{ArchSet, ARCH_NAMES};
use flexsim_model::registry::WorkloadRegistry;
use flexsim_model::workloads;
use flexsim_obs::attrib::{ledgers, LossLedger, StallCause};
use flexsim_obs::cycles::{
    CycleEvent, CycleEventKind, CycleRecorder, LayerCtx, LayerTimeline, SinkHandle,
};
use flexsim_obs::metrics::Registry;
use flexsim_testkit::json::Json;
use std::collections::HashSet;
use std::sync::Arc;

/// Runs `net` on the architecture at `idx`, returning the run summary
/// and one ledger per simulated layer.
fn run_with_ledgers(
    net: &flexsim_model::Network,
    idx: usize,
) -> (flexsim_arch::RunSummary, Vec<LossLedger>) {
    let rec = Arc::new(CycleRecorder::new());
    let mut acc = ArchSet::builder()
        .sink(SinkHandle::new(rec.clone()))
        .build_one(net, idx);
    let summary = acc.run_network(net);
    (summary, ledgers(&rec.take()))
}

#[test]
fn exactness_identity_holds_for_every_workload_and_arch() {
    for net in workloads::all() {
        for (idx, arch) in ARCH_NAMES.iter().enumerate() {
            let (summary, layer_ledgers) = run_with_ledgers(&net, idx);
            assert_eq!(
                layer_ledgers.len(),
                summary.layers.len(),
                "{}/{arch}: one timeline per layer",
                net.name()
            );
            for (lr, ledger) in summary.layers.iter().zip(&layer_ledgers) {
                assert_eq!(lr.layer, ledger.layer, "{}/{arch}", net.name());
                assert!(
                    ledger.is_exact(),
                    "{}/{arch}/{}: busy {} + lost {} != {} x {} (unattributed {})",
                    net.name(),
                    lr.layer,
                    ledger.busy_pe_cycles,
                    ledger.attributed_lost(),
                    ledger.total_cycles,
                    ledger.pe_count,
                    ledger.unattributed()
                );
                // Busy PE-cycles are exactly the layer's useful MACs.
                assert_eq!(
                    ledger.busy_pe_cycles,
                    lr.macs,
                    "{}/{arch}/{}",
                    net.name(),
                    lr.layer
                );
                // The FXC09 gate agrees with is_exact().
                assert!(flexcheck::check_ledger(ledger).is_empty());
            }
        }
    }
}

#[test]
fn every_stall_cause_is_reachable_on_the_table1_sweep() {
    let mut seen: HashSet<&'static str> = HashSet::new();
    for net in workloads::all() {
        for idx in 0..ARCH_NAMES.len() {
            let (_, layer_ledgers) = run_with_ledgers(&net, idx);
            for ledger in &layer_ledgers {
                for cause in StallCause::ALL {
                    if ledger.lost(cause) > 0 {
                        seen.insert(cause.name());
                    }
                }
            }
        }
    }
    let all: HashSet<&'static str> = StallCause::ALL.iter().map(|c| c.name()).collect();
    let missing: Vec<_> = all.difference(&seen).collect();
    assert!(
        missing.is_empty(),
        "unreachable stall causes (dead taxonomy variants): {missing:?}"
    );
}

/// A clean synthetic timeline: fill stall, busy pass, spill stall.
fn clean_timeline() -> LayerTimeline {
    LayerTimeline {
        ctx: LayerCtx::new("MutArch", "C1", 4),
        events: vec![
            CycleEvent::new(CycleEventKind::Stall(StallCause::PipelineFill), 0, 8, 0),
            CycleEvent::new(
                CycleEventKind::Pass(StallCause::MappingResidueIdle),
                8,
                10,
                30,
            ),
            CycleEvent::new(
                CycleEventKind::Stall(StallCause::PsumSpillRoundTrip),
                18,
                2,
                0,
            ),
        ],
    }
}

#[test]
fn mutation_gap_and_overlap_trip_exactly_fxc09() {
    // The clean timeline passes the gate.
    let clean = LossLedger::from_timeline(&clean_timeline());
    assert!(flexcheck::check_ledger(&clean).is_empty());

    // Mutation 1: a gap — the pass starts 3 cycles late.
    let mut gapped = clean_timeline();
    gapped.events[1].start_cycle += 3;
    let ledger = LossLedger::from_timeline(&gapped);
    let diags = flexcheck::check_ledger(&ledger);
    assert!(!diags.is_empty(), "gap not caught");
    for d in &diags {
        assert_eq!(d.rule, flexcheck::RuleId::AttributionExactness, "{d}");
        assert_eq!(d.severity, flexcheck::Severity::Error, "{d}");
    }

    // Mutation 2: an overlap — the spill starts inside the pass.
    let mut overlapped = clean_timeline();
    overlapped.events[2].start_cycle -= 2;
    let ledger = LossLedger::from_timeline(&overlapped);
    let diags = flexcheck::check_ledger(&ledger);
    assert!(!diags.is_empty(), "overlap not caught");
    assert!(diags
        .iter()
        .all(|d| d.rule == flexcheck::RuleId::AttributionExactness));

    // check_ledgers aggregates over layers: one bad layer taints the
    // batch, the clean one contributes nothing.
    let batch = [
        LossLedger::from_timeline(&clean_timeline()),
        LossLedger::from_timeline(&gapped),
    ];
    assert_eq!(flexcheck::check_ledgers(&batch).len(), diags.len());
}

#[test]
fn every_cause_flows_from_event_to_ledger_to_metrics() {
    // One synthetic event per cause: the cause must survive the
    // event → ledger → metrics-registry pipeline unmerged.
    for cause in StallCause::ALL {
        let tl = LayerTimeline {
            ctx: LayerCtx::new("CauseArch", "L", 2),
            events: vec![
                CycleEvent::new(CycleEventKind::Stall(cause), 0, 5, 0),
                CycleEvent::new(CycleEventKind::Pass(cause), 5, 5, 10),
            ],
        };
        let ledger = LossLedger::from_timeline(&tl);
        assert!(ledger.is_exact());
        // 5×2 stall + (5×2−10) pass remainder, all on this cause.
        assert_eq!(ledger.lost(cause), 10);
        assert_eq!(ledger.attributed_lost(), 10);

        let registry = Registry::new();
        ledger.mirror(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.total(
                "sim_lost_pe_cycles",
                &[("arch", "CauseArch"), ("cause", cause.name())]
            ),
            10,
            "{}",
            cause.name()
        );
        assert_eq!(
            snap.total("sim_busy_pe_cycles", &[("arch", "CauseArch")]),
            10
        );
    }
}

#[test]
fn mirrored_metrics_agree_with_ledgers_for_a_real_run() {
    // The satellite invariant: `--metrics` counters mirrored from
    // ledgers must reproduce the ledgers' busy/lost split exactly.
    let net = workloads::alexnet();
    for idx in 0..ARCH_NAMES.len() {
        let (_, layer_ledgers) = run_with_ledgers(&net, idx);
        let registry = Registry::new();
        let mut busy = 0u64;
        let mut lost = [0u64; StallCause::COUNT];
        for ledger in &layer_ledgers {
            ledger.mirror(&registry);
            busy += ledger.busy_pe_cycles;
            for cause in StallCause::ALL {
                lost[cause.index()] += ledger.lost(cause);
            }
        }
        let arch = layer_ledgers[0].arch.clone();
        let snap = registry.snapshot();
        assert_eq!(
            snap.total("sim_busy_pe_cycles", &[("arch", arch.as_str())]),
            busy,
            "{arch}"
        );
        for cause in StallCause::ALL {
            assert_eq!(
                snap.total(
                    "sim_lost_pe_cycles",
                    &[("arch", arch.as_str()), ("cause", cause.name())]
                ),
                lost[cause.index()],
                "{arch}/{}",
                cause.name()
            );
        }
    }
}

#[test]
fn profile_report_json_parses_and_balances() {
    // What the ci.sh smoke stage asserts, hermetically: the profile
    // report's JSON is well-formed, covers every architecture, and is
    // produced only after every ledger passed the FXC09 gate (the run
    // panics otherwise).
    let ctx = flexsim_experiments::ExperimentCtx::serial("profile");
    let net = WorkloadRegistry::new().resolve("lenet-5").unwrap();
    let result = flexsim_experiments::profile::run_workloads(&ctx, &[net]);
    let parsed = Json::parse(&result.to_json()).expect("profile JSON parses");
    let text = parsed.pretty();
    for arch in ARCH_NAMES {
        assert!(text.contains(arch), "missing {arch}");
    }
    assert!(text.contains("(all)"), "missing aggregate rows");
}
