//! Spatial observability integration: the FXC13 spatial-exactness
//! gate must hold on every shipped workload × architecture pair, the
//! mutation harness must prove the gate has teeth (a tampered cell or
//! a dropped bank sample trips exactly FXC13), and the `flexsim
//! heatmap` CLI must be byte-identical at every `--jobs` level.

use flexcheck::{Diagnostic, RuleId, Severity};
use flexsim_experiments::arches::ARCH_NAMES;
use flexsim_experiments::heatmap;
use flexsim_model::{workloads, WorkloadRegistry};
use std::path::PathBuf;
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Asserts that every diagnostic in `diags` is an FXC13 error — the
/// mutation harness contract: a spatial corruption trips exactly the
/// spatial rule, never a neighbor.
fn assert_only_fxc13(diags: &[Diagnostic], tag: &str) {
    assert!(!diags.is_empty(), "{tag}: corruption went undetected");
    for d in diags {
        assert_eq!(d.rule, RuleId::SpatialExactness, "{tag}: {d:?}");
        assert_eq!(d.severity, Severity::Error, "{tag}: {d:?}");
    }
}

/// ISSUE acceptance: FXC13 holds on all six Table 1 workloads across
/// all four architectures — every spatial record reproduces its loss
/// ledger exactly, with full bank coverage.
#[test]
fn fxc13_holds_on_every_builtin_workload_and_architecture() {
    for net in workloads::all() {
        for idx in 0..ARCH_NAMES.len() {
            let heat = heatmap::simulate(&net, idx);
            let tag = format!("{}/{}", heat.arch, net.name());
            assert!(
                heat.diags.is_empty(),
                "{tag}: FXC13 violated\n{}",
                flexcheck::render(&heat.diags)
            );
            assert!(!heat.spatials.is_empty(), "{tag}: no spatial records");
            assert_eq!(
                heat.spatials.len(),
                heat.ledgers.len(),
                "{tag}: record/ledger count mismatch"
            );
            for sp in &heat.spatials {
                assert_eq!(sp.pe_count(), heat.pe_count, "{tag}: geometry");
                assert!(!sp.banks.is_empty(), "{tag}: no bank watermarks");
            }
        }
    }
}

/// ISSUE acceptance: the gate extends to user-supplied `.ffnet` nets —
/// the three shipped fixtures stay FXC13-clean on all four
/// architectures.
#[test]
fn fxc13_holds_on_the_ffnet_fixtures() {
    let reg = WorkloadRegistry::new().with_dir(repo_path("examples"));
    for name in ["dilated", "mobilenet_block", "resnet_block"] {
        let net = reg.resolve(name).expect("fixture parses");
        for idx in 0..ARCH_NAMES.len() {
            let heat = heatmap::simulate(&net, idx);
            assert!(
                heat.diags.is_empty(),
                "{}/{name}: FXC13 violated\n{}",
                heat.arch,
                flexcheck::render(&heat.diags)
            );
        }
    }
}

/// Mutation: moving one busy PE-cycle into the wrong cell breaks the
/// busy-plane identity and trips exactly FXC13.
#[test]
fn a_tampered_busy_cell_trips_exactly_fxc13() {
    let net = workloads::lenet5();
    let mut heat = heatmap::simulate(&net, ARCH_NAMES.len() - 1);
    assert!(heat.diags.is_empty(), "clean run must pass");
    heat.spatials[0].busy[0] += 1;
    let diags = flexcheck::check_spatials(&heat.spatials, &heat.ledgers);
    assert_only_fxc13(&diags, "tampered busy cell");
    assert!(
        diags.iter().any(|d| d.message.contains("busy plane")),
        "should name the busy plane:\n{}",
        flexcheck::render(&diags)
    );
}

/// Mutation: shifting one lost PE-cycle between causes keeps the
/// totals balanced but breaks two per-cause identities — FXC13 checks
/// each cause independently, so it still trips.
#[test]
fn a_misattributed_loss_cell_trips_exactly_fxc13() {
    let net = workloads::lenet5();
    let mut heat = heatmap::simulate(&net, ARCH_NAMES.len() - 1);
    assert!(heat.diags.is_empty(), "clean run must pass");
    let cell = heat.spatials[0]
        .lost
        .iter_mut()
        .find(|cell| cell.iter().any(|&c| c > 0))
        .expect("some cell lost cycles");
    let from = cell.iter().position(|&c| c > 0).expect("non-zero cause");
    let to = (from + 1) % cell.len();
    cell[from] -= 1;
    cell[to] += 1;
    let diags = flexcheck::check_spatials(&heat.spatials, &heat.ledgers);
    assert_only_fxc13(&diags, "misattributed loss");
    assert_eq!(diags.len(), 2, "one violation per perturbed cause");
}

/// Mutation: a bank watermark that covers less than the layer's full
/// duration is a hole in the occupancy story and trips exactly FXC13.
#[test]
fn a_dropped_bank_sample_trips_exactly_fxc13() {
    let net = workloads::lenet5();
    let mut heat = heatmap::simulate(&net, ARCH_NAMES.len() - 1);
    assert!(heat.diags.is_empty(), "clean run must pass");
    let bank = &mut heat.spatials[0].banks[0];
    assert!(bank.sampled_cycles > 0, "bank must have samples to drop");
    bank.sampled_cycles -= 1;
    let diags = flexcheck::check_spatials(&heat.spatials, &heat.ledgers);
    assert_only_fxc13(&diags, "dropped bank sample");
    assert!(
        diags.iter().any(|d| d.message.contains("dropped sample")),
        "should name the dropped sample:\n{}",
        flexcheck::render(&diags)
    );
}

/// Mutation: a spatial record nobody's ledger vouches for is itself a
/// violation.
#[test]
fn an_unpaired_spatial_record_trips_exactly_fxc13() {
    let net = workloads::lenet5();
    let heat = heatmap::simulate(&net, ARCH_NAMES.len() - 1);
    let diags = flexcheck::check_spatials(&heat.spatials, &[]);
    assert_only_fxc13(&diags, "unpaired record");
    assert_eq!(diags.len(), heat.spatials.len(), "one violation per record");
}

/// ISSUE acceptance: `flexsim heatmap` output — text, `--json`, and
/// `--svg` — is byte-identical across `--jobs 1/2/8`, and the text
/// report carries the grep-able FXC13 verdict CI keys on.
#[test]
fn heatmap_cli_is_byte_identical_across_jobs_levels() {
    let run = |extra: &[&str], jobs: &str| {
        let mut args = vec!["--jobs", jobs];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["heatmap", "lenet"]);
        let out = Command::new(env!("CARGO_BIN_EXE_flexsim"))
            .args(&args)
            .output()
            .expect("flexsim runs");
        assert!(out.status.success(), "jobs={jobs} {extra:?} failed");
        String::from_utf8(out.stdout).expect("utf-8 output")
    };
    for extra in [&[][..], &["--json"][..], &["--svg"][..]] {
        let serial = run(extra, "1");
        for jobs in ["2", "8"] {
            assert_eq!(
                serial,
                run(extra, jobs),
                "{extra:?}: --jobs {jobs} diverged from serial"
            );
        }
        assert!(!serial.is_empty(), "{extra:?}: empty report");
    }
    let text = run(&[], "2");
    for arch in ARCH_NAMES {
        assert!(
            text.contains(&format!("FXC13 spatial-exactness: ok (2 layers, {arch})")),
            "missing {arch} verdict:\n{text}"
        );
    }
}
