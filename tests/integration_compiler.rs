//! Compiler → ISA → engine integration.
//!
//! The Section 5 toolchain: the workload analyzer plans unrolling
//! factors, code generation emits the instruction stream, the decoder
//! ingests 64-bit words, and the engine executes them functionally.

use flexflow::isa::Instr;
use flexflow::{Compiler, FlexFlow};
use flexsim_model::{reference, workloads, ConvLayer};

#[test]
fn every_workload_compiles_with_feasible_plans() {
    for net in flexsim_model::workloads::all() {
        let program = Compiler::new(16).compile(&net);
        assert_eq!(program.choices().len(), net.conv_layers().count());
        for (layer, choice) in net.conv_layers().zip(program.choices()) {
            assert!(
                choice.unroll.cols_used() <= 16 && choice.unroll.rows_used() <= 16,
                "{}/{}: infeasible plan {}",
                net.name(),
                layer.name(),
                choice.unroll
            );
            assert_eq!(choice.unroll, choice.unroll.clamped_to(layer));
        }
        // The stream always terminates with Halt and round-trips the
        // binary encoding.
        assert_eq!(program.instrs().last(), Some(&Instr::Halt));
        for word in program.encode() {
            Instr::decode(word).expect("compiler emits decodable words");
        }
    }
}

#[test]
fn decoded_program_configures_the_planned_factors() {
    let net = workloads::lenet5();
    let program = Compiler::new(16).compile(&net);
    let mut configured = Vec::new();
    for word in program.encode() {
        if let Instr::Configure { unroll, .. } = Instr::decode(word).unwrap() {
            configured.push(unroll);
        }
    }
    let planned: Vec<_> = program.choices().iter().map(|c| c.unroll).collect();
    assert_eq!(configured, planned);
}

#[test]
fn lenet5_end_to_end_execution_is_bit_exact() {
    // LeNet-5's printed chain is exactly consistent (C1 32→28, pool →14,
    // C3 →10), so the whole network runs functionally through the
    // engine: conv on the PE array, pooling on the pooling unit,
    // ping-pong buffer swaps in between.
    let net = workloads::lenet5();
    let program = Compiler::new(16).compile(&net);
    let mut ff = FlexFlow::paper_config();

    let convs: Vec<&ConvLayer> = net.conv_layers().collect();
    let (input, k1) = reference::random_layer_data(convs[0], 555);
    let (_, k2) = reference::random_layer_data(convs[1], 556);
    let trace = ff.execute(&program, &net, input.clone(), &[k1.clone(), k2.clone()]);

    // Golden chain.
    let c1_out = reference::conv(convs[0], &input, &k1);
    let pooled = reference::pool(net.layers()[1].as_pool().unwrap(), &c1_out);
    let want = reference::conv(convs[1], &pooled, &k2);

    assert_eq!(trace.output, want);
    assert_eq!(trace.output.maps(), 16);
    assert_eq!(trace.output.rows(), 10);
    assert_eq!(trace.steps.len(), 3); // conv, pool, conv
}

#[test]
fn execution_cycles_match_per_layer_schedules() {
    let net = workloads::chained_toy();
    let program = Compiler::new(8).compile(&net);
    let mut ff = FlexFlow::new(8);
    let convs: Vec<&ConvLayer> = net.conv_layers().collect();
    let (input, k1) = reference::random_layer_data(convs[0], 42);
    let (_, k2) = reference::random_layer_data(convs[1], 43);
    let trace = ff.execute(&program, &net, input, &[k1, k2]);

    let mut want_conv_cycles = 0u64;
    for (layer, choice) in net.conv_layers().zip(program.choices()) {
        want_conv_cycles += flexflow::analytic::schedule_default(layer, choice.unroll, 8).cycles;
    }
    let got_conv_cycles: u64 = trace
        .steps
        .iter()
        .filter_map(|s| match s {
            flexflow::engine::StepTrace::Conv { cycles, .. } => Some(*cycles),
            _ => None,
        })
        .sum();
    assert_eq!(got_conv_cycles, want_conv_cycles);
    assert!(trace.cycles > got_conv_cycles); // pooling adds cycles
}

#[test]
fn disassembly_is_stable_and_complete() {
    let net = workloads::pv();
    let program = Compiler::new(16).compile(&net);
    let asm = program.disassemble();
    // 5 conv layers x (cfg + ldker + conv + swap) + 2 pools + halt.
    assert_eq!(asm.matches("conv ").count(), 5);
    assert_eq!(asm.matches("pool ").count(), 2);
    assert_eq!(asm.matches("cfg ").count(), 5);
    assert!(asm.ends_with("halt\n"));
}

#[test]
fn plans_differ_across_engine_scales() {
    // The compiler adapts factors to the engine: an 8x8 engine cannot
    // reuse a 32x32 plan.
    let net = workloads::lenet5();
    let small = Compiler::new(8).compile(&net);
    let large = Compiler::new(32).compile(&net);
    for (s, l) in small.choices().iter().zip(large.choices()) {
        assert!(s.unroll.rows_used() <= 8 && s.unroll.cols_used() <= 8);
        assert!(l.unroll.rows_used() <= 32 && l.unroll.cols_used() <= 32);
    }
    let small_par: usize = small
        .choices()
        .iter()
        .map(|c| c.unroll.parallel_macs())
        .sum();
    let large_par: usize = large
        .choices()
        .iter()
        .map(|c| c.unroll.parallel_macs())
        .sum();
    assert!(large_par > small_par);
}

#[test]
fn fc_layers_execute_as_1x1_convolutions() {
    use flexsim_model::{FcLayer, Network, PoolKind, PoolLayer};

    // conv (2@4x4) -> pool -> flatten (2*2*2 = 8) -> fc (8 -> 5)
    let net = Network::builder("with-fc")
        .conv(ConvLayer::new("C1", 2, 1, 4, 3))
        .pool(PoolLayer::new("P2", PoolKind::Max, 2, 2, 4))
        .layer(FcLayer::new("F3", 8, 5))
        .build();
    let program = Compiler::new(8).compile(&net);
    assert_eq!(program.choices().len(), 2); // conv + fc

    let c1 = net.conv_layer("C1").unwrap();
    let (input, k1) = reference::random_layer_data(c1, 91);
    let fc_view = FcLayer::new("F3", 8, 5).as_conv();
    let (_, kfc) = reference::random_layer_data(&fc_view, 92);

    let mut ff = FlexFlow::new(8);
    let trace = ff.execute(&program, &net, input.clone(), &[k1.clone(), kfc.clone()]);

    // Golden chain: conv -> pool -> flatten -> fc (dot products).
    let mid = reference::conv(c1, &input, &k1);
    let pooled = reference::pool(net.layers()[1].as_pool().unwrap(), &mid);
    let flat: Vec<flexsim_model::Fx16> = pooled.as_slice().to_vec();
    let mut weights: Vec<flexsim_model::Fx16> = Vec::new();
    for o in 0..5 {
        for i in 0..8 {
            weights.push(kfc[(o, i, 0, 0)]);
        }
    }
    let want = reference::fc(&FcLayer::new("F3", 8, 5), &flat, &weights);

    assert_eq!(trace.output.maps(), 5);
    for (o, &w) in want.iter().enumerate() {
        assert_eq!(trace.output[(o, 0, 0)], w, "fc output {o}");
    }
}

#[test]
fn lenet5_full_runs_end_to_end_with_classifier() {
    use flexsim_model::tensor::KernelSet;
    use flexsim_model::{Fx16, Layer};

    let net = workloads::lenet5_full();
    let program = Compiler::new(16).compile(&net);
    assert_eq!(program.choices().len(), 5); // 2 conv + 3 fc

    // Kernels for every Conv instruction, in network order.
    let mut kernels: Vec<KernelSet> = Vec::new();
    let mut seed = 700u64;
    for layer in net.layers() {
        match layer {
            Layer::Conv(c) => {
                let (_, k) = reference::random_layer_data(c, seed);
                kernels.push(k);
                seed += 1;
            }
            Layer::Fc(f) => {
                let view = f.as_conv();
                let (_, k) = reference::random_layer_data(&view, seed);
                kernels.push(k);
                seed += 1;
            }
            Layer::Pool(_) => {}
        }
    }

    let c1 = net.conv_layer("C1").unwrap();
    let (input, _) = reference::random_layer_data(c1, 699);
    let mut ff = FlexFlow::paper_config();
    let trace = ff.execute(&program, &net, input.clone(), &kernels);

    // Final classifier output: 10 logits.
    assert_eq!(trace.output.maps(), 10);
    assert_eq!((trace.output.rows(), trace.output.cols()), (1, 1));
    assert_eq!(trace.steps.len(), 7); // 2 conv + 2 pool + 3 fc

    // Verify against the golden chain.
    let mut current = input;
    let mut kidx = 0usize;
    for layer in net.layers() {
        current = match layer {
            Layer::Conv(c) => {
                let out = reference::conv(c, &current, &kernels[kidx]);
                kidx += 1;
                out
            }
            Layer::Pool(p) => reference::pool(p, &current),
            Layer::Fc(f) => {
                let flat: Vec<Fx16> = current.as_slice().to_vec();
                let mut weights: Vec<Fx16> = Vec::new();
                for o in 0..f.outputs() {
                    for i in 0..f.inputs() {
                        weights.push(kernels[kidx][(o, i, 0, 0)]);
                    }
                }
                kidx += 1;
                let out = reference::fc(f, &flat, &weights);
                flexsim_model::Tensor3::from_fn(f.outputs(), 1, 1, |m, _, _| out[m])
            }
        };
    }
    assert_eq!(trace.output, current);
}
