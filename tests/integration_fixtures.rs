//! Golden fixture tests: committed checksums of reference-convolution
//! outputs for one layer of each Table 1 workload.
//!
//! The checksums in `tests/fixtures/golden_checksums.txt` pin the exact
//! Q7.8 output bits of the golden reference on fixed seeds. The test
//! then requires all four architecture simulators to reproduce those
//! bits exactly. This catches two failure classes the property suites
//! can't: a *semantics drift* of the reference itself (e.g. a rounding
//! change in `Fx16`/`Acc32`, or a PRNG change altering the committed
//! operand streams), and any simulator regression on real workload
//! shapes.
//!
//! Regenerate after an intentional numerics change with:
//! `FLEXSIM_REGEN_FIXTURES=1 cargo test -q -p flexsim-experiments --test integration_fixtures`

use flexflow::array::PeArray;
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_dataflow::search::best_unroll;
use flexsim_model::{reference, workloads, ConvLayer, Network, Tensor3};
use flexsim_testkit::prop::fnv1a;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One pinned valid-convolution layer per Table 1 workload, with a
/// fixed operand seed. AlexNet's only unpadded CONV layer is C1 (its
/// later layers use same-padding, which the bit-exact functional
/// simulators don't model); everywhere else the last CONV layer is
/// both unpadded and small enough for the cycle-level simulators.
fn fixture_layers() -> Vec<(Network, &'static str, u64)> {
    vec![
        (workloads::pv(), "C7", 41),
        (workloads::fr(), "C3", 42),
        (workloads::lenet5(), "C3", 43),
        (workloads::hg(), "C3", 44),
        (workloads::alexnet(), "C1", 45),
        (workloads::vgg11(), "C12", 46),
    ]
}

fn fixtures_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden_checksums.txt")
}

/// FNV-1a over the output tensor's raw Q7.8 words (little-endian), plus
/// its shape — any single flipped output bit changes the digest.
fn tensor_checksum(t: &Tensor3) -> u64 {
    let mut bytes = Vec::with_capacity(t.maps() * t.rows() * t.cols() * 2 + 12);
    for &dim in &[t.maps(), t.rows(), t.cols()] {
        bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    }
    for m in 0..t.maps() {
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                bytes.extend_from_slice(&t[(m, r, c)].raw().to_le_bytes());
            }
        }
    }
    fnv1a(&bytes)
}

fn render_line(net: &str, layer: &ConvLayer, seed: u64, checksum: u64) -> String {
    format!(
        "{net} {name} seed={seed} m={m} out={s}x{s} checksum={checksum:016x}",
        name = layer.name(),
        m = layer.m(),
        s = layer.s(),
    )
}

fn golden_lines() -> Vec<(String, ConvLayer, Tensor3, u64)> {
    fixture_layers()
        .into_iter()
        .map(|(net, layer_name, seed)| {
            let layer = net
                .conv_layer(layer_name)
                .unwrap_or_else(|| panic!("{} has no layer {layer_name}", net.name()))
                .clone();
            assert!(
                layer.is_valid_convolution(),
                "fixture layers must be functional"
            );
            let (input, kernels) = reference::random_layer_data(&layer, seed);
            let want = reference::conv(&layer, &input, &kernels);
            let line = render_line(net.name(), &layer, seed, tensor_checksum(&want));
            (line, layer, want, seed)
        })
        .collect()
}

#[test]
fn reference_outputs_match_committed_checksums() {
    let golden = golden_lines();
    let path = fixtures_path();
    if std::env::var("FLEXSIM_REGEN_FIXTURES").is_ok() {
        let mut body = String::from(
            "# Golden reference-convolution checksums, one layer per Table 1 workload.\n\
             # Format: <workload> <layer> seed=<s> m=<maps> out=<RxC> checksum=<fnv1a64>\n\
             # Regenerate: FLEXSIM_REGEN_FIXTURES=1 cargo test -q -p flexsim-experiments --test integration_fixtures\n",
        );
        for (line, ..) in &golden {
            let _ = writeln!(body, "{line}");
        }
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, body).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with FLEXSIM_REGEN_FIXTURES=1",
            path.display()
        )
    });
    let committed: Vec<&str> = committed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .collect();
    assert_eq!(
        committed.len(),
        golden.len(),
        "fixture file entry count drifted; regenerate if intentional"
    );
    for ((line, ..), want) in golden.iter().zip(&committed) {
        assert_eq!(
            line, want,
            "golden reference output drifted from the committed fixture; \
             if the numerics change is intentional, regenerate the fixtures"
        );
    }
}

#[test]
fn all_simulators_reproduce_fixture_outputs_bit_exactly() {
    for (_, layer, want, seed) in golden_lines() {
        let (input, kernels) = reference::random_layer_data(&layer, seed);

        // The functional Systolic and 2D-Mapping models are stride-1
        // machines; AlexNet C1 (stride 4) is covered by the other two.
        if layer.stride() == 1 {
            assert_eq!(
                Systolic::dc_cnn().forward(&layer, &input, &kernels),
                want,
                "Systolic drifted on fixture {}",
                layer.name()
            );
            assert_eq!(
                Mapping2d::shidiannao().forward(&layer, &input, &kernels),
                want,
                "2D-Mapping drifted on fixture {}",
                layer.name()
            );
        }
        assert_eq!(
            TilingArray::diannao().forward(&layer, &input, &kernels),
            want,
            "Tiling drifted on fixture {}",
            layer.name()
        );
        let choice = best_unroll(&layer, 16, None);
        let mut array = PeArray::new(16);
        let report = array.run_layer(&layer, choice.unroll, &input, &kernels);
        assert_eq!(
            report.output,
            want,
            "FlexFlow drifted on fixture {}",
            layer.name()
        );
    }
}
