//! Observability integration: the metrics registry, the cycle-domain
//! trace, and the Chrome exporter must all agree with the simulators'
//! analytic results — and the `flexsim` binary must expose them.
//!
//! Tests that touch process-global observability state (the metrics
//! registry and the span recorder) serialize on a local mutex; the
//! file is its own test binary, so nothing else races.

use flexsim_experiments::arches::{self, ArchSet};
use flexsim_experiments::{find, run_suite, SuiteConfig};
use flexsim_obs::chrome::chrome_trace;
use flexsim_obs::{metrics, span};
use flexsim_testkit::json::Json;
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// ISSUE acceptance: the live metrics registry and the aggregate
/// `RunSummary` can never disagree — checked field-for-field on every
/// Table 1 workload × every architecture.
#[test]
fn metrics_registry_mirrors_run_summaries_exactly() {
    let _guard = serial();
    for net in flexsim_model::workloads::all() {
        for mut acc in ArchSet::builder().build(&net) {
            let before = metrics::global().snapshot();
            let summary = acc.run_network(&net);
            let grown = metrics::global().snapshot().diff(&before);
            let arch = [("arch", acc.name())];
            let tag = format!("{}/{}", acc.name(), net.name());
            assert_eq!(
                grown.total("sim_layers", &arch),
                summary.layers.len() as u64,
                "{tag}: sim_layers"
            );
            assert_eq!(
                grown.total("sim_cycles", &arch),
                summary.cycles(),
                "{tag}: sim_cycles"
            );
            for (field, want) in summary.events().named() {
                assert_eq!(
                    grown.total(&format!("sim_events_{field}"), &arch),
                    want,
                    "{tag}: sim_events_{field}"
                );
            }
            for (field, want) in summary.traffic().named() {
                assert_eq!(
                    grown.total(&format!("sim_traffic_{field}"), &arch),
                    want,
                    "{tag}: sim_traffic_{field}"
                );
            }
        }
    }
}

/// The Chrome export is parseable by the testkit parser, round-trips
/// byte-for-byte, and carries host spans plus experiment-tagged cycle
/// timelines for all four architectures — with the parallel (`jobs=2`)
/// trace path, not the deprecated global sink.
#[test]
fn chrome_trace_round_trips_with_all_architectures() {
    let _guard = serial();
    // `install_recorder` resets the buffer, so nothing a prior test
    // recorded leaks in.
    span::install_recorder();
    let report = run_suite(
        &[find("fig15").expect("fig15 exists")],
        &SuiteConfig {
            jobs: 2,
            trace: true,
        },
    );
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.results[0].id, "fig15");

    let spans = span::take_records();
    let timelines = report.timelines;
    assert!(!spans.is_empty(), "no host spans recorded");
    // fig15 = 6 workloads × 4 architectures, every layer traced.
    assert!(timelines.len() >= 24, "only {} timelines", timelines.len());
    // Every timeline is attributed to its owning experiment.
    for tl in &timelines {
        assert_eq!(tl.ctx.experiment, "fig15", "{}", tl.ctx.layer);
    }

    let doc = chrome_trace(&spans, &timelines, &metrics::global().snapshot());
    let text = doc.pretty();
    let parsed = Json::parse(&text).expect("exporter output parses");
    assert_eq!(parsed, doc, "parse(pretty(doc)) is not identity");

    let events = field(&parsed, "traceEvents").and_then(as_arr).unwrap();
    // Process-name metadata announces the host and all four simulators.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| str_field(e, "ph") == Some("M") && str_field(e, "name") == Some("process_name"))
        .filter_map(|e| field(e, "args").and_then(|a| as_str(field(a, "name")?)))
        .collect();
    assert!(process_names.contains(&"host"), "{process_names:?}");
    for arch in arches::ARCH_NAMES {
        let sim = format!("sim:{arch}");
        assert!(
            process_names.iter().any(|n| *n == sim),
            "missing {sim} in {process_names:?}"
        );
    }
    // Host spans (pid 0) include experiment and per-task tiers; pids
    // 1.. carry the cycle-domain events.
    let cats: Vec<&str> = events.iter().filter_map(|e| str_field(e, "cat")).collect();
    for cat in ["experiment", "task"] {
        assert!(cats.contains(&cat), "no {cat} span in {cats:?}");
    }
    let sim_events = events
        .iter()
        .filter(|e| str_field(e, "ph") == Some("X") && int_field(e, "pid").unwrap_or(0) > 0)
        .count();
    assert!(sim_events > 0, "no cycle-domain events exported");
    // The experiment tag rides into the exported thread names.
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| str_field(e, "ph") == Some("M") && str_field(e, "name") == Some("thread_name"))
        .filter_map(|e| field(e, "args").and_then(|a| as_str(field(a, "name")?)))
        .collect();
    assert!(
        thread_names.iter().any(|n| n.starts_with("fig15/")),
        "no experiment-prefixed thread name in {thread_names:?}"
    );
}

/// ISSUE satellite: unknown flags and missing flag values must fail
/// with the usage text and a nonzero exit, not be silently ignored.
#[test]
fn flexsim_binary_rejects_bad_arguments() {
    for (args, needle) in [
        (vec!["--bogus"], "unknown option"),
        (vec!["--jsno", "all"], "unknown option"),
        (vec!["--out"], "--out requires"),
        (vec!["--out", "--json", "fig15"], "--out requires"),
        (vec!["--trace"], "--trace requires"),
        (vec!["--jobs"], "--jobs requires"),
        (vec!["--jobs", "zero", "all"], "--jobs requires"),
        (vec!["--jobs", "0", "all"], "--jobs requires"),
    ] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_flexsim"))
            .args(&args)
            .output()
            .expect("flexsim runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{args:?} should fail");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(stderr.contains("usage: flexsim"), "{args:?}: {stderr}");
    }
}

/// ISSUE acceptance, end to end: `flexsim --jobs 2 --trace FILE fig15`
/// writes a Chrome trace that parses and names all four architectures.
#[test]
fn flexsim_trace_flag_writes_loadable_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("flexsim-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("out.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_flexsim"))
        .args([
            "--jobs",
            "2",
            "--trace",
            file.to_str().unwrap(),
            "--metrics",
            "fig15",
        ])
        .output()
        .expect("flexsim runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("layer timelines"), "{stderr}");
    // `--metrics` dumps the registry, which fig15 populated.
    assert!(stderr.contains("sim_cycles"), "{stderr}");

    let text = std::fs::read_to_string(&file).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let parsed = Json::parse(&text).expect("trace file parses");
    let events = field(&parsed, "traceEvents").and_then(as_arr).unwrap();
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| field(e, "args").and_then(|a| as_str(field(a, "name")?)))
        .collect();
    for arch in arches::ARCH_NAMES {
        let sim = format!("sim:{arch}");
        assert!(names.iter().any(|n| *n == sim), "missing {sim}");
    }
    assert!(
        events
            .iter()
            .any(|e| str_field(e, "cat") == Some("experiment")),
        "no host experiment span in the written trace"
    );
}

fn field<'a>(v: &'a Json, name: &str) -> Option<&'a Json> {
    match v {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn as_arr(v: &Json) -> Option<&[Json]> {
    match v {
        Json::Arr(items) => Some(items),
        _ => None,
    }
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn str_field<'a>(v: &'a Json, name: &str) -> Option<&'a str> {
    field(v, name).and_then(as_str)
}

fn int_field(v: &Json, name: &str) -> Option<i64> {
    match field(v, name) {
        Some(Json::Int(i)) => Some(*i),
        _ => None,
    }
}
