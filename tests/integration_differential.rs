//! Differential verification: randomized cross-architecture equivalence.
//!
//! The paper's core claim rests on the four simulators — FlexFlow,
//! Systolic, 2D-Mapping, and Tiling — being functionally equivalent to
//! the golden Figure 3 reference convolution. This suite generates
//! randomized layer configurations with the testkit PRNG, runs every
//! architecture on *identical* 16-bit fixed-point operands, and asserts:
//!
//! 1. **bit-exact output equality** against the reference,
//! 2. **MAC conservation** — the counted MACs equal the analytic
//!    `Nof·Nkx·Nky·Nif·R·C` product,
//! 3. **utilization sanity** — every utilization is in `(0, 1]`,
//! 4. **cycle lower bound** — no engine finishes faster than its
//!    compute bound `⌈MACs / PEs⌉`.
//!
//! Determinism: every case derives from `BASE_SEED`, and each failure
//! message names the offending case seed, so any mismatch reproduces
//! exactly. Override the case count with `FLEXSIM_DIFF_CASES`.

use flexflow::array::PeArray;
use flexsim_arch::Accelerator;
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_dataflow::search::best_unroll;
use flexsim_dataflow::Unroll;
use flexsim_model::tensor::KernelSet;
use flexsim_model::{reference, ConvLayer, Tensor3};
use flexsim_testkit::SplitMix64;

const BASE_SEED: u64 = 0xF1EF_F10D;
const DEFAULT_CASES: u32 = 64;
const D: usize = 16;

fn cases() -> u32 {
    std::env::var("FLEXSIM_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// A randomized valid-convolution layer. Stride is forced to 1 when
/// `all_arches` is set (the functional Systolic and 2D-Mapping models
/// are stride-1 machines, like their silicon counterparts).
fn random_layer(rng: &mut SplitMix64, all_arches: bool) -> ConvLayer {
    let m = rng.gen_range(1usize..=5);
    let n = rng.gen_range(1usize..=4);
    let s = rng.gen_range(2usize..=8);
    let k = rng.gen_range(1usize..=4);
    let stride = if all_arches {
        1
    } else {
        rng.gen_range(1usize..=2)
    };
    ConvLayer::new(format!("D{m}x{n}x{s}x{k}s{stride}"), m, n, s, k).with_stride(stride)
}

/// A random feasible unrolling for `layer` on a D×D engine.
fn random_unroll(rng: &mut SplitMix64, layer: &ConvLayer, d: usize) -> Unroll {
    loop {
        let u = Unroll::new(
            rng.gen_range(1usize..=layer.m()),
            rng.gen_range(1usize..=layer.n()),
            rng.gen_range(1usize..=layer.s()),
            rng.gen_range(1usize..=layer.s()),
            rng.gen_range(1usize..=layer.k()),
            rng.gen_range(1usize..=layer.k()),
        );
        if u.rows_used() <= d && u.cols_used() <= d {
            return u;
        }
    }
}

/// The paper's analytic MAC count: `Nof·Nkx·Nky·Nif·R·C`.
fn analytic_macs(layer: &ConvLayer) -> u64 {
    (layer.m() * layer.k() * layer.k() * layer.n() * layer.s() * layer.s()) as u64
}

struct Case {
    seed: u64,
    layer: ConvLayer,
    input: Tensor3,
    kernels: KernelSet,
    want: Tensor3,
}

/// Generates the deterministic case list shared by the tests below.
fn case_list(tag: u64, all_arches: bool) -> Vec<Case> {
    let mut master = SplitMix64::new(BASE_SEED ^ tag);
    (0..cases())
        .map(|_| {
            let (seed, mut rng) = master.split();
            let layer = random_layer(&mut rng, all_arches);
            let (input, kernels) = reference::random_layer_data(&layer, rng.next_u64());
            let want = reference::conv(&layer, &input, &kernels);
            Case {
                seed,
                layer,
                input,
                kernels,
                want,
            }
        })
        .collect()
}

#[test]
fn all_four_architectures_bit_exact_on_randomized_layers() {
    for case in case_list(0x01, true) {
        let Case {
            seed,
            layer,
            input,
            kernels,
            want,
        } = case;
        let ctx = |arch: &str| format!("{arch} on {} (case seed {seed})", layer.name());

        assert_eq!(
            Systolic::dc_cnn().forward(&layer, &input, &kernels),
            want,
            "{}",
            ctx("Systolic")
        );
        assert_eq!(
            Mapping2d::shidiannao().forward(&layer, &input, &kernels),
            want,
            "{}",
            ctx("2D-Mapping")
        );
        assert_eq!(
            TilingArray::diannao().forward(&layer, &input, &kernels),
            want,
            "{}",
            ctx("Tiling")
        );

        // FlexFlow under both the compiler's choice and a random
        // feasible unrolling: the schedule must never change semantics.
        let mut rng = SplitMix64::new(seed ^ 0xA5A5);
        for u in [
            best_unroll(&layer, D, None).unroll,
            random_unroll(&mut rng, &layer, D),
        ] {
            let mut array = PeArray::new(D);
            let report = array.run_layer(&layer, u, &input, &kernels);
            assert_eq!(report.output, want, "{} unroll {u}", ctx("FlexFlow"));
            assert_eq!(report.macs, analytic_macs(&layer), "{}", ctx("FlexFlow"));
            assert!(
                report.cycles >= analytic_macs(&layer).div_ceil((D * D) as u64),
                "{}: {} cycles beats the compute bound",
                ctx("FlexFlow"),
                report.cycles
            );
        }
    }
}

#[test]
fn strided_layers_bit_exact_where_supported() {
    // Tiling and FlexFlow model strided convolutions functionally; they
    // must agree with the reference there too.
    for case in case_list(0x02, false) {
        let Case {
            seed,
            layer,
            input,
            kernels,
            want,
        } = case;
        assert_eq!(
            TilingArray::diannao().forward(&layer, &input, &kernels),
            want,
            "Tiling on {} (case seed {seed})",
            layer.name()
        );
        let u = best_unroll(&layer, D, None).unroll;
        let mut array = PeArray::new(D);
        let report = array.run_layer(&layer, u, &input, &kernels);
        assert_eq!(
            report.output,
            want,
            "FlexFlow on {} (case seed {seed})",
            layer.name()
        );
    }
}

#[test]
fn analytic_invariants_hold_on_randomized_layers() {
    // The Accelerator-level (cycle/energy/traffic) models obey MAC
    // conservation, the utilization ceiling, and the compute lower
    // bound on every randomized layer.
    for case in case_list(0x03, true) {
        let Case { seed, layer, .. } = case;
        let engines: Vec<Box<dyn Accelerator>> = vec![
            Box::new(Systolic::dc_cnn()),
            Box::new(Mapping2d::shidiannao()),
            Box::new(TilingArray::diannao()),
            Box::new(flexflow::FlexFlow::paper_config()),
        ];
        for mut acc in engines {
            let r = acc.run_conv(&layer);
            let name = acc.name().to_owned();
            let ctx = format!("{name} on {} (case seed {seed})", layer.name());
            assert_eq!(r.macs, analytic_macs(&layer), "{ctx}: MAC conservation");
            let u = r.utilization();
            assert!(u > 0.0 && u <= 1.0, "{ctx}: utilization {u} outside (0, 1]");
            assert!(
                r.cycles >= r.macs.div_ceil(acc.pe_count() as u64),
                "{ctx}: {} cycles beats the compute bound",
                r.cycles
            );
        }
    }
}

#[test]
fn differential_suite_is_deterministic() {
    // Same seeds → byte-identical case lists: a failure seed printed on
    // one machine reproduces on any other.
    let a = case_list(0x01, true);
    let b = case_list(0x01, true);
    assert_eq!(a.len(), b.len());
    assert!(a.len() as u32 >= DEFAULT_CASES.min(cases()));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.layer.name(), y.layer.name());
        assert_eq!(x.want, y.want);
    }
}
