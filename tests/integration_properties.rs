//! Property-based cross-crate invariants (flexsim-testkit harness).

use flexflow::array::PeArray;
use flexflow::isa::Instr;
use flexsim_dataflow::search::best_unroll;
use flexsim_dataflow::utilization::{tile_count, total_utilization};
use flexsim_dataflow::{TileIter, Unroll};
use flexsim_model::{reference, ConvLayer};
use flexsim_testkit::prop::{self, filter, option_of};
use flexsim_testkit::{prop_assert, prop_assert_eq};

const CASES: u32 = 64;

/// Raw `(m, n, s, k)` parameters for a small random CONV layer.
fn small_layer_params() -> (
    std::ops::RangeInclusive<usize>,
    std::ops::RangeInclusive<usize>,
    std::ops::RangeInclusive<usize>,
    std::ops::RangeInclusive<usize>,
) {
    (1..=4, 1..=4, 2..=8, 1..=4)
}

fn small_layer((m, n, s, k): (usize, usize, usize, usize)) -> ConvLayer {
    ConvLayer::new(format!("C{m}x{n}x{s}x{k}"), m, n, s, k)
}

/// Raw parameters for a layer plus an unrolling: the six factor draws
/// are folded into each loop bound with `1 + (raw - 1) % bound`, which
/// keeps every factor in `1..=bound` while sampling all of them.
type LayerUnrollParams = (
    (usize, usize, usize, usize),
    (usize, usize, usize, usize, usize, usize),
);

fn layer_unroll(params: LayerUnrollParams) -> (ConvLayer, Unroll) {
    let (lp, (rm, rn, rr, rc, ri, rj)) = params;
    let layer = small_layer(lp);
    let fold = |raw: usize, bound: usize| 1 + (raw - 1) % bound;
    let u = Unroll::new(
        fold(rm, layer.m()),
        fold(rn, layer.n()),
        fold(rr, layer.s()),
        fold(rc, layer.s()),
        fold(ri, layer.k()),
        fold(rj, layer.k()),
    );
    (layer, u)
}

/// Strategy: a layer with a feasible unrolling for a D=16 engine.
fn feasible_layer_unroll() -> impl prop::Strategy<Value = LayerUnrollParams> {
    let factor = || 1usize..=8;
    filter(
        (
            small_layer_params(),
            (factor(), factor(), factor(), factor(), factor(), factor()),
        ),
        |&params| {
            let (_, u) = layer_unroll(params);
            u.rows_used() <= 16 && u.cols_used() <= 16
        },
    )
}

#[test]
fn flexflow_array_always_bit_exact() {
    // The FlexFlow array computes the reference convolution under any
    // feasible unrolling on any small layer.
    prop::check(
        "flexflow_array_always_bit_exact",
        CASES,
        (feasible_layer_unroll(), 0u64..=9_999),
        |&(params, seed)| {
            let (layer, u) = layer_unroll(params);
            let (input, kernels) = reference::random_layer_data(&layer, seed);
            let want = reference::conv(&layer, &input, &kernels);
            let mut array = PeArray::new(16);
            let report = array.run_layer(&layer, u, &input, &kernels);
            prop_assert_eq!(report.output, want, "unroll {}", u);
            prop_assert_eq!(report.macs, layer.macs());
            Ok(())
        },
    );
}

#[test]
fn utilization_identity_universal() {
    // The utilization identity Ut·tiles·D² = MACs holds for every
    // feasible unrolling.
    prop::check(
        "utilization_identity_universal",
        CASES,
        feasible_layer_unroll(),
        |&params| {
            let (layer, u) = layer_unroll(params);
            let d = 16usize;
            let ut = total_utilization(&layer, &u, d);
            let tiles = tile_count(&layer, &u) as f64;
            let macs = layer.macs() as f64;
            prop_assert!((ut * tiles * (d * d) as f64 - macs).abs() < 1e-6 * macs.max(1.0));
            prop_assert!(ut > 0.0 && ut <= 1.0 + 1e-12);
            Ok(())
        },
    );
}

#[test]
fn tiles_partition_the_loop_nest() {
    // Tile iteration covers each MAC exactly once for any unrolling.
    prop::check(
        "tiles_partition_the_loop_nest",
        CASES,
        feasible_layer_unroll(),
        |&params| {
            let (layer, u) = layer_unroll(params);
            let total: u64 = TileIter::new(&layer, u).map(|t| t.macs()).sum();
            prop_assert_eq!(total, layer.macs());
            prop_assert_eq!(
                TileIter::new(&layer, u).count() as u64,
                tile_count(&layer, &u)
            );
            Ok(())
        },
    );
}

#[test]
fn search_respects_constraints() {
    // The factor search always returns a constraint-satisfying unroll
    // that beats (or ties) the scalar mapping.
    prop::check(
        "search_respects_constraints",
        CASES,
        (small_layer_params(), option_of(1usize..=8)),
        |&(lp, bound)| {
            let layer = small_layer(lp);
            let choice = best_unroll(&layer, 16, bound);
            prop_assert!(choice.unroll.satisfies(&layer, 16, bound));
            let scalar = total_utilization(&layer, &Unroll::scalar(), 16);
            prop_assert!(choice.total_utilization() >= scalar - 1e-12);
            Ok(())
        },
    );
}

#[test]
fn schedule_cycles_lower_bounded_by_macs() {
    // The analytic schedule's cycle count is consistent with its own
    // batch/chunk decomposition and never undercounts the MAC bound.
    prop::check(
        "schedule_cycles_lower_bounded_by_macs",
        CASES,
        feasible_layer_unroll(),
        |&params| {
            let (layer, u) = layer_unroll(params);
            let sch = flexflow::analytic::schedule_default(&layer, u, 16);
            prop_assert!(sch.cycles * 256 >= sch.macs);
            prop_assert!(sch.cycles >= sch.row_batches * sch.chunks);
            prop_assert!(sch.utilization() <= 1.0);
            Ok(())
        },
    );
}

#[test]
fn isa_round_trip_fuzz() {
    // ISA words round-trip for arbitrary factor combinations and layer
    // indices.
    let f = || 1usize..=128;
    prop::check(
        "isa_round_trip_fuzz",
        CASES,
        (0u8..=255, f(), f(), f(), f(), f(), f()),
        |&(layer_idx, tm, tn, tr, tc, ti, tj)| {
            let i = Instr::Configure {
                layer: layer_idx,
                unroll: Unroll::new(tm, tn, tr, tc, ti, tj),
            };
            prop_assert_eq!(Instr::decode(i.encode()).unwrap(), i);
            Ok(())
        },
    );
}

#[test]
fn fixed_point_mac_close_to_float() {
    // Fixed-point multiply-accumulate agrees with wide float math
    // within one rounding step.
    let r = || -500i16..=500;
    prop::check(
        "fixed_point_mac_close_to_float",
        CASES,
        (r(), r(), r(), r()),
        |&(a, b, c, d)| {
            use flexsim_model::{Acc32, Fx16};
            let (fa, fb, fc, fd) = (
                Fx16::from_raw(a),
                Fx16::from_raw(b),
                Fx16::from_raw(c),
                Fx16::from_raw(d),
            );
            let mut acc = Acc32::ZERO;
            acc.mac(fa, fb);
            acc.mac(fc, fd);
            let float = fa.to_f64() * fb.to_f64() + fc.to_f64() * fd.to_f64();
            prop_assert!((acc.to_f64() - float).abs() < 1e-9);
            prop_assert!((acc.to_fx16().to_f64() - float).abs() <= 1.0 / 512.0 + 1e-12);
            Ok(())
        },
    );
}

#[test]
fn dram_traffic_monotone_in_buffer_size() {
    // DRAM traffic estimation is monotone: shrinking the buffers never
    // reduces traffic.
    prop::check(
        "dram_traffic_monotone_in_buffer_size",
        CASES,
        small_layer_params(),
        |&lp| {
            use flexsim_arch::dram::conv_layer_traffic;
            let layer = small_layer(lp);
            let big = conv_layer_traffic(&layer, 1 << 20, 1 << 20);
            let small = conv_layer_traffic(&layer, 64, 64);
            prop_assert!(small.reads >= big.reads);
            prop_assert_eq!(small.writes, big.writes);
            Ok(())
        },
    );
}
