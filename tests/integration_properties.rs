//! Property-based cross-crate invariants (proptest).

use flexflow::array::PeArray;
use flexflow::isa::Instr;
use flexsim_dataflow::search::best_unroll;
use flexsim_dataflow::utilization::{tile_count, total_utilization};
use flexsim_dataflow::{TileIter, Unroll};
use flexsim_model::{reference, ConvLayer};
use proptest::prelude::*;

/// Strategy: a small random CONV layer.
fn small_layer() -> impl Strategy<Value = ConvLayer> {
    (1usize..=4, 1usize..=4, 2usize..=8, 1usize..=4).prop_map(|(m, n, s, k)| {
        ConvLayer::new(format!("C{m}x{n}x{s}x{k}"), m, n, s, k)
    })
}

/// Strategy: a feasible unrolling for `layer` on a D=16 engine.
fn feasible_unroll(layer: ConvLayer) -> impl Strategy<Value = (ConvLayer, Unroll)> {
    let (m, n, s, k) = (layer.m(), layer.n(), layer.s(), layer.k());
    (
        Just(layer),
        1..=m,
        1..=n,
        1..=s,
        1..=s,
        1..=k,
        1..=k,
    )
        .prop_filter_map("occupancy must fit a 16x16 engine", |(l, tm, tn, tr, tc, ti, tj)| {
            let u = Unroll::new(tm, tn, tr, tc, ti, tj);
            (u.rows_used() <= 16 && u.cols_used() <= 16).then_some((l, u))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FlexFlow array computes the reference convolution under any
    /// feasible unrolling on any small layer.
    #[test]
    fn flexflow_array_always_bit_exact(
        (layer, u) in small_layer().prop_flat_map(feasible_unroll),
        seed in 0u64..10_000,
    ) {
        let (input, kernels) = reference::random_layer_data(&layer, seed);
        let want = reference::conv(&layer, &input, &kernels);
        let mut array = PeArray::new(16);
        let report = array.run_layer(&layer, u, &input, &kernels);
        prop_assert_eq!(report.output, want);
        prop_assert_eq!(report.macs, layer.macs());
    }

    /// The utilization identity Ut·tiles·D² = MACs holds for every
    /// feasible unrolling.
    #[test]
    fn utilization_identity_universal(
        (layer, u) in small_layer().prop_flat_map(feasible_unroll),
    ) {
        let d = 16usize;
        let ut = total_utilization(&layer, &u, d);
        let tiles = tile_count(&layer, &u) as f64;
        let macs = layer.macs() as f64;
        prop_assert!((ut * tiles * (d * d) as f64 - macs).abs() < 1e-6 * macs.max(1.0));
        prop_assert!(ut > 0.0 && ut <= 1.0 + 1e-12);
    }

    /// Tile iteration covers each MAC exactly once for any unrolling.
    #[test]
    fn tiles_partition_the_loop_nest(
        (layer, u) in small_layer().prop_flat_map(feasible_unroll),
    ) {
        let total: u64 = TileIter::new(&layer, u).map(|t| t.macs()).sum();
        prop_assert_eq!(total, layer.macs());
        prop_assert_eq!(TileIter::new(&layer, u).count() as u64, tile_count(&layer, &u));
    }

    /// The factor search always returns a constraint-satisfying unroll
    /// that beats (or ties) the scalar mapping.
    #[test]
    fn search_respects_constraints(
        layer in small_layer(),
        bound in prop::option::of(1usize..=8),
    ) {
        let choice = best_unroll(&layer, 16, bound);
        prop_assert!(choice.unroll.satisfies(&layer, 16, bound));
        let scalar = total_utilization(&layer, &Unroll::scalar(), 16);
        prop_assert!(choice.total_utilization() >= scalar - 1e-12);
    }

    /// The analytic schedule's cycle count is consistent with its own
    /// batch/chunk decomposition and never undercounts the MAC bound.
    #[test]
    fn schedule_cycles_lower_bounded_by_macs(
        (layer, u) in small_layer().prop_flat_map(feasible_unroll),
    ) {
        let sch = flexflow::analytic::schedule_default(&layer, u, 16);
        prop_assert!(sch.cycles * 256 >= sch.macs);
        prop_assert!(sch.cycles >= sch.row_batches * sch.chunks);
        prop_assert!(sch.utilization() <= 1.0);
    }

    /// ISA words round-trip for arbitrary factor combinations and layer
    /// indices.
    #[test]
    fn isa_round_trip_fuzz(
        layer_idx in 0u8..=255,
        tm in 1usize..=128,
        tn in 1usize..=128,
        tr in 1usize..=128,
        tc in 1usize..=128,
        ti in 1usize..=128,
        tj in 1usize..=128,
    ) {
        let i = Instr::Configure {
            layer: layer_idx,
            unroll: Unroll::new(tm, tn, tr, tc, ti, tj),
        };
        prop_assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }

    /// Fixed-point multiply-accumulate agrees with wide float math
    /// within one rounding step.
    #[test]
    fn fixed_point_mac_close_to_float(
        a in -500i16..=500,
        b in -500i16..=500,
        c in -500i16..=500,
        d in -500i16..=500,
    ) {
        use flexsim_model::{Acc32, Fx16};
        let (fa, fb, fc, fd) = (
            Fx16::from_raw(a),
            Fx16::from_raw(b),
            Fx16::from_raw(c),
            Fx16::from_raw(d),
        );
        let mut acc = Acc32::ZERO;
        acc.mac(fa, fb);
        acc.mac(fc, fd);
        let float = fa.to_f64() * fb.to_f64() + fc.to_f64() * fd.to_f64();
        prop_assert!((acc.to_f64() - float).abs() < 1e-9);
        prop_assert!((acc.to_fx16().to_f64() - float).abs() <= 1.0 / 512.0 + 1e-12);
    }

    /// DRAM traffic estimation is monotone: shrinking the buffers never
    /// reduces traffic.
    #[test]
    fn dram_traffic_monotone_in_buffer_size(layer in small_layer()) {
        use flexsim_arch::dram::conv_layer_traffic;
        let big = conv_layer_traffic(&layer, 1 << 20, 1 << 20);
        let small = conv_layer_traffic(&layer, 64, 64);
        prop_assert!(small.reads >= big.reads);
        prop_assert_eq!(small.writes, big.writes);
    }
}
