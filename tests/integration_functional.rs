//! Cross-architecture functional equivalence.
//!
//! All four simulated architectures — Systolic, 2D-Mapping, Tiling, and
//! FlexFlow — execute real 16-bit fixed-point convolutions following
//! their own dataflows. On every (valid-convolution) layer they must
//! produce *bit-identical* outputs to the golden reference and therefore
//! to each other: the architectures differ in schedule, not semantics.

use flexflow::array::PeArray;
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_dataflow::search::best_unroll;
use flexsim_model::{reference, workloads, ConvLayer};

/// Layers exercised by the equivalence suite: every functional-path
/// layer of the four small Table 1 workloads plus the Section 4 demo.
fn functional_layers() -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    for net in [
        workloads::pv(),
        workloads::fr(),
        workloads::lenet5(),
        workloads::hg(),
        workloads::paper_example(),
    ] {
        for l in net.conv_layers() {
            if l.is_valid_convolution() && l.k() <= 6 {
                layers.push(l.clone());
            }
        }
    }
    assert!(layers.len() >= 8, "expected a rich layer set");
    layers
}

#[test]
fn all_architectures_agree_with_the_reference() {
    for (i, layer) in functional_layers().iter().enumerate() {
        let (input, kernels) = reference::random_layer_data(layer, 1000 + i as u64);
        let want = reference::conv(layer, &input, &kernels);

        let sys = Systolic::dc_cnn();
        assert_eq!(
            sys.forward(layer, &input, &kernels),
            want,
            "Systolic mismatch on {}",
            layer.name()
        );

        let m2d = Mapping2d::shidiannao();
        assert_eq!(
            m2d.forward(layer, &input, &kernels),
            want,
            "2D-Mapping mismatch on {}",
            layer.name()
        );

        let til = TilingArray::diannao();
        assert_eq!(
            til.forward(layer, &input, &kernels),
            want,
            "Tiling mismatch on {}",
            layer.name()
        );

        let choice = best_unroll(layer, 16, None);
        let mut array = PeArray::new(16);
        let report = array.run_layer(layer, choice.unroll, &input, &kernels);
        assert_eq!(report.output, want, "FlexFlow mismatch on {}", layer.name());
        assert_eq!(report.macs, layer.macs());
    }
}

#[test]
fn flexflow_agrees_under_many_unrollings() {
    // The same layer under very different parallelism mixes (pure NP,
    // pure SP-ish, pure FP, and blends) always computes the same thing.
    let layer = ConvLayer::new("C", 4, 3, 10, 3);
    let (input, kernels) = reference::random_layer_data(&layer, 77);
    let want = reference::conv(&layer, &input, &kernels);
    let unrolls = [
        flexsim_dataflow::Unroll::new(1, 1, 4, 4, 1, 1), // NP
        flexsim_dataflow::Unroll::new(1, 1, 1, 1, 3, 3), // SP
        flexsim_dataflow::Unroll::new(4, 3, 1, 1, 1, 1), // FP
        flexsim_dataflow::Unroll::new(2, 3, 1, 2, 1, 3), // blend
        flexsim_dataflow::Unroll::new(4, 1, 2, 2, 3, 1), // blend
    ];
    for u in unrolls {
        let mut array = PeArray::new(16);
        let report = array.run_layer(&layer, u, &input, &kernels);
        assert_eq!(report.output, want, "mismatch under {u}");
    }
}

#[test]
fn functional_and_analytic_flexflow_cycles_agree() {
    for (i, layer) in functional_layers().iter().enumerate() {
        let choice = best_unroll(layer, 16, None);
        let sch = flexflow::analytic::schedule_default(layer, choice.unroll, 16);
        let (input, kernels) = reference::random_layer_data(layer, 2000 + i as u64);
        let mut array = PeArray::new(16);
        let report = array.run_layer(layer, choice.unroll, &input, &kernels);
        assert_eq!(
            report.cycles,
            sch.cycles,
            "{}: functional vs analytic cycles",
            layer.name()
        );
    }
}

#[test]
fn functional_traffic_tracks_analytic_model() {
    // For resident workloads, the lazy-load functional counters equal
    // the closed-form traffic model; for segmented ones they stay within
    // a modest factor (the analytic model is the planner's estimate).
    for (i, layer) in functional_layers().iter().enumerate() {
        let choice = best_unroll(layer, 16, None);
        let sch = flexflow::analytic::schedule_default(layer, choice.unroll, 16);
        let (input, kernels) = reference::random_layer_data(layer, 3000 + i as u64);
        let mut array = PeArray::new(16);
        let report = array.run_layer(layer, choice.unroll, &input, &kernels);
        let ratio = report.vertical_bus_words as f64 / sch.traffic.neuron_in as f64;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "{}: functional neuron traffic {}x the analytic model",
            layer.name(),
            ratio
        );
    }
}

#[test]
fn quantization_matches_across_seeds() {
    // Different data, same shapes: equivalence is not an artifact of one
    // lucky seed.
    let layer = ConvLayer::new("C", 3, 2, 8, 4);
    for seed in [1u64, 99, 4096, 123_456] {
        let (input, kernels) = reference::random_layer_data(&layer, seed);
        let want = reference::conv(&layer, &input, &kernels);
        assert_eq!(
            Systolic::dc_cnn().forward(&layer, &input, &kernels),
            want,
            "seed {seed}"
        );
        assert_eq!(
            TilingArray::diannao().forward(&layer, &input, &kernels),
            want,
            "seed {seed}"
        );
    }
}
