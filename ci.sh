#!/usr/bin/env bash
# Local CI gate — the exact checks .github/workflows/ci.yml runs.
#
# Everything is offline: the workspace has zero external dependencies
# (crates/testkit replaces rand/proptest/serde/criterion), so a plain
# toolchain is all that's needed. --offline makes any accidental
# reintroduction of a registry dependency fail loudly here rather
# than flake in a sandboxed environment.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (offline, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy (pedantic subset)"
cargo clippy --workspace --all-targets --offline -- \
    -D clippy::needless_pass_by_value \
    -D clippy::cast_lossless \
    -D clippy::redundant_closure_for_method_calls \
    -D clippy::semicolon_if_nothing_returned \
    -D clippy::doc_markdown

echo "==> cargo build --release (offline)"
cargo build --release --offline

echo "==> cargo test (offline)"
cargo test -q --offline

echo "==> flexsim lint (static schedule verification)"
cargo run -q -p flexsim-experiments --release --offline -- lint > /dev/null
cargo run -q -p flexsim-experiments --release --offline -- --json lint > /dev/null

echo "==> flexsim --jobs determinism (parallel output byte-identical to serial)"
FLEXSIM="$(pwd)/target/release/flexsim"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$FLEXSIM" --jobs 1 --json all > "$TMP/serial.json"
"$FLEXSIM" --jobs 2 --json all > "$TMP/jobs2.json"
cmp "$TMP/serial.json" "$TMP/jobs2.json" \
    || { echo "FAIL: --jobs 2 output diverged from --jobs 1"; exit 1; }

echo "==> flexsim bench sweep (serial vs parallel wall time)"
(cd "$TMP" && "$FLEXSIM" bench sweep)
cat "$TMP/BENCH_pool.json"

echo "==> flexsim profile smoke (ledgers balance; JSON well-formed)"
# The run itself enforces flexcheck FXC09: every layer's loss ledger
# must balance busy + lost == cycles x PEs or the profiler aborts.
"$FLEXSIM" --json profile alexnet > "$TMP/profile.json"
grep -q '(all)' "$TMP/profile.json" \
    || { echo "FAIL: profile JSON missing aggregate rows"; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$TMP/profile.json" > /dev/null \
        || { echo "FAIL: profile JSON does not parse"; exit 1; }
fi

echo "==> flexsim tune smoke (auto-tuner: monotonic, flexcheck-clean, deterministic)"
# The run itself enforces the tuner invariants: every winner verified
# on the cycle-stepped engine, the assembled program flexcheck-clean,
# and no tuned mapping worse than the paper default or the DP plan.
"$FLEXSIM" --json --budget smoke tune pv > "$TMP/tune1.json"
"$FLEXSIM" --json --budget smoke --jobs 4 tune pv > "$TMP/tune4.json"
cmp "$TMP/tune1.json" "$TMP/tune4.json" \
    || { echo "FAIL: tune --jobs 4 output diverged from serial"; exit 1; }
grep -q 'mapping-residue-idle' "$TMP/tune1.json" \
    || { echo "FAIL: tune JSON missing attribution"; exit 1; }
# --static ranks symbolically and engine-verifies winners only: the
# emitted document must be byte-identical to the engine-verified path.
"$FLEXSIM" --json --budget smoke tune pv --static > "$TMP/tune_static.json"
cmp "$TMP/tune1.json" "$TMP/tune_static.json" \
    || { echo "FAIL: tune --static output diverged from the engine path"; exit 1; }

echo "==> flexsim prove smoke (symbolic cycle/ledger proof, FXC10)"
# All 24 (workload, arch) pairs must prove static == dynamic exactly;
# a mutated prediction must flip the exit status and name the rule.
"$FLEXSIM" prove > /dev/null
"$FLEXSIM" --json prove > "$TMP/prove.json"
grep -q '"pairs_proved": 24' "$TMP/prove.json" \
    || { echo "FAIL: prove did not prove all 24 pairs"; exit 1; }
if "$FLEXSIM" prove pv --mutate > "$TMP/prove_mutate.txt" 2>&1; then
    echo "FAIL: prove --mutate exited zero"; exit 1
fi
grep -q 'cycle mismatch' "$TMP/prove_mutate.txt" \
    || { echo "FAIL: mutated prove run did not report the cycle mismatch"; exit 1; }

echo "==> flexsim workload frontend smoke (.ffnet end-to-end)"
# A user-supplied network must ride the whole pipeline: registry
# listing, four-architecture simulation with FXC09 exactness, static
# lint, symbolic proof, and the auto-tuner — plus actionable exit-2
# diagnostics on a malformed file.
FFNET="$(pwd)/examples/resnet_block.ffnet"
"$FLEXSIM" workloads > "$TMP/workloads.txt"
grep -q 'resnet_block' "$TMP/workloads.txt" \
    || { echo "FAIL: workloads listing missing the .ffnet fixtures"; exit 1; }
"$FLEXSIM" --json workloads > "$TMP/workloads.json"
grep -q '"ffnet": 3' "$TMP/workloads.json" \
    || { echo "FAIL: workloads --json did not count 3 .ffnet fixtures"; exit 1; }
"$FLEXSIM" --json run "$FFNET" > "$TMP/run_ffnet.json"
grep -q '"ledger_exact": true' "$TMP/run_ffnet.json" \
    || { echo "FAIL: run did not report FXC09-exact ledgers"; exit 1; }
"$FLEXSIM" lint "$FFNET" > /dev/null
"$FLEXSIM" prove "$FFNET" > /dev/null
"$FLEXSIM" --budget smoke tune "$FFNET" > /dev/null
printf '{"name":"bad","input":{"maps":1,"size":4},"nodes":[{"id":"c","op":"conv","m":2,"kernel":3}]}' \
    > "$TMP/bad.ffnet"
if "$FLEXSIM" run "$TMP/bad.ffnet" > "$TMP/bad_run.txt" 2>&1; then
    echo "FAIL: run on a malformed .ffnet exited zero"; exit 1
fi
grep -q 'unknown field' "$TMP/bad_run.txt" \
    || { echo "FAIL: malformed .ffnet did not produce an actionable diagnostic"; exit 1; }

echo "==> flexsim heatmap smoke (FXC13 spatial exactness; --jobs byte-identity)"
# The run itself enforces flexcheck FXC13: every per-PE heatmap cell
# sum must equal the loss ledger exactly, per cause, or exit goes 1.
"$FLEXSIM" heatmap lenet > "$TMP/heat.txt"
grep -q 'FXC13 spatial-exactness: ok' "$TMP/heat.txt" \
    || { echo "FAIL: heatmap report missing the FXC13 verdict"; exit 1; }
"$FLEXSIM" --jobs 1 --json heatmap lenet > "$TMP/heat1.json"
"$FLEXSIM" --jobs 4 --json heatmap lenet > "$TMP/heat4.json"
cmp "$TMP/heat1.json" "$TMP/heat4.json" \
    || { echo "FAIL: heatmap --jobs 4 JSON diverged from serial"; exit 1; }
"$FLEXSIM" --jobs 1 --svg heatmap lenet > "$TMP/heat1.svg"
"$FLEXSIM" --jobs 4 --svg heatmap lenet > "$TMP/heat4.svg"
cmp "$TMP/heat1.svg" "$TMP/heat4.svg" \
    || { echo "FAIL: heatmap --jobs 4 SVG diverged from serial"; exit 1; }
"$FLEXSIM" heatmap "$FFNET" --arch flexflow > "$TMP/heat_ffnet.txt"
grep -q 'FXC13 spatial-exactness: ok' "$TMP/heat_ffnet.txt" \
    || { echo "FAIL: .ffnet heatmap missing the FXC13 verdict"; exit 1; }

echo "==> flexsim stats smoke (telemetry never perturbs results; all phases fire)"
# Same sweep with telemetry off vs. on: the written artifacts must be
# byte-identical, and the snapshot must cover every declared phase.
"$FLEXSIM" --jobs 2 --json --out "$TMP/out_off" all > /dev/null
"$FLEXSIM" --jobs 2 --json --out "$TMP/out_on" --telemetry "$TMP/telemetry.json" all > /dev/null
for f in "$TMP"/out_off/*.json; do
    cmp "$f" "$TMP/out_on/$(basename "$f")" \
        || { echo "FAIL: telemetry perturbed $(basename "$f")"; exit 1; }
done
for phase in parse flexcheck schedule simulate verify export; do
    grep -q "\"$phase\"" "$TMP/telemetry.json" \
        || { echo "FAIL: phase $phase missing from telemetry snapshot"; exit 1; }
    grep -q "phase=\"$phase\"" "$TMP/telemetry.json.prom" \
        || { echo "FAIL: phase $phase missing from Prometheus export"; exit 1; }
done
"$FLEXSIM" --jobs 2 stats > "$TMP/stats.txt"
grep -q '(wall)' "$TMP/stats.txt" \
    || { echo "FAIL: stats report missing the wall reconciliation row"; exit 1; }

echo "==> flexsim bench history + check (perf-regression harness)"
(cd "$TMP" && "$FLEXSIM" bench history && "$FLEXSIM" bench check)
tail -n 1 "$TMP/BENCH_history.jsonl"
grep -q 'telemetry_overhead_pct' "$TMP/BENCH_history.jsonl" \
    || { echo "FAIL: history entry missing telemetry overhead"; exit 1; }
grep -q 'prove_wall_s' "$TMP/BENCH_history.jsonl" \
    || { echo "FAIL: history entry missing prove wall time"; exit 1; }
grep -q 'tune_static_wall_s' "$TMP/BENCH_history.jsonl" \
    || { echo "FAIL: history entry missing static-tune wall time"; exit 1; }
grep -q 'workloads_total' "$TMP/BENCH_history.jsonl" \
    || { echo "FAIL: history entry missing workload-count honesty fields"; exit 1; }
grep -q 'heatmap_cells' "$TMP/BENCH_history.jsonl" \
    || { echo "FAIL: history entry missing spatial-probe honesty fields"; exit 1; }
grep -q 'spatial_overhead_pct' "$TMP/BENCH_history.jsonl" \
    || { echo "FAIL: history entry missing spatial overhead"; exit 1; }

echo "CI OK"
