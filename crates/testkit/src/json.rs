//! A tiny JSON value type, byte-stable pretty emitter, and parser.
//!
//! Replaces `serde`/`serde_json` for the experiment reports. Object
//! keys keep insertion order (no hashing), the pretty format matches
//! `serde_json::to_string_pretty` (two-space indent, `"key": value`,
//! no trailing newline), and emission is fully deterministic — so
//! committed results files diff cleanly run to run. [`Json::parse`]
//! reads any standard JSON text back (numbers without `.`/`e` become
//! [`Json::Int`], everything else [`Json::Float`]), which the
//! observability tests use to round-trip emitted Chrome traces.
//!
//! # Example
//!
//! ```
//! use flexsim_testkit::json::Json;
//!
//! let doc = Json::obj([
//!     ("id", Json::str("fig15")),
//!     ("rows", Json::arr([Json::from(1i64), Json::from(2i64)])),
//! ]);
//! assert_eq!(doc.pretty(), "{\n  \"id\": \"fig15\",\n  \"rows\": [\n    1,\n    2\n  ]\n}");
//! ```

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without decimal point).
    Int(i64),
    /// A float (emitted via Rust's shortest-roundtrip `{}` formatting).
    Float(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array of strings (the common report row shape).
    pub fn str_arr<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
        Json::Arr(items.into_iter().map(|s| Json::str(s.as_ref())).collect())
    }

    /// Parses a JSON document, requiring the whole input to be one
    /// value (surrounding whitespace allowed).
    ///
    /// Numbers lex as [`Json::Int`] when they are plain integers that
    /// fit an `i64` and as [`Json::Float`] otherwise, matching the
    /// emitter's split — `parse(v.pretty())` reproduces `v` for any
    /// finite document.
    ///
    /// # Example
    ///
    /// ```
    /// use flexsim_testkit::json::Json;
    ///
    /// let doc = Json::obj([("n", Json::Int(3)), ("ok", Json::Bool(true))]);
    /// assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    /// assert!(Json::parse("{broken").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Compact single-line form.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip; force a decimal point so the
                    // value reads back as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, depth, pretty, '[', ']', items.iter(), |out, v, d| {
                    v.write(out, d, pretty);
                });
            }
            Json::Obj(pairs) => write_seq(
                out,
                depth,
                pretty,
                '{',
                '}',
                pairs.iter(),
                |out, (k, v), d| {
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, d, pretty);
                },
            ),
        }
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map_or(Json::Float(v as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::str(v)
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_seq<T>(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut emit: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if pretty {
            out.push('\n');
            indent(out, depth + 1);
        }
        emit(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if pretty {
        out.push('\n');
        indent(out, depth);
    }
    out.push(close);
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, what: &str) -> Result<(), JsonParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',', "expected ',' or ']' in array")?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            self.expect(b',', "expected ',' or '}' in object")?;
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-control) bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // Safety of from_utf8: the input is a &str and we only
            // split at ASCII bytes, so every run is valid UTF-8.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8 run"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..0xDC00).contains(&hi) {
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        self.eat(b'-');
        if !self.digits() {
            return Err(self.err("expected digits"));
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if !self.digits() {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits() {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos > start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serde_json_pretty_layout() {
        let doc = Json::obj([
            ("id", Json::str("x")),
            ("notes", Json::str_arr(["n"])),
            (
                "table",
                Json::obj([
                    ("headers", Json::str_arr(["k"])),
                    ("rows", Json::arr([Json::str_arr(["v"])])),
                ]),
            ),
        ]);
        let want = r#"{
  "id": "x",
  "notes": [
    "n"
  ],
  "table": {
    "headers": [
      "k"
    ],
    "rows": [
      [
        "v"
      ]
    ]
  }
}"#;
        assert_eq!(doc.pretty(), want);
    }

    #[test]
    fn empty_containers_are_inline() {
        assert_eq!(Json::arr([]).pretty(), "[]");
        assert_eq!(Json::obj::<String>([]).pretty(), "{}");
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(Json::str("a\"b\\c\nd").compact(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{01}").compact(), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_textually() {
        assert_eq!(Json::Int(-7).compact(), "-7");
        assert_eq!(Json::Float(1.5).compact(), "1.5");
        assert_eq!(Json::Float(2.0).compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
        // u64 values beyond i64 fall back to Float and keep a decimal
        // point so they read back as floats.
        assert_eq!(Json::from(u64::MAX).compact(), "18446744073709552000.0");
    }

    #[test]
    fn parse_round_trips_pretty_and_compact() {
        let doc = Json::obj([
            ("id", Json::str("fig15")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("n", Json::Int(-42)),
            ("f", Json::Float(2.5)),
            (
                "rows",
                Json::arr([Json::arr([]), Json::obj::<String>([]), Json::str("a\"b\n")]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.compact()).unwrap(), doc);
    }

    #[test]
    fn parse_number_lexing_matches_the_emitter_split() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-2.5E-1").unwrap(), Json::Float(-0.25));
        // Integers beyond i64 degrade to Float, like From<u64>.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(1e20)
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041\/""#).unwrap(),
            Json::str("a\"b\\c\ndA/")
        );
        // Surrogate pair → one astral char.
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
        // Raw non-ASCII passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::str("héllo"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "01x",
            "-",
            "1.",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nullx",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn parse_tolerates_whitespace_everywhere() {
        let doc = Json::parse(" {\n \"a\" : [ 1 ,\t2 ] }\r\n").unwrap();
        assert_eq!(
            doc,
            Json::obj([("a", Json::arr([Json::Int(1), Json::Int(2)]))])
        );
    }

    #[test]
    fn emission_is_byte_stable() {
        let build = || Json::obj([("b", Json::from(2i64)), ("a", Json::from(1i64))]).pretty();
        // Insertion order, not key order — and identical across calls.
        assert_eq!(build(), "{\n  \"b\": 2,\n  \"a\": 1\n}");
        assert_eq!(build(), build());
    }
}
