//! A tiny JSON value type and byte-stable pretty emitter.
//!
//! Replaces `serde`/`serde_json` for the experiment reports. Object
//! keys keep insertion order (no hashing), the pretty format matches
//! `serde_json::to_string_pretty` (two-space indent, `"key": value`,
//! no trailing newline), and emission is fully deterministic — so
//! committed results files diff cleanly run to run.
//!
//! # Example
//!
//! ```
//! use flexsim_testkit::json::Json;
//!
//! let doc = Json::obj([
//!     ("id", Json::str("fig15")),
//!     ("rows", Json::arr([Json::from(1i64), Json::from(2i64)])),
//! ]);
//! assert_eq!(doc.pretty(), "{\n  \"id\": \"fig15\",\n  \"rows\": [\n    1,\n    2\n  ]\n}");
//! ```

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without decimal point).
    Int(i64),
    /// A float (emitted via Rust's shortest-roundtrip `{}` formatting).
    Float(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array of strings (the common report row shape).
    pub fn str_arr<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
        Json::Arr(items.into_iter().map(|s| Json::str(s.as_ref())).collect())
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Compact single-line form.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip; force a decimal point so the
                    // value reads back as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, depth, pretty, '[', ']', items.iter(), |out, v, d| {
                    v.write(out, d, pretty)
                })
            }
            Json::Obj(pairs) => write_seq(
                out,
                depth,
                pretty,
                '{',
                '}',
                pairs.iter(),
                |out, (k, v), d| {
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, d, pretty);
                },
            ),
        }
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map_or(Json::Float(v as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::str(v)
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_seq<T>(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut emit: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if pretty {
            out.push('\n');
            indent(out, depth + 1);
        }
        emit(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if pretty {
        out.push('\n');
        indent(out, depth);
    }
    out.push(close);
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serde_json_pretty_layout() {
        let doc = Json::obj([
            ("id", Json::str("x")),
            ("notes", Json::str_arr(["n"])),
            (
                "table",
                Json::obj([
                    ("headers", Json::str_arr(["k"])),
                    ("rows", Json::arr([Json::str_arr(["v"])])),
                ]),
            ),
        ]);
        let want = r#"{
  "id": "x",
  "notes": [
    "n"
  ],
  "table": {
    "headers": [
      "k"
    ],
    "rows": [
      [
        "v"
      ]
    ]
  }
}"#;
        assert_eq!(doc.pretty(), want);
    }

    #[test]
    fn empty_containers_are_inline() {
        assert_eq!(Json::arr([]).pretty(), "[]");
        assert_eq!(Json::obj::<String>([]).pretty(), "{}");
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(Json::str("a\"b\\c\nd").compact(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{01}").compact(), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_textually() {
        assert_eq!(Json::Int(-7).compact(), "-7");
        assert_eq!(Json::Float(1.5).compact(), "1.5");
        assert_eq!(Json::Float(2.0).compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
        // u64 values beyond i64 fall back to Float and keep a decimal
        // point so they read back as floats.
        assert_eq!(Json::from(u64::MAX).compact(), "18446744073709552000.0");
    }

    #[test]
    fn emission_is_byte_stable() {
        let build = || Json::obj([("b", Json::from(2i64)), ("a", Json::from(1i64))]).pretty();
        // Insertion order, not key order — and identical across calls.
        assert_eq!(build(), "{\n  \"b\": 2,\n  \"a\": 1\n}");
        assert_eq!(build(), build());
    }
}
