//! A `std::time::Instant` micro-bench runner.
//!
//! Replaces `criterion` for the workspace's bench targets while keeping
//! the cargo protocol they rely on:
//!
//! - `cargo bench` passes `--bench` to a `harness = false` target — the
//!   runner then warms up, measures `sample_size` timed samples of
//!   roughly `measurement_time / sample_size` each, and prints
//!   min/median/mean per benchmark.
//! - `cargo test` runs the same binary **without** `--bench` — the
//!   runner executes every benchmark body exactly once as a smoke test
//!   and prints nothing but a pass marker, keeping `cargo test -q`
//!   fast while still compiling and exercising every bench path.
//!
//! Any other positional argument is a substring filter on
//! `"group/benchmark"` names, as with criterion.
//!
//! # Example
//!
//! ```no_run
//! use flexsim_testkit::bench::Harness;
//!
//! fn bench(c: &mut Harness) {
//!     let mut group = c.benchmark_group("demo");
//!     group.sample_size(20);
//!     group.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
//!     group.finish();
//! }
//!
//! flexsim_testkit::bench_main!(bench);
//! ```

use std::time::{Duration, Instant};

/// Expands to a `fn main()` that drives the given bench functions
/// through a [`Harness`] built from the process arguments.
#[macro_export]
macro_rules! bench_main {
    ($($f:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Harness::from_args();
            $( $f(&mut harness); )+
            harness.finish();
        }
    };
}

/// How the runner was invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full measurement (`--bench` present; `cargo bench`).
    Measure,
    /// One iteration per benchmark (`cargo test` smoke run).
    Smoke,
}

/// Top-level bench driver; one per bench binary.
pub struct Harness {
    mode: Mode,
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    /// Builds a harness from the process arguments (cargo protocol).
    pub fn from_args() -> Self {
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                // Flags cargo/libtest may forward; ignore rather than
                // misread them as filters.
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Harness {
            mode,
            filter,
            ran: 0,
        }
    }

    /// Builds a harness with an explicit mode (for tests).
    pub fn with_mode(mode: Mode) -> Self {
        Harness {
            mode,
            filter: None,
            ran: 0,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_owned(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Prints the run summary.
    pub fn finish(self) {
        match self.mode {
            Mode::Smoke => println!("bench smoke-run ok ({} benchmarks executed once)", self.ran),
            Mode::Measure => println!("{} benchmarks measured", self.ran),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }
}

/// A named group of benchmarks sharing sampling parameters.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl Group<'_> {
    /// Sets the number of timed samples per benchmark (measure mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark (measure mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark. The closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`] with the routine to measure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.harness.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut b);
        self.harness.ran += 1;
        match (self.harness.mode, b.report) {
            (Mode::Measure, Some(r)) => println!("{full}\n{r}"),
            (Mode::Measure, None) => println!("{full}: no iter() call"),
            (Mode::Smoke, _) => {}
        }
    }

    /// Closes the group (parity with the criterion API; no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; measures the routine given to
/// [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measures (or, in smoke mode, simply runs once) the routine.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit one sample slot?
        let slot = self.measurement_time.max(Duration::from_millis(100)) / self.sample_size as u32;
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (slot.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.report = Some(Report {
            min,
            median,
            mean,
            samples: samples.len(),
            iters,
        });
    }
}

/// Per-benchmark timing summary (nanoseconds per iteration).
#[derive(Clone, Copy, Debug)]
struct Report {
    min: f64,
    median: f64,
    mean: f64,
    samples: usize,
    iters: u64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "                        time: [{} {} {}]  ({} samples × {} iters; min median mean)",
            fmt_ns(self.min),
            fmt_ns(self.median),
            fmt_ns(self.mean),
            self.samples,
            self.iters
        )
    }
}

/// Formats nanoseconds with an adaptive unit, criterion-style.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut h = Harness::with_mode(Mode::Smoke);
        let count = std::cell::Cell::new(0u32);
        let mut g = h.benchmark_group("g");
        g.bench_function("a", |b| b.iter(|| count.set(count.get() + 1)));
        g.bench_function("b", |b| b.iter(|| count.set(count.get() + 1)));
        g.finish();
        assert_eq!(count.get(), 2);
        assert_eq!(h.ran, 2);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut h = Harness::with_mode(Mode::Measure);
        let mut g = h.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(30));
        let mut observed = None;
        g.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
            observed = b.report;
        });
        let r = observed.expect("measure mode must produce a report");
        assert_eq!(r.samples, 3);
        assert!(r.min <= r.median && r.median > 0.0);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
