//! A minimal property-testing harness with shrinking.
//!
//! Replaces `proptest` for this workspace. A property is a closure
//! `Fn(&T) -> Result<(), String>` checked against `cases` values drawn
//! from a [`Strategy`]. On failure the harness greedily shrinks the
//! input to a minimal counterexample and panics with the case seed and
//! exact reproduction instructions.
//!
//! Environment overrides (all optional):
//!
//! - `FLEXSIM_PROP_CASES=<n>` — run `n` cases per property instead of
//!   the per-call default.
//! - `FLEXSIM_PROP_SEED=<u64>` — override the run seed (the per-case
//!   seeds derive from it).
//! - `FLEXSIM_PROP_REPLAY=<u64>` — re-run exactly one case from its
//!   printed seed (what a failure message tells you to do).
//!
//! # Example
//!
//! ```
//! use flexsim_testkit::prop;
//! use flexsim_testkit::prop_assert;
//!
//! prop::check("addition_commutes", 64, (0i32..=100, 0i32..=100), |&(a, b)| {
//!     prop_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::rng::{RangeSample, SplitMix64};
use std::fmt::Debug;
use std::ops::RangeInclusive;

/// Maximum resampling attempts for [`filter`] before giving up.
const MAX_REJECTS: u32 = 10_000;
/// Maximum property evaluations spent shrinking a counterexample.
const MAX_SHRINK_EVALS: u32 = 2_000;

/// A generator of test inputs that also knows how to shrink them.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing value.
    /// Ordering matters: the harness tries candidates front to back and
    /// greedily recurses on the first that still fails.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// The outcome of a property on one input.
pub type PropResult = Result<(), String>;

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can shrink. Use within closures passed to
/// [`check`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property; see
/// [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Checks `prop` against `default_cases` values drawn from `strategy`.
///
/// # Panics
///
/// Panics with a shrunk counterexample, its case seed, and replay
/// instructions if any case fails.
// Strategies are deliberately taken by value: call sites pass tuple
// literals like `(0..=100, 0..=100)` and the harness owns them for the
// whole run.
#[allow(clippy::needless_pass_by_value)]
pub fn check<S: Strategy>(
    name: &str,
    default_cases: u32,
    strategy: S,
    prop: impl Fn(&S::Value) -> PropResult,
) {
    if let Some(seed) = env_u64("FLEXSIM_PROP_REPLAY") {
        let value = strategy.generate(&mut SplitMix64::new(seed));
        if let Err(msg) = prop(&value) {
            report_failure(name, &strategy, &prop, &value, &msg, seed, 0);
        }
        return;
    }
    let cases = env_u64("FLEXSIM_PROP_CASES").map_or(default_cases, |v| v as u32);
    let run_seed = env_u64("FLEXSIM_PROP_SEED").unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut master = SplitMix64::new(run_seed);
    for case in 0..cases {
        let (case_seed, mut rng) = master.split();
        let value = strategy.generate(&mut rng);
        if let Err(msg) = prop(&value) {
            report_failure(name, &strategy, &prop, &value, &msg, case_seed, case);
        }
    }
}

/// Greedily minimizes a failing input, then panics with the verdict.
fn report_failure<S: Strategy>(
    name: &str,
    strategy: &S,
    prop: &impl Fn(&S::Value) -> PropResult,
    original: &S::Value,
    original_msg: &str,
    case_seed: u64,
    case: u32,
) -> ! {
    let mut best = original.clone();
    let mut best_msg = original_msg.to_owned();
    let mut evals = 0u32;
    let mut shrunk_steps = 0u32;
    'outer: loop {
        for candidate in strategy.shrink(&best) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if let Err(msg) = prop(&candidate) {
                best = candidate;
                best_msg = msg;
                shrunk_steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    panic!(
        "property `{name}` failed at case {case} (seed {case_seed})\n\
         original input: {original:?}\n  original error: {original_msg}\n\
         shrunk input ({shrunk_steps} steps): {best:?}\n  shrunk error: {best_msg}\n\
         reproduce with: FLEXSIM_PROP_REPLAY={case_seed} cargo test -q {name}"
    );
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{key} must be a u64, got {raw:?}"),
    }
}

/// FNV-1a 64-bit hash — gives each property a stable default seed.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Integer ranges are strategies; values shrink toward the low bound.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SplitMix64) -> $t {
                <$t as RangeSample>::sample(rng, self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = *self.start();
                let v = *value;
                if v == lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                // Halve the distance to the low bound, then step by one:
                // converges in O(log span) greedy rounds.
                let half = lo + (v - lo) / 2;
                if half != lo && half != v {
                    out.push(half);
                }
                out.push(v - 1);
                out.retain(|c| *c >= lo && *c < v);
                out.dedup();
                out
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A constant strategy (never shrinks).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

/// Uniform booleans; `true` shrinks to `false`.
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
#[derive(Clone, Debug)]
pub struct Bools;

impl Strategy for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut SplitMix64) -> bool {
        rng.gen_bool()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// `Option<T>` with a 50% `None` rate; `Some(v)` shrinks to `None` and
/// to `Some(shrunk v)`.
pub fn option_of<S: Strategy>(inner: S) -> OptionOf<S> {
    OptionOf { inner }
}

/// See [`option_of`].
#[derive(Clone, Debug)]
pub struct OptionOf<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
        if rng.gen_bool() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        match value {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(self.inner.shrink(v).into_iter().map(Some));
                out
            }
        }
    }
}

/// Vectors with a length drawn from `len` and elements from `elem`.
/// Shrinks by dropping elements (from the back, then halving), then by
/// shrinking individual elements.
pub fn vec_of<S: Strategy>(elem: S, len: RangeInclusive<usize>) -> VecOf<S> {
    VecOf { elem, len }
}

/// See [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecOf<S> {
    elem: S,
    len: RangeInclusive<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let min_len = *self.len.start();
        if value.len() > min_len {
            let half = (value.len() / 2).max(min_len);
            out.push(value[..half].to_vec());
            out.push(value[..value.len() - 1].to_vec());
        }
        for (i, v) in value.iter().enumerate() {
            for c in self.elem.shrink(v) {
                let mut copy = value.clone();
                copy[i] = c;
                out.push(copy);
            }
        }
        out
    }
}

/// Rejection-samples `inner` until `pred` holds (up to an attempt cap).
/// Shrink candidates that fail `pred` are discarded, so shrinking stays
/// inside the valid domain.
pub fn filter<S, F>(inner: S, pred: F) -> Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    Filter { inner, pred }
}

/// See [`filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("filter rejected {MAX_REJECTS} samples in a row; loosen the predicate or the base strategy");
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = self.inner.shrink(value);
        out.retain(|v| (self.pred)(v));
        out
    }
}

/// Tuples of strategies generate element-wise and shrink one component
/// at a time (left to right), which minimizes the leftmost — typically
/// most structural — fields first.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = c;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        // Interior mutability via Cell keeps the prop Fn.
        let count = std::cell::Cell::new(0u32);
        check("counts_cases", 17, 0u32..=10, |_| {
            count.set(count.get() + 1);
            Ok(())
        });
        n += count.get();
        assert_eq!(n, 17);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let caught = std::panic::catch_unwind(|| {
            check("shrinks_to_ten", 200, 0u64..=10_000, |&v| {
                prop_assert!(v < 10, "{v} too big");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        // Greedy shrinking must land exactly on the boundary value.
        assert!(
            msg.contains("shrunk input") && msg.contains(": 10\n"),
            "unexpected failure report: {msg}"
        );
        assert!(
            msg.contains("FLEXSIM_PROP_REPLAY="),
            "no replay hint: {msg}"
        );
    }

    #[test]
    fn tuple_shrink_minimizes_each_axis() {
        let caught = std::panic::catch_unwind(|| {
            check(
                "tuple_shrink",
                300,
                (1usize..=64, 1usize..=64),
                |&(a, b)| {
                    prop_assert!(a * b < 9, "product {}", a * b);
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        // Minimal counterexamples of a*b >= 9 with the other axis at
        // its 1 minimum: (1, 9) or (9, 1) or (3, 3) after greedy order.
        assert!(
            msg.contains("(1, 9)") || msg.contains("(9, 1)"),
            "tuple shrink not minimal: {msg}"
        );
    }

    #[test]
    fn filter_keeps_domain_during_shrink() {
        let even = filter(0u32..=100, |v| v % 2 == 0);
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        for c in even.shrink(&40) {
            assert_eq!(c % 2, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let s = vec_of(0u8..=5, 2..=6);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
        }
        for c in s.shrink(&vec![1, 2, 3, 4]) {
            assert!(c.len() >= 2);
        }
    }

    #[test]
    fn deterministic_given_fixed_seed() {
        std::env::remove_var("FLEXSIM_PROP_SEED");
        let collect = |name: &str| {
            let out = std::cell::RefCell::new(Vec::new());
            check(name, 8, 0u64..=1_000_000, |&v| {
                out.borrow_mut().push(v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect("det"), collect("det"));
        assert_ne!(collect("det"), collect("det2"));
    }
}
