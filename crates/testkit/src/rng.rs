//! Deterministic pseudorandom numbers without external crates.
//!
//! [`SplitMix64`] is the 64-bit finalizer-based generator of Steele,
//! Lea & Flood ("Fast splittable pseudorandom number generators",
//! OOPSLA'14). It passes BigCrush, needs only a single `u64` of state,
//! and — critically for a verification harness — is trivially
//! reproducible from a printed seed on any platform.

use std::ops::RangeInclusive;

/// A 64-bit SplitMix64 generator.
///
/// # Example
///
/// ```
/// use flexsim_testkit::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v: i16 = a.gen_range(-512i16..=512);
/// assert!((-512..=512).contains(&v));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Alias for [`SplitMix64::new`], mirroring the `rand` idiom the
    /// workspace used before going hermetic.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit word (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses rejection from the top of the range, so the distribution is
    /// exactly uniform (no modulo bias).
    pub fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded(0) is meaningless");
        // Largest multiple of n that fits in u64.
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in an inclusive range of any primitive integer
    /// type.
    pub fn gen_range<T: RangeSample>(&mut self, range: RangeInclusive<T>) -> T {
        T::sample(self, range)
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Fills a slice using a per-element generator.
    pub fn fill_with<T>(&mut self, dest: &mut [T], mut f: impl FnMut(&mut Self) -> T) {
        for slot in dest {
            *slot = f(self);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.bounded(slice.len() as u64) as usize]
    }

    /// Derives an independent child generator (the "split" in
    /// SplitMix). Used by the property harness to give every case its
    /// own printable seed.
    pub fn split(&mut self) -> (u64, SplitMix64) {
        let seed = self.next_u64();
        (seed, SplitMix64::new(seed))
    }
}

/// Integer types that can be sampled uniformly from an inclusive range.
pub trait RangeSample: Copy + PartialOrd {
    /// Samples uniformly from `range` (inclusive on both ends).
    fn sample(rng: &mut SplitMix64, range: RangeInclusive<Self>) -> Self;
}

macro_rules! impl_range_sample_signed {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            // `isize`/`usize` have no `From` into the 128-bit domain,
            // so the widening casts below must stay `as` casts.
            #[allow(clippy::cast_lossless)]
            fn sample(rng: &mut SplitMix64, range: RangeInclusive<Self>) -> Self {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                if span >= u64::MAX as u128 {
                    return rng.next_u64() as Self;
                }
                let off = rng.bounded(span as u64 + 1);
                (lo as i128 + off as i128) as Self
            }
        }
    )*};
}

macro_rules! impl_range_sample_unsigned {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            // `isize`/`usize` have no `From` into the 128-bit domain,
            // so the widening casts below must stay `as` casts.
            #[allow(clippy::cast_lossless)]
            fn sample(rng: &mut SplitMix64, range: RangeInclusive<Self>) -> Self {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "empty sample range");
                let span = hi as u128 - lo as u128;
                if span >= u64::MAX as u128 {
                    return rng.next_u64() as Self;
                }
                let off = rng.bounded(span as u64 + 1);
                (lo as u128 + off as u128) as Self
            }
        }
    )*};
}

impl_range_sample_signed!(i8, i16, i32, i64, isize);
impl_range_sample_unsigned!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 C implementation (Vigna).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_ends() {
        let mut r = SplitMix64::new(7);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.gen_range(-3i16..=3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen, "uniform sampler never hit an endpoint");
        assert_eq!(r.gen_range(5usize..=5), 5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input in order");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(3);
        let (seed, mut child) = parent.split();
        assert_eq!(SplitMix64::new(seed).next_u64(), child.next_u64());
    }
}
