//! # flexsim-testkit
//!
//! Hermetic, std-only testing substrate for the FlexFlow reproduction.
//! The build environment has no crates.io access, so everything the
//! workspace needs for verification lives here, with zero external
//! dependencies:
//!
//! - [`rng`] — a deterministic [SplitMix64](rng::SplitMix64) PRNG with
//!   the small surface the simulators use (ranges, fills, shuffles).
//! - [`prop`] — a minimal property-testing harness
//!   ([`prop::check`]) with input shrinking on failure and
//!   env-overridable case count / seed / replay.
//! - [`json`] — a tiny JSON value type and byte-stable pretty emitter
//!   (insertion-ordered keys, two-space indent) so results files diff
//!   cleanly across runs.
//! - [`bench`] — a `std::time::Instant` micro-bench runner speaking the
//!   cargo bench protocol (`--bench` ⇒ measure, otherwise smoke-run).
//!
//! Everything is deterministic by construction: the same seed always
//! produces the same samples, shrink sequences, and JSON bytes.
#![forbid(unsafe_code)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use rng::SplitMix64;
