//! Cycle-domain event sinks.
//!
//! Simulators emit what happens *inside* a layer — tile passes,
//! pipeline fills, stalls, partial-sum spills — as [`CycleEvent`]s
//! timestamped in simulated engine cycles. Every event carries a
//! [`StallCause`] naming *why* its idle PE-cycles were lost, so the
//! per-layer [`crate::attrib::LossLedger`] can attribute utilization
//! exactly. The [`CycleSink`] trait has no-op defaults and simulators
//! hold it behind a [`SinkHandle`] whose unattached state is a single
//! `Option` check, so instrumentation costs nothing when tracing is
//! disabled.
//!
//! [`CycleRecorder`] collects events into per-layer timelines for
//! occupancy analysis and Chrome trace export. [`Coalescer`] merges
//! fine-grained emission (one event per tile/pass) down to a bounded
//! number of events per layer while preserving exact cycle and MAC
//! totals.

use crate::attrib::StallCause;
use crate::occupancy::OccupancyTimeline;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Identity of the layer a sink is currently receiving events for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerCtx {
    /// Architecture name (`"FlexFlow"`, `"Systolic"`, …).
    pub arch: String,
    /// Layer name (`"C3"`).
    pub layer: String,
    /// Total PEs in the engine (the occupancy denominator).
    pub pe_count: u32,
    /// Id of the experiment this layer ran under (empty when the run
    /// is not part of an experiment sweep). Stamped by
    /// [`SinkHandle::tagged`] so multi-experiment traces stay
    /// attributable.
    pub experiment: String,
}

impl LayerCtx {
    /// Builds a context (no experiment attribution).
    pub fn new(arch: impl Into<String>, layer: impl Into<String>, pe_count: u32) -> LayerCtx {
        LayerCtx {
            arch: arch.into(),
            layer: layer.into(),
            pe_count,
            experiment: String::new(),
        }
    }

    /// Returns the context re-tagged with an owning experiment id.
    pub fn for_experiment(mut self, experiment: impl Into<String>) -> LayerCtx {
        self.experiment = experiment.into();
        self
    }
}

/// What a cycle-domain event represents. Both variants carry the
/// [`StallCause`] that their lost PE-cycles are attributed to:
///
/// * a `Stall` loses its *entire* `cycles × pe_count` budget;
/// * a `Pass` computes, and only its idle remainder
///   (`cycles × pe_count − macs`) is attributed to the cause — e.g. a
///   pass over an edge tile carries [`StallCause::EdgeFragmentation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleEventKind {
    /// A compute pass over one or more tiles/row-batches; the cause
    /// labels the pass's idle PE remainder.
    Pass(StallCause),
    /// A zero-MAC span (fill, drain, spill, wait); the cause labels the
    /// whole span.
    Stall(StallCause),
}

impl CycleEventKind {
    /// Number of distinct kinds (2 shapes × [`StallCause::COUNT`]).
    pub const COUNT: usize = 2 * StallCause::COUNT;

    /// Short display name — `"pass"` for compute spans, the cause's
    /// kebab-case name for stalls (so a Chrome trace reads
    /// `pipeline-fill`/`psum-spill` directly).
    pub fn name(&self) -> &'static str {
        match self {
            CycleEventKind::Pass(_) => "pass",
            CycleEventKind::Stall(cause) => cause.name(),
        }
    }

    /// The cause this event's lost PE-cycles are attributed to.
    pub fn cause(&self) -> StallCause {
        match self {
            CycleEventKind::Pass(cause) | CycleEventKind::Stall(cause) => *cause,
        }
    }

    /// Dense index in `[0, CycleEventKind::COUNT)` — passes first, then
    /// stalls, cause order within each.
    pub fn index(&self) -> usize {
        match self {
            CycleEventKind::Pass(cause) => cause.index(),
            CycleEventKind::Stall(cause) => StallCause::COUNT + cause.index(),
        }
    }
}

/// One cycle-domain event: a half-open span of simulated time,
/// `[start_cycle, start_cycle + cycles)`, during which `macs` useful
/// MACs executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleEvent {
    /// Event kind (shape + loss cause).
    pub kind: CycleEventKind,
    /// First cycle of the span.
    pub start_cycle: u64,
    /// Span length in cycles.
    pub cycles: u64,
    /// Useful MACs executed during the span (0 for stalls).
    pub macs: u64,
}

impl CycleEvent {
    /// Builds an event.
    pub fn new(kind: CycleEventKind, start_cycle: u64, cycles: u64, macs: u64) -> CycleEvent {
        CycleEvent {
            kind,
            start_cycle,
            cycles,
            macs,
        }
    }

    /// One-past-the-last cycle of the span.
    pub fn end_cycle(&self) -> u64 {
        self.start_cycle + self.cycles
    }
}

/// A receiver of cycle-domain events. Every method is a no-op by
/// default and [`CycleSink::enabled`] defaults to `false`, so a unit
/// implementation is a valid do-nothing sink and simulators can skip
/// event synthesis entirely when nothing is listening.
pub trait CycleSink: Send + Sync {
    /// Whether the sink wants events at all. Simulators must check this
    /// before doing any per-tile work.
    fn enabled(&self) -> bool {
        false
    }
    /// A layer's event stream is starting.
    fn begin_layer(&self, _ctx: &LayerCtx) {}
    /// One event within the current layer.
    fn emit(&self, _ev: &CycleEvent) {}
    /// The current layer's event stream is complete.
    fn end_layer(&self) {}
}

/// A cloneable, optionally-attached handle to a shared sink — the field
/// every simulator stores. The default (unattached) handle makes all
/// operations no-ops.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn CycleSink>>);

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(attached)"
        } else {
            "SinkHandle(none)"
        })
    }
}

impl SinkHandle {
    /// An unattached handle (all operations no-ops).
    pub fn none() -> SinkHandle {
        SinkHandle(None)
    }

    /// Wraps a shared sink.
    pub fn new(sink: Arc<dyn CycleSink>) -> SinkHandle {
        SinkHandle(Some(sink))
    }

    /// Whether a sink is attached (it may still be disabled).
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Whether events should be synthesized and emitted.
    pub fn enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|s| s.enabled())
    }

    /// Forwards to the sink, if attached.
    pub fn begin_layer(&self, ctx: &LayerCtx) {
        if let Some(sink) = &self.0 {
            sink.begin_layer(ctx);
        }
    }

    /// Forwards to the sink, if attached.
    pub fn emit(&self, ev: &CycleEvent) {
        if let Some(sink) = &self.0 {
            sink.emit(ev);
        }
    }

    /// Forwards to the sink, if attached.
    pub fn end_layer(&self) {
        if let Some(sink) = &self.0 {
            sink.end_layer();
        }
    }

    /// Returns a handle that stamps `experiment` onto the
    /// [`LayerCtx`] of every `begin_layer` it forwards, so cycle
    /// records from a multi-experiment sweep remain attributable to
    /// their owning experiment. An unattached handle stays unattached
    /// (still free when tracing is off).
    pub fn tagged(&self, experiment: &str) -> SinkHandle {
        match &self.0 {
            None => SinkHandle(None),
            Some(inner) => SinkHandle(Some(Arc::new(ExperimentTag {
                experiment: experiment.to_owned(),
                inner: Arc::clone(inner),
            }))),
        }
    }
}

/// A pass-through sink that stamps an experiment id onto layer
/// contexts (see [`SinkHandle::tagged`]).
struct ExperimentTag {
    experiment: String,
    inner: Arc<dyn CycleSink>,
}

impl CycleSink for ExperimentTag {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn begin_layer(&self, ctx: &LayerCtx) {
        self.inner
            .begin_layer(&ctx.clone().for_experiment(self.experiment.clone()));
    }

    fn emit(&self, ev: &CycleEvent) {
        self.inner.emit(ev);
    }

    fn end_layer(&self) {
        self.inner.end_layer();
    }
}

/// The complete event stream of one simulated layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerTimeline {
    /// Which layer, on which architecture.
    pub ctx: LayerCtx,
    /// Events in emission order (non-decreasing `start_cycle`).
    pub events: Vec<CycleEvent>,
}

impl LayerTimeline {
    /// Total simulated cycles covered (the max event end).
    pub fn total_cycles(&self) -> u64 {
        self.events
            .iter()
            .map(CycleEvent::end_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Total useful MACs across events.
    pub fn macs(&self) -> u64 {
        self.events.iter().map(|e| e.macs).sum()
    }

    /// Builds the run-length-encoded occupancy timeline (gaps between
    /// events count as idle).
    pub fn occupancy(&self) -> OccupancyTimeline {
        let pe = f64::from(self.ctx.pe_count.max(1));
        let mut segments: Vec<(u64, f64)> = Vec::with_capacity(self.events.len());
        let mut cursor = 0u64;
        for ev in &self.events {
            if ev.start_cycle > cursor {
                segments.push((ev.start_cycle - cursor, 0.0));
            }
            if ev.cycles > 0 {
                let frac = ev.macs as f64 / (ev.cycles as f64 * pe);
                segments.push((ev.cycles, frac));
            }
            cursor = cursor.max(ev.end_cycle());
        }
        OccupancyTimeline::from_segments(self.ctx.pe_count, segments)
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    done: Vec<LayerTimeline>,
    open: Vec<LayerTimeline>,
}

/// A [`CycleSink`] that records every event into per-layer timelines.
///
/// `begin_layer`/`end_layer` pairs nest as a stack, matching the
/// single-threaded emission discipline of the simulators.
#[derive(Debug, Default)]
pub struct CycleRecorder {
    inner: Mutex<RecorderInner>,
}

impl CycleRecorder {
    /// Creates an empty recorder.
    pub fn new() -> CycleRecorder {
        CycleRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Copies out every completed layer timeline.
    pub fn timelines(&self) -> Vec<LayerTimeline> {
        self.lock().done.clone()
    }

    /// Drains every completed layer timeline.
    pub fn take(&self) -> Vec<LayerTimeline> {
        std::mem::take(&mut self.lock().done)
    }
}

impl CycleSink for CycleRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn begin_layer(&self, ctx: &LayerCtx) {
        self.lock().open.push(LayerTimeline {
            ctx: ctx.clone(),
            events: Vec::new(),
        });
    }

    fn emit(&self, ev: &CycleEvent) {
        if let Some(current) = self.lock().open.last_mut() {
            current.events.push(*ev);
        }
    }

    fn end_layer(&self) {
        let mut inner = self.lock();
        if let Some(done) = inner.open.pop() {
            inner.done.push(done);
        }
    }
}

/// Target number of events a [`Coalescer`] flushes per layer.
pub const MAX_EVENTS_PER_LAYER: usize = 256;

/// Exact totals accumulated by a [`Coalescer`] over one layer, returned
/// by [`Coalescer::finish`] so every emitter can `debug_assert` its
/// event stream against the analytic schedule (the dynamic half of
/// flexcheck's FXC08/FXC09 guards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalescerTotals {
    /// Total cycles emitted (the final timeline cursor).
    pub cycles: u64,
    /// Total useful MACs emitted.
    pub macs: u64,
}

/// Merges fine-grained emission into at most ~[`MAX_EVENTS_PER_LAYER`]
/// flushes while preserving exact per-kind cycle and MAC totals.
///
/// Callers stream logical steps via [`Coalescer::push`] (one or more
/// pushes per step, then [`Coalescer::step`]); the coalescer buffers
/// per-kind totals and flushes a merged burst every
/// `ceil(total_steps / MAX_EVENTS_PER_LAYER)` steps. Each
/// `(shape, cause)` kind keeps its own accumulator slot, so losses with
/// different causes never blur together. Within a merged burst the
/// kinds are emitted back to back in [`KIND_ORDER`] (an idealization:
/// real interleaving below the flush granularity is not preserved, but
/// per-kind cycle and MAC totals are exact).
pub struct Coalescer<'a> {
    sink: &'a SinkHandle,
    every: u64,
    steps_in_group: u64,
    totals: CoalescerTotals,
    cursor: u64,
    // Accumulated (cycles, macs) per kind, indexed by
    // `CycleEventKind::index()`.
    acc: [(u64, u64); CycleEventKind::COUNT],
}

/// Deterministic flush order within one merged burst: leading stalls
/// (fill, operand wait), then compute passes, then trailing stalls
/// (spill, drain, residual causes).
pub const KIND_ORDER: [CycleEventKind; CycleEventKind::COUNT] = [
    CycleEventKind::Stall(StallCause::PipelineFill),
    CycleEventKind::Stall(StallCause::BufferBandwidthWait),
    CycleEventKind::Pass(StallCause::PipelineFill),
    CycleEventKind::Pass(StallCause::PipelineDrain),
    CycleEventKind::Pass(StallCause::EdgeFragmentation),
    CycleEventKind::Pass(StallCause::AdderTreeContention),
    CycleEventKind::Pass(StallCause::BufferBandwidthWait),
    CycleEventKind::Pass(StallCause::PsumSpillRoundTrip),
    CycleEventKind::Pass(StallCause::MappingResidueIdle),
    CycleEventKind::Stall(StallCause::PsumSpillRoundTrip),
    CycleEventKind::Stall(StallCause::PipelineDrain),
    CycleEventKind::Stall(StallCause::EdgeFragmentation),
    CycleEventKind::Stall(StallCause::AdderTreeContention),
    CycleEventKind::Stall(StallCause::MappingResidueIdle),
];

impl<'a> Coalescer<'a> {
    /// Creates a coalescer expecting `total_steps` logical steps.
    pub fn new(sink: &'a SinkHandle, total_steps: u64) -> Coalescer<'a> {
        Coalescer {
            sink,
            every: total_steps.div_ceil(MAX_EVENTS_PER_LAYER as u64).max(1),
            steps_in_group: 0,
            totals: CoalescerTotals::default(),
            cursor: 0,
            acc: [(0, 0); CycleEventKind::COUNT],
        }
    }

    /// Accumulates `cycles`/`macs` under `kind` for the current step.
    pub fn push(&mut self, kind: CycleEventKind, cycles: u64, macs: u64) {
        let (c, m) = &mut self.acc[kind.index()];
        *c += cycles;
        *m += macs;
        self.totals.cycles += cycles;
        self.totals.macs += macs;
    }

    /// Marks the end of one logical step, flushing if the group is full.
    pub fn step(&mut self) {
        self.steps_in_group += 1;
        if self.steps_in_group >= self.every {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for kind in KIND_ORDER {
            let (cycles, macs) = self.acc[kind.index()];
            if cycles > 0 {
                self.sink
                    .emit(&CycleEvent::new(kind, self.cursor, cycles, macs));
                self.cursor += cycles;
            }
        }
        self.acc = [(0, 0); CycleEventKind::COUNT];
        self.steps_in_group = 0;
    }

    /// Flushes any buffered remainder and returns the exact cycle and
    /// MAC totals emitted, for the caller's schedule-consistency
    /// `debug_assert`s.
    pub fn finish(mut self) -> CoalescerTotals {
        self.flush();
        debug_assert_eq!(
            self.totals.cycles, self.cursor,
            "coalescer cursor diverged from pushed cycle total"
        );
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_sink_is_a_noop() {
        struct Unit;
        impl CycleSink for Unit {}
        let sink = SinkHandle::new(Arc::new(Unit));
        assert!(sink.is_attached());
        assert!(!sink.enabled());
        // No panic on forwarding.
        sink.begin_layer(&LayerCtx::new("a", "b", 1));
        sink.emit(&CycleEvent::new(
            CycleEventKind::Pass(StallCause::MappingResidueIdle),
            0,
            1,
            1,
        ));
        sink.end_layer();
    }

    #[test]
    fn default_handle_is_disabled() {
        let sink = SinkHandle::default();
        assert!(!sink.is_attached());
        assert!(!sink.enabled());
        assert_eq!(format!("{sink:?}"), "SinkHandle(none)");
    }

    #[test]
    fn kind_indices_cover_kind_order_bijectively() {
        let mut seen = [false; CycleEventKind::COUNT];
        for kind in KIND_ORDER {
            assert!(!seen[kind.index()], "{kind:?} index collides");
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(
            CycleEventKind::Stall(StallCause::PipelineFill).name(),
            "pipeline-fill"
        );
        assert_eq!(
            CycleEventKind::Pass(StallCause::EdgeFragmentation).name(),
            "pass"
        );
        assert_eq!(
            CycleEventKind::Pass(StallCause::EdgeFragmentation).cause(),
            StallCause::EdgeFragmentation
        );
    }

    #[test]
    fn recorder_collects_per_layer() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone());
        assert!(sink.enabled());
        sink.begin_layer(&LayerCtx::new("FlexFlow", "C1", 256));
        sink.emit(&CycleEvent::new(
            CycleEventKind::Stall(StallCause::PipelineFill),
            0,
            8,
            0,
        ));
        sink.emit(&CycleEvent::new(
            CycleEventKind::Pass(StallCause::MappingResidueIdle),
            8,
            100,
            20_000,
        ));
        sink.end_layer();
        sink.begin_layer(&LayerCtx::new("FlexFlow", "C3", 256));
        sink.emit(&CycleEvent::new(
            CycleEventKind::Pass(StallCause::MappingResidueIdle),
            0,
            10,
            2_000,
        ));
        sink.end_layer();
        let tl = rec.take();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].ctx.layer, "C1");
        assert_eq!(tl[0].total_cycles(), 108);
        assert_eq!(tl[0].macs(), 20_000);
        assert!(rec.take().is_empty());
    }

    #[test]
    fn timeline_occupancy_fills_gaps_as_idle() {
        let pass = CycleEventKind::Pass(StallCause::EdgeFragmentation);
        let tl = LayerTimeline {
            ctx: LayerCtx::new("a", "l", 4),
            events: vec![
                CycleEvent::new(pass, 0, 10, 40), // full
                CycleEvent::new(pass, 20, 10, 0), // idle
            ],
        };
        let occ = tl.occupancy();
        assert_eq!(occ.cycles(), 30);
        // 10 full cycles of 30.
        assert!((occ.utilization() - 10.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn coalescer_preserves_totals_and_caps_events() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone());
        sink.begin_layer(&LayerCtx::new("a", "l", 16));
        let steps = 10_000u64;
        let mut co = Coalescer::new(&sink, steps);
        for _ in 0..steps {
            co.push(CycleEventKind::Stall(StallCause::PipelineFill), 2, 0);
            co.push(CycleEventKind::Pass(StallCause::MappingResidueIdle), 5, 37);
            co.step();
        }
        let totals = co.finish();
        sink.end_layer();
        assert_eq!(totals.cycles, steps * 7);
        assert_eq!(totals.macs, steps * 37);
        let tl = rec.take();
        assert_eq!(tl.len(), 1);
        assert!(tl[0].events.len() <= 2 * MAX_EVENTS_PER_LAYER + 2);
        assert_eq!(tl[0].total_cycles(), steps * 7);
        assert_eq!(tl[0].macs(), steps * 37);
        // Events tile the timeline with no overlap.
        let mut cursor = 0;
        for ev in &tl[0].events {
            assert_eq!(ev.start_cycle, cursor);
            cursor = ev.end_cycle();
        }
    }

    #[test]
    fn coalescer_flushes_the_remainder_at_the_layer_boundary() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone());
        sink.begin_layer(&LayerCtx::new("a", "L1", 4));
        // 1000 expected steps → flush every 4; push only 2, so the
        // whole layer sits buffered until `finish`.
        let mut co = Coalescer::new(&sink, 1000);
        co.push(CycleEventKind::Pass(StallCause::MappingResidueIdle), 5, 9);
        co.step();
        co.push(CycleEventKind::Stall(StallCause::PipelineFill), 3, 0);
        co.step();
        let totals = co.finish();
        sink.end_layer();
        assert_eq!(totals, CoalescerTotals { cycles: 8, macs: 9 });
        let tls = rec.take();
        assert_eq!(tls.len(), 1);
        let tl = &tls[0];
        assert_eq!(tl.total_cycles(), 8);
        assert_eq!(tl.macs(), 9);
        // A single boundary flush in KIND_ORDER: had an intermediate
        // flush happened, the pass (step 1) would precede the stall.
        assert_eq!(tl.events.len(), 2);
        assert_eq!(
            tl.events[0].kind,
            CycleEventKind::Stall(StallCause::PipelineFill)
        );
        assert_eq!(tl.events[0].start_cycle, 0);
        assert_eq!(
            tl.events[1].kind,
            CycleEventKind::Pass(StallCause::MappingResidueIdle)
        );
        assert_eq!(tl.events[1].start_cycle, 3);

        // The next layer's coalescer starts a fresh cursor at 0.
        sink.begin_layer(&LayerCtx::new("a", "L2", 4));
        let mut co = Coalescer::new(&sink, 1000);
        co.push(CycleEventKind::Pass(StallCause::EdgeFragmentation), 7, 7);
        co.step();
        co.finish();
        sink.end_layer();
        let tls = rec.take();
        assert_eq!(tls.len(), 1);
        assert_eq!(tls[0].events[0].start_cycle, 0);
        assert_eq!(tls[0].total_cycles(), 7);
    }

    #[test]
    fn coalescer_keeps_causes_in_separate_events() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone());
        sink.begin_layer(&LayerCtx::new("a", "l", 4));
        let mut co = Coalescer::new(&sink, 2);
        co.push(CycleEventKind::Pass(StallCause::EdgeFragmentation), 10, 30);
        co.step();
        co.push(
            CycleEventKind::Pass(StallCause::AdderTreeContention),
            10,
            35,
        );
        co.step();
        let totals = co.finish();
        sink.end_layer();
        assert_eq!(totals.cycles, 20);
        assert_eq!(totals.macs, 65);
        let tl = rec.take();
        let causes: Vec<StallCause> = tl[0].events.iter().map(|e| e.kind.cause()).collect();
        assert_eq!(
            causes,
            vec![
                StallCause::EdgeFragmentation,
                StallCause::AdderTreeContention
            ]
        );
    }

    #[test]
    fn tagged_handle_stamps_experiment_on_layer_ctx() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone()).tagged("fig15");
        assert!(sink.enabled());
        sink.begin_layer(&LayerCtx::new("FlexFlow", "C1", 256));
        sink.emit(&CycleEvent::new(
            CycleEventKind::Pass(StallCause::MappingResidueIdle),
            0,
            10,
            100,
        ));
        sink.end_layer();
        let tl = rec.take();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].ctx.experiment, "fig15");
        assert_eq!(tl[0].ctx.layer, "C1");
        assert_eq!(tl[0].macs(), 100);
        // Tagging an unattached handle stays unattached.
        assert!(!SinkHandle::none().tagged("fig15").is_attached());
    }
}
