//! Cycle-domain event sinks.
//!
//! Simulators emit what happens *inside* a layer — tile passes,
//! pipeline fills, stalls, partial-sum spills — as [`CycleEvent`]s
//! timestamped in simulated engine cycles. The [`CycleSink`] trait has
//! no-op defaults and simulators hold it behind a [`SinkHandle`] whose
//! unattached state is a single `Option` check, so instrumentation
//! costs nothing when tracing is disabled.
//!
//! [`CycleRecorder`] collects events into per-layer timelines for
//! occupancy analysis and Chrome trace export. [`Coalescer`] merges
//! fine-grained emission (one event per tile/pass) down to a bounded
//! number of events per layer while preserving exact cycle and MAC
//! totals.

use crate::occupancy::OccupancyTimeline;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Identity of the layer a sink is currently receiving events for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerCtx {
    /// Architecture name (`"FlexFlow"`, `"Systolic"`, …).
    pub arch: String,
    /// Layer name (`"C3"`).
    pub layer: String,
    /// Total PEs in the engine (the occupancy denominator).
    pub pe_count: u32,
    /// Id of the experiment this layer ran under (empty when the run
    /// is not part of an experiment sweep). Stamped by
    /// [`SinkHandle::tagged`] so multi-experiment traces stay
    /// attributable.
    pub experiment: String,
}

impl LayerCtx {
    /// Builds a context (no experiment attribution).
    pub fn new(arch: impl Into<String>, layer: impl Into<String>, pe_count: u32) -> LayerCtx {
        LayerCtx {
            arch: arch.into(),
            layer: layer.into(),
            pe_count,
            experiment: String::new(),
        }
    }

    /// Returns the context re-tagged with an owning experiment id.
    pub fn for_experiment(mut self, experiment: impl Into<String>) -> LayerCtx {
        self.experiment = experiment.into();
        self
    }
}

/// What a cycle-domain event represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleEventKind {
    /// Pipeline/window fill — the engine is loading operands, not
    /// computing.
    Fill,
    /// A compute pass over one or more tiles/row-batches.
    Pass,
    /// A generic stall (engine idle, waiting).
    Stall,
    /// A partial-sum spill to the output buffer and back.
    Spill,
}

impl CycleEventKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CycleEventKind::Fill => "fill",
            CycleEventKind::Pass => "pass",
            CycleEventKind::Stall => "stall",
            CycleEventKind::Spill => "spill",
        }
    }
}

/// One cycle-domain event: a half-open span of simulated time,
/// `[start_cycle, start_cycle + cycles)`, during which `macs` useful
/// MACs executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleEvent {
    /// Event kind.
    pub kind: CycleEventKind,
    /// First cycle of the span.
    pub start_cycle: u64,
    /// Span length in cycles.
    pub cycles: u64,
    /// Useful MACs executed during the span (0 for fills/stalls).
    pub macs: u64,
}

impl CycleEvent {
    /// Builds an event.
    pub fn new(kind: CycleEventKind, start_cycle: u64, cycles: u64, macs: u64) -> CycleEvent {
        CycleEvent {
            kind,
            start_cycle,
            cycles,
            macs,
        }
    }

    /// One-past-the-last cycle of the span.
    pub fn end_cycle(&self) -> u64 {
        self.start_cycle + self.cycles
    }
}

/// A receiver of cycle-domain events. Every method is a no-op by
/// default and [`CycleSink::enabled`] defaults to `false`, so a unit
/// implementation is a valid do-nothing sink and simulators can skip
/// event synthesis entirely when nothing is listening.
pub trait CycleSink: Send + Sync {
    /// Whether the sink wants events at all. Simulators must check this
    /// before doing any per-tile work.
    fn enabled(&self) -> bool {
        false
    }
    /// A layer's event stream is starting.
    fn begin_layer(&self, _ctx: &LayerCtx) {}
    /// One event within the current layer.
    fn emit(&self, _ev: &CycleEvent) {}
    /// The current layer's event stream is complete.
    fn end_layer(&self) {}
}

/// A cloneable, optionally-attached handle to a shared sink — the field
/// every simulator stores. The default (unattached) handle makes all
/// operations no-ops.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn CycleSink>>);

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(attached)"
        } else {
            "SinkHandle(none)"
        })
    }
}

impl SinkHandle {
    /// An unattached handle (all operations no-ops).
    pub fn none() -> SinkHandle {
        SinkHandle(None)
    }

    /// Wraps a shared sink.
    pub fn new(sink: Arc<dyn CycleSink>) -> SinkHandle {
        SinkHandle(Some(sink))
    }

    /// Whether a sink is attached (it may still be disabled).
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Whether events should be synthesized and emitted.
    pub fn enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|s| s.enabled())
    }

    /// Forwards to the sink, if attached.
    pub fn begin_layer(&self, ctx: &LayerCtx) {
        if let Some(sink) = &self.0 {
            sink.begin_layer(ctx);
        }
    }

    /// Forwards to the sink, if attached.
    pub fn emit(&self, ev: &CycleEvent) {
        if let Some(sink) = &self.0 {
            sink.emit(ev);
        }
    }

    /// Forwards to the sink, if attached.
    pub fn end_layer(&self) {
        if let Some(sink) = &self.0 {
            sink.end_layer();
        }
    }

    /// Returns a handle that stamps `experiment` onto the
    /// [`LayerCtx`] of every `begin_layer` it forwards, so cycle
    /// records from a multi-experiment sweep remain attributable to
    /// their owning experiment. An unattached handle stays unattached
    /// (still free when tracing is off).
    pub fn tagged(&self, experiment: &str) -> SinkHandle {
        match &self.0 {
            None => SinkHandle(None),
            Some(inner) => SinkHandle(Some(Arc::new(ExperimentTag {
                experiment: experiment.to_owned(),
                inner: Arc::clone(inner),
            }))),
        }
    }
}

/// A pass-through sink that stamps an experiment id onto layer
/// contexts (see [`SinkHandle::tagged`]).
struct ExperimentTag {
    experiment: String,
    inner: Arc<dyn CycleSink>,
}

impl CycleSink for ExperimentTag {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn begin_layer(&self, ctx: &LayerCtx) {
        self.inner
            .begin_layer(&ctx.clone().for_experiment(self.experiment.clone()));
    }

    fn emit(&self, ev: &CycleEvent) {
        self.inner.emit(ev);
    }

    fn end_layer(&self) {
        self.inner.end_layer();
    }
}

fn global_slot() -> &'static RwLock<Option<Arc<dyn CycleSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn CycleSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs (or clears, with `None`) the process-wide sink that
/// accelerator factories hand to freshly built simulators.
#[deprecated(
    since = "0.1.0",
    note = "thread a per-run SinkHandle through ExperimentCtx / ArchSet::builder().sink(..) \
            instead; the process-global slot forbids concurrent sweeps"
)]
pub fn set_global_sink(sink: Option<Arc<dyn CycleSink>>) {
    *global_slot()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = sink;
}

/// A handle to the process-wide sink (unattached if none installed).
#[deprecated(
    since = "0.1.0",
    note = "thread a per-run SinkHandle through ExperimentCtx / ArchSet::builder().sink(..) \
            instead; the process-global slot forbids concurrent sweeps"
)]
pub fn global_handle() -> SinkHandle {
    SinkHandle(
        global_slot()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone(),
    )
}

/// The complete event stream of one simulated layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerTimeline {
    /// Which layer, on which architecture.
    pub ctx: LayerCtx,
    /// Events in emission order (non-decreasing `start_cycle`).
    pub events: Vec<CycleEvent>,
}

impl LayerTimeline {
    /// Total simulated cycles covered (the max event end).
    pub fn total_cycles(&self) -> u64 {
        self.events
            .iter()
            .map(CycleEvent::end_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Total useful MACs across events.
    pub fn macs(&self) -> u64 {
        self.events.iter().map(|e| e.macs).sum()
    }

    /// Builds the run-length-encoded occupancy timeline (gaps between
    /// events count as idle).
    pub fn occupancy(&self) -> OccupancyTimeline {
        let pe = f64::from(self.ctx.pe_count.max(1));
        let mut segments: Vec<(u64, f64)> = Vec::with_capacity(self.events.len());
        let mut cursor = 0u64;
        for ev in &self.events {
            if ev.start_cycle > cursor {
                segments.push((ev.start_cycle - cursor, 0.0));
            }
            if ev.cycles > 0 {
                let frac = ev.macs as f64 / (ev.cycles as f64 * pe);
                segments.push((ev.cycles, frac));
            }
            cursor = cursor.max(ev.end_cycle());
        }
        OccupancyTimeline::from_segments(self.ctx.pe_count, segments)
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    done: Vec<LayerTimeline>,
    open: Vec<LayerTimeline>,
}

/// A [`CycleSink`] that records every event into per-layer timelines.
///
/// `begin_layer`/`end_layer` pairs nest as a stack, matching the
/// single-threaded emission discipline of the simulators.
#[derive(Debug, Default)]
pub struct CycleRecorder {
    inner: Mutex<RecorderInner>,
}

impl CycleRecorder {
    /// Creates an empty recorder.
    pub fn new() -> CycleRecorder {
        CycleRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Copies out every completed layer timeline.
    pub fn timelines(&self) -> Vec<LayerTimeline> {
        self.lock().done.clone()
    }

    /// Drains every completed layer timeline.
    pub fn take(&self) -> Vec<LayerTimeline> {
        std::mem::take(&mut self.lock().done)
    }
}

impl CycleSink for CycleRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn begin_layer(&self, ctx: &LayerCtx) {
        self.lock().open.push(LayerTimeline {
            ctx: ctx.clone(),
            events: Vec::new(),
        });
    }

    fn emit(&self, ev: &CycleEvent) {
        if let Some(current) = self.lock().open.last_mut() {
            current.events.push(*ev);
        }
    }

    fn end_layer(&self) {
        let mut inner = self.lock();
        if let Some(done) = inner.open.pop() {
            inner.done.push(done);
        }
    }
}

/// Target number of events a [`Coalescer`] flushes per layer.
pub const MAX_EVENTS_PER_LAYER: usize = 256;

/// Merges fine-grained emission into at most ~[`MAX_EVENTS_PER_LAYER`]
/// flushes while preserving exact cycle and MAC totals.
///
/// Callers stream logical steps via [`Coalescer::push`] (one or more
/// pushes per step, then [`Coalescer::step`]); the coalescer buffers
/// per-kind totals and flushes a merged `Fill`/`Pass`/`Spill`/`Stall`
/// burst every `ceil(total_steps / MAX_EVENTS_PER_LAYER)` steps. Within
/// a merged burst the kinds are emitted back to back (an idealization:
/// real interleaving below the flush granularity is not preserved, but
/// per-kind cycle and MAC totals are exact).
pub struct Coalescer<'a> {
    sink: &'a SinkHandle,
    every: u64,
    steps_in_group: u64,
    cursor: u64,
    // Accumulated (cycles, macs) per kind, fixed order.
    acc: [(u64, u64); 4],
}

const KIND_ORDER: [CycleEventKind; 4] = [
    CycleEventKind::Fill,
    CycleEventKind::Pass,
    CycleEventKind::Spill,
    CycleEventKind::Stall,
];

impl<'a> Coalescer<'a> {
    /// Creates a coalescer expecting `total_steps` logical steps.
    pub fn new(sink: &'a SinkHandle, total_steps: u64) -> Coalescer<'a> {
        Coalescer {
            sink,
            every: total_steps.div_ceil(MAX_EVENTS_PER_LAYER as u64).max(1),
            steps_in_group: 0,
            cursor: 0,
            acc: [(0, 0); 4],
        }
    }

    fn kind_index(kind: CycleEventKind) -> usize {
        match kind {
            CycleEventKind::Fill => 0,
            CycleEventKind::Pass => 1,
            CycleEventKind::Spill => 2,
            CycleEventKind::Stall => 3,
        }
    }

    /// Accumulates `cycles`/`macs` under `kind` for the current step.
    pub fn push(&mut self, kind: CycleEventKind, cycles: u64, macs: u64) {
        let (c, m) = &mut self.acc[Self::kind_index(kind)];
        *c += cycles;
        *m += macs;
    }

    /// Marks the end of one logical step, flushing if the group is full.
    pub fn step(&mut self) {
        self.steps_in_group += 1;
        if self.steps_in_group >= self.every {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for kind in KIND_ORDER {
            let (cycles, macs) = self.acc[Self::kind_index(kind)];
            if cycles > 0 {
                self.sink
                    .emit(&CycleEvent::new(kind, self.cursor, cycles, macs));
                self.cursor += cycles;
            }
        }
        self.acc = [(0, 0); 4];
        self.steps_in_group = 0;
    }

    /// Flushes any buffered remainder and returns the final cycle
    /// cursor (the total cycles emitted).
    pub fn finish(mut self) -> u64 {
        self.flush();
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_sink_is_a_noop() {
        struct Unit;
        impl CycleSink for Unit {}
        let sink = SinkHandle::new(Arc::new(Unit));
        assert!(sink.is_attached());
        assert!(!sink.enabled());
        // No panic on forwarding.
        sink.begin_layer(&LayerCtx::new("a", "b", 1));
        sink.emit(&CycleEvent::new(CycleEventKind::Pass, 0, 1, 1));
        sink.end_layer();
    }

    #[test]
    fn default_handle_is_disabled() {
        let sink = SinkHandle::default();
        assert!(!sink.is_attached());
        assert!(!sink.enabled());
        assert_eq!(format!("{sink:?}"), "SinkHandle(none)");
    }

    #[test]
    fn recorder_collects_per_layer() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone());
        assert!(sink.enabled());
        sink.begin_layer(&LayerCtx::new("FlexFlow", "C1", 256));
        sink.emit(&CycleEvent::new(CycleEventKind::Fill, 0, 8, 0));
        sink.emit(&CycleEvent::new(CycleEventKind::Pass, 8, 100, 20_000));
        sink.end_layer();
        sink.begin_layer(&LayerCtx::new("FlexFlow", "C3", 256));
        sink.emit(&CycleEvent::new(CycleEventKind::Pass, 0, 10, 2_000));
        sink.end_layer();
        let tl = rec.take();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].ctx.layer, "C1");
        assert_eq!(tl[0].total_cycles(), 108);
        assert_eq!(tl[0].macs(), 20_000);
        assert!(rec.take().is_empty());
    }

    #[test]
    fn timeline_occupancy_fills_gaps_as_idle() {
        let tl = LayerTimeline {
            ctx: LayerCtx::new("a", "l", 4),
            events: vec![
                CycleEvent::new(CycleEventKind::Pass, 0, 10, 40), // full
                CycleEvent::new(CycleEventKind::Pass, 20, 10, 0), // idle
            ],
        };
        let occ = tl.occupancy();
        assert_eq!(occ.cycles(), 30);
        // 10 full cycles of 30.
        assert!((occ.utilization() - 10.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn coalescer_preserves_totals_and_caps_events() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone());
        sink.begin_layer(&LayerCtx::new("a", "l", 16));
        let steps = 10_000u64;
        let mut co = Coalescer::new(&sink, steps);
        for _ in 0..steps {
            co.push(CycleEventKind::Fill, 2, 0);
            co.push(CycleEventKind::Pass, 5, 37);
            co.step();
        }
        let total = co.finish();
        sink.end_layer();
        assert_eq!(total, steps * 7);
        let tl = rec.take();
        assert_eq!(tl.len(), 1);
        assert!(tl[0].events.len() <= 2 * MAX_EVENTS_PER_LAYER + 2);
        assert_eq!(tl[0].total_cycles(), steps * 7);
        assert_eq!(tl[0].macs(), steps * 37);
        // Events tile the timeline with no overlap.
        let mut cursor = 0;
        for ev in &tl[0].events {
            assert_eq!(ev.start_cycle, cursor);
            cursor = ev.end_cycle();
        }
    }

    #[test]
    #[allow(deprecated)] // compat coverage for the legacy global slot
    fn global_sink_slot_round_trips() {
        // Serialized implicitly: this is the only test touching the
        // global slot in this crate.
        let rec = Arc::new(CycleRecorder::new());
        set_global_sink(Some(rec.clone()));
        assert!(global_handle().enabled());
        set_global_sink(None);
        assert!(!global_handle().is_attached());
    }

    #[test]
    fn tagged_handle_stamps_experiment_on_layer_ctx() {
        let rec = Arc::new(CycleRecorder::new());
        let sink = SinkHandle::new(rec.clone()).tagged("fig15");
        assert!(sink.enabled());
        sink.begin_layer(&LayerCtx::new("FlexFlow", "C1", 256));
        sink.emit(&CycleEvent::new(CycleEventKind::Pass, 0, 10, 100));
        sink.end_layer();
        let tl = rec.take();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].ctx.experiment, "fig15");
        assert_eq!(tl[0].ctx.layer, "C1");
        assert_eq!(tl[0].macs(), 100);
        // Tagging an unattached handle stays unattached.
        assert!(!SinkHandle::none().tagged("fig15").is_attached());
    }
}
