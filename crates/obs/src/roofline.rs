//! Roofline classification: compute-bound vs bandwidth-bound layers.
//!
//! The roofline model bounds achievable throughput by
//! `min(peak_compute, intensity × bandwidth)` where *arithmetic
//! intensity* is operations per word moved. This module is the
//! pure-number core — callers (the `profile` experiment) feed it MAC
//! counts from layer results, word volumes from the traffic model, and
//! peak bandwidth/compute from the `flexsim-arch` DRAM interface, and
//! get back a per-layer [`LayerRoofline`] classification. Keeping the
//! arithmetic here and the hardware parameters in `flexsim-arch`
//! preserves the crate direction `arch → obs`.

use std::fmt;

/// Which roof limits a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// The compute roof: the layer's intensity is high enough that PEs,
    /// not the memory system, are the limit.
    Compute,
    /// The bandwidth roof: at this intensity the memory system cannot
    /// keep the PEs fed even at peak.
    Bandwidth,
}

impl Bound {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Bandwidth => "bandwidth",
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One layer's position under the roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerRoofline {
    /// Operations the layer performs (2 × MACs).
    pub ops: f64,
    /// Words moved to/from memory for the layer.
    pub words: f64,
    /// Arithmetic intensity, ops per word (`ops / words`; infinite when
    /// no traffic).
    pub intensity: f64,
    /// The compute roof in GOPS (peak, not achieved).
    pub peak_gops: f64,
    /// The bandwidth roof at this intensity:
    /// `intensity × words_per_second / 1e9` GOPS.
    pub bandwidth_gops: f64,
    /// `min(peak_gops, bandwidth_gops)` — the model's throughput bound.
    pub achievable_gops: f64,
    /// Which roof is lower.
    pub bound: Bound,
}

impl LayerRoofline {
    /// Fraction of the achievable roof a measured throughput reaches
    /// (diagnostic; >1 means the traffic model under-counts words or
    /// the roofs are stale).
    pub fn efficiency(&self, achieved_gops: f64) -> f64 {
        if self.achievable_gops > 0.0 {
            achieved_gops / self.achievable_gops
        } else {
            0.0
        }
    }
}

/// Classifies one layer: `ops` total operations, `words` memory words
/// moved, `words_per_second` peak memory bandwidth, `peak_gops` peak
/// compute throughput.
///
/// Degenerate inputs stay well-defined: zero words means infinite
/// intensity (compute-bound), zero ops classifies as bandwidth-bound
/// with a zero roof.
pub fn classify(ops: f64, words: f64, words_per_second: f64, peak_gops: f64) -> LayerRoofline {
    let intensity = if words > 0.0 {
        ops / words
    } else {
        f64::INFINITY
    };
    let bandwidth_gops = if words > 0.0 {
        intensity * words_per_second / 1e9
    } else {
        f64::INFINITY
    };
    let achievable_gops = bandwidth_gops.min(peak_gops);
    let bound = if bandwidth_gops < peak_gops {
        Bound::Bandwidth
    } else {
        Bound::Compute
    };
    LayerRoofline {
        ops,
        words,
        intensity,
        peak_gops,
        bandwidth_gops,
        achievable_gops,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_intensity_is_compute_bound() {
        // 1e9 ops over 1e6 words at 1e9 words/s: bandwidth roof is
        // 1000 GOPS, far above a 100 GOPS compute roof.
        let r = classify(1e9, 1e6, 1e9, 100.0);
        assert_eq!(r.bound, Bound::Compute);
        assert!((r.intensity - 1000.0).abs() < 1e-9);
        assert!((r.achievable_gops - 100.0).abs() < 1e-9);
        assert!((r.efficiency(50.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn low_intensity_is_bandwidth_bound() {
        // 1 op/word at 1e9 words/s: bandwidth roof is 1 GOPS.
        let r = classify(1e6, 1e6, 1e9, 100.0);
        assert_eq!(r.bound, Bound::Bandwidth);
        assert!((r.achievable_gops - 1.0).abs() < 1e-9);
        assert_eq!(r.bound.to_string(), "bandwidth");
    }

    #[test]
    fn zero_traffic_is_compute_bound() {
        let r = classify(1e6, 0.0, 1e9, 100.0);
        assert_eq!(r.bound, Bound::Compute);
        assert!(r.intensity.is_infinite());
        assert!((r.achievable_gops - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_ops_is_degenerate_but_defined() {
        let r = classify(0.0, 1e6, 1e9, 100.0);
        assert_eq!(r.bound, Bound::Bandwidth);
        assert_eq!(r.achievable_gops, 0.0);
        assert_eq!(r.efficiency(0.0), 0.0);
    }
}
