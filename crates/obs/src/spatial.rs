//! Spatial observability: per-PE heatmaps, per-bank occupancy
//! watermarks, and contention matrices.
//!
//! Every surface in [`crate::attrib`] is *aggregate*: a
//! [`LossLedger`] says how many PE-cycles a layer lost to
//! `edge-fragmentation`, but not **which rows and columns** of the
//! array sat idle. This module adds the spatial axis. Each simulator
//! folds its per-step activity into a [`LayerSpatial`] — one per
//! (architecture, layer) — through a [`HeatmapBuilder`] whose
//! accounting is *exact by construction*:
//!
//! * a uniform stall of `c` cycles costs every cell exactly `c` lost
//!   PE-cycles (the array is idle wall-to-wall), so stalls accumulate
//!   in one per-cause scalar folded into every cell at
//!   [`HeatmapBuilder::finish`];
//! * a compute pass of `cap` cycles per cell distributes its useful
//!   MACs over the active cells with [`distribute`] (floor share plus
//!   one for the first `total % n` cells — deterministic and
//!   remainder-exact), charging each active cell `cap − share` and
//!   each inactive cell the full `cap` to the pass's residue cause.
//!
//! Summing any cause over all cells therefore reproduces the ledger's
//! `lost(cause)` *exactly*, and summing the busy plane reproduces
//! `busy_pe_cycles` — the FXC13 spatial-exactness identity flexcheck
//! verifies per layer.
//!
//! Delivery mirrors [`crate::cycles`]: simulators hold a cheap
//! [`SpatialHandle`] (disabled by default, one branch per layer when
//! detached) and submit one finished [`LayerSpatial`] per layer;
//! the [`SpatialRecorder`] collects them in memory for the
//! `flexsim heatmap` report, Chrome-trace counter tracks, and metrics
//! mirrors.
//!
//! [`LossLedger`]: crate::attrib::LossLedger

use crate::attrib::StallCause;
use crate::metrics::Registry;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A rectangular block of active PE cells, in array coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellRect {
    /// First active row.
    pub row: usize,
    /// First active column.
    pub col: usize,
    /// Active rows.
    pub rows: usize,
    /// Active columns.
    pub cols: usize,
}

impl CellRect {
    /// The whole `rows × cols` array.
    pub fn full(rows: usize, cols: usize) -> CellRect {
        CellRect {
            row: 0,
            col: 0,
            rows,
            cols,
        }
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the rect covers no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Splits `total` over `n` slots exactly: every slot gets
/// `total / n`, and the first `total % n` slots get one more. The
/// shares always sum to `total`.
pub fn distribute(total: u64, n: usize) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let base = total / n as u64;
    let extra = (total % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < extra)).collect()
}

/// A symmetric who-collided-with-whom matrix over `ports` resource
/// ports (adder-tree row ports, CDB writeback slots). Pairs are
/// normalized to `(lo, hi)` so each unordered pair is counted once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentionMatrix {
    ports: usize,
    counts: Vec<u64>,
}

impl ContentionMatrix {
    /// An empty matrix over `ports` ports.
    pub fn new(ports: usize) -> ContentionMatrix {
        ContentionMatrix {
            ports,
            counts: vec![0; ports * ports],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Records `weight` collisions between ports `a` and `b`
    /// (self-pairs are ignored — a port cannot collide with itself).
    ///
    /// # Panics
    ///
    /// Panics when a port index is out of range.
    pub fn record(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a < self.ports && b < self.ports, "port out of range");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        self.counts[lo * self.ports + hi] += weight;
    }

    /// The collision count of the unordered pair `(a, b)`.
    pub fn get(&self, a: usize, b: usize) -> u64 {
        if a == b || a >= self.ports || b >= self.ports {
            return 0;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        self.counts[lo * self.ports + hi]
    }

    /// Total collisions across all pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Non-zero pairs as `(a, b, count)` with `a < b`, ascending.
    pub fn pairs(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for a in 0..self.ports {
            for b in (a + 1)..self.ports {
                let c = self.counts[a * self.ports + b];
                if c > 0 {
                    out.push((a, b, c));
                }
            }
        }
        out
    }

    /// True when no collision was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

/// Occupancy watermarks for one buffer bank: the high-water word
/// count and the cycle-weighted mean over the layer's duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BankWatermark {
    /// Bank name (`"neuron-in"`, `"kernel"`, `"neuron-out"`,
    /// `"local-store"`).
    pub bank: String,
    /// Bank capacity in 16-bit words.
    pub capacity_words: u64,
    /// Highest observed resident word count.
    pub high_water_words: u64,
    /// Σ words × cycles over every sample (the mean's numerator).
    pub weighted_word_cycles: u64,
    /// Σ cycles over every sample. FXC13 requires this to equal the
    /// layer's total cycles — a dropped sample is a hole in the
    /// occupancy story and fails the gate.
    pub sampled_cycles: u64,
}

impl BankWatermark {
    /// A bank with no samples yet.
    pub fn new(bank: impl Into<String>, capacity_words: u64) -> BankWatermark {
        BankWatermark {
            bank: bank.into(),
            capacity_words,
            high_water_words: 0,
            weighted_word_cycles: 0,
            sampled_cycles: 0,
        }
    }

    /// Records `words` resident for `cycles` cycles.
    pub fn sample(&mut self, words: u64, cycles: u64) {
        self.high_water_words = self.high_water_words.max(words);
        self.weighted_word_cycles += words * cycles;
        self.sampled_cycles += cycles;
    }

    /// Time-weighted mean resident words (0 with no samples).
    pub fn mean_words(&self) -> f64 {
        if self.sampled_cycles == 0 {
            return 0.0;
        }
        self.weighted_word_cycles as f64 / self.sampled_cycles as f64
    }
}

/// The finished spatial record of one (architecture, layer) pair: the
/// per-PE busy/loss planes, bank watermarks, and contention matrices.
///
/// Planes are row-major `rows × cols` with `rows * cols ==` the
/// simulator's PE count. The exactness contract (flexcheck FXC13):
/// `Σ busy == ledger.busy_pe_cycles` and for every cause
/// `Σ lost[cause] == ledger.lost(cause)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerSpatial {
    /// Architecture name.
    pub arch: String,
    /// Layer name.
    pub layer: String,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// The layer's total cycles.
    pub total_cycles: u64,
    /// Row-major busy PE-cycles per cell.
    pub busy: Vec<u64>,
    /// Row-major lost PE-cycles per cell, indexed by
    /// [`StallCause::index`].
    pub lost: Vec<[u64; StallCause::COUNT]>,
    /// Buffer-bank occupancy watermarks.
    pub banks: Vec<BankWatermark>,
    /// Adder-tree row-port contention (who shared a port with whom).
    pub adder_tree: ContentionMatrix,
    /// CDB writeback contention.
    pub cdb: ContentionMatrix,
}

impl LayerSpatial {
    /// `rows × cols`.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Busy PE-cycles of cell `(row, col)`.
    pub fn busy_at(&self, row: usize, col: usize) -> u64 {
        self.busy[row * self.cols + col]
    }

    /// Lost PE-cycles of cell `(row, col)` attributed to `cause`.
    pub fn lost_at(&self, row: usize, col: usize, cause: StallCause) -> u64 {
        self.lost[row * self.cols + col][cause.index()]
    }

    /// Σ busy over all cells (== `busy_pe_cycles` under FXC13).
    pub fn busy_total(&self) -> u64 {
        self.busy.iter().sum()
    }

    /// Σ `lost[cause]` over all cells (== `ledger.lost(cause)` under
    /// FXC13).
    pub fn lost_total(&self, cause: StallCause) -> u64 {
        self.lost.iter().map(|l| l[cause.index()]).sum()
    }

    /// Busy fraction of cell `(row, col)` in `[0, 1]`.
    pub fn busy_frac(&self, row: usize, col: usize) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.busy_at(row, col) as f64 / self.total_cycles as f64
    }

    /// Mirrors this record into the metrics registry: per-cell busy
    /// and lost planes, per-cause loss totals, per-bank high-water
    /// marks, and contention totals — so live metrics and the heatmap
    /// report can never disagree.
    pub fn mirror(&self, reg: &Registry) {
        let arch = self.arch.as_str();
        let layer = self.layer.as_str();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let (r, c) = (row.to_string(), col.to_string());
                let labels = [
                    ("arch", arch),
                    ("layer", layer),
                    ("row", r.as_str()),
                    ("col", c.as_str()),
                ];
                reg.add("spatial_busy_pe_cycles", &labels, self.busy_at(row, col));
                let lost: u64 = self.lost[row * self.cols + col].iter().sum();
                reg.add("spatial_lost_pe_cycles", &labels, lost);
            }
        }
        for cause in StallCause::ALL {
            reg.add(
                "spatial_lost_pe_cycles_by_cause",
                &[("arch", arch), ("layer", layer), ("cause", cause.name())],
                self.lost_total(cause),
            );
        }
        for bank in &self.banks {
            reg.add(
                "spatial_bank_high_water_words",
                &[("arch", arch), ("layer", layer), ("bank", &bank.bank)],
                bank.high_water_words,
            );
        }
        reg.add(
            "spatial_adder_tree_collisions",
            &[("arch", arch), ("layer", layer)],
            self.adder_tree.total(),
        );
        reg.add(
            "spatial_cdb_collisions",
            &[("arch", arch), ("layer", layer)],
            self.cdb.total(),
        );
    }
}

/// Accumulates one layer's spatial activity with remainder-exact
/// accounting (see the module docs for the identity argument).
///
/// Internally loss is kept factored: a per-cause *uniform* scalar
/// (stall cycles plus per-cell pass capacity, both charged to every
/// cell identically) and a per-cell *credit* plane (the MAC share an
/// active cell earned back). [`HeatmapBuilder::finish`] resolves
/// `lost[cell][cause] = uniform[cause] − credit[cell][cause]`.
#[derive(Clone, Debug)]
pub struct HeatmapBuilder {
    arch: String,
    layer: String,
    rows: usize,
    cols: usize,
    total_cycles: u64,
    busy: Vec<u64>,
    credit: Vec<[u64; StallCause::COUNT]>,
    uniform: [u64; StallCause::COUNT],
    banks: Vec<BankWatermark>,
    adder_tree: ContentionMatrix,
    cdb: ContentionMatrix,
}

impl HeatmapBuilder {
    /// A builder for one `rows × cols` layer run of `total_cycles`.
    pub fn new(
        arch: impl Into<String>,
        layer: impl Into<String>,
        rows: usize,
        cols: usize,
        total_cycles: u64,
    ) -> HeatmapBuilder {
        let cells = rows * cols;
        HeatmapBuilder {
            arch: arch.into(),
            layer: layer.into(),
            rows,
            cols,
            total_cycles,
            busy: vec![0; cells],
            credit: vec![[0; StallCause::COUNT]; cells],
            uniform: [0; StallCause::COUNT],
            banks: Vec::new(),
            adder_tree: ContentionMatrix::new(0),
            cdb: ContentionMatrix::new(0),
        }
    }

    /// A whole-array stall of `cycles` cycles attributed to `cause`:
    /// every cell loses exactly `cycles` PE-cycles.
    pub fn stall(&mut self, cause: StallCause, cycles: u64) {
        self.uniform[cause.index()] += cycles;
    }

    /// A compute pass of `cap_per_cell` cycles per cell whose `macs`
    /// useful work ran on the cells covered by `rects` (disjoint,
    /// in-bounds). Active cells split `macs` via [`distribute`] and
    /// lose the rest to `cause`; cells outside the rects lose the full
    /// `cap_per_cell`.
    ///
    /// # Panics
    ///
    /// Panics when a rect runs out of bounds or `macs` exceeds the
    /// active capacity `cap_per_cell × Σ rect cells`.
    pub fn pass(&mut self, cause: StallCause, rects: &[CellRect], cap_per_cell: u64, macs: u64) {
        let mut active: Vec<usize> = Vec::new();
        for rect in rects {
            assert!(
                rect.row + rect.rows <= self.rows && rect.col + rect.cols <= self.cols,
                "active rect out of array bounds"
            );
            for r in rect.row..rect.row + rect.rows {
                for c in rect.col..rect.col + rect.cols {
                    active.push(r * self.cols + c);
                }
            }
        }
        assert!(
            macs <= cap_per_cell.saturating_mul(active.len() as u64),
            "pass MACs exceed active capacity"
        );
        self.uniform[cause.index()] += cap_per_cell;
        let shares = distribute(macs, active.len());
        for (cell, share) in active.into_iter().zip(shares) {
            self.busy[cell] += share;
            self.credit[cell][cause.index()] += share;
        }
    }

    /// Records `words` resident in `bank` for `cycles` cycles,
    /// creating the bank (with `capacity_words`) on first touch.
    pub fn bank_sample(&mut self, bank: &str, capacity_words: u64, words: u64, cycles: u64) {
        let entry = match self.banks.iter_mut().find(|b| b.bank == bank) {
            Some(b) => b,
            None => {
                self.banks.push(BankWatermark::new(bank, capacity_words));
                self.banks.last_mut().expect("just pushed")
            }
        };
        entry.sample(words, cycles);
    }

    /// Installs the adder-tree row-port contention matrix.
    pub fn set_adder_tree(&mut self, m: ContentionMatrix) {
        self.adder_tree = m;
    }

    /// Installs the CDB writeback contention matrix.
    pub fn set_cdb(&mut self, m: ContentionMatrix) {
        self.cdb = m;
    }

    /// Resolves the factored loss planes into the finished record.
    ///
    /// # Panics
    ///
    /// Panics if any cell earned more credit than the uniform charge —
    /// impossible when every pass respected its capacity bound.
    pub fn finish(self) -> LayerSpatial {
        let lost = self
            .credit
            .iter()
            .map(|credit| {
                let mut cell = [0u64; StallCause::COUNT];
                for (i, c) in cell.iter_mut().enumerate() {
                    *c = self.uniform[i]
                        .checked_sub(credit[i])
                        .expect("cell credit exceeds uniform charge");
                }
                cell
            })
            .collect();
        LayerSpatial {
            arch: self.arch,
            layer: self.layer,
            rows: self.rows,
            cols: self.cols,
            total_cycles: self.total_cycles,
            busy: self.busy,
            lost,
            banks: self.banks,
            adder_tree: self.adder_tree,
            cdb: self.cdb,
        }
    }
}

/// Receives one finished [`LayerSpatial`] per simulated layer.
///
/// All methods default to no-ops so a detached simulator pays one
/// branch per *layer* (not per step) for the instrumentation.
pub trait SpatialSink: Send + Sync {
    /// Accepts a finished layer record.
    fn record_layer(&self, _layer: LayerSpatial) {}

    /// Whether emission is worth the work. Simulators skip building
    /// heatmaps entirely when this is false.
    fn enabled(&self) -> bool {
        false
    }
}

/// The unit sink: discards everything (useful as an explicit no-op).
impl SpatialSink for () {}

/// A cheaply clonable handle to an optional shared [`SpatialSink`] —
/// the spatial twin of [`crate::cycles::SinkHandle`]. The default
/// handle is detached: not attached, not enabled, all emission
/// no-ops.
#[derive(Clone, Default)]
pub struct SpatialHandle(Option<Arc<dyn SpatialSink>>);

impl fmt::Debug for SpatialHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("SpatialHandle(attached)"),
            None => f.write_str("SpatialHandle(none)"),
        }
    }
}

impl SpatialHandle {
    /// The detached handle.
    pub fn none() -> SpatialHandle {
        SpatialHandle(None)
    }

    /// A handle delivering to `sink`.
    pub fn new(sink: Arc<dyn SpatialSink>) -> SpatialHandle {
        SpatialHandle(Some(sink))
    }

    /// Whether a sink is attached at all.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the attached sink wants events.
    pub fn enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|s| s.enabled())
    }

    /// Forwards a finished layer record to the sink, if any.
    pub fn record_layer(&self, layer: LayerSpatial) {
        if let Some(sink) = &self.0 {
            sink.record_layer(layer);
        }
    }
}

/// An in-memory [`SpatialSink`] that collects every submitted layer
/// record, in submission order.
#[derive(Debug, Default)]
pub struct SpatialRecorder {
    inner: Mutex<Vec<LayerSpatial>>,
}

impl SpatialRecorder {
    /// An empty recorder.
    pub fn new() -> SpatialRecorder {
        SpatialRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<LayerSpatial>> {
        // A panicked submitter cannot corrupt a Vec of finished
        // records; recover the data rather than poisoning the run.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<LayerSpatial> {
        std::mem::take(&mut *self.lock())
    }
}

impl SpatialSink for SpatialRecorder {
    fn record_layer(&self, layer: LayerSpatial) {
        self.lock().push(layer);
    }

    fn enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_is_remainder_exact() {
        for (total, n) in [(0u64, 4usize), (7, 3), (12, 4), (5, 1), (3, 7)] {
            let shares = distribute(total, n);
            assert_eq!(shares.len(), n);
            assert_eq!(shares.iter().sum::<u64>(), total, "total={total} n={n}");
            let spread = shares.iter().max().unwrap_or(&0) - shares.iter().min().unwrap_or(&0);
            assert!(spread <= 1, "uneven split {shares:?}");
        }
        assert!(distribute(9, 0).is_empty());
    }

    #[test]
    fn builder_accounts_exactly() {
        // 2×2 array, one 3-cycle fill stall, one pass of 10 cycles/cell
        // on a 1×2 active rect carrying 14 MACs.
        let mut b = HeatmapBuilder::new("A", "L", 2, 2, 13);
        b.stall(StallCause::PipelineFill, 3);
        b.pass(
            StallCause::MappingResidueIdle,
            &[CellRect {
                row: 0,
                col: 0,
                rows: 1,
                cols: 2,
            }],
            10,
            14,
        );
        let s = b.finish();
        // Busy: 14 MACs split 7/7 over the two active cells.
        assert_eq!(s.busy_total(), 14);
        assert_eq!(s.busy_at(0, 0), 7);
        assert_eq!(s.busy_at(0, 1), 7);
        assert_eq!(s.busy_at(1, 0), 0);
        // Fill: 3 lost per cell, uniformly.
        assert_eq!(s.lost_total(StallCause::PipelineFill), 3 * 4);
        // Residue: active cells lose 10−7=3 each, inactive the full 10.
        assert_eq!(s.lost_at(0, 0, StallCause::MappingResidueIdle), 3);
        assert_eq!(s.lost_at(1, 1, StallCause::MappingResidueIdle), 10);
        assert_eq!(
            s.lost_total(StallCause::MappingResidueIdle),
            3 + 3 + 10 + 10
        );
        // The ledger identity: busy + Σ lost == cycles × PEs.
        let lost: u64 = StallCause::ALL.iter().map(|&c| s.lost_total(c)).sum();
        assert_eq!(s.busy_total() + lost, 13 * 4);
    }

    #[test]
    fn uneven_macs_spill_to_lowest_index_cells() {
        let mut b = HeatmapBuilder::new("A", "L", 1, 3, 5);
        b.pass(StallCause::EdgeFragmentation, &[CellRect::full(1, 3)], 5, 7);
        let s = b.finish();
        assert_eq!(s.busy, vec![3, 2, 2]);
        assert_eq!(s.lost_total(StallCause::EdgeFragmentation), 15 - 7);
    }

    #[test]
    #[should_panic(expected = "pass MACs exceed active capacity")]
    fn overfull_pass_is_rejected() {
        let mut b = HeatmapBuilder::new("A", "L", 2, 2, 10);
        b.pass(
            StallCause::MappingResidueIdle,
            &[CellRect::full(1, 1)],
            10,
            11,
        );
    }

    #[test]
    fn bank_samples_track_high_water_and_mean() {
        let mut b = HeatmapBuilder::new("A", "L", 1, 1, 30);
        b.bank_sample("neuron-in", 100, 80, 10);
        b.bank_sample("neuron-in", 100, 20, 20);
        b.bank_sample("kernel", 50, 50, 30);
        let s = b.finish();
        assert_eq!(s.banks.len(), 2);
        let nin = &s.banks[0];
        assert_eq!(nin.bank, "neuron-in");
        assert_eq!(nin.high_water_words, 80);
        assert_eq!(nin.sampled_cycles, 30);
        assert!((nin.mean_words() - 40.0).abs() < 1e-12);
        assert_eq!(s.banks[1].high_water_words, 50);
    }

    #[test]
    fn contention_matrix_normalizes_pairs() {
        let mut m = ContentionMatrix::new(4);
        m.record(2, 1, 5);
        m.record(1, 2, 3);
        m.record(3, 3, 100); // self-pair: ignored
        assert_eq!(m.get(1, 2), 8);
        assert_eq!(m.get(2, 1), 8);
        assert_eq!(m.get(3, 3), 0);
        assert_eq!(m.total(), 8);
        assert_eq!(m.pairs(), vec![(1, 2, 8)]);
        assert!(!m.is_empty());
        assert!(ContentionMatrix::new(0).is_empty());
    }

    #[test]
    fn default_handle_is_detached_and_silent() {
        let h = SpatialHandle::default();
        assert!(!h.is_attached());
        assert!(!h.enabled());
        h.record_layer(HeatmapBuilder::new("A", "L", 1, 1, 0).finish());
        // The unit sink is attached but still disabled.
        let unit = SpatialHandle::new(Arc::new(()));
        assert!(unit.is_attached());
        assert!(!unit.enabled());
        assert_eq!(format!("{h:?}"), "SpatialHandle(none)");
        assert_eq!(format!("{unit:?}"), "SpatialHandle(attached)");
    }

    #[test]
    fn recorder_round_trips_layers_in_order() {
        let rec = Arc::new(SpatialRecorder::new());
        let h = SpatialHandle::new(rec.clone());
        assert!(h.enabled());
        h.record_layer(HeatmapBuilder::new("A", "L1", 2, 2, 10).finish());
        h.record_layer(HeatmapBuilder::new("A", "L2", 2, 2, 20).finish());
        let layers = rec.take();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].layer, "L1");
        assert_eq!(layers[1].layer, "L2");
        assert!(rec.take().is_empty());
    }

    #[test]
    fn mirror_writes_cell_and_summary_counters() {
        let mut b = HeatmapBuilder::new("FlexFlow", "C1", 1, 2, 10);
        b.pass(
            StallCause::MappingResidueIdle,
            &[CellRect::full(1, 2)],
            10,
            12,
        );
        b.bank_sample("kernel", 64, 32, 10);
        let s = b.finish();
        let reg = Registry::new();
        s.mirror(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get(
                "spatial_busy_pe_cycles",
                &[
                    ("arch", "FlexFlow"),
                    ("layer", "C1"),
                    ("row", "0"),
                    ("col", "0")
                ],
            ),
            6
        );
        assert_eq!(
            snap.get(
                "spatial_lost_pe_cycles_by_cause",
                &[
                    ("arch", "FlexFlow"),
                    ("layer", "C1"),
                    ("cause", "mapping-residue-idle"),
                ],
            ),
            8
        );
        assert_eq!(
            snap.get(
                "spatial_bank_high_water_words",
                &[("arch", "FlexFlow"), ("layer", "C1"), ("bank", "kernel")],
            ),
            32
        );
    }
}
