//! # flexsim-obs — observability for the FlexFlow simulators
//!
//! A zero-external-dependency observability substrate shared by all four
//! architecture simulators (FlexFlow, Systolic, 2D-Mapping, Tiling) and
//! the experiment harness. It separates two time domains:
//!
//! * **host time** — wall-clock spans around the simulators themselves
//!   (experiment → workload → layer → engine pass), for profiling the
//!   simulator as it grows toward production scale;
//! * **simulated time** — cycle-domain events (tile passes, pipeline
//!   fills, partial-sum spills) emitted by the simulators into a
//!   [`cycles::CycleSink`], for seeing *when inside a layer* a dataflow
//!   loses PEs or spills partial sums.
//!
//! The pieces:
//!
//! * [`filter`] — a `FLEXSIM_LOG`-style env filter and leveled stderr
//!   logging (`FLEXSIM_LOG=debug`, `FLEXSIM_LOG=layer=trace,info`);
//! * [`span`] — hierarchical host-wall-time spans with an optional
//!   global recorder (the `flexsim --trace` path);
//! * [`metrics`] — a labeled counter/gauge registry with
//!   snapshot-and-diff; the simulators mirror every
//!   `EventCounts`/`Traffic` field into it so aggregate stats and live
//!   metrics can never disagree;
//! * [`cycles`] — the cycle-domain event sink trait (no-op by default,
//!   so instrumentation costs nothing when disabled), an in-memory
//!   recorder, and an event coalescer that caps per-layer event counts;
//! * [`attrib`] — the [`attrib::StallCause`] loss taxonomy and per-layer
//!   [`attrib::LossLedger`] with the exactness invariant
//!   `busy + Σ attributed_lost == total_cycles × num_pes`;
//! * [`roofline`] — arithmetic-intensity classification of layers as
//!   compute- vs bandwidth-bound (pure numbers; the hardware parameters
//!   stay in `flexsim-arch`);
//! * [`occupancy`] — run-length-encoded per-layer occupancy timelines
//!   generalizing `flexflow::trace::OccupancyTrace` to any architecture;
//! * [`chrome`] — Chrome trace-event JSON export (loadable in Perfetto)
//!   combining host spans, simulated-cycle timelines, and a metrics
//!   snapshot, streamed through any `io::Write` sink;
//! * [`hist`] — HDR-style log-bucketed latency histograms with exact
//!   counts and byte-stable JSON/Prometheus emission;
//! * [`spatial`] — per-PE utilization heatmaps with per-cause loss
//!   planes, buffer-bank occupancy watermarks, and contention
//!   matrices, exactness-gated against the loss ledgers (flexcheck
//!   FXC13);
//! * [`telemetry`] — host-side runtime telemetry: the wall-clock phase
//!   profiler (parse → flexcheck → schedule → simulate → verify →
//!   export), pool/scheduler worker stats, latency histograms, and the
//!   bounded flight recorder behind `flexsim stats`.
//!
//! ## Example
//!
//! ```
//! use flexsim_obs::attrib::{LossLedger, StallCause};
//! use flexsim_obs::cycles::{CycleEvent, CycleEventKind, CycleRecorder, LayerCtx, SinkHandle};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(CycleRecorder::new());
//! let sink = SinkHandle::new(recorder.clone());
//! assert!(sink.enabled());
//! sink.begin_layer(&LayerCtx::new("FlexFlow", "C1", 256));
//! sink.emit(&CycleEvent::new(
//!     CycleEventKind::Pass(StallCause::MappingResidueIdle),
//!     0,
//!     100,
//!     12_800,
//! ));
//! sink.end_layer();
//! let timelines = recorder.take();
//! assert_eq!(timelines.len(), 1);
//! assert!((timelines[0].occupancy().utilization() - 0.5).abs() < 1e-12);
//! let ledger = LossLedger::from_timeline(&timelines[0]);
//! assert!(ledger.is_exact());
//! assert_eq!(ledger.lost(StallCause::MappingResidueIdle), 100 * 256 - 12_800);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod attrib;
pub mod chrome;
pub mod cycles;
pub mod filter;
pub mod hist;
pub mod metrics;
pub mod occupancy;
pub mod roofline;
pub mod span;
pub mod spatial;
pub mod telemetry;

pub use attrib::{LossDelta, LossLedger, StallCause};
pub use cycles::{CycleEvent, CycleEventKind, CycleRecorder, CycleSink, LayerCtx, SinkHandle};
pub use filter::Level;
pub use hist::Histogram;
pub use metrics::{Registry, Snapshot};
pub use occupancy::OccupancyTimeline;
pub use span::{span, SpanGuard, SpanRecord};
pub use spatial::{
    BankWatermark, ContentionMatrix, HeatmapBuilder, LayerSpatial, SpatialHandle, SpatialRecorder,
    SpatialSink,
};
pub use telemetry::{Phase, PhaseTimer, TelemetrySnapshot, WorkerTotals};
