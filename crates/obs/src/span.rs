//! Hierarchical host-wall-time spans.
//!
//! A [`span`] guard measures the wall time of a scope and, when the
//! global recorder is installed ([`install_recorder`]), records it for
//! later export as Chrome trace events. Spans nest: the guard tracks a
//! per-thread depth so a child span's record carries `depth = parent +
//! 1`. When the recorder is not installed and `FLEXSIM_LOG` does not
//! enable `debug` for the span's category, creating a span does no work
//! at all (one relaxed atomic load) — instrumentation is free when
//! observability is off.
//!
//! The conventional hierarchy in this workspace:
//! `experiment` → `workload` → `layer` → `engine`.

use crate::filter::{self, Level};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Category (`"experiment"`, `"workload"`, `"layer"`, `"engine"`).
    pub cat: &'static str,
    /// Human-readable name (experiment id, workload name, layer name…).
    pub name: String,
    /// Start offset from recorder installation, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on the owning thread (0 = outermost).
    pub depth: u32,
    /// Small per-thread id (assigned in first-span order).
    pub tid: u64,
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

struct RecorderState {
    epoch: Instant,
    spans: Vec<SpanRecord>,
}

fn state() -> &'static Mutex<Option<RecorderState>> {
    static STATE: OnceLock<Mutex<Option<RecorderState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn lock_state() -> std::sync::MutexGuard<'static, Option<RecorderState>> {
    state()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn thread_tid() -> u64 {
    TID.with(|t| match t.get() {
        Some(tid) => tid,
        None => {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(tid));
            tid
        }
    })
}

fn labels() -> &'static Mutex<std::collections::BTreeMap<u64, String>> {
    static LABELS: OnceLock<Mutex<std::collections::BTreeMap<u64, String>>> = OnceLock::new();
    LABELS.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()))
}

/// Registers a human-readable label for the *current* thread's span
/// tid (e.g. `"flexsim-pool-2"`). The pool workers call this at spawn
/// so Chrome-trace `thread_name` rows reflect real workers instead of
/// anonymous host tids. Idempotent per thread; the latest label wins.
pub fn set_thread_label(label: impl Into<String>) {
    let tid = thread_tid();
    labels()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(tid, label.into());
}

/// Every registered `(tid, label)` pair, in tid order.
pub fn thread_labels() -> Vec<(u64, String)> {
    labels()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(&tid, l)| (tid, l.clone()))
        .collect()
}

/// Installs (or resets) the global span recorder. Spans created after
/// this call are recorded until [`take_records`] is called.
pub fn install_recorder() {
    let mut st = lock_state();
    *st = Some(RecorderState {
        epoch: Instant::now(),
        spans: Vec::new(),
    });
    RECORDING.store(true, Ordering::Release);
}

/// Whether the global recorder is installed.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire)
}

/// Stops recording and returns every span recorded since
/// [`install_recorder`], in completion order.
pub fn take_records() -> Vec<SpanRecord> {
    RECORDING.store(false, Ordering::Release);
    let mut st = lock_state();
    st.take().map(|s| s.spans).unwrap_or_default()
}

/// An in-flight span; records itself on drop.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    cat: &'static str,
    name: String,
    start: Instant,
    depth: u32,
    record: bool,
    log: bool,
}

/// Opens a span of category `cat` named `name`.
///
/// The name is only materialized when the span is live (recorder
/// installed or `FLEXSIM_LOG` enabling `debug` for `cat`), so passing a
/// `&str` costs nothing on the disabled path.
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    let record = RECORDING.load(Ordering::Relaxed);
    let log = filter::enabled(Level::Debug, cat);
    if !record && !log {
        return SpanGuard { live: None };
    }
    let name = name.into();
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    if log {
        filter::log(Level::Debug, cat, format_args!("begin {name}"));
    }
    SpanGuard {
        live: Some(LiveSpan {
            cat,
            name,
            start: Instant::now(),
            depth,
            record,
            log,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur = live.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if live.log {
            filter::log(
                Level::Debug,
                live.cat,
                format_args!("end   {} ({:.3} ms)", live.name, dur.as_secs_f64() * 1e3),
            );
        }
        if live.record {
            let mut st = lock_state();
            if let Some(rec) = st.as_mut() {
                let start_us = live
                    .start
                    .saturating_duration_since(rec.epoch)
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64;
                rec.spans.push(SpanRecord {
                    cat: live.cat,
                    name: live.name,
                    start_us,
                    dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
                    depth: live.depth,
                    tid: thread_tid(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global recorder; serialize them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = serial();
        let _ = take_records();
        assert!(!recording());
        {
            let _sp = span("workload", "noop");
        }
        assert!(take_records().is_empty());
    }

    #[test]
    fn recorded_spans_nest() {
        let _g = serial();
        install_recorder();
        {
            let _outer = span("workload", "LeNet-5");
            let _inner = span("layer", "C1");
        }
        let records = take_records();
        assert_eq!(records.len(), 2);
        // Inner completes first.
        assert_eq!(records[0].name, "C1");
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[1].name, "LeNet-5");
        assert_eq!(records[1].depth, 0);
        assert_eq!(records[0].tid, records[1].tid);
        assert!(records[1].start_us <= records[0].start_us);
    }

    #[test]
    fn take_records_stops_recording() {
        let _g = serial();
        install_recorder();
        drop(span("layer", "a"));
        assert_eq!(take_records().len(), 1);
        drop(span("layer", "b"));
        assert!(take_records().is_empty());
    }
}
