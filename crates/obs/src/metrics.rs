//! Labeled counter/gauge registry with snapshot-and-diff.
//!
//! Counters are monotonic `u64` cells keyed by a metric name plus a
//! sorted label set (`sim_cycles{arch="FlexFlow",layer="C3"}`). The
//! simulators mirror every [`EventCounts`]/`Traffic` field into the
//! [`global`] registry as layers complete, so the live metrics and the
//! end-of-run aggregates derive from the same numbers and can never
//! disagree — a property the `integration_obs` suite asserts
//! field-for-field.
//!
//! [`EventCounts`]: https://docs.rs/flexsim-arch
//!
//! # Example
//!
//! ```
//! use flexsim_obs::metrics::Registry;
//!
//! let reg = Registry::new();
//! let before = reg.snapshot();
//! reg.add("sim_cycles", &[("arch", "Tiling")], 100);
//! reg.add("sim_cycles", &[("arch", "Tiling")], 20);
//! let delta = reg.snapshot().diff(&before);
//! assert_eq!(delta.get("sim_cycles", &[("arch", "Tiling")]), 120);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A metric identity: name plus sorted labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name (`sim_cycles`, `sim_events_macs`, …).
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        Key {
            name: name.to_owned(),
            labels,
        }
    }
}

/// A registry of labeled `u64` counters and gauges.
#[derive(Debug, Default)]
pub struct Registry {
    cells: Mutex<BTreeMap<Key, u64>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Registry {
        Registry {
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, u64>> {
        self.cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `delta` to the counter `name{labels}` (creating it at 0).
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut cells = self.lock();
        let cell = cells.entry(Key::new(name, labels)).or_insert(0);
        *cell = cell.saturating_add(delta);
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn set(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.lock().insert(Key::new(name, labels), value);
    }

    /// Returns a point-in-time copy of every cell.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cells: self.lock().clone(),
        }
    }

    /// Removes every cell (tests only; production counters are
    /// monotonic and diffed instead).
    pub fn clear(&self) {
        self.lock().clear();
    }
}

/// The process-wide registry the simulators mirror into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// Escapes a label value for `name{k="v"}` rendering: backslashes and
/// double quotes get a backslash prefix, newlines become `\n`, and any
/// other control or non-ASCII character is hex-escaped as `\u{…}`.
/// Layer and workload names come from user-supplied `.ffnet` files, so
/// a hostile name (embedded quote, backslash, non-ASCII) must not be
/// able to break the one-line-per-cell dump format or forge an
/// ambiguous metric key.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if c.is_ascii_control() || !c.is_ascii() => {
                let _ = write!(out, "\\u{{{:04x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An immutable point-in-time view of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    cells: BTreeMap<Key, u64>,
}

impl Snapshot {
    /// The value of `name{labels}` (0 if absent).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.cells
            .get(&Key::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sums every cell named `name` whose labels contain all of
    /// `label_filter` (an empty filter sums across all label sets).
    pub fn total(&self, name: &str, label_filter: &[(&str, &str)]) -> u64 {
        self.cells
            .iter()
            .filter(|(key, _)| {
                key.name == name
                    && label_filter.iter().all(|&(fk, fv)| {
                        key.labels
                            .iter()
                            .any(|(k, v)| k.as_str() == fk && v.as_str() == fv)
                    })
            })
            .map(|(_, v)| *v)
            .sum()
    }

    /// The cells that grew relative to `base` (monotonic counters:
    /// unchanged and absent cells are dropped).
    pub fn diff(&self, base: &Snapshot) -> Snapshot {
        let cells = self
            .cells
            .iter()
            .filter_map(|(key, v)| {
                let delta = v.saturating_sub(base.cells.get(key).copied().unwrap_or(0));
                (delta > 0).then(|| (key.clone(), delta))
            })
            .collect();
        Snapshot { cells }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are present.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates cells in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.cells.iter().map(|(k, v)| (k, *v))
    }

    /// Renders the snapshot as a Prometheus-style text dump, one
    /// `name{k="v",…} value` line per cell, sorted — byte-stable for a
    /// given set of cells.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.cells {
            out.push_str(&key.name);
            if !key.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in key.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_labels_are_canonical() {
        let reg = Registry::new();
        reg.add("c", &[("b", "2"), ("a", "1")], 5);
        reg.add("c", &[("a", "1"), ("b", "2")], 7);
        let snap = reg.snapshot();
        assert_eq!(snap.get("c", &[("a", "1"), ("b", "2")]), 12);
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn gauge_set_overwrites() {
        let reg = Registry::new();
        reg.set("g", &[], 9);
        reg.set("g", &[], 3);
        assert_eq!(reg.snapshot().get("g", &[]), 3);
    }

    #[test]
    fn diff_keeps_only_growth() {
        let reg = Registry::new();
        reg.add("a", &[], 1);
        let base = reg.snapshot();
        reg.add("a", &[], 4);
        reg.add("b", &[("x", "y")], 2);
        let delta = reg.snapshot().diff(&base);
        assert_eq!(delta.get("a", &[]), 4);
        assert_eq!(delta.get("b", &[("x", "y")]), 2);
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn total_filters_by_label_subset() {
        let reg = Registry::new();
        reg.add("m", &[("arch", "A"), ("layer", "C1")], 10);
        reg.add("m", &[("arch", "A"), ("layer", "C2")], 20);
        reg.add("m", &[("arch", "B"), ("layer", "C1")], 40);
        let snap = reg.snapshot();
        assert_eq!(snap.total("m", &[("arch", "A")]), 30);
        assert_eq!(snap.total("m", &[]), 70);
        assert_eq!(snap.total("m", &[("arch", "C")]), 0);
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.add("b_metric", &[], 1);
        reg.add("a_metric", &[("arch", "X")], 2);
        let dump = reg.snapshot().dump();
        assert_eq!(dump, "a_metric{arch=\"X\"} 2\nb_metric 1\n");
    }

    #[test]
    fn hostile_label_values_cannot_break_the_dump() {
        let reg = Registry::new();
        // A layer name straight out of a hostile .ffnet file: embedded
        // quote, backslash, newline, and a non-ASCII character.
        reg.add("m", &[("layer", "C1\"} 99\nforged 1")], 3);
        reg.add("m", &[("layer", "C\\1é")], 4);
        let dump = reg.snapshot().dump();
        // Still one line per cell, values escaped, nothing forged.
        assert_eq!(
            dump,
            "m{layer=\"C1\\\"} 99\\nforged 1\"} 3\nm{layer=\"C\\\\1\\u{00e9}\"} 4\n"
        );
        assert_eq!(dump.lines().count(), 2);
    }

    #[test]
    fn escape_label_passes_plain_names_through() {
        assert_eq!(escape_label("FlexFlow"), "FlexFlow");
        assert_eq!(escape_label("conv2_3x3/s2"), "conv2_3x3/s2");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("tab\there"), "tab\\u{0009}here");
    }
}
