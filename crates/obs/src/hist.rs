//! Log-bucketed latency histograms (HDR-style).
//!
//! A [`Histogram`] records `u64` samples (microseconds, by convention)
//! into power-of-two octaves subdivided into four linear sub-buckets —
//! the classic HDR layout at two significant bits of precision. That
//! keeps the memory footprint constant (256 `u64` cells) while bounding
//! the relative quantization error of any reported quantile to < 25%
//! across the full `u64` range. Count, sum, min, and max are tracked
//! exactly; only the quantiles are bucketed.
//!
//! Emission is byte-stable: [`Histogram::to_json`] renders fixed keys
//! in fixed order with only the non-empty buckets, and
//! [`Histogram::prom_lines`] renders the cumulative
//! Prometheus-text-format bucket series.
//!
//! ```
//! use flexsim_obs::hist::Histogram;
//!
//! let mut h = Histogram::new();
//! for us in [100, 200, 300, 40_000] {
//!     h.observe(us);
//! }
//! assert_eq!(h.count(), 4);
//! assert_eq!(h.max(), 40_000);
//! assert!(h.quantile(0.50) >= 200 && h.quantile(0.50) < 300);
//! ```

use flexsim_testkit::json::Json;
use std::fmt::Write as _;

/// Number of buckets: 4 sub-buckets × up to 63 octaves, capped at 256.
const BUCKETS: usize = 256;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index of `v`: identity below 4, then
/// `octave * 4 + sub` where each octave `[2^k, 2^(k+1))` splits into
/// four equal sub-buckets.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros()); // >= 2
    let octave = msb - 1;
    let sub = (v >> (msb - 2)) & 3;
    ((octave * 4 + sub) as usize).min(BUCKETS - 1)
}

/// The largest value that maps into bucket `i` (inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let octave = (i / 4) as u32;
    let sub = (i % 4) as u64;
    let width = 1u64 << (octave - 1);
    // Lower bound of the sub-bucket plus its width, minus one; the top
    // octave's last sub-bucket saturates at u64::MAX (callers clamp
    // quantiles to the exact max anyway).
    1u64.checked_shl(octave + 1)
        .unwrap_or(u64::MAX)
        .saturating_add((sub + 1).saturating_mul(width))
        .saturating_sub(1)
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the exact max (0 when empty). `quantile(0.5)` is the
    /// p50, `quantile(0.99)` the p99.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// Byte-stable JSON: fixed keys in fixed order, non-empty buckets
    /// only.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("min", Json::Int(self.min() as i64)),
            ("max", Json::Int(self.max as i64)),
            ("p50", Json::Int(self.quantile(0.50) as i64)),
            ("p90", Json::Int(self.quantile(0.90) as i64)),
            ("p99", Json::Int(self.quantile(0.99) as i64)),
            (
                "buckets",
                Json::arr(
                    self.buckets()
                        .into_iter()
                        .map(|(le, c)| Json::arr([Json::Int(le as i64), Json::Int(c as i64)])),
                ),
            ),
        ])
    }

    /// Prometheus text-format lines for a histogram metric named
    /// `name` (cumulative `_bucket{le=…}` series plus `_sum` and
    /// `_count`).
    pub fn prom_lines(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (le, c) in self.buckets() {
            cumulative += c;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_map_to_identity_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_consistent() {
        // Every value's bucket upper bound is >= the value, and bucket
        // index is monotonic in the value.
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..50u64 {
            for off in [0u64, 1, 2, 3] {
                values.push((1u64 << shift) + off * ((1u64 << shift) / 4).max(1));
            }
        }
        values.sort_unstable();
        let mut last_idx = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "v={v} idx={idx}");
            assert!(idx >= last_idx, "v={v} idx={idx} last={last_idx}");
            last_idx = idx;
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, exact) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                got >= exact && got <= exact * 1.25,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_observing_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 17, 4_000, 1 << 40] {
            a.observe(v);
            all.observe(v);
        }
        for v in [3u64, 255, 1 << 20] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn json_emission_is_byte_stable() {
        let mut h = Histogram::new();
        h.observe(5);
        h.observe(5);
        h.observe(1000);
        let first = h.to_json().compact();
        assert_eq!(first, h.to_json().compact());
        assert!(first.contains("\"count\":3"), "{first}");
        assert!(first.contains("\"p50\":5"), "{first}");
    }

    #[test]
    fn prom_lines_are_cumulative() {
        let mut h = Histogram::new();
        h.observe(1);
        h.observe(2);
        h.observe(2);
        let prom = h.prom_lines("t_us");
        assert!(prom.contains("t_us_bucket{le=\"1\"} 1"), "{prom}");
        assert!(prom.contains("t_us_bucket{le=\"2\"} 3"), "{prom}");
        assert!(prom.contains("t_us_bucket{le=\"+Inf\"} 3"), "{prom}");
        assert!(prom.contains("t_us_sum 5"), "{prom}");
        assert!(prom.contains("t_us_count 3"), "{prom}");
    }

    #[test]
    fn power_of_two_edges_start_new_buckets_exactly() {
        for shift in 2..62u64 {
            let edge = 1u64 << shift;
            let below = bucket_index(edge - 1);
            let at = bucket_index(edge);
            assert!(at > below, "2^{shift} shares a bucket with 2^{shift}-1");
            // The bucket below ends exactly at the edge — an octave
            // boundary never blurs values across it.
            assert_eq!(bucket_upper(below), edge - 1, "2^{shift}");
        }
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let mut h = Histogram::new();
        h.observe(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
        // 42's bucket tops out at 47, but quantiles clamp to the exact
        // max — a single sample is reported exactly, never bucketed up.
        assert!(bucket_upper(bucket_index(42)) > 42);
    }

    #[test]
    fn min_max_and_sum_stay_exact_across_octaves() {
        let mut h = Histogram::new();
        for v in [7u64, 1 << 10, (1 << 20) + 3] {
            h.observe(v);
        }
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), (1 << 20) + 3);
        assert_eq!(h.sum(), 7 + (1 << 10) + (1 << 20) + 3);
        assert_eq!(h.quantile(1.0), (1 << 20) + 3);
    }

    #[test]
    fn huge_values_saturate_the_last_bucket() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
