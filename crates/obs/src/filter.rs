//! `FLEXSIM_LOG`-style env filter and leveled stderr logging.
//!
//! The filter spec is a comma-separated list of directives, each either
//! a bare level (setting the default) or `target=level`:
//!
//! ```text
//! FLEXSIM_LOG=info                  # everything at info and above
//! FLEXSIM_LOG=layer=trace,warn      # trace for `layer`, warn elsewhere
//! FLEXSIM_LOG=off                   # silence (the default)
//! ```
//!
//! Targets match by prefix, longest directive wins — `engine` matches
//! both `engine` and `engine/schedule`.

use std::fmt;
use std::sync::OnceLock;

/// Log verbosity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems.
    Error,
    /// Suspicious conditions.
    Warn,
    /// High-level progress.
    Info,
    /// Span begin/end and per-layer details.
    Debug,
    /// Everything, including per-event detail.
    Trace,
}

impl Level {
    /// Parses a level name (case-insensitive). `None` means `off`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        };
        f.write_str(s)
    }
}

/// A parsed `FLEXSIM_LOG` filter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Filter {
    default: Option<Level>,
    // (target-prefix, level), most specific matched by longest prefix.
    directives: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// Parses a filter spec. Unknown level names and empty directives
    /// are ignored rather than rejected, so a typo'd env var degrades to
    /// silence instead of a panic.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level.trim()) {
                        filter.directives.push((target.trim().to_owned(), level));
                    }
                }
                None => {
                    if let Some(level) = Level::parse(directive) {
                        filter.default = level;
                    }
                }
            }
        }
        filter
    }

    /// Whether a message at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let mut best: Option<(usize, Option<Level>)> = None;
        for (prefix, lvl) in &self.directives {
            if target.starts_with(prefix.as_str())
                && best.is_none_or(|(len, _)| prefix.len() >= len)
            {
                best = Some((prefix.len(), *lvl));
            }
        }
        let effective = best.map_or(self.default, |(_, lvl)| lvl);
        effective.is_some_and(|max| level <= max)
    }

    /// True when no directive enables anything.
    pub fn is_silent(&self) -> bool {
        self.default.is_none() && self.directives.iter().all(|(_, l)| l.is_none())
    }
}

/// The process-wide filter, read once from `FLEXSIM_LOG`.
pub fn global() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| {
        std::env::var("FLEXSIM_LOG")
            .map(|spec| Filter::parse(&spec))
            .unwrap_or_default()
    })
}

/// Whether the global filter passes `level` for `target`.
pub fn enabled(level: Level, target: &str) -> bool {
    enabled_in(global(), level, target)
}

fn enabled_in(filter: &Filter, level: Level, target: &str) -> bool {
    !filter.is_silent() && filter.enabled(level, target)
}

/// Logs a line to stderr if the global filter passes.
pub fn log(level: Level, target: &str, msg: fmt::Arguments<'_>) {
    if enabled(level, target) {
        eprintln!("[{level:5} {target}] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_default() {
        let f = Filter::parse("info");
        assert!(f.enabled(Level::Info, "anything"));
        assert!(f.enabled(Level::Warn, "anything"));
        assert!(!f.enabled(Level::Debug, "anything"));
    }

    #[test]
    fn target_directive_overrides_default() {
        let f = Filter::parse("layer=trace,warn");
        assert!(f.enabled(Level::Trace, "layer"));
        assert!(f.enabled(Level::Trace, "layer/C3"));
        assert!(!f.enabled(Level::Info, "engine"));
        assert!(f.enabled(Level::Warn, "engine"));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("engine=off,engine/schedule=debug");
        assert!(f.enabled(Level::Debug, "engine/schedule"));
        assert!(!f.enabled(Level::Error, "engine/other"));
    }

    #[test]
    fn off_and_garbage_silence() {
        assert!(Filter::parse("off").is_silent());
        assert!(Filter::parse("").is_silent());
        assert!(Filter::parse("nonsense").is_silent());
        assert!(!Filter::parse("nonsense,debug").is_silent());
    }

    #[test]
    fn level_ordering_and_display() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
        assert_eq!(Level::Debug.to_string(), "DEBUG");
    }
}
