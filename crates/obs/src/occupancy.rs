//! Run-length-encoded per-layer occupancy timelines.
//!
//! Generalizes `flexflow::trace::OccupancyTrace` (a per-cycle busy-PE
//! vector specific to the FlexFlow engine) to any architecture and any
//! layer length: a timeline is a sequence of `(cycles, busy_fraction)`
//! segments, so a million-cycle DianNao layer that alternates two
//! occupancy levels stores two segments instead of a million samples.
//! [`crate::cycles::LayerTimeline::occupancy`] builds one from a
//! cycle-event stream.

use std::fmt;

/// Occupancy over one layer's simulated lifetime, as run-length-encoded
/// `(cycles, busy_fraction)` segments.
#[derive(Clone, Debug, PartialEq)]
pub struct OccupancyTimeline {
    pe_count: u32,
    // Invariant: no zero-length segments, consecutive fracs differ.
    segments: Vec<(u64, f64)>,
}

impl OccupancyTimeline {
    /// Builds a timeline from `(cycles, busy_fraction)` segments,
    /// dropping empty segments and merging consecutive equal fractions.
    /// Fractions are clamped to `[0, 1]`.
    pub fn from_segments(pe_count: u32, segments: Vec<(u64, f64)>) -> OccupancyTimeline {
        let mut merged: Vec<(u64, f64)> = Vec::with_capacity(segments.len());
        for (cycles, frac) in segments {
            if cycles == 0 {
                continue;
            }
            let frac = frac.clamp(0.0, 1.0);
            match merged.last_mut() {
                Some((c, f)) if *f == frac => *c += cycles,
                _ => merged.push((cycles, frac)),
            }
        }
        OccupancyTimeline {
            pe_count,
            segments: merged,
        }
    }

    /// PEs in the engine this timeline describes.
    pub fn pe_count(&self) -> u32 {
        self.pe_count
    }

    /// The run-length-encoded `(cycles, busy_fraction)` segments.
    pub fn segments(&self) -> &[(u64, f64)] {
        &self.segments
    }

    /// Total cycles covered.
    pub fn cycles(&self) -> u64 {
        self.segments.iter().map(|(c, _)| c).sum()
    }

    /// Cycle-weighted mean busy fraction (0 for an empty timeline).
    pub fn utilization(&self) -> f64 {
        let total = self.cycles();
        if total == 0 {
            return 0.0;
        }
        let busy: f64 = self.segments.iter().map(|&(c, f)| c as f64 * f).sum();
        busy / total as f64
    }

    /// Fraction of cycles at full occupancy.
    pub fn full_cycles_fraction(&self) -> f64 {
        let total = self.cycles();
        if total == 0 {
            return 0.0;
        }
        let full: u64 = self
            .segments
            .iter()
            .filter(|&&(_, f)| f >= 1.0)
            .map(|(c, _)| c)
            .sum();
        full as f64 / total as f64
    }

    /// Renders the timeline as a `width`-character sparkline, each
    /// character the cycle-weighted mean occupancy of its time bucket
    /// (`' '` = idle, `'█'` = full).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn sparkline(&self, width: usize) -> String {
        assert!(width > 0, "sparkline width must be non-zero");
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let total = self.cycles();
        if total == 0 {
            return " ".repeat(width);
        }
        // Walk buckets and segments together: both advance
        // monotonically, so the whole render is O(segments + width).
        let mut out = String::with_capacity(width * 3);
        let mut seg = 0usize;
        let mut seg_start = 0u64; // first cycle of segments[seg]
        for i in 0..width {
            // Bucket [lo, hi) in cycles, covering the full range.
            let lo = (i as u64 * total) / width as u64;
            let hi = (((i + 1) as u64 * total) / width as u64)
                .max(lo + 1)
                .min(total);
            while seg_start + self.segments[seg].0 <= lo {
                seg_start += self.segments[seg].0;
                seg += 1;
            }
            let mut busy = 0.0f64;
            let (mut s, mut s_start) = (seg, seg_start);
            let mut cursor = lo;
            while cursor < hi {
                let (len, frac) = self.segments[s];
                let seg_end = s_start + len;
                let step = seg_end.min(hi) - cursor;
                busy += step as f64 * frac;
                cursor += step;
                if cursor >= seg_end {
                    s_start = seg_end;
                    s += 1;
                }
            }
            let mean = busy / (hi - lo) as f64;
            let level = (mean * 8.0).round() as usize;
            out.push(LEVELS[level.min(8)]);
        }
        out
    }

    /// Occupancy histogram over `buckets` equal occupancy ranges:
    /// element `i` counts cycles with busy fraction in
    /// `[i/buckets, (i+1)/buckets)`; the last bucket additionally
    /// includes fraction exactly 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn histogram(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let mut out = vec![0u64; buckets];
        for &(cycles, frac) in &self.segments {
            let idx = if frac >= 1.0 {
                buckets - 1
            } else {
                // frac < 1.0, so idx < buckets without clamping.
                (frac * buckets as f64) as usize
            };
            out[idx.min(buckets - 1)] += cycles;
        }
        out
    }
}

impl fmt::Display for OccupancyTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:.1}% mean, {:.0}% full cycles, {} cycles",
            self.sparkline(48),
            self.utilization() * 100.0,
            self.full_cycles_fraction() * 100.0,
            self.cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_and_drops_empty_segments() {
        let tl =
            OccupancyTimeline::from_segments(16, vec![(5, 0.5), (0, 0.9), (5, 0.5), (10, 1.0)]);
        assert_eq!(tl.segments(), &[(10, 0.5), (10, 1.0)]);
        assert_eq!(tl.cycles(), 20);
        assert!((tl.utilization() - 0.75).abs() < 1e-12);
        assert!((tl.full_cycles_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let tl = OccupancyTimeline::from_segments(16, vec![]);
        assert_eq!(tl.cycles(), 0);
        assert_eq!(tl.utilization(), 0.0);
        assert_eq!(tl.sparkline(4), "    ");
        assert_eq!(tl.histogram(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn sparkline_integrates_across_segment_boundaries() {
        // 8 cycles idle then 8 cycles full: halves of the line differ.
        let tl = OccupancyTimeline::from_segments(4, vec![(8, 0.0), (8, 1.0)]);
        assert_eq!(tl.sparkline(4), "  ██");
        // One bucket spanning both segments averages to half.
        assert_eq!(tl.sparkline(1), "▄");
    }

    #[test]
    fn histogram_last_bucket_is_inclusive() {
        let tl = OccupancyTimeline::from_segments(4, vec![(3, 1.0), (2, 0.0), (5, 0.5)]);
        let hist = tl.histogram(4);
        // 1.0 lands in the last bucket, not out of range.
        assert_eq!(hist, vec![2, 0, 5, 3]);
        assert_eq!(hist.iter().sum::<u64>(), tl.cycles());
        // Single-bucket histogram holds everything.
        assert_eq!(tl.histogram(1), vec![10]);
    }

    #[test]
    fn fractions_clamp_into_range() {
        let tl = OccupancyTimeline::from_segments(4, vec![(4, 1.5), (4, -0.25)]);
        assert_eq!(tl.segments(), &[(4, 1.0), (4, 0.0)]);
        assert_eq!(tl.histogram(2), vec![4, 4]);
    }

    #[test]
    fn display_is_compact() {
        let tl = OccupancyTimeline::from_segments(4, vec![(10, 0.5)]);
        let s = tl.to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains('%'));
    }
}
