//! Exact cycle-loss attribution: the [`StallCause`] taxonomy and the
//! per-layer [`LossLedger`].
//!
//! The paper's evaluation argument (Fig. 15 / Table 3) is about *where
//! utilization goes* — every lost PE-cycle has a reason. This module
//! makes that reason first-class: each [`crate::cycles::CycleEvent`]
//! carries a [`StallCause`], and [`LossLedger::from_timeline`] folds a
//! layer's event stream into per-cause lost-PE-cycle totals with a
//! hard exactness invariant:
//!
//! ```text
//! busy_pe_cycles + Σ attributed_lost == total_cycles × pe_count
//! ```
//!
//! There is no "unattributed" bucket: a ledger either balances
//! ([`LossLedger::is_exact`]) or the emitting simulator has a bug —
//! flexcheck rule `FXC09 attribution-exactness` turns an unbalanced
//! ledger into a gating diagnostic.

use crate::cycles::LayerTimeline;
use crate::metrics::Registry;
use std::fmt;

/// Why PE-cycles were lost. One variant per mechanism the four
/// simulators can lose utilization to; the emitters attach the cause at
/// the exact point the loss is scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Pipeline ramp-in: operand preload and adder-tree depth before
    /// the first writeback (FlexFlow's one-off layer fill, the leading
    /// half of a systolic pass's chain bubble).
    PipelineFill,
    /// Pipeline ramp-out: accumulators still in flight after the last
    /// input streamed (the trailing half of a systolic chain bubble).
    PipelineDrain,
    /// Workload dimensions that do not divide the engine's: edge
    /// spatial tiles, clamped output-map lanes, partially filled
    /// m-groups.
    EdgeFragmentation,
    /// Adder-tree input ports that cannot all be fed this pass (Tiling
    /// edge n-tiles feed only `Tn_eff` of `Tn` lanes; FlexFlow row-port
    /// conflicts are statically excluded by flexcheck FXC03, so its
    /// bucket stays zero).
    AdderTreeContention,
    /// The array waiting on buffer bandwidth to deliver operands
    /// (2D-Mapping's initial window load injects through the array edge
    /// at buffer width).
    BufferBandwidthWait,
    /// Partial-sum spill round-trip: row accumulators written to the
    /// output buffer and read back at a segment boundary (Fig. 13f).
    PsumSpillRoundTrip,
    /// The chosen mapping itself leaves PEs idle even on full tiles
    /// (FlexFlow's `Ur·Uc < D²` unrolling residue, Systolic's `K² <
    /// ak²` array waste).
    MappingResidueIdle,
}

impl StallCause {
    /// Number of causes.
    pub const COUNT: usize = 7;

    /// Every cause, in stable order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::PipelineFill,
        StallCause::PipelineDrain,
        StallCause::EdgeFragmentation,
        StallCause::AdderTreeContention,
        StallCause::BufferBandwidthWait,
        StallCause::PsumSpillRoundTrip,
        StallCause::MappingResidueIdle,
    ];

    /// Stable kebab-case name (used as the Chrome-trace event name and
    /// the metrics `cause` label).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::PipelineFill => "pipeline-fill",
            StallCause::PipelineDrain => "pipeline-drain",
            StallCause::EdgeFragmentation => "edge-fragmentation",
            StallCause::AdderTreeContention => "adder-tree-contention",
            StallCause::BufferBandwidthWait => "buffer-bandwidth-wait",
            StallCause::PsumSpillRoundTrip => "psum-spill",
            StallCause::MappingResidueIdle => "mapping-residue-idle",
        }
    }

    /// Index into [`StallCause::ALL`].
    pub fn index(self) -> usize {
        match self {
            StallCause::PipelineFill => 0,
            StallCause::PipelineDrain => 1,
            StallCause::EdgeFragmentation => 2,
            StallCause::AdderTreeContention => 3,
            StallCause::BufferBandwidthWait => 4,
            StallCause::PsumSpillRoundTrip => 5,
            StallCause::MappingResidueIdle => 6,
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where one layer's PE-cycles went: busy MACs plus lost cycles split
/// by [`StallCause`], with the exactness identity checkable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LossLedger {
    /// Architecture the layer ran on.
    pub arch: String,
    /// Layer name.
    pub layer: String,
    /// Owning experiment id (empty outside sweeps).
    pub experiment: String,
    /// PEs in the engine (the loss denominator).
    pub pe_count: u32,
    /// Total simulated cycles of the layer.
    pub total_cycles: u64,
    /// Cycles covered by events (== `total_cycles` when the timeline
    /// tiles without gaps — a precondition of exactness).
    pub covered_cycles: u64,
    /// PE-cycles doing useful MACs.
    pub busy_pe_cycles: u64,
    lost: [u64; StallCause::COUNT],
}

impl LossLedger {
    /// Folds a layer timeline into a ledger. Each event contributes its
    /// MACs to `busy_pe_cycles` and its idle remainder
    /// (`cycles × pe_count − macs`) to the event's cause.
    pub fn from_timeline(tl: &LayerTimeline) -> LossLedger {
        let pes = u64::from(tl.ctx.pe_count);
        let mut ledger = LossLedger {
            arch: tl.ctx.arch.clone(),
            layer: tl.ctx.layer.clone(),
            experiment: tl.ctx.experiment.clone(),
            pe_count: tl.ctx.pe_count,
            total_cycles: tl.total_cycles(),
            covered_cycles: 0,
            busy_pe_cycles: 0,
            lost: [0; StallCause::COUNT],
        };
        for ev in &tl.events {
            let pe_cycles = ev.cycles * pes;
            debug_assert!(
                ev.macs <= pe_cycles,
                "{}/{}: event claims {} MACs in {} PE-cycles (flexcheck FXC09 \
                 attribution-exactness)",
                tl.ctx.arch,
                tl.ctx.layer,
                ev.macs,
                pe_cycles,
            );
            ledger.covered_cycles += ev.cycles;
            ledger.busy_pe_cycles += ev.macs;
            ledger.lost[ev.kind.cause().index()] += pe_cycles.saturating_sub(ev.macs);
        }
        ledger
    }

    /// Lost PE-cycles attributed to `cause`.
    pub fn lost(&self, cause: StallCause) -> u64 {
        self.lost[cause.index()]
    }

    /// Sum of all attributed losses.
    pub fn attributed_lost(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// The identity's right-hand side: `total_cycles × pe_count`.
    pub fn total_pe_cycles(&self) -> u64 {
        self.total_cycles * u64::from(self.pe_count)
    }

    /// PE-cycles the identity cannot account for (0 on a balanced
    /// ledger; nonzero means the emitter left gaps, overlapped events,
    /// or under-attributed a loss).
    pub fn unattributed(&self) -> u64 {
        self.total_pe_cycles()
            .abs_diff(self.busy_pe_cycles + self.attributed_lost())
    }

    /// The exactness invariant:
    /// `busy + Σ lost == total_cycles × pe_count` with the events
    /// tiling the timeline exactly.
    pub fn is_exact(&self) -> bool {
        self.covered_cycles == self.total_cycles && self.unattributed() == 0
    }

    /// Nonzero causes, largest loss first (ties broken by taxonomy
    /// order, so output is deterministic).
    pub fn top_causes(&self) -> Vec<(StallCause, u64)> {
        let mut causes: Vec<(StallCause, u64)> = StallCause::ALL
            .iter()
            .map(|&c| (c, self.lost(c)))
            .filter(|&(_, lost)| lost > 0)
            .collect();
        causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        causes
    }

    /// Folds another ledger of the same architecture into this one
    /// (network-level aggregation).
    pub fn absorb(&mut self, other: &LossLedger) {
        self.total_cycles += other.total_cycles;
        self.covered_cycles += other.covered_cycles;
        self.busy_pe_cycles += other.busy_pe_cycles;
        for cause in StallCause::ALL {
            self.lost[cause.index()] += other.lost(cause);
        }
    }

    /// Mirrors the ledger into a metrics registry:
    /// `sim_busy_pe_cycles{arch}` plus one
    /// `sim_lost_pe_cycles{arch, cause}` counter per nonzero cause —
    /// the chokepoint keeping `flexsim --metrics` and exported traces
    /// in agreement with the ledger.
    pub fn mirror(&self, registry: &Registry) {
        let arch = self.arch.as_str();
        registry.add("sim_busy_pe_cycles", &[("arch", arch)], self.busy_pe_cycles);
        for (cause, lost) in self.top_causes() {
            registry.add(
                "sim_lost_pe_cycles",
                &[("arch", arch), ("cause", cause.name())],
                lost,
            );
        }
    }
}

/// One ledger per completed layer timeline.
pub fn ledgers(timelines: &[LayerTimeline]) -> Vec<LossLedger> {
    timelines.iter().map(LossLedger::from_timeline).collect()
}

/// The attribution *delta* between two ledgers of the same layer — the
/// tuner's before/after report: which causes recovered lost PE-cycles
/// when the mapping changed, and which got worse.
///
/// A remapping never changes the useful work (`busy_pe_cycles` is the
/// layer's MAC count, a function of the layer shape alone), so a delta
/// is meaningful exactly when both ledgers agree on it —
/// [`LossDelta::between`] asserts that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LossDelta {
    /// Layer name (shared by both ledgers).
    pub layer: String,
    /// PEs in the engine.
    pub pe_count: u32,
    /// Total cycles under the *before* mapping.
    pub before_cycles: u64,
    /// Total cycles under the *after* mapping.
    pub after_cycles: u64,
    /// PE-cycles doing useful MACs (identical before and after).
    pub busy_pe_cycles: u64,
    before_lost: [u64; StallCause::COUNT],
    after_lost: [u64; StallCause::COUNT],
}

impl LossDelta {
    /// Builds the delta from a *before* and an *after* ledger of the
    /// same layer.
    ///
    /// # Panics
    ///
    /// Panics if the ledgers disagree on the layer name, PE count, or
    /// busy PE-cycles — those would mean the two runs computed
    /// different layers, not the same layer under different mappings.
    pub fn between(before: &LossLedger, after: &LossLedger) -> LossDelta {
        assert_eq!(before.layer, after.layer, "delta across different layers");
        assert_eq!(before.pe_count, after.pe_count, "delta across engines");
        assert_eq!(
            before.busy_pe_cycles, after.busy_pe_cycles,
            "{}: remapping changed the useful work ({} vs {} busy PE-cycles)",
            before.layer, before.busy_pe_cycles, after.busy_pe_cycles,
        );
        LossDelta {
            layer: before.layer.clone(),
            pe_count: before.pe_count,
            before_cycles: before.total_cycles,
            after_cycles: after.total_cycles,
            busy_pe_cycles: before.busy_pe_cycles,
            before_lost: before.lost,
            after_lost: after.lost,
        }
    }

    /// Lost PE-cycles attributed to `cause` under the before mapping.
    pub fn before(&self, cause: StallCause) -> u64 {
        self.before_lost[cause.index()]
    }

    /// Lost PE-cycles attributed to `cause` under the after mapping.
    pub fn after(&self, cause: StallCause) -> u64 {
        self.after_lost[cause.index()]
    }

    /// Total lost PE-cycles under the before mapping, all causes.
    pub fn before_total(&self) -> u64 {
        self.before_lost.iter().sum()
    }

    /// Total lost PE-cycles under the after mapping, all causes.
    pub fn after_total(&self) -> u64 {
        self.after_lost.iter().sum()
    }

    /// PE-cycles recovered from `cause` (negative when the new mapping
    /// loses *more* to this cause — a trade the total must justify).
    pub fn recovered(&self, cause: StallCause) -> i64 {
        self.before(cause) as i64 - self.after(cause) as i64
    }

    /// Net PE-cycles recovered across all causes.
    pub fn total_recovered(&self) -> i64 {
        StallCause::ALL.iter().map(|&c| self.recovered(c)).sum()
    }

    /// Wall-clock cycles saved (negative on a regression).
    pub fn recovered_cycles(&self) -> i64 {
        self.before_cycles as i64 - self.after_cycles as i64
    }

    /// Causes with a nonzero delta, largest recovery first (ties broken
    /// by taxonomy order; regressions sort last).
    pub fn top_recoveries(&self) -> Vec<(StallCause, i64)> {
        let mut causes: Vec<(StallCause, i64)> = StallCause::ALL
            .iter()
            .map(|&c| (c, self.recovered(c)))
            .filter(|&(_, d)| d != 0)
            .collect();
        causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        causes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::{CycleEvent, CycleEventKind, LayerCtx};

    fn tl(pes: u32, events: Vec<CycleEvent>) -> LayerTimeline {
        LayerTimeline {
            ctx: LayerCtx::new("TestArch", "C1", pes),
            events,
        }
    }

    #[test]
    fn names_and_indices_are_stable() {
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        let names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert_eq!(StallCause::PipelineFill.name(), "pipeline-fill");
        assert_eq!(StallCause::PsumSpillRoundTrip.to_string(), "psum-spill");
    }

    #[test]
    fn ledger_balances_a_tiling_timeline() {
        // 4 PEs: fill (8 cycles, all lost), pass (10 cycles, 30 of 40
        // PE-cycles busy), spill (2 cycles, all lost).
        let tl = tl(
            4,
            vec![
                CycleEvent::new(CycleEventKind::Stall(StallCause::PipelineFill), 0, 8, 0),
                CycleEvent::new(
                    CycleEventKind::Pass(StallCause::MappingResidueIdle),
                    8,
                    10,
                    30,
                ),
                CycleEvent::new(
                    CycleEventKind::Stall(StallCause::PsumSpillRoundTrip),
                    18,
                    2,
                    0,
                ),
            ],
        );
        let ledger = LossLedger::from_timeline(&tl);
        assert_eq!(ledger.total_cycles, 20);
        assert_eq!(ledger.busy_pe_cycles, 30);
        assert_eq!(ledger.lost(StallCause::PipelineFill), 32);
        assert_eq!(ledger.lost(StallCause::MappingResidueIdle), 10);
        assert_eq!(ledger.lost(StallCause::PsumSpillRoundTrip), 8);
        assert_eq!(ledger.attributed_lost(), 50);
        assert_eq!(ledger.total_pe_cycles(), 80);
        assert_eq!(ledger.unattributed(), 0);
        assert!(ledger.is_exact());
        assert_eq!(
            ledger.top_causes(),
            vec![
                (StallCause::PipelineFill, 32),
                (StallCause::MappingResidueIdle, 10),
                (StallCause::PsumSpillRoundTrip, 8),
            ]
        );
    }

    #[test]
    fn gapped_timeline_is_not_exact() {
        // An event starting at cycle 5 leaves [0, 5) uncovered.
        let tl = tl(
            2,
            vec![CycleEvent::new(
                CycleEventKind::Pass(StallCause::EdgeFragmentation),
                5,
                10,
                20,
            )],
        );
        let ledger = LossLedger::from_timeline(&tl);
        assert_eq!(ledger.covered_cycles, 10);
        assert_eq!(ledger.total_cycles, 15);
        assert!(!ledger.is_exact());
        assert_eq!(ledger.unattributed(), 10);
    }

    #[test]
    fn absorb_aggregates_layers() {
        let a = LossLedger::from_timeline(&tl(
            2,
            vec![CycleEvent::new(
                CycleEventKind::Pass(StallCause::EdgeFragmentation),
                0,
                10,
                15,
            )],
        ));
        let mut total = a.clone();
        total.absorb(&a);
        assert_eq!(total.total_cycles, 20);
        assert_eq!(total.busy_pe_cycles, 30);
        assert_eq!(total.lost(StallCause::EdgeFragmentation), 10);
        assert!(total.is_exact());
    }

    #[test]
    fn delta_reports_per_cause_recovery() {
        // Before: 20 cycles on 4 PEs — fill 32, residue 10, spill 8
        // lost. After: a better mapping drops the pass to 9 cycles with
        // the same 30 MACs (residue 6) and eliminates the spill.
        let before = LossLedger::from_timeline(&tl(
            4,
            vec![
                CycleEvent::new(CycleEventKind::Stall(StallCause::PipelineFill), 0, 8, 0),
                CycleEvent::new(
                    CycleEventKind::Pass(StallCause::MappingResidueIdle),
                    8,
                    10,
                    30,
                ),
                CycleEvent::new(
                    CycleEventKind::Stall(StallCause::PsumSpillRoundTrip),
                    18,
                    2,
                    0,
                ),
            ],
        ));
        let after = LossLedger::from_timeline(&tl(
            4,
            vec![
                CycleEvent::new(CycleEventKind::Stall(StallCause::PipelineFill), 0, 8, 0),
                CycleEvent::new(
                    CycleEventKind::Pass(StallCause::MappingResidueIdle),
                    8,
                    9,
                    30,
                ),
            ],
        ));
        let delta = LossDelta::between(&before, &after);
        assert_eq!(delta.busy_pe_cycles, 30);
        assert_eq!(delta.before_cycles, 20);
        assert_eq!(delta.after_cycles, 17);
        assert_eq!(delta.recovered_cycles(), 3);
        assert_eq!(delta.recovered(StallCause::PipelineFill), 0);
        assert_eq!(delta.recovered(StallCause::MappingResidueIdle), 4);
        assert_eq!(delta.recovered(StallCause::PsumSpillRoundTrip), 8);
        assert_eq!(delta.total_recovered(), 12);
        // total_recovered == recovered_cycles × pe_count (busy fixed).
        assert_eq!(delta.total_recovered(), delta.recovered_cycles() * 4);
        assert_eq!(
            delta.top_recoveries(),
            vec![
                (StallCause::PsumSpillRoundTrip, 8),
                (StallCause::MappingResidueIdle, 4),
            ]
        );
    }

    #[test]
    fn delta_surfaces_regressions_as_negative() {
        let before = LossLedger::from_timeline(&tl(
            2,
            vec![CycleEvent::new(
                CycleEventKind::Pass(StallCause::MappingResidueIdle),
                0,
                10,
                12,
            )],
        ));
        let after = LossLedger::from_timeline(&tl(
            2,
            vec![CycleEvent::new(
                CycleEventKind::Pass(StallCause::EdgeFragmentation),
                0,
                11,
                12,
            )],
        ));
        let delta = LossDelta::between(&before, &after);
        assert_eq!(delta.recovered(StallCause::MappingResidueIdle), 8);
        assert_eq!(delta.recovered(StallCause::EdgeFragmentation), -10);
        assert_eq!(delta.total_recovered(), -2);
        assert_eq!(delta.recovered_cycles(), -1);
        assert_eq!(
            delta.top_recoveries(),
            vec![
                (StallCause::MappingResidueIdle, 8),
                (StallCause::EdgeFragmentation, -10),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "remapping changed the useful work")]
    fn delta_rejects_mismatched_work() {
        let a = LossLedger::from_timeline(&tl(
            2,
            vec![CycleEvent::new(
                CycleEventKind::Pass(StallCause::MappingResidueIdle),
                0,
                10,
                12,
            )],
        ));
        let b = LossLedger::from_timeline(&tl(
            2,
            vec![CycleEvent::new(
                CycleEventKind::Pass(StallCause::MappingResidueIdle),
                0,
                10,
                13,
            )],
        ));
        let _ = LossDelta::between(&a, &b);
    }

    #[test]
    fn mirror_writes_per_cause_counters() {
        let registry = Registry::new();
        let ledger = LossLedger::from_timeline(&tl(
            4,
            vec![
                CycleEvent::new(
                    CycleEventKind::Stall(StallCause::BufferBandwidthWait),
                    0,
                    5,
                    0,
                ),
                CycleEvent::new(
                    CycleEventKind::Pass(StallCause::AdderTreeContention),
                    5,
                    10,
                    25,
                ),
            ],
        ));
        ledger.mirror(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.total("sim_busy_pe_cycles", &[("arch", "TestArch")]),
            25
        );
        assert_eq!(
            snap.total(
                "sim_lost_pe_cycles",
                &[("arch", "TestArch"), ("cause", "buffer-bandwidth-wait")],
            ),
            20
        );
        assert_eq!(
            snap.total(
                "sim_lost_pe_cycles",
                &[("arch", "TestArch"), ("cause", "adder-tree-contention")],
            ),
            15
        );
    }
}
