//! Host-side runtime telemetry: the simulator measuring *itself*.
//!
//! Everything else in this crate observes the simulated machine; this
//! module observes the simulator. It is the substrate behind
//! `flexsim stats` and `flexsim --telemetry`:
//!
//! * **Phase profiler** — scoped wall-clock timers over the host
//!   pipeline ([`Phase`]: parse → flexcheck → schedule → simulate →
//!   verify → export). Phases nest; time is attributed *exclusively*
//!   to the innermost active phase on each thread, so phase totals
//!   never double-count and sum to at most the process wall time.
//!   Every [`phase`] guard also opens a `phase`-category
//!   [`crate::span`], nesting host-phase timing under the existing
//!   span hierarchy (and into Chrome traces).
//! * **Scheduler telemetry** — `flexsim-pool` reports per-worker
//!   busy/idle/wall time, steal counts, task counts, and per-task
//!   latency through [`merge_worker`]; workers buffer locally and the
//!   pool merges in worker-index order at drop, so the merge is
//!   deterministic.
//! * **Latency histograms** — log-bucketed [`Histogram`]s
//!   ([`observe_task_us`], [`observe_layer_sim_us`],
//!   [`observe_experiment_us`]) with exact counts and p50/p90/p99.
//! * **Flight recorder** — a bounded ring buffer of recent host
//!   events ([`flight`]), dumped to `flight-<ts>.json` on a task
//!   panic (via the pool's `catch_unwind` hook) or on demand at
//!   shutdown.
//!
//! Telemetry is **off by default** and costs one relaxed atomic load
//! per instrumentation point when disabled. Enabling it never changes
//! simulation results — only wall-clock observations are recorded —
//! and the `integration_telemetry` suite proves byte-identical
//! simulation output with telemetry on vs. off at every `--jobs`
//! level.
//!
//! Monotonic-clock discipline: every duration is measured with
//! [`Instant`] (never `SystemTime`), so NTP steps cannot produce
//! negative or wildly wrong phase times. The only wall-clock read is
//! the flight-dump filename timestamp.

use crate::hist::Histogram;
use flexsim_testkit::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One phase of the host pipeline, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Workload / experiment resolution and network construction.
    Parse,
    /// Static schedule verification (the flexcheck gate and sweeps).
    Flexcheck,
    /// Mapping / unrolling planning (`best_unroll`, `plan_network`,
    /// the baselines' closed-form schedule analysis).
    Schedule,
    /// Cycle simulation proper (the `run_conv` paths).
    Simulate,
    /// Result verification (ledger exactness checks, attribution
    /// mirroring, tuner re-verification).
    Verify,
    /// Rendering and writing outputs (tables, JSON, traces).
    Export,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Flexcheck,
        Phase::Schedule,
        Phase::Simulate,
        Phase::Verify,
        Phase::Export,
    ];

    /// Stable lower-case name (used in snapshots and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Flexcheck => "flexcheck",
            Phase::Schedule => "schedule",
            Phase::Simulate => "simulate",
            Phase::Verify => "verify",
            Phase::Export => "export",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Flexcheck => 1,
            Phase::Schedule => 2,
            Phase::Simulate => 3,
            Phase::Verify => 4,
            Phase::Export => 5,
        }
    }
}

const PHASES: usize = Phase::ALL.len();

static ENABLED: AtomicBool = AtomicBool::new(false);
static PHASE_SELF_US: [AtomicU64; PHASES] = [const { AtomicU64::new(0) }; PHASES];
static PHASE_CALLS: [AtomicU64; PHASES] = [const { AtomicU64::new(0) }; PHASES];
static QUEUE_HIGH_WATER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The per-thread phase stack: (phase index, start of the current
    /// *segment* — reset whenever a child phase pauses this one).
    static PHASE_STACK: RefCell<Vec<(usize, Instant)>> = const { RefCell::new(Vec::new()) };
}

/// Turns telemetry collection on. Idempotent; also anchors the flight
/// recorder's epoch on first use.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turns telemetry collection off (accumulated data is kept; see
/// [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether telemetry is being collected. One relaxed load — this is
/// the only cost every instrumentation point pays when telemetry is
/// off.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every accumulated phase total, histogram, worker stat, and
/// flight event (the enable/disable state is untouched).
pub fn reset() {
    for i in 0..PHASES {
        PHASE_SELF_US[i].store(0, Ordering::Relaxed);
        PHASE_CALLS[i].store(0, Ordering::Relaxed);
    }
    QUEUE_HIGH_WATER.store(0, Ordering::Relaxed);
    let mut st = lock_state();
    st.experiment_wall = Histogram::new();
    st.layer_sim_wall = Histogram::new();
    st.task_wall = Histogram::new();
    st.workers.clear();
    st.flight.clear();
    st.flight_dropped = 0;
}

/// The monotonic epoch flight-event timestamps are relative to (set
/// once, at first [`enable`]).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Accumulated per-worker totals (merged across pools by worker
/// index).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTotals {
    /// Wall time the worker existed (spawn→join for spawned workers;
    /// time inside `Pool::run` for the calling thread, index 0).
    pub wall_us: u64,
    /// Time spent executing tasks.
    pub busy_us: u64,
    /// Wall minus busy (parked or stealing-and-failing).
    pub idle_us: u64,
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Tasks this worker stole from a sibling's deque.
    pub steals: u64,
}

/// Mutex-protected collection state (histograms, workers, flight
/// ring). Phase totals stay in atomics so the per-layer hot path never
/// takes this lock.
struct State {
    experiment_wall: Histogram,
    layer_sim_wall: Histogram,
    task_wall: Histogram,
    workers: BTreeMap<usize, WorkerTotals>,
    flight: std::collections::VecDeque<FlightEvent>,
    flight_dropped: u64,
    flight_dir: Option<std::path::PathBuf>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            experiment_wall: Histogram::new(),
            layer_sim_wall: Histogram::new(),
            task_wall: Histogram::new(),
            workers: BTreeMap::new(),
            flight: std::collections::VecDeque::new(),
            flight_dropped: 0,
            flight_dir: None,
        })
    })
}

fn lock_state() -> MutexGuard<'static, State> {
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

fn charge(phase_idx: usize, us: u64) {
    PHASE_SELF_US[phase_idx].fetch_add(us, Ordering::Relaxed);
}

fn dur_us(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from)
        .as_micros()
        .min(u128::from(u64::MAX)) as u64
}

/// A live phase timer; settles its accounts on drop.
#[must_use = "a phase timer measures the scope it is alive in"]
pub struct PhaseTimer {
    active: bool,
    _span: Option<crate::span::SpanGuard>,
}

/// Opens a scoped timer for `p`. While this guard is alive, wall time
/// on the current thread is charged to `p`; a nested [`phase`] call
/// pauses it (time is attributed to the innermost phase only). Inert —
/// one relaxed atomic load — when telemetry is disabled.
pub fn phase(p: Phase) -> PhaseTimer {
    if !enabled() {
        return PhaseTimer {
            active: false,
            _span: None,
        };
    }
    let now = Instant::now();
    PHASE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(top) = stack.last_mut() {
            charge(top.0, dur_us(top.1, now));
            top.1 = now;
        }
        stack.push((p.index(), now));
    });
    PhaseTimer {
        active: true,
        _span: Some(crate::span::span("phase", p.name())),
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let now = Instant::now();
        PHASE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some((idx, seg_start)) = stack.pop() {
                charge(idx, dur_us(seg_start, now));
                PHASE_CALLS[idx].fetch_add(1, Ordering::Relaxed);
            }
            if let Some(top) = stack.last_mut() {
                top.1 = now; // resume the parent's segment
            }
        });
    }
}

/// `Some(Instant::now())` when telemetry is enabled — the cheap idiom
/// for optional latency sampling at instrumentation points.
pub fn now_if_enabled() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Records one per-layer-simulation wall-time sample, measured from
/// `start` (a [`now_if_enabled`] result; `None` is a no-op).
pub fn observe_layer_sim_since(start: Option<Instant>) {
    if let Some(t) = start {
        let us = dur_us(t, Instant::now());
        lock_state().layer_sim_wall.observe(us);
    }
}

/// Records one per-experiment wall-time sample in microseconds.
pub fn observe_experiment_us(us: u64) {
    if enabled() {
        lock_state().experiment_wall.observe(us);
    }
}

/// Records one task-latency sample in microseconds (normally via
/// [`merge_worker`]'s histogram; this entry point exists for serial
/// executors).
pub fn observe_task_us(us: u64) {
    if enabled() {
        lock_state().task_wall.observe(us);
    }
}

/// Raises the pool queue-depth high-water mark to at least `depth`.
pub fn pool_queue_depth(depth: u64) {
    if enabled() {
        QUEUE_HIGH_WATER.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Merges one worker's totals (plus its locally-buffered task-latency
/// histogram) into the global accumulators. Called by the pool at
/// drop, in worker-index order, so the merge is deterministic.
pub fn merge_worker(index: usize, totals: &WorkerTotals, task_hist: &Histogram) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    let slot = st.workers.entry(index).or_default();
    slot.wall_us += totals.wall_us;
    slot.busy_us += totals.busy_us;
    slot.idle_us += totals.idle_us;
    slot.tasks += totals.tasks;
    slot.steals += totals.steals;
    st.task_wall.merge(task_hist);
}

/// One flight-recorder entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the telemetry epoch (first [`enable`]).
    pub ts_us: u64,
    /// Short category (`"experiment"`, `"task-panic"`, `"pool"`, …).
    pub cat: &'static str,
    /// Human-readable description.
    pub msg: String,
}

/// The bounded ring-buffer flight recorder of recent host events.
pub mod flight {
    use super::{dur_us, enabled, epoch, lock_state, FlightEvent, Json};
    use std::path::{Path, PathBuf};
    use std::time::Instant;

    /// Ring capacity: newest [`CAPACITY`] events are kept, older ones
    /// are counted as dropped.
    pub const CAPACITY: usize = 256;

    /// Records one event (no-op when telemetry is disabled).
    pub fn record(cat: &'static str, msg: impl Into<String>) {
        if !enabled() {
            return;
        }
        let ts_us = dur_us(epoch(), Instant::now());
        let mut st = lock_state();
        if st.flight.len() == CAPACITY {
            st.flight.pop_front();
            st.flight_dropped += 1;
        }
        st.flight.push_back(FlightEvent {
            ts_us,
            cat,
            msg: msg.into(),
        });
    }

    /// Directs panic/shutdown dumps into `dir` (`None` disables
    /// automatic dumping — the default, so library users and tests
    /// never find surprise files in their working directory).
    pub fn set_dir(dir: Option<&Path>) {
        lock_state().flight_dir = dir.map(Path::to_path_buf);
    }

    /// A snapshot of the ring: the retained events plus the count of
    /// older events that fell off.
    pub fn events() -> (Vec<FlightEvent>, u64) {
        let st = lock_state();
        (st.flight.iter().cloned().collect(), st.flight_dropped)
    }

    /// The dump document: `{"flexsim_flight": 1, "dropped": n,
    /// "events": [{"ts_us", "cat", "msg"}, …]}` (byte-stable ordering).
    pub fn to_json() -> Json {
        let (events, dropped) = events();
        Json::obj([
            ("flexsim_flight", Json::Int(1)),
            ("dropped", Json::Int(dropped as i64)),
            (
                "events",
                Json::arr(events.iter().map(|e| {
                    Json::obj([
                        ("ts_us", Json::Int(e.ts_us as i64)),
                        ("cat", Json::str(e.cat)),
                        ("msg", Json::str(&e.msg)),
                    ])
                })),
            ),
        ])
    }

    /// Writes the flight dump to `flight-<unix-seconds>.json` in the
    /// configured directory. Returns the path, or `None` when
    /// telemetry is disabled, no directory is configured, or the
    /// write fails (a failing dump must never mask the original
    /// panic).
    pub fn dump_now() -> Option<PathBuf> {
        if !enabled() {
            return None;
        }
        let dir = lock_state().flight_dir.clone()?;
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut path = dir.join(format!("flight-{ts}.json"));
        // A burst of panics within one second must not clobber the
        // first dump.
        let mut n = 1;
        while path.exists() {
            path = dir.join(format!("flight-{ts}-{n}.json"));
            n += 1;
        }
        let mut text = to_json().pretty();
        text.push('\n');
        std::fs::write(&path, text).ok()?;
        Some(path)
    }

    /// The panic hook: records the failure and dumps the ring. Called
    /// from the pool's `catch_unwind` arm and the suite runner.
    pub fn record_panic(label: &str, message: &str) -> Option<PathBuf> {
        record("task-panic", format!("{label}: {message}"));
        dump_now()
    }
}

/// A point-in-time copy of every telemetry accumulator.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Per-phase `(phase, calls, exclusive wall µs)`, pipeline order,
    /// every declared phase present (zeroes included).
    pub phases: Vec<(Phase, u64, u64)>,
    /// Per-worker totals, worker-index order.
    pub workers: Vec<(usize, WorkerTotals)>,
    /// Pool queue-depth high-water mark.
    pub queue_high_water: u64,
    /// Per-experiment wall-time histogram (µs).
    pub experiment_wall: Histogram,
    /// Per-layer-simulation wall-time histogram (µs).
    pub layer_sim_wall: Histogram,
    /// Per-task latency histogram (µs).
    pub task_wall: Histogram,
    /// Retained flight events.
    pub flight_events: u64,
    /// Flight events that fell off the ring.
    pub flight_dropped: u64,
}

/// Takes a snapshot of every accumulator.
pub fn snapshot() -> TelemetrySnapshot {
    let st = lock_state();
    TelemetrySnapshot {
        phases: Phase::ALL
            .iter()
            .map(|&p| {
                (
                    p,
                    PHASE_CALLS[p.index()].load(Ordering::Relaxed),
                    PHASE_SELF_US[p.index()].load(Ordering::Relaxed),
                )
            })
            .collect(),
        workers: st.workers.iter().map(|(&i, w)| (i, w.clone())).collect(),
        queue_high_water: QUEUE_HIGH_WATER.load(Ordering::Relaxed),
        experiment_wall: st.experiment_wall.clone(),
        layer_sim_wall: st.layer_sim_wall.clone(),
        task_wall: st.task_wall.clone(),
        flight_events: st.flight.len() as u64,
        flight_dropped: st.flight_dropped,
    }
}

impl TelemetrySnapshot {
    /// Exclusive wall microseconds charged to `p`.
    pub fn phase_us(&self, p: Phase) -> u64 {
        self.phases
            .iter()
            .find(|(q, _, _)| *q == p)
            .map_or(0, |&(_, _, us)| us)
    }

    /// Number of completed `p` scopes.
    pub fn phase_calls(&self, p: Phase) -> u64 {
        self.phases
            .iter()
            .find(|(q, _, _)| *q == p)
            .map_or(0, |&(_, calls, _)| calls)
    }

    /// Byte-stable JSON: fixed keys in fixed order; every declared
    /// phase appears even at zero.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::arr(self.phases.iter().map(|&(p, calls, us)| {
                    Json::obj([
                        ("phase", Json::str(p.name())),
                        ("calls", Json::Int(calls as i64)),
                        ("self_us", Json::Int(us as i64)),
                    ])
                })),
            ),
            (
                "pool",
                Json::obj([
                    (
                        "queue_depth_high_water",
                        Json::Int(self.queue_high_water as i64),
                    ),
                    (
                        "workers",
                        Json::arr(self.workers.iter().map(|(i, w)| {
                            Json::obj([
                                ("worker", Json::Int(*i as i64)),
                                ("wall_us", Json::Int(w.wall_us as i64)),
                                ("busy_us", Json::Int(w.busy_us as i64)),
                                ("idle_us", Json::Int(w.idle_us as i64)),
                                ("tasks", Json::Int(w.tasks as i64)),
                                ("steals", Json::Int(w.steals as i64)),
                            ])
                        })),
                    ),
                ]),
            ),
            (
                "histograms",
                Json::obj([
                    ("experiment_wall_us", self.experiment_wall.to_json()),
                    ("layer_sim_wall_us", self.layer_sim_wall.to_json()),
                    ("task_wall_us", self.task_wall.to_json()),
                ]),
            ),
            (
                "flight",
                Json::obj([
                    ("events", Json::Int(self.flight_events as i64)),
                    ("dropped", Json::Int(self.flight_dropped as i64)),
                ]),
            ),
        ])
    }

    /// Prometheus text-format rendering: phase counters, per-worker
    /// gauges, and the three latency histograms.
    pub fn to_prom(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE flexsim_phase_self_us_total counter");
        for &(p, _, us) in &self.phases {
            let _ = writeln!(
                out,
                "flexsim_phase_self_us_total{{phase=\"{}\"}} {us}",
                p.name()
            );
        }
        let _ = writeln!(out, "# TYPE flexsim_phase_calls_total counter");
        for &(p, calls, _) in &self.phases {
            let _ = writeln!(
                out,
                "flexsim_phase_calls_total{{phase=\"{}\"}} {calls}",
                p.name()
            );
        }
        let _ = writeln!(out, "# TYPE flexsim_pool_queue_depth_high_water gauge");
        let _ = writeln!(
            out,
            "flexsim_pool_queue_depth_high_water {}",
            self.queue_high_water
        );
        for (metric, pick) in [
            ("wall_us", 0usize),
            ("busy_us", 1),
            ("idle_us", 2),
            ("tasks", 3),
            ("steals", 4),
        ] {
            let _ = writeln!(out, "# TYPE flexsim_pool_worker_{metric} counter");
            for (i, w) in &self.workers {
                let v = [w.wall_us, w.busy_us, w.idle_us, w.tasks, w.steals][pick];
                let _ = writeln!(out, "flexsim_pool_worker_{metric}{{worker=\"{i}\"}} {v}");
            }
        }
        out.push_str(
            &self
                .experiment_wall
                .prom_lines("flexsim_experiment_wall_us"),
        );
        out.push_str(&self.layer_sim_wall.prom_lines("flexsim_layer_sim_wall_us"));
        out.push_str(&self.task_wall.prom_lines("flexsim_task_wall_us"));
        let _ = writeln!(out, "# TYPE flexsim_flight_events gauge");
        let _ = writeln!(out, "flexsim_flight_events {}", self.flight_events);
        let _ = writeln!(out, "flexsim_flight_events_dropped {}", self.flight_dropped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; serialize the tests that
    /// flip it (same discipline as the span-recorder tests).
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _g = serial();
        disable();
        reset();
        {
            let _p = phase(Phase::Simulate);
            observe_experiment_us(100);
            observe_task_us(5);
            pool_queue_depth(9);
            flight::record("x", "y");
        }
        let snap = snapshot();
        assert_eq!(snap.phase_calls(Phase::Simulate), 0);
        assert!(snap.experiment_wall.is_empty());
        assert!(snap.task_wall.is_empty());
        assert_eq!(snap.queue_high_water, 0);
        assert_eq!(snap.flight_events, 0);
    }

    #[test]
    fn nested_phases_attribute_exclusive_time() {
        let _g = serial();
        enable();
        reset();
        {
            let _outer = phase(Phase::Simulate);
            spin_for_us(2_000);
            {
                let _inner = phase(Phase::Schedule);
                spin_for_us(2_000);
            }
            spin_for_us(2_000);
        }
        let snap = snapshot();
        disable();
        assert_eq!(snap.phase_calls(Phase::Simulate), 1);
        assert_eq!(snap.phase_calls(Phase::Schedule), 1);
        let sim = snap.phase_us(Phase::Simulate);
        let sch = snap.phase_us(Phase::Schedule);
        // Each phase got its own busy-wait; exclusive accounting means
        // the inner 2ms is charged to Schedule, not double-counted.
        assert!(sim >= 3_000, "simulate {sim}us");
        assert!(sch >= 1_500, "schedule {sch}us");
        assert!(
            sch < 2_000 * 3,
            "schedule {sch}us should exclude outer time"
        );
    }

    #[test]
    fn every_declared_phase_appears_in_the_snapshot() {
        let _g = serial();
        let snap = snapshot();
        let names: Vec<&str> = snap.phases.iter().map(|&(p, _, _)| p.name()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "flexcheck",
                "schedule",
                "simulate",
                "verify",
                "export"
            ]
        );
        let json = snap.to_json().compact();
        let prom = snap.to_prom();
        for p in Phase::ALL {
            assert!(json.contains(p.name()), "{} missing in json", p.name());
            assert!(prom.contains(p.name()), "{} missing in prom", p.name());
        }
    }

    #[test]
    fn worker_merge_accumulates_by_index_and_preserves_the_identity() {
        let _g = serial();
        enable();
        reset();
        let mut hist = Histogram::new();
        hist.observe(10);
        merge_worker(
            1,
            &WorkerTotals {
                wall_us: 100,
                busy_us: 60,
                idle_us: 40,
                tasks: 3,
                steals: 1,
            },
            &hist,
        );
        merge_worker(
            1,
            &WorkerTotals {
                wall_us: 50,
                busy_us: 20,
                idle_us: 30,
                tasks: 2,
                steals: 0,
            },
            &Histogram::new(),
        );
        let snap = snapshot();
        disable();
        let (idx, w) = &snap.workers[0];
        assert_eq!(*idx, 1);
        assert_eq!(w.wall_us, 150);
        assert_eq!(w.busy_us, 80);
        assert_eq!(w.idle_us, 70);
        // busy + idle == wall survives accumulation.
        assert_eq!(w.busy_us + w.idle_us, w.wall_us);
        assert_eq!(w.tasks, 5);
        assert_eq!(w.steals, 1);
        assert_eq!(snap.task_wall.count(), 1);
    }

    #[test]
    fn flight_ring_is_bounded_and_dumps_where_told() {
        let _g = serial();
        enable();
        reset();
        for i in 0..(flight::CAPACITY + 10) {
            flight::record("test", format!("event {i}"));
        }
        let (events, dropped) = flight::events();
        assert_eq!(events.len(), flight::CAPACITY);
        assert_eq!(dropped, 10);
        assert_eq!(events[0].msg, "event 10"); // oldest retained
                                               // No dir configured: no dump.
        flight::set_dir(None);
        assert_eq!(flight::dump_now(), None);
        // Configured dir: a dump appears and parses.
        let dir = std::env::temp_dir().join("flexsim_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        flight::set_dir(Some(&dir));
        let path = flight::record_panic("boom", "injected").expect("dump written");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert!(text.contains("task-panic"), "{text}");
        assert!(matches!(doc, Json::Obj(_)));
        flight::set_dir(None);
        disable();
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir(dir);
    }

    #[test]
    fn snapshot_json_is_byte_stable() {
        let _g = serial();
        let a = snapshot().to_json().compact();
        let b = snapshot().to_json().compact();
        assert_eq!(a, b);
        assert!(a.contains("queue_depth_high_water"), "{a}");
    }

    /// Busy-waits on the monotonic clock (sleep granularity is too
    /// coarse on loaded CI machines for sub-ms assertions).
    fn spin_for_us(us: u64) {
        let start = Instant::now();
        while dur_us(start, Instant::now()) < us {
            std::hint::spin_loop();
        }
    }
}
