//! Chrome trace-event JSON export (loadable in `chrome://tracing` and
//! Perfetto).
//!
//! One trace document combines both time domains:
//!
//! * **pid 0 ("host")** — wall-clock [`SpanRecord`]s from the global
//!   span recorder, one thread row per OS thread, `ts`/`dur` in real
//!   microseconds;
//! * **pid 1+** — one process per simulated architecture, one thread
//!   row per layer, carrying that layer's [`LayerTimeline`] cycle
//!   events with the convention **1 µs = 1 simulated cycle**.
//!
//! A metrics snapshot rides along under `otherData.metrics` so a single
//! file captures spans, cycle timelines, and final counters.

use crate::cycles::LayerTimeline;
use crate::metrics::Snapshot;
use crate::span::SpanRecord;
use flexsim_testkit::json::Json;

fn duration_event(
    name: &str,
    cat: &str,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
    args: Json,
) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("X")),
        ("ts", Json::from(ts)),
        ("dur", Json::from(dur)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", args),
    ])
}

fn metadata_event(meta: &str, pid: u64, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::str(meta)),
        ("ph", Json::str("M")),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", Json::obj([("name", Json::str(value))])),
    ])
}

/// Renders a metrics snapshot as a JSON object, one
/// `name{k="v"}`-style key per cell (same keys as
/// [`Snapshot::dump`]).
pub fn metrics_json(metrics: &Snapshot) -> Json {
    Json::obj(metrics.iter().map(|(key, value)| {
        let mut name = key.name.clone();
        if !key.labels.is_empty() {
            name.push('{');
            for (i, (k, v)) in key.labels.iter().enumerate() {
                if i > 0 {
                    name.push(',');
                }
                name.push_str(k);
                name.push_str("=\"");
                name.push_str(v);
                name.push('"');
            }
            name.push('}');
        }
        (name, Json::from(value))
    }))
}

/// Builds a complete Chrome trace document from host spans, per-layer
/// cycle timelines, and a metrics snapshot.
///
/// The result is `{"traceEvents": [...], "displayTimeUnit": "ms",
/// "otherData": {"metrics": {...}}}` — the object form both
/// `chrome://tracing` and Perfetto accept.
pub fn chrome_trace(spans: &[SpanRecord], timelines: &[LayerTimeline], metrics: &Snapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // Host process: one thread row per recorded OS thread.
    events.push(metadata_event("process_name", 0, 0, "host"));
    let mut host_tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    host_tids.sort_unstable();
    host_tids.dedup();
    for tid in host_tids {
        events.push(metadata_event(
            "thread_name",
            0,
            tid,
            &format!("host-{tid}"),
        ));
    }
    for span in spans {
        events.push(duration_event(
            &span.name,
            span.cat,
            span.start_us,
            // Zero-duration events render invisibly; clamp to 1 µs.
            span.dur_us.max(1),
            0,
            span.tid,
            Json::obj([("depth", Json::from(u64::from(span.depth)))]),
        ));
    }

    // One process per architecture (first-seen order), one thread row
    // per layer timeline within it.
    let mut arch_pids: Vec<String> = Vec::new();
    let mut layers_in_arch: Vec<u64> = Vec::new();
    for tl in timelines {
        let pid_idx = match arch_pids.iter().position(|a| *a == tl.ctx.arch) {
            Some(i) => i,
            None => {
                arch_pids.push(tl.ctx.arch.clone());
                layers_in_arch.push(0);
                let pid = arch_pids.len() as u64;
                events.push(metadata_event(
                    "process_name",
                    pid,
                    0,
                    &format!("sim:{}", tl.ctx.arch),
                ));
                arch_pids.len() - 1
            }
        };
        let pid = pid_idx as u64 + 1;
        let tid = layers_in_arch[pid_idx];
        layers_in_arch[pid_idx] += 1;
        // Multi-experiment sweeps tag timelines with their owning
        // experiment; prefix the thread row so rows from different
        // experiments stay distinguishable within one arch process.
        let thread_name = if tl.ctx.experiment.is_empty() {
            tl.ctx.layer.clone()
        } else {
            format!("{}/{}", tl.ctx.experiment, tl.ctx.layer)
        };
        events.push(metadata_event("thread_name", pid, tid, &thread_name));
        for ev in &tl.events {
            let pe_cycles = ev.cycles * u64::from(tl.ctx.pe_count);
            let mut args = vec![
                ("macs", Json::from(ev.macs)),
                ("cycles", Json::from(ev.cycles)),
                ("pes", Json::from(u64::from(tl.ctx.pe_count))),
                ("cause", Json::str(ev.kind.cause().name())),
                (
                    "lost_pe_cycles",
                    Json::from(pe_cycles.saturating_sub(ev.macs)),
                ),
            ];
            if !tl.ctx.experiment.is_empty() {
                args.push(("experiment", Json::str(tl.ctx.experiment.as_str())));
            }
            events.push(duration_event(
                ev.kind.name(),
                "sim",
                ev.start_cycle,
                ev.cycles.max(1),
                pid,
                tid,
                Json::obj(args),
            ));
        }
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj([
                ("cycle_unit", Json::str("1us = 1 simulated cycle")),
                ("metrics", metrics_json(metrics)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::StallCause;
    use crate::cycles::{CycleEvent, CycleEventKind, LayerCtx};
    use crate::metrics::Registry;

    const PASS: CycleEventKind = CycleEventKind::Pass(StallCause::MappingResidueIdle);
    const FILL: CycleEventKind = CycleEventKind::Stall(StallCause::PipelineFill);

    fn field<'a>(doc: &'a Json, name: &str) -> &'a Json {
        match doc {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .expect("missing field"),
            _ => panic!("not an object"),
        }
    }

    fn events(doc: &Json) -> &[Json] {
        match field(doc, "traceEvents") {
            Json::Arr(items) => items,
            _ => panic!("traceEvents not an array"),
        }
    }

    #[test]
    fn trace_combines_spans_and_timelines() {
        let spans = vec![SpanRecord {
            cat: "workload",
            name: "LeNet-5".into(),
            start_us: 10,
            dur_us: 250,
            depth: 0,
            tid: 0,
        }];
        let timelines = vec![
            LayerTimeline {
                ctx: LayerCtx::new("FlexFlow", "C1", 256),
                events: vec![CycleEvent::new(PASS, 0, 100, 12_800)],
            },
            LayerTimeline {
                ctx: LayerCtx::new("Tiling", "C1", 256),
                events: vec![CycleEvent::new(PASS, 0, 50, 6_400)],
            },
        ];
        let reg = Registry::new();
        reg.add("sim_cycles", &[("arch", "FlexFlow")], 100);
        let doc = chrome_trace(&spans, &timelines, &reg.snapshot());

        let evs = events(&doc);
        // host process_name + host thread_name + 1 span
        // + 2 × (process_name + thread_name + 1 event).
        assert_eq!(evs.len(), 9);
        let phases: Vec<&Json> = evs.iter().map(|e| field(e, "ph")).collect();
        assert_eq!(phases.iter().filter(|p| ***p == Json::str("X")).count(), 3);
        // Distinct pids: 0 (host), 1 (FlexFlow), 2 (Tiling).
        let span_ev = evs
            .iter()
            .find(|e| field(e, "name") == &Json::str("LeNet-5"))
            .unwrap();
        assert_eq!(field(span_ev, "pid"), &Json::Int(0));
        assert_eq!(field(span_ev, "ts"), &Json::Int(10));
        assert_eq!(field(span_ev, "dur"), &Json::Int(250));
        let tiling_meta = evs
            .iter()
            .find(|e| {
                field(e, "name") == &Json::str("process_name") && field(e, "pid") == &Json::Int(2)
            })
            .unwrap();
        assert_eq!(
            field(field(tiling_meta, "args"), "name"),
            &Json::str("sim:Tiling")
        );
        // Metrics ride along.
        let metrics = field(field(&doc, "otherData"), "metrics");
        assert_eq!(
            field(metrics, "sim_cycles{arch=\"FlexFlow\"}"),
            &Json::Int(100)
        );
        // Cause + lost PE-cycles ride in every cycle event's args.
        let pass = evs
            .iter()
            .find(|e| field(e, "name") == &Json::str("pass"))
            .unwrap();
        assert_eq!(
            field(field(pass, "args"), "cause"),
            &Json::str("mapping-residue-idle")
        );
        assert_eq!(
            field(field(pass, "args"), "lost_pe_cycles"),
            &Json::Int(100 * 256 - 12_800)
        );
    }

    #[test]
    fn layers_of_one_arch_share_a_pid_with_distinct_tids() {
        let timelines = vec![
            LayerTimeline {
                ctx: LayerCtx::new("Systolic", "C1", 252),
                events: vec![CycleEvent::new(FILL, 0, 10, 0)],
            },
            LayerTimeline {
                ctx: LayerCtx::new("Systolic", "C3", 252),
                events: vec![CycleEvent::new(FILL, 0, 10, 0)],
            },
        ];
        let doc = chrome_trace(&[], &timelines, &Snapshot::default());
        let evs = events(&doc);
        let fills: Vec<&Json> = evs
            .iter()
            .filter(|e| field(e, "name") == &Json::str("pipeline-fill"))
            .collect();
        assert_eq!(fills.len(), 2);
        assert_eq!(field(fills[0], "pid"), field(fills[1], "pid"));
        assert_ne!(field(fills[0], "tid"), field(fills[1], "tid"));
    }

    #[test]
    fn experiment_tags_prefix_thread_names_and_ride_in_args() {
        let timelines = vec![
            LayerTimeline {
                ctx: LayerCtx::new("FlexFlow", "C1", 256).for_experiment("fig15"),
                events: vec![CycleEvent::new(PASS, 0, 10, 100)],
            },
            LayerTimeline {
                ctx: LayerCtx::new("FlexFlow", "C1", 256).for_experiment("fig17"),
                events: vec![CycleEvent::new(PASS, 0, 10, 100)],
            },
        ];
        let doc = chrome_trace(&[], &timelines, &Snapshot::default());
        let evs = events(&doc);
        let names: Vec<&Json> = evs
            .iter()
            .filter(|e| field(e, "name") == &Json::str("thread_name"))
            .map(|e| field(field(e, "args"), "name"))
            .collect();
        assert!(names.contains(&&Json::str("fig15/C1")));
        assert!(names.contains(&&Json::str("fig17/C1")));
        let pass = evs
            .iter()
            .find(|e| field(e, "name") == &Json::str("pass"))
            .unwrap();
        assert_eq!(
            field(field(pass, "args"), "experiment"),
            &Json::str("fig15")
        );
    }

    #[test]
    fn zero_duration_spans_are_clamped_visible() {
        let spans = vec![SpanRecord {
            cat: "layer",
            name: "fast".into(),
            start_us: 0,
            dur_us: 0,
            depth: 0,
            tid: 0,
        }];
        let doc = chrome_trace(&spans, &[], &Snapshot::default());
        let ev = events(&doc)
            .iter()
            .find(|e| field(e, "name") == &Json::str("fast"))
            .cloned()
            .unwrap();
        assert_eq!(field(&ev, "dur"), &Json::Int(1));
    }
}
