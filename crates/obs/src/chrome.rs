//! Chrome trace-event JSON export (loadable in `chrome://tracing` and
//! Perfetto).
//!
//! One trace document combines both time domains:
//!
//! * **pid 0 ("host")** — wall-clock [`SpanRecord`]s from the global
//!   span recorder, one thread row per OS thread, `ts`/`dur` in real
//!   microseconds. Threads that registered a label (e.g. the pool's
//!   `flexsim-pool-{i}` workers via
//!   [`crate::span::set_thread_label`]) are named by it; the rest fall
//!   back to `host-{tid}`.
//! * **pid 1+** — one process per simulated architecture, one thread
//!   row per layer, carrying that layer's [`LayerTimeline`] cycle
//!   events with the convention **1 µs = 1 simulated cycle**.
//!
//! A metrics snapshot rides along under `otherData.metrics` so a single
//! file captures spans, cycle timelines, and final counters (including
//! the `spatial_*` per-cell mirrors when a heatmap run populated them).
//!
//! Each layer thread additionally carries a **`busy-pes` counter
//! track** (`"ph":"C"`): the mean number of busy PEs during each cycle
//! event, dropping to zero at the layer's end — Perfetto renders it as
//! a utilization area chart above the event row.
//!
//! Two emission paths share one event generator: [`chrome_trace`]
//! builds the whole document as a [`Json`] value (small traces,
//! tests), while [`write_chrome_trace`] streams events one at a time
//! through any [`std::io::Write`] sink, so a multi-MB sweep trace
//! never has to sit in memory as a single string.

use crate::cycles::LayerTimeline;
use crate::metrics::Snapshot;
use crate::span::SpanRecord;
use flexsim_testkit::json::Json;
use std::io::Write;

fn duration_event(
    name: &str,
    cat: &str,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
    args: Json,
) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("X")),
        ("ts", Json::from(ts)),
        ("dur", Json::from(dur)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", args),
    ])
}

fn counter_event(name: &str, ts: u64, pid: u64, tid: u64, value: u64) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("C")),
        ("ts", Json::from(ts)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", Json::obj([("value", Json::from(value))])),
    ])
}

fn metadata_event(meta: &str, pid: u64, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::str(meta)),
        ("ph", Json::str("M")),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", Json::obj([("name", Json::str(value))])),
    ])
}

/// Renders a metrics snapshot as a JSON object, one
/// `name{k="v"}`-style key per cell (same keys as
/// [`Snapshot::dump`]). Label values pass through
/// [`crate::metrics::escape_label`], so a hostile `.ffnet`-derived
/// layer name cannot forge extra cells or ambiguous keys.
pub fn metrics_json(metrics: &Snapshot) -> Json {
    Json::obj(metrics.iter().map(|(key, value)| {
        let mut name = key.name.clone();
        if !key.labels.is_empty() {
            name.push('{');
            for (i, (k, v)) in key.labels.iter().enumerate() {
                if i > 0 {
                    name.push(',');
                }
                name.push_str(k);
                name.push_str("=\"");
                name.push_str(&crate::metrics::escape_label(v));
                name.push('"');
            }
            name.push('}');
        }
        (name, Json::from(value))
    }))
}

/// Generates every trace event, in document order, calling `emit` for
/// each — the single generator behind both the in-memory and the
/// streaming export paths, so the two can never drift apart.
fn for_each_event(
    spans: &[SpanRecord],
    timelines: &[LayerTimeline],
    thread_labels: &[(u64, String)],
    mut emit: impl FnMut(Json),
) {
    // Host process: one thread row per recorded OS thread, named by
    // its registered label when one exists.
    emit(metadata_event("process_name", 0, 0, "host"));
    let mut host_tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    host_tids.sort_unstable();
    host_tids.dedup();
    for tid in host_tids {
        let name = thread_labels
            .iter()
            .find(|(t, _)| *t == tid)
            .map_or_else(|| format!("host-{tid}"), |(_, l)| l.clone());
        emit(metadata_event("thread_name", 0, tid, &name));
    }
    for span in spans {
        emit(duration_event(
            &span.name,
            span.cat,
            span.start_us,
            // Zero-duration events render invisibly; clamp to 1 µs.
            span.dur_us.max(1),
            0,
            span.tid,
            Json::obj([("depth", Json::from(u64::from(span.depth)))]),
        ));
    }

    // One process per architecture (first-seen order), one thread row
    // per layer timeline within it.
    let mut arch_pids: Vec<String> = Vec::new();
    let mut layers_in_arch: Vec<u64> = Vec::new();
    for tl in timelines {
        let pid_idx = match arch_pids.iter().position(|a| *a == tl.ctx.arch) {
            Some(i) => i,
            None => {
                arch_pids.push(tl.ctx.arch.clone());
                layers_in_arch.push(0);
                let pid = arch_pids.len() as u64;
                emit(metadata_event(
                    "process_name",
                    pid,
                    0,
                    &format!("sim:{}", tl.ctx.arch),
                ));
                arch_pids.len() - 1
            }
        };
        let pid = pid_idx as u64 + 1;
        let tid = layers_in_arch[pid_idx];
        layers_in_arch[pid_idx] += 1;
        // Multi-experiment sweeps tag timelines with their owning
        // experiment; prefix the thread row so rows from different
        // experiments stay distinguishable within one arch process.
        let thread_name = if tl.ctx.experiment.is_empty() {
            tl.ctx.layer.clone()
        } else {
            format!("{}/{}", tl.ctx.experiment, tl.ctx.layer)
        };
        emit(metadata_event("thread_name", pid, tid, &thread_name));
        for ev in &tl.events {
            let pe_cycles = ev.cycles * u64::from(tl.ctx.pe_count);
            let mut args = vec![
                ("macs", Json::from(ev.macs)),
                ("cycles", Json::from(ev.cycles)),
                ("pes", Json::from(u64::from(tl.ctx.pe_count))),
                ("cause", Json::str(ev.kind.cause().name())),
                (
                    "lost_pe_cycles",
                    Json::from(pe_cycles.saturating_sub(ev.macs)),
                ),
            ];
            if !tl.ctx.experiment.is_empty() {
                args.push(("experiment", Json::str(tl.ctx.experiment.as_str())));
            }
            emit(duration_event(
                ev.kind.name(),
                "sim",
                ev.start_cycle,
                ev.cycles.max(1),
                pid,
                tid,
                Json::obj(args),
            ));
        }
        // The utilization counter track: mean busy PEs per event (an
        // event of `cycles` cycles carrying `macs` MACs keeps
        // `macs / cycles` PEs busy on average), closed by a zero
        // sample so the area chart returns to the baseline.
        for ev in &tl.events {
            let busy = ev.macs.checked_div(ev.cycles).unwrap_or(0);
            emit(counter_event("busy-pes", ev.start_cycle, pid, tid, busy));
        }
        if let Some(last) = tl.events.last() {
            emit(counter_event(
                "busy-pes",
                last.start_cycle + last.cycles,
                pid,
                tid,
                0,
            ));
        }
    }
}

/// Builds a complete Chrome trace document from host spans, per-layer
/// cycle timelines, and a metrics snapshot.
///
/// The result is `{"traceEvents": [...], "displayTimeUnit": "ms",
/// "otherData": {"metrics": {...}}}` — the object form both
/// `chrome://tracing` and Perfetto accept. For large traces prefer
/// [`write_chrome_trace`], which streams instead of buffering.
pub fn chrome_trace(spans: &[SpanRecord], timelines: &[LayerTimeline], metrics: &Snapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for_each_event(spans, timelines, &[], |ev| events.push(ev));
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        ("otherData", other_data(metrics)),
    ])
}

fn other_data(metrics: &Snapshot) -> Json {
    Json::obj([
        ("cycle_unit", Json::str("1us = 1 simulated cycle")),
        ("metrics", metrics_json(metrics)),
    ])
}

/// Streams the same trace document as [`chrome_trace`] through `out`,
/// one event per line, so the peak memory cost is one rendered event
/// rather than the whole multi-MB document. `thread_labels` maps span
/// tids to display names for the host thread rows (pass
/// [`crate::span::thread_labels`] to pick up the pool's worker
/// labels); unlabeled tids keep the `host-{tid}` fallback.
///
/// # Errors
///
/// Propagates the first I/O error from `out`.
pub fn write_chrome_trace<W: Write>(
    out: &mut W,
    spans: &[SpanRecord],
    timelines: &[LayerTimeline],
    metrics: &Snapshot,
    thread_labels: &[(u64, String)],
) -> std::io::Result<()> {
    out.write_all(b"{\n  \"traceEvents\": [\n")?;
    let mut first = true;
    let mut io_err: Option<std::io::Error> = None;
    for_each_event(spans, timelines, thread_labels, |ev| {
        if io_err.is_some() {
            return; // already failed; drain the generator cheaply
        }
        let sep: &[u8] = if first { b"    " } else { b",\n    " };
        first = false;
        if let Err(e) = out
            .write_all(sep)
            .and_then(|()| out.write_all(ev.compact().as_bytes()))
        {
            io_err = Some(e);
        }
    });
    if let Some(e) = io_err {
        return Err(e);
    }
    out.write_all(b"\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": ")?;
    out.write_all(other_data(metrics).compact().as_bytes())?;
    out.write_all(b"\n}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::StallCause;
    use crate::cycles::{CycleEvent, CycleEventKind, LayerCtx};
    use crate::metrics::Registry;

    const PASS: CycleEventKind = CycleEventKind::Pass(StallCause::MappingResidueIdle);
    const FILL: CycleEventKind = CycleEventKind::Stall(StallCause::PipelineFill);

    fn field<'a>(doc: &'a Json, name: &str) -> &'a Json {
        match doc {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .expect("missing field"),
            _ => panic!("not an object"),
        }
    }

    fn events(doc: &Json) -> &[Json] {
        match field(doc, "traceEvents") {
            Json::Arr(items) => items,
            _ => panic!("traceEvents not an array"),
        }
    }

    #[test]
    fn trace_combines_spans_and_timelines() {
        let spans = vec![SpanRecord {
            cat: "workload",
            name: "LeNet-5".into(),
            start_us: 10,
            dur_us: 250,
            depth: 0,
            tid: 0,
        }];
        let timelines = vec![
            LayerTimeline {
                ctx: LayerCtx::new("FlexFlow", "C1", 256),
                events: vec![CycleEvent::new(PASS, 0, 100, 12_800)],
            },
            LayerTimeline {
                ctx: LayerCtx::new("Tiling", "C1", 256),
                events: vec![CycleEvent::new(PASS, 0, 50, 6_400)],
            },
        ];
        let reg = Registry::new();
        reg.add("sim_cycles", &[("arch", "FlexFlow")], 100);
        let doc = chrome_trace(&spans, &timelines, &reg.snapshot());

        let evs = events(&doc);
        // host process_name + host thread_name + 1 span
        // + 2 × (process_name + thread_name + 1 event + 2 counters).
        assert_eq!(evs.len(), 13);
        let phases: Vec<&Json> = evs.iter().map(|e| field(e, "ph")).collect();
        assert_eq!(phases.iter().filter(|p| ***p == Json::str("X")).count(), 3);
        // Distinct pids: 0 (host), 1 (FlexFlow), 2 (Tiling).
        let span_ev = evs
            .iter()
            .find(|e| field(e, "name") == &Json::str("LeNet-5"))
            .unwrap();
        assert_eq!(field(span_ev, "pid"), &Json::Int(0));
        assert_eq!(field(span_ev, "ts"), &Json::Int(10));
        assert_eq!(field(span_ev, "dur"), &Json::Int(250));
        let tiling_meta = evs
            .iter()
            .find(|e| {
                field(e, "name") == &Json::str("process_name") && field(e, "pid") == &Json::Int(2)
            })
            .unwrap();
        assert_eq!(
            field(field(tiling_meta, "args"), "name"),
            &Json::str("sim:Tiling")
        );
        // Metrics ride along.
        let metrics = field(field(&doc, "otherData"), "metrics");
        assert_eq!(
            field(metrics, "sim_cycles{arch=\"FlexFlow\"}"),
            &Json::Int(100)
        );
        // Cause + lost PE-cycles ride in every cycle event's args.
        let pass = evs
            .iter()
            .find(|e| field(e, "name") == &Json::str("pass"))
            .unwrap();
        assert_eq!(
            field(field(pass, "args"), "cause"),
            &Json::str("mapping-residue-idle")
        );
        assert_eq!(
            field(field(pass, "args"), "lost_pe_cycles"),
            &Json::Int(100 * 256 - 12_800)
        );
    }

    #[test]
    fn layers_of_one_arch_share_a_pid_with_distinct_tids() {
        let timelines = vec![
            LayerTimeline {
                ctx: LayerCtx::new("Systolic", "C1", 252),
                events: vec![CycleEvent::new(FILL, 0, 10, 0)],
            },
            LayerTimeline {
                ctx: LayerCtx::new("Systolic", "C3", 252),
                events: vec![CycleEvent::new(FILL, 0, 10, 0)],
            },
        ];
        let doc = chrome_trace(&[], &timelines, &Snapshot::default());
        let evs = events(&doc);
        let fills: Vec<&Json> = evs
            .iter()
            .filter(|e| field(e, "name") == &Json::str("pipeline-fill"))
            .collect();
        assert_eq!(fills.len(), 2);
        assert_eq!(field(fills[0], "pid"), field(fills[1], "pid"));
        assert_ne!(field(fills[0], "tid"), field(fills[1], "tid"));
    }

    #[test]
    fn experiment_tags_prefix_thread_names_and_ride_in_args() {
        let timelines = vec![
            LayerTimeline {
                ctx: LayerCtx::new("FlexFlow", "C1", 256).for_experiment("fig15"),
                events: vec![CycleEvent::new(PASS, 0, 10, 100)],
            },
            LayerTimeline {
                ctx: LayerCtx::new("FlexFlow", "C1", 256).for_experiment("fig17"),
                events: vec![CycleEvent::new(PASS, 0, 10, 100)],
            },
        ];
        let doc = chrome_trace(&[], &timelines, &Snapshot::default());
        let evs = events(&doc);
        let names: Vec<&Json> = evs
            .iter()
            .filter(|e| field(e, "name") == &Json::str("thread_name"))
            .map(|e| field(field(e, "args"), "name"))
            .collect();
        assert!(names.contains(&&Json::str("fig15/C1")));
        assert!(names.contains(&&Json::str("fig17/C1")));
        let pass = evs
            .iter()
            .find(|e| field(e, "name") == &Json::str("pass"))
            .unwrap();
        assert_eq!(
            field(field(pass, "args"), "experiment"),
            &Json::str("fig15")
        );
    }

    #[test]
    fn counter_tracks_follow_each_timeline() {
        let timelines = vec![LayerTimeline {
            ctx: LayerCtx::new("FlexFlow", "C1", 256),
            events: vec![
                CycleEvent::new(FILL, 0, 8, 0),
                CycleEvent::new(PASS, 8, 100, 12_800),
            ],
        }];
        let doc = chrome_trace(&[], &timelines, &Snapshot::default());
        let counters: Vec<&Json> = events(&doc)
            .iter()
            .filter(|e| field(e, "ph") == &Json::str("C"))
            .collect();
        // One sample per cycle event plus the closing zero.
        assert_eq!(counters.len(), 3);
        for c in &counters {
            assert_eq!(field(c, "name"), &Json::str("busy-pes"));
        }
        let values: Vec<&Json> = counters
            .iter()
            .map(|c| field(field(c, "args"), "value"))
            .collect();
        // Fill keeps 0 PEs busy; the pass averages 12800/100 = 128;
        // the track closes at 0.
        assert_eq!(values, vec![&Json::Int(0), &Json::Int(128), &Json::Int(0)]);
        let stamps: Vec<&Json> = counters.iter().map(|c| field(c, "ts")).collect();
        assert_eq!(stamps, vec![&Json::Int(0), &Json::Int(8), &Json::Int(108)]);
    }

    #[test]
    fn streaming_writer_matches_the_in_memory_document() {
        let spans = vec![
            SpanRecord {
                cat: "workload",
                name: "LeNet-5".into(),
                start_us: 10,
                dur_us: 250,
                depth: 0,
                tid: 0,
            },
            SpanRecord {
                cat: "task",
                name: "fig15/LeNet-5".into(),
                start_us: 20,
                dur_us: 30,
                depth: 1,
                tid: 3,
            },
        ];
        let timelines = vec![LayerTimeline {
            ctx: LayerCtx::new("FlexFlow", "C1", 256),
            events: vec![CycleEvent::new(PASS, 0, 100, 12_800)],
        }];
        let reg = Registry::new();
        reg.add("sim_cycles", &[], 7);
        let snapshot = reg.snapshot();

        let mut streamed = Vec::new();
        write_chrome_trace(&mut streamed, &spans, &timelines, &snapshot, &[]).unwrap();
        let text = String::from_utf8(streamed).unwrap();
        // The streamed bytes parse back into exactly the document the
        // in-memory builder produces.
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, chrome_trace(&spans, &timelines, &snapshot));
    }

    #[test]
    fn thread_labels_name_the_host_rows() {
        let spans = vec![
            SpanRecord {
                cat: "task",
                name: "a".into(),
                start_us: 0,
                dur_us: 1,
                depth: 0,
                tid: 2,
            },
            SpanRecord {
                cat: "task",
                name: "b".into(),
                start_us: 0,
                dur_us: 1,
                depth: 0,
                tid: 5,
            },
        ];
        let labels = vec![(2u64, "flexsim-pool-1".to_owned())];
        let mut out = Vec::new();
        write_chrome_trace(&mut out, &spans, &[], &Snapshot::default(), &labels).unwrap();
        let doc = Json::parse(&String::from_utf8(out).unwrap()).unwrap();
        let names: Vec<&Json> = events(&doc)
            .iter()
            .filter(|e| field(e, "name") == &Json::str("thread_name"))
            .map(|e| field(field(e, "args"), "name"))
            .collect();
        // Labeled tid gets its worker name; unlabeled falls back.
        assert!(names.contains(&&Json::str("flexsim-pool-1")), "{names:?}");
        assert!(names.contains(&&Json::str("host-5")), "{names:?}");
    }

    #[test]
    fn streaming_writer_propagates_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_chrome_trace(&mut Failing, &[], &[], &Snapshot::default(), &[])
            .expect_err("write must fail");
        assert_eq!(err.to_string(), "sink full");
    }

    #[test]
    fn hostile_ffnet_names_survive_export_intact() {
        // A workload/layer name with quotes, backslashes, and
        // non-ASCII — the trace must stay valid JSON and the metrics
        // keys must stay unambiguous.
        let hostile = "C1\"},{\"pwned\\é";
        let timelines = vec![LayerTimeline {
            ctx: LayerCtx::new("FlexFlow", hostile, 256),
            events: vec![CycleEvent::new(PASS, 0, 10, 100)],
        }];
        let reg = Registry::new();
        reg.add("sim_cycles", &[("layer", hostile)], 10);
        let snapshot = reg.snapshot();
        let mut out = Vec::new();
        write_chrome_trace(&mut out, &[], &timelines, &snapshot, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let doc = Json::parse(&text).expect("hostile name broke the trace JSON");
        assert_eq!(doc, chrome_trace(&[], &timelines, &snapshot));
        // The metrics key carries the escaped form.
        let metrics = field(field(&doc, "otherData"), "metrics");
        assert_eq!(
            field(
                metrics,
                "sim_cycles{layer=\"C1\\\"},{\\\"pwned\\\\\\u{00e9}\"}"
            ),
            &Json::Int(10)
        );
    }

    #[test]
    fn zero_duration_spans_are_clamped_visible() {
        let spans = vec![SpanRecord {
            cat: "layer",
            name: "fast".into(),
            start_us: 0,
            dur_us: 0,
            depth: 0,
            tid: 0,
        }];
        let doc = chrome_trace(&spans, &[], &Snapshot::default());
        let ev = events(&doc)
            .iter()
            .find(|e| field(e, "name") == &Json::str("fast"))
            .cloned()
            .unwrap();
        assert_eq!(field(&ev, "dur"), &Json::Int(1));
    }
}
