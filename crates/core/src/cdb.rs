//! DataFlow1: the common data buses (Section 4.3).
//!
//! FlexFlow replaces inter-PE links with `D` vertical buses (neurons,
//! one per PE column) and `D` horizontal buses (kernels, one per PE
//! row). CDBs are "simple, pipelined, data-only buses" — no address
//! decoding, no handshaking — so their cost model here is a word counter
//! per bus plus a busy-cycle tally used for bandwidth checks.

use flexsim_obs::spatial::ContentionMatrix;
use std::fmt;

/// One direction's bus bundle (vertical or horizontal).
#[derive(Clone, Debug)]
pub struct BusBundle {
    name: &'static str,
    words: Vec<u64>,
}

impl BusBundle {
    /// Creates `count` buses.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(name: &'static str, count: usize) -> Self {
        assert!(count > 0, "bus bundle must have at least one bus");
        BusBundle {
            name,
            words: vec![0; count],
        }
    }

    /// Number of buses.
    pub fn count(&self) -> usize {
        self.words.len()
    }

    /// Records one word broadcast on bus `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn broadcast(&mut self, index: usize) {
        assert!(index < self.words.len(), "bus index out of range");
        self.words[index] += 1;
    }

    /// Total words across all buses.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }

    /// Words on the busiest bus — with each bus moving one word per
    /// cycle, this lower-bounds the cycles the transfers need, which is
    /// what RS's preloading must hide under the compute time.
    pub fn max_bus_words(&self) -> u64 {
        self.words.iter().copied().max().unwrap_or(0)
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

impl fmt::Display for BusBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} buses, {} words (max/bus {})",
            self.name,
            self.count(),
            self.total_words(),
            self.max_bus_words()
        )
    }
}

/// Folds one layer's partial-sum writeback pattern into a contention
/// matrix: when a layer spills (`segments > 1`), every active PE row's
/// accumulator takes a turn on the output-buffer writeback path at each
/// segment boundary, so all active-row pairs are charged `weight`
/// serialized encounters. Spatial-probe counterpart of the static
/// `flexcheck` rule `FXC02 cdb-race` (which proves the turns never
/// collide in one cycle; this records how much serialization they
/// cost).
///
/// # Panics
///
/// Panics when `active_rows` exceeds the matrix's port count.
pub fn writeback_collisions(matrix: &mut ContentionMatrix, active_rows: usize, weight: u64) {
    for a in 0..active_rows {
        for b in (a + 1)..active_rows {
            matrix.record(a, b, weight);
        }
    }
}

/// Write-exclusivity guard for one logical step: each bus carries at
/// most one word per cycle, so two producers claiming the same bus in
/// one step is a write-write race. The Relax-Alignment mapping makes
/// clean schedules collision-free by construction; this guard is the
/// *dynamic* counterpart of the static `flexcheck` rule `FXC02
/// cdb-race` (rows: `FXC03 adder-tree-port`) and exists so a schedule
/// that slipped past the linter still dies loudly at the first racy
/// cycle instead of corrupting operands.
#[derive(Clone, Debug)]
pub struct StepClaims {
    claimed: Vec<bool>,
}

impl StepClaims {
    /// A fresh claim set over `count` buses (or adder-tree ports).
    pub fn new(count: usize) -> Self {
        StepClaims {
            claimed: vec![false; count],
        }
    }

    /// Claims bus `index` for this step.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `index` was already claimed this step
    /// (a write-write race flexcheck rule FXC02/FXC03 proves absent in
    /// lint-clean schedules). Release builds record the claim silently.
    pub fn claim(&mut self, index: usize) {
        debug_assert!(
            !self.claimed[index],
            "two producers drive bus {index} in one step \
             (statically provable: flexcheck FXC02 cdb-race / FXC03 adder-tree-port)"
        );
        self.claimed[index] = true;
    }

    /// Starts the next step: forgets all claims.
    pub fn next_step(&mut self) {
        self.claimed.iter_mut().for_each(|c| *c = false);
    }
}

/// The full CDB fabric of a `D×D` engine.
#[derive(Clone, Debug)]
pub struct CdbFabric {
    /// Vertical (neuron) buses, one per PE column.
    pub vertical: BusBundle,
    /// Horizontal (kernel) buses, one per PE row.
    pub horizontal: BusBundle,
}

impl CdbFabric {
    /// Creates the fabric for a `d×d` engine.
    pub fn new(d: usize) -> Self {
        CdbFabric {
            vertical: BusBundle::new("vertical/neuron", d),
            horizontal: BusBundle::new("horizontal/kernel", d),
        }
    }

    /// Total words moved on either direction.
    pub fn total_words(&self) -> u64 {
        self.vertical.total_words() + self.horizontal.total_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcasts_accumulate_per_bus() {
        let mut fabric = CdbFabric::new(4);
        fabric.vertical.broadcast(0);
        fabric.vertical.broadcast(0);
        fabric.vertical.broadcast(3);
        fabric.horizontal.broadcast(1);
        assert_eq!(fabric.vertical.total_words(), 3);
        assert_eq!(fabric.vertical.max_bus_words(), 2);
        assert_eq!(fabric.total_words(), 4);
    }

    #[test]
    fn reset_clears() {
        let mut b = BusBundle::new("v", 2);
        b.broadcast(1);
        b.reset();
        assert_eq!(b.total_words(), 0);
    }

    #[test]
    fn writeback_collisions_charge_every_active_pair() {
        let mut m = ContentionMatrix::new(4);
        writeback_collisions(&mut m, 3, 5);
        assert_eq!(m.get(0, 1), 5);
        assert_eq!(m.get(0, 2), 5);
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.get(2, 3), 0, "inactive rows never contend");
        assert_eq!(m.total(), 3 * 5);
    }

    #[test]
    fn step_claims_allow_one_writer_per_bus() {
        let mut claims = StepClaims::new(4);
        claims.claim(0);
        claims.claim(3);
        claims.next_step();
        claims.claim(0); // same bus, next step: fine
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "FXC02"))]
    fn step_claims_catch_a_write_write_race() {
        let mut claims = StepClaims::new(4);
        claims.claim(2);
        claims.claim(2); // release builds record silently
    }

    #[test]
    #[should_panic(expected = "bus index out of range")]
    fn oob_bus_rejected() {
        let mut b = BusBundle::new("v", 2);
        b.broadcast(2);
    }
}
