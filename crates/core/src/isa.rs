//! The FlexFlow instruction set.
//!
//! Section 5: "We have developed a specialized compiler including a
//! workload analyzer, which determines the unrolling factors for each
//! layer and produces assemble language code to configure the FlexFlow."
//! This module defines that configuration ISA: a small set of 64-bit
//! instructions the on-chip decoder (Fig. 6) consumes.
//!
//! Encoding (64 bits): `[63:60]` opcode, `[59:52]` layer index, then
//! opcode-specific fields. `Configure` packs the six unrolling factors
//! minus one into 7-bit fields (factors 1–128).

use flexsim_dataflow::Unroll;
use std::fmt;

/// One decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Program the unrolling factors and IADP layouts for a layer.
    Configure {
        /// Index of the layer in the program.
        layer: u8,
        /// The unrolling factors.
        unroll: Unroll,
    },
    /// Stream a layer's kernels from DRAM into the kernel buffer (IADP
    /// format).
    LoadKernels {
        /// Index of the layer in the program.
        layer: u8,
    },
    /// Run the convolutional unit over the layer.
    Conv {
        /// Index of the layer in the program.
        layer: u8,
    },
    /// Run the pooling unit over the current output buffer.
    Pool {
        /// Index of the layer in the program.
        layer: u8,
    },
    /// Swap the ping-pong neuron buffers (end of layer).
    SwapBuffers,
    /// End of program.
    Halt,
}

const OP_CONFIGURE: u64 = 0x1;
const OP_LOAD_KERNELS: u64 = 0x2;
const OP_CONV: u64 = 0x3;
const OP_POOL: u64 = 0x4;
const OP_SWAP: u64 = 0x5;
const OP_HALT: u64 = 0xF;

/// Error decoding an instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeInstrError(u64);

impl fmt::Display for DecodeInstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#018x}", self.0)
    }
}

impl std::error::Error for DecodeInstrError {}

impl Instr {
    /// Encodes to a 64-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics if an unrolling factor exceeds 128 (7-bit fields).
    pub fn encode(&self) -> u64 {
        match *self {
            Instr::Configure { layer, unroll } => {
                let f = [
                    unroll.tm, unroll.tn, unroll.tr, unroll.tc, unroll.ti, unroll.tj,
                ];
                let mut word = (OP_CONFIGURE << 60) | (u64::from(layer) << 52);
                for (idx, &v) in f.iter().enumerate() {
                    assert!(
                        (1..=128).contains(&v),
                        "unrolling factor {v} out of the 7-bit encode range"
                    );
                    word |= ((v as u64 - 1) & 0x7F) << (idx * 7);
                }
                word
            }
            Instr::LoadKernels { layer } => (OP_LOAD_KERNELS << 60) | (u64::from(layer) << 52),
            Instr::Conv { layer } => (OP_CONV << 60) | (u64::from(layer) << 52),
            Instr::Pool { layer } => (OP_POOL << 60) | (u64::from(layer) << 52),
            Instr::SwapBuffers => OP_SWAP << 60,
            Instr::Halt => OP_HALT << 60,
        }
    }

    /// Decodes a 64-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstrError`] on an unknown opcode.
    pub fn decode(word: u64) -> Result<Instr, DecodeInstrError> {
        let opcode = word >> 60;
        let layer = ((word >> 52) & 0xFF) as u8;
        match opcode {
            OP_CONFIGURE => {
                let field = |idx: usize| ((word >> (idx * 7)) & 0x7F) as usize + 1;
                Ok(Instr::Configure {
                    layer,
                    unroll: Unroll::new(field(0), field(1), field(2), field(3), field(4), field(5)),
                })
            }
            OP_LOAD_KERNELS => Ok(Instr::LoadKernels { layer }),
            OP_CONV => Ok(Instr::Conv { layer }),
            OP_POOL => Ok(Instr::Pool { layer }),
            OP_SWAP => Ok(Instr::SwapBuffers),
            OP_HALT => Ok(Instr::Halt),
            _ => Err(DecodeInstrError(word)),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Configure { layer, unroll } => write!(f, "cfg    L{layer} {unroll}"),
            Instr::LoadKernels { layer } => write!(f, "ldker  L{layer}"),
            Instr::Conv { layer } => write!(f, "conv   L{layer}"),
            Instr::Pool { layer } => write!(f, "pool   L{layer}"),
            Instr::SwapBuffers => write!(f, "swap"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_opcodes() {
        let instrs = [
            Instr::Configure {
                layer: 3,
                unroll: Unroll::new(16, 3, 1, 5, 2, 5),
            },
            Instr::LoadKernels { layer: 200 },
            Instr::Conv { layer: 0 },
            Instr::Pool { layer: 9 },
            Instr::SwapBuffers,
            Instr::Halt,
        ];
        for i in instrs {
            assert_eq!(Instr::decode(i.encode()).unwrap(), i, "{i}");
        }
    }

    #[test]
    fn factor_bounds_round_trip() {
        for v in [1usize, 2, 64, 128] {
            let i = Instr::Configure {
                layer: 0,
                unroll: Unroll::new(v, 1, 1, 1, 1, v),
            };
            assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    #[should_panic(expected = "7-bit encode range")]
    fn oversized_factor_rejected() {
        let _ = Instr::Configure {
            layer: 0,
            unroll: Unroll::new(129, 1, 1, 1, 1, 1),
        }
        .encode();
    }

    #[test]
    fn unknown_opcode_errors() {
        assert!(Instr::decode(0x0).is_err());
        assert!(Instr::decode(0x7 << 60).is_err());
    }

    #[test]
    fn display_is_assembly_like() {
        let i = Instr::Conv { layer: 2 };
        assert_eq!(i.to_string(), "conv   L2");
    }
}
