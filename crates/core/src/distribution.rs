//! DataFlow1: the distribution layer (Section 4.3).
//!
//! The distribution layer routes operands from the on-chip buffers onto
//! the vertical/horizontal common data buses. Relax Synchronization's
//! promise is that these transfers are *hidden*: each bus moves one
//! word per cycle, and in steady state the new words a tile needs fit
//! under the tile's compute cycles, so PEs never stall for operands.
//! This module makes that claim checkable: [`Distributor`] plans the
//! per-bus transfer counts for every tile transition and reports
//! whether the preload is hidden.
//!
//! The closed-form cycle model ([`crate::analytic`]) charges only a
//! one-off [`crate::analytic::PIPELINE_FILL_CYCLES`] for the *first*
//! tile of each stripe; the tests here justify that: steady-state tiles
//! are hidden for planner-chosen factors on the paper's workloads.

use crate::mapping::Mapping;
use flexsim_dataflow::utilization::ceil_div;
use flexsim_dataflow::Unroll;
use flexsim_model::ConvLayer;

/// The planned bus transfers for one spatial-tile transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferPlan {
    /// New input words each vertical (column) bus must deliver.
    pub column_words: Vec<u64>,
    /// Compute cycles the tile's chunk walk provides for hiding.
    pub compute_cycles: u64,
}

impl TransferPlan {
    /// Cycles the busiest vertical bus needs (one word per cycle).
    pub fn preload_cycles(&self) -> u64 {
        self.column_words.iter().copied().max().unwrap_or(0)
    }

    /// Total words delivered across all columns.
    pub fn total_words(&self) -> u64 {
        self.column_words.iter().sum()
    }

    /// True when Relax Synchronization hides the preload under compute.
    pub fn hidden(&self) -> bool {
        self.preload_cycles() <= self.compute_cycles
    }
}

/// Plans operand delivery for a layer under one unrolling.
///
/// # Example
///
/// ```
/// use flexflow::distribution::Distributor;
/// use flexsim_dataflow::Unroll;
/// use flexsim_model::ConvLayer;
///
/// let layer = ConvLayer::new("C1", 2, 1, 8, 4);
/// let dist = Distributor::new(&layer, Unroll::new(2, 1, 1, 2, 1, 4), 4);
/// // Steady-state tile (previous tile already loaded the halo):
/// let plan = dist.plan_tile(0, 2, true);
/// assert!(plan.hidden());
/// ```
#[derive(Clone, Debug)]
pub struct Distributor {
    layer: ConvLayer,
    u: Unroll,
    mapping: Mapping,
    d: usize,
    chunks: u64,
}

impl Distributor {
    /// Creates a distributor for `layer` under `u` on a `d×d` engine.
    ///
    /// # Panics
    ///
    /// Panics if `u` exceeds the engine bounds.
    pub fn new(layer: &ConvLayer, u: Unroll, d: usize) -> Self {
        assert!(
            u.rows_used() <= d && u.cols_used() <= d,
            "unrolling exceeds the engine"
        );
        let chunks = (ceil_div(layer.n(), u.tn)
            * ceil_div(layer.k(), u.ti)
            * ceil_div(layer.k(), u.tj)) as u64;
        Distributor {
            layer: layer.clone(),
            u,
            mapping: Mapping::new(u),
            d,
            chunks,
        }
    }

    /// Compute cycles one row-batch provides (the chunk walk).
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Plans the vertical-bus loads for the tile at `(r0, c0)`.
    ///
    /// `steady_state` marks a tile whose left neighbour (same stripe)
    /// has already loaded the shared halo — only the new input columns
    /// must cross the buses; the first tile of a stripe loads its whole
    /// halo.
    pub fn plan_tile(&self, r0: usize, c0: usize, steady_state: bool) -> TransferPlan {
        let (s, k, stride) = (self.layer.s(), self.layer.k(), self.layer.stride());
        let s_in = self.layer.input_size();
        let tr_eff = self.u.tr.min(s - r0);
        let tc_eff = self.u.tc.min(s - c0);
        let rows_in = (tr_eff - 1) * stride + k;
        // Input columns this tile's windows touch.
        let col_lo = c0 * stride;
        let col_hi = ((c0 + tc_eff - 1) * stride + k).min(s_in);
        // In steady state, the left neighbour covered everything up to
        // its own right edge; only the advance is new.
        let new_lo = if steady_state {
            let prev_c0 = c0.saturating_sub(self.u.tc);
            ((prev_c0 + self.u.tc.min(s - prev_c0) - 1) * stride + k).min(col_hi)
        } else {
            col_lo
        };
        let mut column_words = vec![0u64; self.d];
        for n in 0..self.layer.n() {
            for ir in (r0 * stride)..(r0 * stride + rows_in) {
                for ic in new_lo..col_hi {
                    let col = self.mapping.input_col(n, ir, ic);
                    column_words[col] += 1;
                }
            }
        }
        TransferPlan {
            column_words,
            // The whole m-group walk at this tile provides hiding time.
            compute_cycles: self.chunks * ceil_div(self.layer.m(), self.u.tm) as u64,
        }
    }

    /// Fraction of this layer's tiles whose preload is hidden.
    pub fn hidden_fraction(&self) -> f64 {
        let s = self.layer.s();
        let mut hidden = 0usize;
        let mut total = 0usize;
        for r0 in (0..s).step_by(self.u.tr) {
            let mut first = true;
            for c0 in (0..s).step_by(self.u.tc) {
                let plan = self.plan_tile(r0, c0, !first);
                total += 1;
                if plan.hidden() {
                    hidden += 1;
                }
                first = false;
            }
        }
        hidden as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_dataflow::search::plan_network;
    use flexsim_model::workloads;

    #[test]
    fn steady_state_tiles_load_only_the_advance() {
        let layer = ConvLayer::new("C1", 2, 1, 8, 4);
        let dist = Distributor::new(&layer, Unroll::new(2, 1, 1, 2, 1, 4), 4);
        let first = dist.plan_tile(0, 0, false);
        let steady = dist.plan_tile(0, 2, true);
        // First tile loads the full (1 row-group x (Tc+K-1) cols) halo;
        // steady tiles only the Tc-column advance.
        assert!(steady.total_words() < first.total_words());
        assert_eq!(steady.total_words(), (4 * 2) as u64); // rows_in=4, 2 new cols
    }

    #[test]
    fn rs_hides_steady_state_loads_on_planned_workloads() {
        // The justification for charging only a one-off fill in the
        // analytic model: with the planner's factors, nearly every tile
        // transition is bandwidth-hidden on the small Table 1 nets.
        for net in [workloads::lenet5(), workloads::pv(), workloads::hg()] {
            for (layer, choice) in net.conv_layers().zip(plan_network(&net, 16)) {
                let dist = Distributor::new(layer, choice.unroll, 16);
                let frac = dist.hidden_fraction();
                assert!(
                    frac > 0.85,
                    "{}/{}: only {:.0}% of tiles hidden",
                    net.name(),
                    layer.name(),
                    frac * 100.0
                );
            }
        }
    }

    #[test]
    fn column_loads_respect_residue_mapping() {
        // All words of one input column land on the same bus; a tile's
        // words spread over exactly cols_used buses at most.
        let layer = ConvLayer::new("C", 1, 2, 6, 3);
        let u = Unroll::new(1, 2, 1, 3, 1, 3);
        let dist = Distributor::new(&layer, u, 16);
        let plan = dist.plan_tile(0, 0, false);
        let busy_buses = plan.column_words.iter().filter(|&&w| w > 0).count();
        assert!(busy_buses <= u.cols_used());
        assert!(busy_buses > 0);
    }

    #[test]
    fn edge_tiles_are_smaller() {
        let layer = ConvLayer::new("C", 1, 1, 10, 3);
        let u = Unroll::new(1, 1, 1, 4, 1, 3);
        let dist = Distributor::new(&layer, u, 16);
        // Tile at c0=8 has tc_eff=2 < 4.
        let interior = dist.plan_tile(0, 4, false);
        let edge = dist.plan_tile(0, 8, false);
        assert!(edge.total_words() < interior.total_words());
    }
}
