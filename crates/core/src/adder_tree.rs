//! The per-row adder tree (Section 4.1).
//!
//! "Only the adders within each PE row are connected to form an adder
//! tree, each PE row can complete one convolution and serve to one
//! output neuron." Each cycle, the tree reduces the row's products and
//! accumulates into the row's partial-result register.

use flexsim_model::Acc32;
use flexsim_obs::spatial::ContentionMatrix;

/// Reduction result: the sum plus the adder-op count (for the energy
/// model) and tree depth (for pipeline latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reduction {
    /// The reduced sum.
    pub sum: Acc32,
    /// Two-input additions performed.
    pub adds: u64,
    /// Tree depth in adder stages (`⌈log2 n⌉`).
    pub depth: u32,
}

/// Reduces a row's products through a binary adder tree.
///
/// # Example
///
/// ```
/// use flexflow::adder_tree::reduce;
/// use flexsim_model::{Acc32, Fx16};
///
/// let products: Vec<Acc32> = (1..=4)
///     .map(|i| Acc32::from_fx16(Fx16::from_f64(i as f64)))
///     .collect();
/// let r = reduce(&products);
/// assert_eq!(r.sum.to_fx16().to_f64(), 10.0);
/// assert_eq!(r.adds, 3);
/// assert_eq!(r.depth, 2);
/// ```
pub fn reduce(products: &[Acc32]) -> Reduction {
    if products.is_empty() {
        return Reduction {
            sum: Acc32::ZERO,
            adds: 0,
            depth: 0,
        };
    }
    let mut level: Vec<Acc32> = products.to_vec();
    let mut adds = 0u64;
    let mut depth = 0u32;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(pair[0].saturating_add(pair[1]));
                adds += 1;
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        depth += 1;
    }
    Reduction {
        sum: level[0],
        adds,
        depth,
    }
}

/// Folds one layer's row-port sharing pattern into a contention
/// matrix: under IPDR kernel replication each output group of
/// `rows_per_group` consecutive PE rows reduces into one logical
/// adder-tree output port, so every row pair within a group is
/// co-active on that port for `weight` compute cycles. Spatial-probe
/// counterpart of the static `flexcheck` rule `FXC03 adder-tree-port`
/// (which proves the sharing is conflict-free; this records how much
/// of it there is).
///
/// # Panics
///
/// Panics when a group's rows run past the matrix's port count.
pub fn port_sharing(
    matrix: &mut ContentionMatrix,
    groups: usize,
    rows_per_group: usize,
    weight: u64,
) {
    for g in 0..groups {
        let base = g * rows_per_group;
        for a in 0..rows_per_group {
            for b in (a + 1)..rows_per_group {
                matrix.record(base + a, base + b, weight);
            }
        }
    }
}

/// Per-batch ownership guard for the row adder-tree ports. Each PE row
/// completes one output neuron per batch; two outputs claiming the same
/// row within a batch would interleave partial sums in one accumulator.
/// Dynamic counterpart of the static `flexcheck` rule `FXC03
/// adder-tree-port`.
#[derive(Clone, Debug)]
pub struct RowPorts {
    owner: Vec<Option<usize>>,
}

impl RowPorts {
    /// A fresh port set over `rows` PE rows.
    pub fn new(rows: usize) -> Self {
        RowPorts {
            owner: vec![None; rows],
        }
    }

    /// Claims `row`'s accumulator port for output neuron `output`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if another output already owns the row
    /// this batch (flexcheck rule FXC03 proves this absent in
    /// lint-clean schedules). Release builds keep the first owner.
    pub fn claim(&mut self, row: usize, output: usize) {
        debug_assert!(
            self.owner[row].is_none_or(|o| o == output),
            "outputs {:?} and {output} contend for PE row {row}'s adder-tree port \
             (statically provable: flexcheck FXC03 adder-tree-port)",
            self.owner[row].unwrap()
        );
        self.owner[row].get_or_insert(output);
    }

    /// Starts the next batch: releases all ports.
    pub fn next_batch(&mut self) {
        self.owner.iter_mut().for_each(|o| *o = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::Fx16;

    fn acc(v: f64) -> Acc32 {
        Acc32::from_fx16(Fx16::from_f64(v))
    }

    #[test]
    fn empty_row_sums_to_zero() {
        let r = reduce(&[]);
        assert_eq!(r.sum, Acc32::ZERO);
        assert_eq!(r.adds, 0);
    }

    #[test]
    fn single_product_passes_through() {
        let r = reduce(&[acc(7.0)]);
        assert_eq!(r.sum.to_fx16().to_f64(), 7.0);
        assert_eq!((r.adds, r.depth), (0, 0));
    }

    #[test]
    fn n_minus_one_adds_for_any_width() {
        for n in 1..=16usize {
            let products: Vec<Acc32> = (0..n).map(|i| acc(i as f64 / 4.0)).collect();
            let r = reduce(&products);
            assert_eq!(r.adds, (n - 1) as u64, "n={n}");
            assert_eq!(r.depth, (usize::BITS - (n - 1).leading_zeros()), "n={n}");
            let want: f64 = (0..n).map(|i| i as f64 / 4.0).sum();
            assert!((r.sum.to_f64() - want).abs() < 1e-9);
        }
    }

    #[test]
    fn full_16_wide_row_depth() {
        let products = vec![acc(0.25); 16];
        let r = reduce(&products);
        assert_eq!(r.depth, 4);
        assert_eq!(r.sum.to_fx16().to_f64(), 4.0);
    }

    #[test]
    fn port_sharing_pairs_rows_within_groups_only() {
        // 2 groups × 3 rows: pairs (0,1)(0,2)(1,2) and (3,4)(3,5)(4,5).
        let mut m = ContentionMatrix::new(8);
        port_sharing(&mut m, 2, 3, 10);
        assert_eq!(m.get(0, 1), 10);
        assert_eq!(m.get(1, 2), 10);
        assert_eq!(m.get(4, 5), 10);
        assert_eq!(m.get(2, 3), 0, "rows of different groups never share");
        assert_eq!(m.total(), 6 * 10);
    }

    #[test]
    fn port_sharing_single_row_groups_record_nothing() {
        let mut m = ContentionMatrix::new(4);
        port_sharing(&mut m, 4, 1, 99);
        assert!(m.is_empty());
    }

    #[test]
    fn row_ports_allow_one_output_per_row() {
        let mut ports = RowPorts::new(4);
        ports.claim(0, 7);
        ports.claim(0, 7); // same output re-accumulating: fine
        ports.claim(1, 8);
        ports.next_batch();
        ports.claim(0, 9); // new batch, new owner: fine
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "FXC03"))]
    fn row_ports_catch_a_port_conflict() {
        let mut ports = RowPorts::new(4);
        ports.claim(2, 7);
        ports.claim(2, 8); // release builds keep the first owner
    }
}
