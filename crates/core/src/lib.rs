//! # flexflow — the FlexFlow accelerator (HPCA 2017)
//!
//! A from-scratch simulator of *FlexFlow: A Flexible Dataflow Accelerator
//! Architecture for Convolutional Neural Networks* (Lu et al., HPCA
//! 2017). FlexFlow's computing engine is a `D×D` mesh of PEs whose
//! inter-PE links are removed; instead, each PE owns two small
//! random-access local stores fed by vertical (neuron) and horizontal
//! (kernel) common data buses, and the adders of each PE row form an
//! adder tree so that one row completes one output neuron. Freed from
//! fixed data direction/type/stride, the engine supports the
//! comprehensive `MFMNMS` processing style and mixes feature-map, neuron,
//! and synapse parallelism per layer ("complementary parallelism").
//!
//! Crate layout mirrors the paper:
//!
//! * [`pe`], [`local_store`], [`adder_tree`] — the PE micro-architecture
//!   of Section 4.1 / Fig. 7(a);
//! * [`mapping`] — the Section 4.3 operand/output assignment formulas
//!   (logical groups, row/column residues — the RA/RS dataflow);
//! * [`fsm`] — the four-state local-store address FSM of Section 4.4;
//! * [`cdb`], [`distribution`], [`buffers`] — DataFlow1/DataFlow3:
//!   common data buses, the distribution layer (RS preload planning),
//!   IADP bank placement, IPDR replication (Figs. 12–13);
//! * [`mod@array`] — the cycle-stepped functional PE-array simulator;
//! * [`analytic`] — the closed-form schedule model (validated against
//!   [`mod@array`]);
//! * [`pooling`] — the 1-D pooling unit;
//! * [`isa`], [`compiler`], [`decoder`] — the instruction set, the
//!   Section 5 compiler ("workload analyzer" + code generation), and
//!   the protocol-checking on-chip decoder;
//! * [`trace`] — time-resolved PE-occupancy traces and sparkline
//!   rendering;
//! * [`engine`] — the whole accelerator: an
//!   [`flexsim_arch::Accelerator`] implementation plus a functional
//!   end-to-end `execute` path.
//!
//! ## Example
//!
//! ```
//! use flexflow::FlexFlow;
//! use flexsim_arch::Accelerator;
//! use flexsim_model::workloads;
//!
//! let mut ff = FlexFlow::paper_config(); // 16x16 PEs, Table 5 buffers
//! let summary = ff.run_network(&workloads::lenet5());
//! assert!(summary.utilization() > 0.8); // Fig. 15's headline
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adder_tree;
pub mod analytic;
pub mod array;
pub mod buffers;
pub mod cdb;
pub mod compiler;
pub mod decoder;
pub mod distribution;
pub mod engine;
pub mod fsm;
pub mod isa;
pub mod local_store;
pub mod mapping;
pub mod pe;
pub mod pooling;
pub mod trace;

pub use compiler::{Compiler, Program};
pub use engine::FlexFlow;
