//! The on-chip instruction decoder (Fig. 6's fourth component).
//!
//! The decoder ingests the compiler's 64-bit words, validates the
//! stream's protocol, and drives the engine. Protocol rules it
//! enforces (violations are configuration bugs the hardware would
//! reject):
//!
//! * a `Conv` must be preceded by a `Configure` *and* a `LoadKernels`
//!   for the same layer since the last `Conv`;
//! * `Configure` factors must fit the engine (`Tn·Ti·Tj ≤ D`,
//!   `Tm·Tr·Tc ≤ D`);
//! * the stream must terminate with `Halt`, and nothing may follow it.

use crate::isa::{DecodeInstrError, Instr};
use flexsim_dataflow::Unroll;
use std::fmt;

/// A protocol or encoding error found while decoding a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeProgramError {
    /// A word failed instruction decoding.
    BadWord {
        /// Position in the stream.
        pc: usize,
        /// The underlying encoding error.
        source: DecodeInstrError,
    },
    /// `Configure` factors exceed the engine.
    OversizedFactors {
        /// Position in the stream.
        pc: usize,
        /// The offending factors.
        unroll: Unroll,
    },
    /// A `Conv` arrived without a prior `Configure` for its layer.
    ConvWithoutConfigure {
        /// Position in the stream.
        pc: usize,
        /// The targeted layer index.
        layer: u8,
    },
    /// A `Conv` arrived without a prior `LoadKernels` for its layer.
    ConvWithoutKernels {
        /// Position in the stream.
        pc: usize,
        /// The targeted layer index.
        layer: u8,
    },
    /// The stream did not end with `Halt`.
    MissingHalt,
    /// Instructions followed `Halt`.
    TrailingWords {
        /// Position of the first trailing word.
        pc: usize,
    },
}

impl fmt::Display for DecodeProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeProgramError::BadWord { pc, source } => {
                write!(f, "pc {pc}: {source}")
            }
            DecodeProgramError::OversizedFactors { pc, unroll } => {
                write!(f, "pc {pc}: factors {unroll} exceed the engine")
            }
            DecodeProgramError::ConvWithoutConfigure { pc, layer } => {
                write!(f, "pc {pc}: conv L{layer} without a configure")
            }
            DecodeProgramError::ConvWithoutKernels { pc, layer } => {
                write!(f, "pc {pc}: conv L{layer} without loaded kernels")
            }
            DecodeProgramError::MissingHalt => f.write_str("stream does not end with halt"),
            DecodeProgramError::TrailingWords { pc } => {
                write!(f, "pc {pc}: instructions after halt")
            }
        }
    }
}

impl std::error::Error for DecodeProgramError {}

/// The decoder: validates an encoded stream against the engine size and
/// yields the instruction sequence.
///
/// # Example
///
/// ```
/// use flexflow::decoder::Decoder;
/// use flexflow::Compiler;
/// use flexsim_model::workloads;
///
/// let program = Compiler::new(16).compile(&workloads::lenet5());
/// let decoded = Decoder::new(16).decode_stream(&program.encode())?;
/// assert_eq!(decoded.len(), program.instrs().len());
/// # Ok::<(), flexflow::decoder::DecodeProgramError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decoder {
    d: usize,
}

impl Decoder {
    /// Creates a decoder for a `d×d` engine.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "engine side must be non-zero");
        Decoder { d }
    }

    /// Engine side `D`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Decodes and protocol-checks a whole stream.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeProgramError`] encountered.
    pub fn decode_stream(&self, words: &[u64]) -> Result<Vec<Instr>, DecodeProgramError> {
        let mut out = Vec::with_capacity(words.len());
        // Per-layer readiness state since the last Conv.
        let mut configured = [false; 256];
        let mut loaded = [false; 256];
        let mut halted_at: Option<usize> = None;
        for (pc, &word) in words.iter().enumerate() {
            if halted_at.is_some() {
                return Err(DecodeProgramError::TrailingWords { pc });
            }
            let instr =
                Instr::decode(word).map_err(|source| DecodeProgramError::BadWord { pc, source })?;
            match instr {
                Instr::Configure { layer, unroll } => {
                    if unroll.rows_used() > self.d || unroll.cols_used() > self.d {
                        return Err(DecodeProgramError::OversizedFactors { pc, unroll });
                    }
                    configured[layer as usize] = true;
                }
                Instr::LoadKernels { layer } => {
                    loaded[layer as usize] = true;
                }
                Instr::Conv { layer } => {
                    if !configured[layer as usize] {
                        return Err(DecodeProgramError::ConvWithoutConfigure { pc, layer });
                    }
                    if !loaded[layer as usize] {
                        return Err(DecodeProgramError::ConvWithoutKernels { pc, layer });
                    }
                }
                Instr::Pool { .. } | Instr::SwapBuffers => {}
                Instr::Halt => halted_at = Some(pc),
            }
            out.push(instr);
        }
        if halted_at.is_none() {
            return Err(DecodeProgramError::MissingHalt);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use flexsim_model::workloads;

    #[test]
    fn compiler_output_always_decodes() {
        for net in workloads::all() {
            let program = Compiler::new(16).compile(&net);
            let decoded = Decoder::new(16)
                .decode_stream(&program.encode())
                .expect("compiler output must be protocol-clean");
            assert_eq!(decoded, program.instrs());
        }
    }

    #[test]
    fn conv_requires_configure() {
        let words = vec![
            Instr::LoadKernels { layer: 0 }.encode(),
            Instr::Conv { layer: 0 }.encode(),
            Instr::Halt.encode(),
        ];
        let err = Decoder::new(16).decode_stream(&words).unwrap_err();
        assert!(matches!(
            err,
            DecodeProgramError::ConvWithoutConfigure { pc: 1, layer: 0 }
        ));
    }

    #[test]
    fn conv_requires_loaded_kernels() {
        let words = vec![
            Instr::Configure {
                layer: 2,
                unroll: Unroll::scalar(),
            }
            .encode(),
            Instr::Conv { layer: 2 }.encode(),
            Instr::Halt.encode(),
        ];
        let err = Decoder::new(16).decode_stream(&words).unwrap_err();
        assert!(matches!(
            err,
            DecodeProgramError::ConvWithoutKernels { pc: 1, layer: 2 }
        ));
    }

    #[test]
    fn oversized_factors_rejected_by_small_engines() {
        // Factors fine for 16x16 but not for 4x4.
        let words = vec![
            Instr::Configure {
                layer: 0,
                unroll: Unroll::new(8, 1, 1, 2, 1, 8),
            }
            .encode(),
            Instr::Halt.encode(),
        ];
        assert!(Decoder::new(16).decode_stream(&words).is_ok());
        let err = Decoder::new(4).decode_stream(&words).unwrap_err();
        assert!(matches!(
            err,
            DecodeProgramError::OversizedFactors { pc: 0, .. }
        ));
    }

    #[test]
    fn halt_must_terminate_and_be_last() {
        let no_halt = vec![Instr::SwapBuffers.encode()];
        assert_eq!(
            Decoder::new(16).decode_stream(&no_halt).unwrap_err(),
            DecodeProgramError::MissingHalt
        );
        let trailing = vec![Instr::Halt.encode(), Instr::SwapBuffers.encode()];
        assert!(matches!(
            Decoder::new(16).decode_stream(&trailing).unwrap_err(),
            DecodeProgramError::TrailingWords { pc: 1 }
        ));
    }

    #[test]
    fn bad_words_are_located() {
        let words = vec![Instr::Halt.encode() ^ (0x7 << 60)];
        let err = Decoder::new(16).decode_stream(&words).unwrap_err();
        assert!(matches!(err, DecodeProgramError::BadWord { pc: 0, .. }));
        assert!(err.to_string().contains("pc 0"));
    }
}
