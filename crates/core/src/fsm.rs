//! The four-state local-store addressing FSM (Section 4.4, Fig. 11).
//!
//! Local-store *writes* are auto-increment; *reads* walk the store under
//! a tiny controller with four states:
//!
//! * `S0 / INIT` — a new computation starts; address resets;
//! * `S1 / INCR` — the address advances by the configured step;
//! * `S2 / HOLD` — the address holds when a computing window (of `Ti`
//!   operands) completes but its data is reused by the next window;
//! * `S3 / JUMP` — the address jumps to the next neuron row when a row
//!   of windows completes.
//!
//! The step is `Tc` for the paper's running example ("the step for
//! neuron local store is 1, and the step for kernel local store is 2"),
//! and the transitions depend only on window/row completion — no other
//! control, which is the point: the dataflow optimizations (RA/RS) make
//! local addressing *regular* even though the global dataflow is
//! flexible.

use std::fmt;

/// FSM states, named as in Fig. 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FsmState {
    /// `S0` — initialize a new computation.
    Init,
    /// `S1` — increment the address by the step.
    Incr,
    /// `S2` — hold the current address across a window boundary.
    Hold,
    /// `S3` — jump to the next neuron row.
    Jump,
}

impl fmt::Display for FsmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsmState::Init => "S0/INIT",
            FsmState::Incr => "S1/INCR",
            FsmState::Hold => "S2/HOLD",
            FsmState::Jump => "S3/JUMP",
        };
        f.write_str(s)
    }
}

/// Configuration of one store's read addressing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsmConfig {
    /// Address increment in `S1` (the paper's "counter step", `Tc`).
    pub step: usize,
    /// Operands per computing window (`Ti` in the paper's description).
    pub window: usize,
    /// Windows per neuron row.
    pub windows_per_row: usize,
    /// Address stride between neuron rows.
    pub row_stride: usize,
}

impl FsmConfig {
    /// Closed-form maximum address an [`AddrFsm`] with this
    /// configuration emits while walking `rows` neuron rows — no
    /// stepping: within a row the last window starts at
    /// `(windows_per_row − 1)·step` and ends `(window − 1)·step` later;
    /// rows advance by `row_stride`. flexcheck rule `FXC04` proves its
    /// store bound against this form, and its property suite holds it
    /// exactly equal to the stepped FSM's maximum.
    pub fn max_addr(&self, rows: usize) -> usize {
        (rows.max(1) - 1) * self.row_stride
            + (self.windows_per_row - 1 + self.window - 1) * self.step
    }
}

/// The address-generation FSM.
///
/// Drive it with [`AddrFsm::next_addr`]; it yields the address to read
/// this cycle and advances its state.
///
/// # Example
///
/// ```
/// use flexflow::fsm::{AddrFsm, FsmConfig, FsmState};
///
/// // Two windows of 3 operands per row, step 1, rows 8 apart.
/// let mut fsm = AddrFsm::new(FsmConfig {
///     step: 1,
///     window: 3,
///     windows_per_row: 2,
///     row_stride: 8,
/// });
/// let addrs: Vec<usize> = (0..6).map(|_| fsm.next_addr()).collect();
/// assert_eq!(addrs, vec![0, 1, 2, 1, 2, 3]);
/// assert_eq!(fsm.state(), FsmState::Jump);
/// assert_eq!(fsm.next_addr(), 8); // next neuron row
/// ```
#[derive(Clone, Debug)]
pub struct AddrFsm {
    config: FsmConfig,
    state: FsmState,
    addr: usize,
    row_start: usize,
    window_start: usize,
    in_window: usize,
    windows_done: usize,
}

impl AddrFsm {
    /// Creates the FSM in `S0` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configuration field is zero.
    pub fn new(config: FsmConfig) -> Self {
        assert!(
            config.step > 0
                && config.window > 0
                && config.windows_per_row > 0
                && config.row_stride > 0,
            "FSM configuration fields must be non-zero"
        );
        AddrFsm {
            config,
            state: FsmState::Init,
            addr: 0,
            row_start: 0,
            window_start: 0,
            in_window: 0,
            windows_done: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// Emits the address for this cycle and advances the FSM.
    pub fn next_addr(&mut self) -> usize {
        let emitted = match self.state {
            FsmState::Init => {
                self.addr = 0;
                self.row_start = 0;
                self.window_start = 0;
                self.addr
            }
            FsmState::Incr => {
                self.addr += self.config.step;
                self.addr
            }
            FsmState::Hold => {
                // A new window starts one step after the previous
                // window's start: the held data is re-walked from there
                // (the overlap reuse RA/RS arrange for).
                self.window_start += self.config.step;
                self.addr = self.window_start;
                self.addr
            }
            FsmState::Jump => {
                self.row_start += self.config.row_stride;
                self.window_start = self.row_start;
                self.addr = self.row_start;
                self.addr
            }
        };
        self.advance();
        emitted
    }

    fn advance(&mut self) {
        if matches!(self.state, FsmState::Jump) {
            self.windows_done = 0;
        }
        if matches!(self.state, FsmState::Hold) {
            // Hold emitted the first operand of a fresh window.
            self.in_window = 1;
        } else if matches!(self.state, FsmState::Init | FsmState::Jump) {
            self.in_window = 1;
        } else {
            self.in_window += 1;
        }

        let window_done = self.in_window == self.config.window;
        self.state = if window_done {
            self.windows_done += 1;
            self.in_window = 0;
            if self.windows_done == self.config.windows_per_row {
                FsmState::Jump
            } else {
                FsmState::Hold
            }
        } else {
            FsmState::Incr
        };
    }

    /// Resets to `S0` (a new computation starts).
    pub fn reset(&mut self) {
        self.state = FsmState::Init;
        self.addr = 0;
        self.row_start = 0;
        self.window_start = 0;
        self.in_window = 0;
        self.windows_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(fsm: &mut AddrFsm, n: usize) -> Vec<usize> {
        (0..n).map(|_| fsm.next_addr()).collect()
    }

    #[test]
    fn window_walk_with_overlap() {
        // 3 windows of 4 operands, step 1 — the overlapping-window walk
        // of a K=4 convolution row under Tc=1.
        let mut fsm = AddrFsm::new(FsmConfig {
            step: 1,
            window: 4,
            windows_per_row: 3,
            row_stride: 16,
        });
        let addrs = collect(&mut fsm, 12);
        assert_eq!(addrs, vec![0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5]);
        assert_eq!(fsm.state(), FsmState::Jump);
    }

    #[test]
    fn jump_moves_to_next_row() {
        let mut fsm = AddrFsm::new(FsmConfig {
            step: 1,
            window: 2,
            windows_per_row: 2,
            row_stride: 10,
        });
        let addrs = collect(&mut fsm, 8);
        assert_eq!(addrs, vec![0, 1, 1, 2, 10, 11, 11, 12]);
    }

    #[test]
    fn kernel_store_step_two() {
        // The paper's Group(0,0)-of-C1 kernel store uses step 2.
        let mut fsm = AddrFsm::new(FsmConfig {
            step: 2,
            window: 3,
            windows_per_row: 1,
            row_stride: 8,
        });
        let addrs = collect(&mut fsm, 6);
        assert_eq!(addrs, vec![0, 2, 4, 8, 10, 12]);
    }

    #[test]
    fn state_sequence_matches_fig11() {
        let mut fsm = AddrFsm::new(FsmConfig {
            step: 1,
            window: 2,
            windows_per_row: 2,
            row_stride: 4,
        });
        let mut states = vec![fsm.state()];
        for _ in 0..4 {
            fsm.next_addr();
            states.push(fsm.state());
        }
        assert_eq!(
            states,
            vec![
                FsmState::Init,
                FsmState::Incr,
                FsmState::Hold,
                FsmState::Incr,
                FsmState::Jump
            ]
        );
    }

    #[test]
    fn reset_restarts_computation() {
        let mut fsm = AddrFsm::new(FsmConfig {
            step: 1,
            window: 2,
            windows_per_row: 1,
            row_stride: 4,
        });
        let first = collect(&mut fsm, 4);
        fsm.reset();
        let second = collect(&mut fsm, 4);
        assert_eq!(first, second);
    }

    #[test]
    fn max_addr_closed_form_matches_the_walk() {
        // The doc example's configuration: 2 windows of 3 operands per
        // row, step 1, rows 8 apart — 6 emissions per row.
        let cfg = FsmConfig {
            step: 1,
            window: 3,
            windows_per_row: 2,
            row_stride: 8,
        };
        let mut fsm = AddrFsm::new(cfg);
        let walked = (0..12).map(|_| fsm.next_addr()).max().unwrap();
        assert_eq!(cfg.max_addr(2), walked);
        assert_eq!(cfg.max_addr(1), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_config_rejected() {
        let _ = AddrFsm::new(FsmConfig {
            step: 0,
            window: 1,
            windows_per_row: 1,
            row_stride: 1,
        });
    }
}
