//! The 1-D pooling unit (Section 4 overview, Fig. 6).
//!
//! "The pooling unit is a series of lightweight ALUs, subsampling the
//! immediate convolution results to reduce data transmission." The unit
//! processes `width` lanes per cycle, each lane reducing one pooling
//! window per `P²` inputs.

use flexsim_model::layer::PoolLayer;
use flexsim_model::reference;
use flexsim_model::Tensor3;

/// The pooling unit: an array of `width` lightweight ALUs.
///
/// # Example
///
/// ```
/// use flexflow::pooling::PoolingUnit;
/// use flexsim_model::{PoolKind, PoolLayer, Tensor3};
///
/// let unit = PoolingUnit::new(16);
/// let layer = PoolLayer::new("P2", PoolKind::Max, 2, 1, 4);
/// let input: Tensor3 = Tensor3::zeros(1, 4, 4);
/// let (out, stats) = unit.run(&layer, &input);
/// assert_eq!(out.rows(), 2);
/// assert!(stats.cycles > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolingUnit {
    width: usize,
}

/// Timing/energy statistics of a pooling pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Cycles to subsample the layer.
    pub cycles: u64,
    /// ALU operations performed.
    pub alu_ops: u64,
    /// Words read (immediate convolution results).
    pub words_in: u64,
    /// Words written (subsampled outputs).
    pub words_out: u64,
}

impl PoolingUnit {
    /// Creates a unit of `width` ALUs (FlexFlow pairs a `D`-wide unit
    /// with its `D×D` convolutional unit).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "pooling unit width must be non-zero");
        PoolingUnit { width }
    }

    /// Number of ALU lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs a POOL layer, returning the subsampled maps and statistics.
    ///
    /// # Panics
    ///
    /// Panics if the input doesn't match the layer's declared shape.
    pub fn run(&self, layer: &PoolLayer, input: &Tensor3) -> (Tensor3, PoolStats) {
        let out = reference::pool(layer, input);
        let windows = (layer.maps() * layer.output_size() * layer.output_size()) as u64;
        let ops_per_window = (layer.window() * layer.window() - 1) as u64;
        let alu_ops = windows * ops_per_window;
        // `width` lanes, each lane consuming one window element per
        // cycle: a window takes P² cycles in its lane.
        let window_cycles = (layer.window() * layer.window()) as u64;
        let cycles = windows.div_ceil(self.width as u64) * window_cycles;
        let stats = PoolStats {
            cycles,
            alu_ops,
            words_in: (layer.maps() * layer.input_size() * layer.input_size()) as u64,
            words_out: windows,
        };
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::layer::PoolKind;
    use flexsim_model::Fx16;

    #[test]
    fn max_pool_matches_reference() {
        let unit = PoolingUnit::new(4);
        let layer = PoolLayer::new("P", PoolKind::Max, 2, 2, 6);
        let input = Tensor3::from_fn(2, 6, 6, |m, r, c| {
            Fx16::from_f64((m * 36 + r * 6 + c) as f64 / 64.0)
        });
        let (out, _) = unit.run(&layer, &input);
        assert_eq!(out, reference::pool(&layer, &input));
    }

    #[test]
    fn wider_units_are_faster() {
        let layer = PoolLayer::new("P", PoolKind::Avg, 2, 8, 16);
        let input: Tensor3 = Tensor3::zeros(8, 16, 16);
        let (_, s1) = PoolingUnit::new(1).run(&layer, &input);
        let (_, s16) = PoolingUnit::new(16).run(&layer, &input);
        assert!(s16.cycles < s1.cycles);
        assert_eq!(s1.alu_ops, s16.alu_ops);
    }

    #[test]
    fn stats_count_words() {
        let layer = PoolLayer::new("P", PoolKind::Max, 2, 1, 4);
        let input: Tensor3 = Tensor3::zeros(1, 4, 4);
        let (_, s) = PoolingUnit::new(16).run(&layer, &input);
        assert_eq!(s.words_in, 16);
        assert_eq!(s.words_out, 4);
        assert_eq!(s.alu_ops, 4 * 3);
    }
}
