//! The FlexFlow compiler (Section 5).
//!
//! The compiler's workload analyzer ([`flexsim_dataflow::search`])
//! chooses the unrolling factors for every CONV layer under the engine
//! and IADP coupling constraints, then code generation lowers the
//! network to the [`crate::isa`] instruction stream the on-chip decoder
//! executes.

use crate::isa::Instr;
use flexsim_dataflow::search::{best_unroll, plan_network, LayerChoice};
use flexsim_model::{Layer, Network};
use std::fmt;

/// A compiled network: the per-layer factor plan plus the instruction
/// stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    name: String,
    d: usize,
    choices: Vec<LayerChoice>,
    instrs: Vec<Instr>,
}

impl Program {
    /// Assembles a program from parts, bypassing the compiler. The
    /// normal route is [`Compiler::compile`]; this exists so verifier
    /// harnesses (`flexcheck`'s mutation tests) can construct
    /// deliberately ill-formed programs the compiler would never emit.
    pub fn from_parts(
        name: impl Into<String>,
        d: usize,
        choices: Vec<LayerChoice>,
        instrs: Vec<Instr>,
    ) -> Self {
        Program {
            name: name.into(),
            d,
            choices,
            instrs,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Engine side the program was compiled for.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The factor plan, one entry per CONV layer in network order.
    pub fn choices(&self) -> &[LayerChoice] {
        &self.choices
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Encodes the stream to 64-bit words (what the decoder ingests).
    pub fn encode(&self) -> Vec<u64> {
        self.instrs.iter().map(Instr::encode).collect()
    }

    /// The "assemble language code" listing.
    pub fn disassemble(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {} on {}x{} FlexFlow", self.name, self.d, self.d)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:4}: {i}")?;
        }
        Ok(())
    }
}

/// The compiler.
///
/// # Example
///
/// ```
/// use flexflow::Compiler;
/// use flexsim_model::workloads;
///
/// let program = Compiler::new(16).compile(&workloads::lenet5());
/// assert_eq!(program.choices().len(), 2);
/// assert!(program.disassemble().contains("conv"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Compiler {
    d: usize,
}

impl Compiler {
    /// Creates a compiler targeting a `d×d` engine.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "engine side must be non-zero");
        Compiler { d }
    }

    /// Target engine side.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Compiles a network: plans factors, then lowers to instructions.
    ///
    /// # Panics
    ///
    /// Panics if the network has no CONV layers or has more than 256
    /// layers (the ISA's 8-bit layer index).
    pub fn compile(&self, net: &Network) -> Program {
        assert!(
            net.layers().len() <= 256,
            "ISA supports at most 256 layers per program"
        );
        let mut conv_plan = plan_network(net, self.d).into_iter();
        let mut choices = Vec::new();
        let mut instrs = Vec::new();
        for step in net.steps() {
            let layer_u8 = step.index as u8;
            match step.layer {
                Layer::Conv(_) => {
                    // Invariant: `plan_network` returns one choice per
                    // CONV layer in network order (flexcheck FXC05
                    // cross-checks the pairing on the emitted program).
                    let choice = conv_plan.next().expect("plan covers every CONV layer");
                    instrs.push(Instr::Configure {
                        layer: layer_u8,
                        unroll: choice.unroll,
                    });
                    instrs.push(Instr::LoadKernels { layer: layer_u8 });
                    instrs.push(Instr::Conv { layer: layer_u8 });
                    instrs.push(Instr::SwapBuffers);
                    choices.push(choice);
                }
                Layer::Pool(_) => {
                    // Pooling subsamples in place on the output buffer,
                    // before the swap of the preceding CONV takes
                    // effect; the decoder reorders accordingly, so the
                    // stream is simply Pool.
                    instrs.push(Instr::Pool { layer: layer_u8 });
                }
                Layer::Fc(fc) => {
                    // FC layers run on the same engine as 1x1
                    // convolutions over a flattened input.
                    let view = fc.as_conv();
                    let choice = best_unroll(&view, self.d, None);
                    instrs.push(Instr::Configure {
                        layer: layer_u8,
                        unroll: choice.unroll,
                    });
                    instrs.push(Instr::LoadKernels { layer: layer_u8 });
                    instrs.push(Instr::Conv { layer: layer_u8 });
                    instrs.push(Instr::SwapBuffers);
                    choices.push(choice);
                }
            }
        }
        instrs.push(Instr::Halt);
        Program {
            name: net.name().to_owned(),
            d: self.d,
            choices,
            instrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::workloads;

    #[test]
    fn lenet_program_shape() {
        let p = Compiler::new(16).compile(&workloads::lenet5());
        // 2 conv layers (4 instrs each) + 1 pool + halt.
        assert_eq!(p.instrs().len(), 2 * 4 + 1 + 1);
        assert_eq!(p.instrs().last(), Some(&Instr::Halt));
        assert_eq!(p.d(), 16);
    }

    #[test]
    fn program_encodes_and_decodes() {
        let p = Compiler::new(16).compile(&workloads::pv());
        let words = p.encode();
        for (w, i) in words.iter().zip(p.instrs()) {
            assert_eq!(Instr::decode(*w).unwrap(), *i);
        }
    }

    #[test]
    fn disassembly_lists_every_instr() {
        let p = Compiler::new(16).compile(&workloads::fr());
        let asm = p.disassemble();
        assert_eq!(asm.lines().count(), p.instrs().len() + 1); // + header
        assert!(asm.contains("cfg"));
        assert!(asm.contains("halt"));
    }

    #[test]
    fn choices_follow_network_conv_order() {
        let net = workloads::pv();
        let p = Compiler::new(16).compile(&net);
        let names: Vec<_> = p.choices().iter().map(|c| c.layer.as_str()).collect();
        assert_eq!(names, vec!["C1", "C3", "C5", "C6", "C7"]);
    }
}
