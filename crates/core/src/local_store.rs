//! The per-PE random-access local store (Section 4.1, Table 5: 256 B
//! neuron store + 256 B kernel store per PE).
//!
//! Unlike the FIFOs of prior architectures, FlexFlow's local stores are
//! randomly addressable — the property that lets Relax Alignment reorder
//! synapse accesses and Relax Synchronization consume preloaded data
//! asynchronously. The store tracks read/write counters for the energy
//! model and enforces its capacity.

use flexsim_model::Fx16;

/// Capacity of each local store in 16-bit words (256 B).
pub const STORE_WORDS: usize = 128;

/// A word-addressed per-PE store with access counters.
///
/// # Example
///
/// ```
/// use flexflow::local_store::LocalStore;
/// use flexsim_model::Fx16;
///
/// let mut ls = LocalStore::new(8);
/// ls.write(3, Fx16::ONE);
/// assert_eq!(ls.read(3), Fx16::ONE);
/// assert_eq!(ls.reads(), 1);
/// assert_eq!(ls.writes(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LocalStore {
    data: Vec<Fx16>,
    reads: u64,
    writes: u64,
}

impl LocalStore {
    /// Creates a zero-initialized store of `words` entries.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero or exceeds [`STORE_WORDS`].
    pub fn new(words: usize) -> Self {
        assert!(
            words > 0 && words <= STORE_WORDS,
            "local store capacity must be 1..={STORE_WORDS} words \
             (statically provable: flexcheck FXC01 ls-capacity)"
        );
        LocalStore {
            data: vec![Fx16::ZERO; words],
            reads: 0,
            writes: 0,
        }
    }

    /// A full-size (256 B) store.
    pub fn full() -> Self {
        LocalStore::new(STORE_WORDS)
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Reads the word at `addr` (counted).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> Fx16 {
        assert!(
            addr < self.data.len(),
            "local store address out of range (statically provable: flexcheck FXC04 fsm-bounds)"
        );
        self.reads += 1;
        self.data[addr]
    }

    /// Writes `value` at `addr` (counted).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: Fx16) {
        assert!(
            addr < self.data.len(),
            "local store address out of range (statically provable: flexcheck FXC04 fsm-bounds)"
        );
        self.writes += 1;
        self.data[addr] = value;
    }

    /// Number of reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets the access counters (contents unchanged).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

impl Default for LocalStore {
    fn default() -> Self {
        LocalStore::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_table5() {
        let ls = LocalStore::full();
        assert_eq!(ls.capacity() * 2, 256); // 256 bytes
    }

    #[test]
    fn random_access_any_order() {
        let mut ls = LocalStore::new(16);
        // Write in one order, read in a scrambled one (what RA needs).
        for i in 0..16 {
            ls.write(i, Fx16::from_raw(i as i16));
        }
        for &i in &[7usize, 0, 15, 3, 3, 9] {
            assert_eq!(ls.read(i), Fx16::from_raw(i as i16));
        }
        assert_eq!(ls.reads(), 6);
        assert_eq!(ls.writes(), 16);
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn oob_read_panics() {
        let mut ls = LocalStore::new(4);
        let _ = ls.read(4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn oversized_store_rejected() {
        let _ = LocalStore::new(STORE_WORDS + 1);
    }

    #[test]
    fn counter_reset() {
        let mut ls = LocalStore::new(4);
        ls.write(0, Fx16::ONE);
        ls.reset_counters();
        assert_eq!(ls.writes(), 0);
        assert_eq!(ls.read(0), Fx16::ONE);
    }
}
