//! The whole FlexFlow accelerator.
//!
//! [`FlexFlow`] ties the pieces together: the Section 5 planner picks
//! unrolling factors, [`crate::analytic`] prices the schedule
//! (cycles/traffic/energy → one [`LayerResult`] per layer, the
//! [`Accelerator`] path used by every experiment), and
//! [`FlexFlow::execute`] runs a compiled [`Program`] *functionally* —
//! real data through the cycle-stepped [`crate::array`] simulator and the
//! pooling unit, layer by layer through the ping-pong buffers.

use crate::analytic::{schedule_default, Schedule, PIPELINE_FILL_CYCLES, SEGMENT_STALL_CYCLES};
use crate::array::PeArray;
use crate::buffers::{BufferSet, BUFFER_BYTES};
use crate::compiler::Program;
use crate::isa::Instr;
use crate::local_store::STORE_WORDS;
use crate::pooling::{PoolStats, PoolingUnit};
use crate::{adder_tree, cdb};
use flexsim_arch::area::{AreaBreakdown, AreaModel, AreaSpec, InterconnectStyle};
use flexsim_arch::dram::conv_layer_traffic;
use flexsim_arch::energy::EnergyModel;
use flexsim_arch::stats::{mirror_layer, EventCounts, LayerResult, RunSummary};
use flexsim_arch::Accelerator;
use flexsim_dataflow::search::{best_unroll, plan_network};
use flexsim_dataflow::{TileIter, Unroll};
use flexsim_model::tensor::KernelSet;
use flexsim_model::{ConvLayer, Network, Tensor3};
use flexsim_obs::attrib::StallCause;
use flexsim_obs::cycles::{Coalescer, CycleEventKind, LayerCtx, SinkHandle};
use flexsim_obs::spatial::{CellRect, ContentionMatrix, HeatmapBuilder, SpatialHandle};
use flexsim_obs::{span, telemetry};

/// The FlexFlow accelerator simulator.
///
/// # Example
///
/// ```
/// use flexflow::FlexFlow;
/// use flexsim_arch::Accelerator;
/// use flexsim_model::ConvLayer;
///
/// let mut ff = FlexFlow::paper_config();
/// let r = ff.run_conv(&ConvLayer::new("C3", 16, 6, 10, 5).with_input_size(14));
/// assert!(r.utilization() > 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct FlexFlow {
    d: usize,
    energy: EnergyModel,
    sink: SinkHandle,
    spatial: SpatialHandle,
}

impl FlexFlow {
    /// Creates a `d×d`-PE FlexFlow with Table 5 buffers.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "engine side must be non-zero");
        FlexFlow {
            d,
            energy: EnergyModel::tsmc65(),
            sink: SinkHandle::none(),
            spatial: SpatialHandle::none(),
        }
    }

    /// The paper's evaluated configuration: a 16×16-PE convolutional
    /// unit.
    pub fn paper_config() -> Self {
        FlexFlow::new(16)
    }

    /// Replaces the energy model (for ablations).
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Engine side `D`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Simulates one layer under explicit unrolling factors (the
    /// [`Accelerator::run_conv`] path plans them automatically).
    pub fn run_conv_with(&self, layer: &ConvLayer, unroll: Unroll) -> LayerResult {
        let sch = {
            let _schedule = telemetry::phase(telemetry::Phase::Schedule);
            schedule_default(layer, unroll, self.d)
        };
        self.result_from_schedule(layer, &sch)
    }

    /// Emits the layer's cycle-domain timeline into the attached sink:
    /// one pipeline fill, one pass per row-batch (MACs attributed from
    /// the tiled schedule), and the per-batch partial-sum spill stalls.
    /// Coalesced so long layers stay bounded; cycle and MAC totals are
    /// exact against the analytic schedule.
    ///
    /// Loss attribution: the one-off fill is
    /// [`StallCause::PipelineFill`] (operand preload + adder-tree depth
    /// before the first writeback); segment-boundary stalls are
    /// [`StallCause::PsumSpillRoundTrip`] (row accumulators written to
    /// the output buffer and read back); the pass residue — PEs left
    /// idle by `Ur·Uc < D²` unrolling and edge tiles — is
    /// [`StallCause::MappingResidueIdle`]. Adder-tree row-port
    /// conflicts are statically excluded by flexcheck FXC03, so that
    /// bucket is structurally zero here.
    fn emit_cycle_events(&self, layer: &ConvLayer, sch: &Schedule) {
        self.sink.begin_layer(&LayerCtx::new(
            self.name(),
            layer.name(),
            self.pe_count() as u32,
        ));
        let mut co = Coalescer::new(&self.sink, sch.row_batches);
        let mut tiles = TileIter::new(layer, sch.unroll);
        for batch in 0..sch.row_batches {
            if batch == 0 {
                co.push(
                    CycleEventKind::Stall(StallCause::PipelineFill),
                    PIPELINE_FILL_CYCLES,
                    0,
                );
            }
            let batch_macs: u64 = tiles
                .by_ref()
                .take(sch.chunks as usize)
                .map(|t| t.macs())
                .sum();
            co.push(
                CycleEventKind::Pass(StallCause::MappingResidueIdle),
                sch.chunks,
                batch_macs,
            );
            if sch.segments > 1 {
                co.push(
                    CycleEventKind::Stall(StallCause::PsumSpillRoundTrip),
                    (sch.segments - 1) * SEGMENT_STALL_CYCLES,
                    0,
                );
            }
            co.step();
        }
        let totals = co.finish();
        debug_assert_eq!(
            totals.cycles, sch.cycles,
            "trace cycles diverge from schedule (flexcheck FXC08 util-sanity)"
        );
        debug_assert_eq!(
            totals.macs, sch.macs,
            "trace MACs diverge from schedule (flexcheck FXC09 attribution-exactness)"
        );
        self.sink.end_layer();
    }

    /// Emits the layer's spatial record into the attached spatial sink:
    /// the per-PE heatmap, the on-chip buffer watermarks (plus the
    /// aggregate local-store watermark), and the adder-tree/CDB
    /// contention matrices.
    ///
    /// The heatmap mirrors [`Self::emit_cycle_events`] spatially: the
    /// pipeline fill and segment spills cost every PE uniformly, while
    /// the compute pass credits `sch.macs` to the `Ur × Uc` active
    /// rectangle — so per-cause cell sums reproduce the layer's
    /// [`flexsim_obs::attrib::LossLedger`] exactly (flexcheck FXC13
    /// spatial-exactness).
    fn emit_spatial(&self, layer: &ConvLayer, sch: &Schedule) {
        let u = sch.unroll;
        let mut hb = HeatmapBuilder::new(self.name(), layer.name(), self.d, self.d, sch.cycles);
        hb.stall(StallCause::PipelineFill, PIPELINE_FILL_CYCLES);
        hb.pass(
            StallCause::MappingResidueIdle,
            &[CellRect {
                row: 0,
                col: 0,
                rows: u.rows_used(),
                cols: u.cols_used(),
            }],
            sch.row_batches * sch.chunks,
            sch.macs,
        );
        if sch.segments > 1 {
            hb.stall(
                StallCause::PsumSpillRoundTrip,
                sch.row_batches * (sch.segments - 1) * SEGMENT_STALL_CYCLES,
            );
        }
        // Each of the three buffers holds at most its half of the 64 KB
        // on-chip SRAM in 16-bit words; the resident set saturates at
        // capacity for large layers.
        let buf_words = (BUFFER_BYTES / 2) as u64;
        hb.bank_sample(
            "neuron-in",
            buf_words,
            layer.input_neurons().min(buf_words),
            sch.cycles,
        );
        hb.bank_sample(
            "kernel",
            buf_words,
            layer.synapses().min(buf_words),
            sch.cycles,
        );
        hb.bank_sample(
            "neuron-out",
            buf_words,
            layer.output_neurons().min(buf_words),
            sch.cycles,
        );
        let store_words = (self.pe_count() * STORE_WORDS) as u64;
        let resident = (self.pe_count() as u64 * 2 * sch.chunks).min(store_words);
        hb.bank_sample("local-store", store_words, resident, sch.cycles);
        let mut tree = ContentionMatrix::new(self.d);
        adder_tree::port_sharing(&mut tree, u.tm, u.tr * u.tc, sch.row_batches * sch.chunks);
        hb.set_adder_tree(tree);
        let mut bus = ContentionMatrix::new(self.d);
        if sch.segments > 1 {
            cdb::writeback_collisions(
                &mut bus,
                u.rows_used(),
                sch.row_batches * (sch.segments - 1),
            );
        }
        hb.set_cdb(bus);
        self.spatial.record_layer(hb.finish());
    }

    fn result_from_schedule(&self, layer: &ConvLayer, sch: &Schedule) -> LayerResult {
        let _engine = span("engine", format!("{}/{}", self.name(), layer.name()));
        if self.sink.enabled() {
            self.emit_cycle_events(layer, sch);
        }
        if self.spatial.enabled() {
            self.emit_spatial(layer, sch);
        }
        let pe_count = self.pe_count();
        let u = sch.unroll;
        let k = layer.k();
        // Local-store write sharing: a neuron word is written into every
        // row that consumes it (same m-residue rows across the window
        // span), a kernel word is replicated across its group's Tr·Tc
        // rows (IPDR).
        let neuron_sharing = (u.tm * u.tr.min(k) * u.tc.min(k)).min(u.rows_used()) as u64;
        let kernel_replication = (u.tr * u.tc) as u64;
        let dram = conv_layer_traffic(layer, 16 * 1024, 16 * 1024);
        let macs = sch.macs;
        let cycles = sch.cycles;
        let events = EventCounts {
            macs,
            local_store_reads: 2 * macs,
            local_store_writes: sch.traffic.neuron_in * neuron_sharing
                + sch.traffic.kernel_in * kernel_replication,
            neuron_in_buf: sch.traffic.neuron_in + sch.traffic.psum / 2,
            neuron_out_buf: sch.traffic.neuron_out + sch.traffic.psum,
            kernel_buf: sch.traffic.kernel_in,
            bus_words: sch.traffic.neuron_in + sch.traffic.kernel_in * kernel_replication,
            dram_reads: dram.reads,
            dram_writes: dram.writes,
            idle_pe_cycles: (cycles * pe_count as u64).saturating_sub(macs),
            ..Default::default()
        };
        let energy = self.energy.energy(&events, cycles, self.area().total_mm2());
        let result = LayerResult {
            arch: self.name().to_owned(),
            layer: layer.name().to_owned(),
            pe_count,
            clock_ghz: 1.0,
            cycles,
            macs,
            events,
            traffic: sch.traffic,
            energy,
        };
        mirror_layer(&result);
        result
    }

    /// Functionally executes a compiled program on real data.
    ///
    /// `kernels` supplies one [`KernelSet`] per CONV/FC layer, in
    /// schedule order. Each instruction's layer materializes its routing
    /// expression ([`flexsim_model::DataRef`]) over the retained
    /// per-layer outputs — so branch/concat/residual DAG networks
    /// execute exactly like chains, with the routing (concat, residual
    /// add, map slices) costing buffer traffic but no PE cycles. The
    /// result is the network's `output()` reference.
    ///
    /// # Panics
    ///
    /// Panics if the program wasn't compiled for this engine size, the
    /// kernel sets don't match the CONV/FC layers, or a materialized
    /// input doesn't match its layer's declared shape.
    pub fn execute(
        &mut self,
        program: &Program,
        net: &Network,
        input: Tensor3,
        kernels: &[KernelSet],
    ) -> ExecutionTrace {
        assert_eq!(
            program.d(),
            self.d,
            "program compiled for a different engine"
        );
        assert_eq!(
            kernels.len(),
            program.choices().len(),
            "one kernel set per CONV/FC layer required"
        );
        let mut array = PeArray::new(self.d);
        let pooling = PoolingUnit::new(self.d);
        let mut buffers = BufferSet::new(self.d);
        let source = input;
        let mut outputs: Vec<Option<Tensor3>> = vec![None; net.layers().len()];
        let mut conv_idx = 0usize;
        let mut steps = Vec::new();
        let mut cycles = 0u64;
        for instr in program.instrs() {
            match *instr {
                Instr::Configure { .. } | Instr::LoadKernels { .. } => {}
                Instr::SwapBuffers => buffers.swap(),
                Instr::Halt => break,
                Instr::Conv { layer } => {
                    let step = net
                        .step(layer as usize)
                        .expect("Conv instruction layer index out of range");
                    let data = step.input.materialize(&source, &outputs);
                    // FC layers run as 1x1 convolutions over a flattened
                    // input (the compiler planned them the same way).
                    let (conv, conv_input) = match step.layer {
                        flexsim_model::Layer::Conv(c) => (c.clone(), data),
                        flexsim_model::Layer::Fc(fc) => {
                            let flat_len = data.len();
                            assert_eq!(
                                flat_len,
                                fc.inputs(),
                                "layer {} flattened input length mismatch",
                                fc.name()
                            );
                            let flat =
                                Tensor3::from_fn(flat_len, 1, 1, |m, _, _| data.as_slice()[m]);
                            (fc.as_conv(), flat)
                        }
                        flexsim_model::Layer::Pool(_) => {
                            panic!(
                                "Conv instruction must target a CONV or FC layer \
                                 (statically provable: flexcheck FXC05 isa-protocol)"
                            )
                        }
                    };
                    let current_shape = (conv_input.maps(), conv_input.rows());
                    assert_eq!(
                        current_shape.0,
                        conv.n(),
                        "layer {} input maps mismatch",
                        conv.name()
                    );
                    assert_eq!(
                        current_shape.1,
                        conv.input_size(),
                        "layer {} input size mismatch",
                        conv.name()
                    );
                    let choice = &program.choices()[conv_idx];
                    let report =
                        array.run_layer(&conv, choice.unroll, &conv_input, &kernels[conv_idx]);
                    buffers.input().read_bulk(report.vertical_bus_words);
                    buffers.kernel().read_bulk(report.horizontal_bus_words);
                    buffers.output().write_bulk(conv.output_neurons());
                    cycles += report.cycles;
                    steps.push(StepTrace::Conv {
                        layer: conv.name().to_owned(),
                        cycles: report.cycles,
                        macs: report.macs,
                    });
                    outputs[step.index] = Some(report.output);
                    conv_idx += 1;
                }
                Instr::Pool { layer } => {
                    let step = net
                        .step(layer as usize)
                        .expect("Pool instruction layer index out of range");
                    let data = step.input.materialize(&source, &outputs);
                    // Invariant: the compiler only emits Pool for POOL
                    // layers (statically provable: flexcheck FXC05).
                    let pool = step
                        .layer
                        .as_pool()
                        .expect("Pool instruction must target a POOL layer");
                    let (out, stats): (Tensor3, PoolStats) = pooling.run(pool, &data);
                    cycles += stats.cycles;
                    steps.push(StepTrace::Pool {
                        layer: pool.name().to_owned(),
                        cycles: stats.cycles,
                        alu_ops: stats.alu_ops,
                    });
                    outputs[step.index] = Some(out);
                }
            }
        }
        ExecutionTrace {
            output: net.output().materialize(&source, &outputs),
            cycles,
            steps,
        }
    }

    fn area_spec(&self) -> AreaSpec {
        AreaSpec {
            pe_count: self.pe_count(),
            local_store_bytes_per_pe: 512, // 256 B neuron + 256 B kernel
            fifo_bytes_total: 0,
            buffer_kb_total: 64, // Table 7: 64 KB on-chip buffers
            interconnect: InterconnectStyle::CommonDataBus,
            fixed_overhead_mm2: 0.30, // decoder + pooling unit + I/O
        }
    }
}

impl Accelerator for FlexFlow {
    fn name(&self) -> &str {
        "FlexFlow"
    }

    fn pe_count(&self) -> usize {
        self.d * self.d
    }

    fn run_conv(&mut self, layer: &ConvLayer) -> LayerResult {
        let choice = {
            let _schedule = telemetry::phase(telemetry::Phase::Schedule);
            best_unroll(layer, self.d, None)
        };
        self.run_conv_with(layer, choice.unroll)
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    fn attach_spatial(&mut self, sink: SpatialHandle) {
        self.spatial = sink;
    }

    fn run_network(&mut self, net: &Network) -> RunSummary {
        let _workload = span("workload", format!("{}/{}", self.name(), net.name()));
        // Unlike the default, plan the whole network jointly (IADP
        // coupling) before simulating.
        let plan = {
            let _schedule = telemetry::phase(telemetry::Phase::Schedule);
            plan_network(net, self.d)
        };
        let _simulate = telemetry::phase(telemetry::Phase::Simulate);
        let layers = net
            .conv_layers()
            .zip(&plan)
            .map(|(layer, choice)| {
                let _layer = span("layer", format!("{}/{}", self.name(), layer.name()));
                let t0 = telemetry::now_if_enabled();
                let result = self.run_conv_with(layer, choice.unroll);
                telemetry::observe_layer_sim_since(t0);
                result
            })
            .collect();
        RunSummary {
            arch: self.name().to_owned(),
            workload: net.name().to_owned(),
            layers,
        }
    }

    fn area(&self) -> AreaBreakdown {
        AreaModel::tsmc65().area(&self.area_spec())
    }
}

/// One step of a functional execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepTrace {
    /// A CONV layer ran on the PE array.
    Conv {
        /// Layer name.
        layer: String,
        /// Cycles spent.
        cycles: u64,
        /// MACs executed.
        macs: u64,
    },
    /// A POOL layer ran on the pooling unit.
    Pool {
        /// Layer name.
        layer: String,
        /// Cycles spent.
        cycles: u64,
        /// ALU operations.
        alu_ops: u64,
    },
}

/// The result of functionally executing a program.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionTrace {
    /// The network's final output tensor.
    pub output: Tensor3,
    /// Total cycles across conv + pooling.
    pub cycles: u64,
    /// Per-step details.
    pub steps: Vec<StepTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use flexsim_model::{reference, workloads};

    #[test]
    fn paper_area_reproduced() {
        let ff = FlexFlow::paper_config();
        let total = ff.area().total_mm2();
        assert!(
            (total - 3.89).abs() / 3.89 < 0.05,
            "FlexFlow area {total:.2} vs paper 3.89"
        );
    }

    #[test]
    fn high_utilization_on_all_small_workloads() {
        // Fig. 15: FlexFlow achieves over ~80% utilization. Note the
        // paper's own Table 4 factors for PV C1 (Ti=2, Tj=6) cap Ur at
        // 12/16 = 75% under Eq. 2, so PV lands at ~74% — we hold every
        // workload above 70% and most above 80% (see EXPERIMENTS.md).
        for net in [
            workloads::pv(),
            workloads::fr(),
            workloads::lenet5(),
            workloads::hg(),
        ] {
            let mut ff = FlexFlow::paper_config();
            let s = ff.run_network(&net);
            assert!(
                s.utilization() > 0.70,
                "{}: utilization {:.2}",
                net.name(),
                s.utilization()
            );
        }
    }

    #[test]
    fn performance_above_420_gops() {
        // Section 6.2.3: "FlexFlow can constantly acquire over 420 GOPs
        // performance with 1 GHz working frequency".
        for net in [workloads::lenet5(), workloads::pv()] {
            let mut ff = FlexFlow::paper_config();
            let s = ff.run_network(&net);
            assert!(s.gops() > 380.0, "{}: {:.0} GOPS", net.name(), s.gops());
        }
    }

    #[test]
    fn end_to_end_execution_matches_reference_chain() {
        let net = workloads::chained_toy();
        let program = Compiler::new(8).compile(&net);
        let mut ff = FlexFlow::new(8);

        // Build reference data.
        let convs: Vec<&ConvLayer> = net.conv_layers().collect();
        let (input, k1) = reference::random_layer_data(convs[0], 31);
        let (_, k2) = reference::random_layer_data(convs[1], 32);
        let kernels = vec![k1.clone(), k2.clone()];

        let trace = ff.execute(&program, &net, input.clone(), &kernels);

        // Reference chain: conv -> pool -> conv.
        let mid = reference::conv(convs[0], &input, &k1);
        let pool = net.layers()[1].as_pool().unwrap();
        let pooled = reference::pool(pool, &mid);
        let want = reference::conv(convs[1], &pooled, &k2);
        assert_eq!(trace.output, want);
        assert_eq!(trace.steps.len(), 3);
        assert!(trace.cycles > 0);
    }

    #[test]
    fn cycle_events_reproduce_analytic_totals_exactly() {
        use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
        use std::sync::Arc;
        let rec = Arc::new(CycleRecorder::new());
        let mut ff = FlexFlow::paper_config();
        ff.attach_sink(SinkHandle::new(rec.clone()));
        let s = ff.run_network(&workloads::lenet5());
        let timelines = rec.take();
        assert_eq!(timelines.len(), s.layers.len());
        for (tl, lr) in timelines.iter().zip(&s.layers) {
            assert_eq!(tl.ctx.arch, "FlexFlow");
            assert_eq!(tl.ctx.layer, lr.layer);
            assert_eq!(tl.total_cycles(), lr.cycles, "{}", lr.layer);
            assert_eq!(tl.macs(), lr.macs, "{}", lr.layer);
            // Trace-derived utilization equals the analytic one.
            assert!((tl.occupancy().utilization() - lr.utilization()).abs() < 1e-9);
        }
    }

    #[test]
    fn spatial_records_reproduce_the_loss_ledgers() {
        use flexsim_obs::attrib::{LossLedger, StallCause};
        use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
        use flexsim_obs::spatial::{SpatialHandle, SpatialRecorder};
        use std::sync::Arc;
        let cyc = Arc::new(CycleRecorder::new());
        let spa = Arc::new(SpatialRecorder::new());
        let mut ff = FlexFlow::paper_config();
        ff.attach_sink(SinkHandle::new(cyc.clone()));
        ff.attach_spatial(SpatialHandle::new(spa.clone()));
        ff.run_network(&workloads::lenet5());
        let ledgers: Vec<LossLedger> = cyc.take().iter().map(LossLedger::from_timeline).collect();
        let spatials = spa.take();
        assert_eq!(spatials.len(), ledgers.len());
        for (sp, led) in spatials.iter().zip(&ledgers) {
            assert_eq!(sp.layer, led.layer);
            assert_eq!(sp.pe_count() as u32, led.pe_count);
            assert_eq!(sp.total_cycles, led.total_cycles);
            assert_eq!(sp.busy_total(), led.busy_pe_cycles, "{}", sp.layer);
            for cause in StallCause::ALL {
                assert_eq!(
                    sp.lost_total(cause),
                    led.lost(cause),
                    "{} {cause:?}",
                    sp.layer
                );
            }
            for bank in &sp.banks {
                assert_eq!(bank.sampled_cycles, sp.total_cycles, "{}", bank.bank);
            }
            assert!(!sp.adder_tree.is_empty() || sp.banks.len() == 4);
        }
    }

    #[test]
    fn detached_spatial_changes_nothing() {
        use flexsim_obs::spatial::SpatialHandle;
        let mut ff = FlexFlow::paper_config();
        let r = ff.run_conv(&ConvLayer::new("C", 8, 4, 8, 3));
        ff.attach_spatial(SpatialHandle::none());
        let r2 = ff.run_conv(&ConvLayer::new("C", 8, 4, 8, 3));
        assert_eq!(r, r2);
    }

    #[test]
    fn detached_sink_emits_nothing() {
        let mut ff = FlexFlow::paper_config();
        let r = ff.run_conv(&ConvLayer::new("C", 8, 4, 8, 3));
        ff.attach_sink(SinkHandle::none());
        let r2 = ff.run_conv(&ConvLayer::new("C", 8, 4, 8, 3));
        assert_eq!(r, r2);
    }

    #[test]
    fn power_in_table6_regime() {
        // Table 6 totals run 0.84–1.12 W for the six workloads; our
        // calibration should land in the same watt-class.
        let mut ff = FlexFlow::paper_config();
        let s = ff.run_network(&workloads::lenet5());
        let p = s.power_w();
        assert!(
            (0.4..2.0).contains(&p),
            "LeNet-5 power {p:.2} W outside the paper's regime"
        );
    }

    #[test]
    fn buffer_power_split_orders_like_table6() {
        // Table 6: buffers are a small share (<20%) of total power.
        let mut ff = FlexFlow::paper_config();
        let s = ff.run_network(&workloads::pv());
        let e = s.energy();
        let buffers = e.neuron_in_buf_j + e.neuron_out_buf_j + e.kernel_buf_j;
        assert!(buffers < 0.25 * e.on_chip_j());
    }
}
