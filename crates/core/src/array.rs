//! Cycle-stepped functional simulation of the FlexFlow PE array.
//!
//! Executes the [`crate::analytic`] schedule on real data: every cycle,
//! every active PE reads one neuron and one synapse from its local
//! stores, multiplies, and its row's adder tree accumulates — exactly
//! the Section 4 dataflow. Operands are delivered lazily over the
//! vertical (neuron) and horizontal (kernel) buses into the per-PE local
//! stores, with per-stripe persistence so the Relax-Synchronization
//! preloading and column-sharing reuse are measured, not assumed.
//!
//! The simulator asserts the Relax-Alignment property as it runs: within
//! one cycle, the operands of every active row land on *distinct* PE
//! columns (no bus or store port conflict).

use crate::adder_tree;
use crate::analytic::{schedule_default, Schedule};
use crate::cdb::CdbFabric;
use crate::local_store::STORE_WORDS;
use crate::mapping::Mapping;
use crate::pe::Pe;
use flexsim_dataflow::utilization::ceil_div;
use flexsim_dataflow::Unroll;
use flexsim_model::reference::apply_activation;
use flexsim_model::tensor::KernelSet;
use flexsim_model::{Acc32, ConvLayer, Tensor3};
use std::collections::{HashMap, HashSet};

/// What one functional layer run measured.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionalReport {
    /// The computed output feature maps.
    pub output: Tensor3,
    /// Engine cycles (compute + per-segment writeback).
    pub cycles: u64,
    /// PE-active compute steps: cycles in which the engine issued a
    /// tile of MACs (total cycles minus pipeline fill and segment
    /// stalls). `macs / (compute_steps · D²)` is the simulated
    /// occupancy the unrolling model's `Ut` predicts.
    pub compute_steps: u64,
    /// MACs executed.
    pub macs: u64,
    /// Words broadcast on the vertical (neuron) buses.
    pub vertical_bus_words: u64,
    /// Words broadcast on the horizontal (kernel) buses.
    pub horizontal_bus_words: u64,
    /// Words on the busiest vertical bus (bandwidth hot spot).
    pub max_vertical_bus_words: u64,
    /// Words on the busiest horizontal bus.
    pub max_horizontal_bus_words: u64,
    /// Local-store reads across all PEs.
    pub store_reads: u64,
    /// Local-store writes across all PEs.
    pub store_writes: u64,
    /// Adder-tree additions.
    pub adder_tree_adds: u64,
}

/// Per-PE operand residency bookkeeping on top of the raw [`Pe`].
#[derive(Clone, Debug, Default)]
struct PeState {
    pe: Pe,
    neuron_addr: HashMap<u64, usize>,
    neuron_next: usize,
    kernel_addr: HashMap<u64, usize>,
    kernel_next: usize,
}

impl PeState {
    fn new() -> Self {
        PeState {
            pe: Pe::new(),
            ..Default::default()
        }
    }

    fn clear_neurons(&mut self) {
        self.neuron_addr.clear();
        self.neuron_next = 0;
    }

    fn clear_kernels(&mut self) {
        self.kernel_addr.clear();
        self.kernel_next = 0;
    }
}

/// The `D×D` PE array.
///
/// # Example
///
/// ```
/// use flexflow::array::PeArray;
/// use flexsim_dataflow::Unroll;
/// use flexsim_model::{reference, ConvLayer};
///
/// let layer = ConvLayer::new("C1", 2, 1, 8, 4);
/// let (input, kernels) = reference::random_layer_data(&layer, 1);
/// let mut array = PeArray::new(4);
/// // The paper's Fig. 8 unrolling for this layer.
/// let report = array.run_layer(&layer, Unroll::new(2, 1, 1, 2, 1, 4), &input, &kernels);
/// assert_eq!(report.output, reference::conv(&layer, &input, &kernels));
/// ```
#[derive(Clone, Debug)]
pub struct PeArray {
    d: usize,
    pes: Vec<PeState>,
}

impl PeArray {
    /// Creates a `d×d` array.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "array side must be non-zero");
        PeArray {
            d,
            pes: (0..d * d).map(|_| PeState::new()).collect(),
        }
    }

    /// Engine side `D`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.d * self.d
    }

    /// Functionally executes one CONV layer under unrolling `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` violates the engine bounds, or the layer is not a
    /// valid convolution (the functional model needs real operands for
    /// every window position).
    pub fn run_layer(
        &mut self,
        layer: &ConvLayer,
        u: Unroll,
        input: &Tensor3,
        kernels: &KernelSet,
    ) -> FunctionalReport {
        assert!(
            u.cols_used() <= self.d && u.rows_used() <= self.d,
            "unrolling exceeds the engine"
        );
        assert!(layer.is_valid_convolution(), "padded layers not supported");
        let sch: Schedule = schedule_default(layer, u, self.d);
        let mapping = Mapping::new(u);
        let (m, n, s, k) = (layer.m(), layer.n(), layer.s(), layer.k());
        let stride = layer.stride();
        let dilation = layer.dilation();
        let s_in = layer.input_size();
        let kernels_persist = sch.m_groups.saturating_mul(sch.chunks) <= STORE_WORDS as u64;

        for st in self.pes.iter_mut() {
            st.clear_neurons();
            st.clear_kernels();
            st.pe.reset_counters();
        }

        let mut out = Tensor3::zeros(m, s, s);
        let mut cycles = 0u64;
        let mut macs = 0u64;
        let mut fabric = CdbFabric::new(self.d);
        let mut tree_adds = 0u64;

        // Per-stripe neuron broadcast memory (RS persistence along the
        // column-tile walk); per-residency-epoch kernel broadcast memory.
        let mut kernel_broadcast: HashSet<u64> = HashSet::new();

        let n_chunks = ceil_div(n, u.tn);
        let i_chunks = ceil_div(k, u.ti);
        let j_chunks = ceil_div(k, u.tj);

        for r0 in (0..s).step_by(u.tr) {
            let tr_eff = u.tr.min(s - r0);
            let mut neuron_broadcast: HashSet<u64> = HashSet::new();
            for st in self.pes.iter_mut() {
                st.clear_neurons();
            }
            for c0 in (0..s).step_by(u.tc) {
                let tc_eff = u.tc.min(s - c0);
                if !kernels_persist {
                    kernel_broadcast.clear();
                    for st in self.pes.iter_mut() {
                        st.clear_kernels();
                    }
                }
                for m0 in (0..m).step_by(u.tm) {
                    let tm_eff = u.tm.min(m - m0);
                    // One row-batch: accumulators per active row.
                    let mut accs: HashMap<usize, Acc32> = HashMap::new();
                    for n0_idx in 0..n_chunks {
                        for i0_idx in 0..i_chunks {
                            for j0_idx in 0..j_chunks {
                                cycles += 1;
                                let n0 = n0_idx * u.tn;
                                let i0 = i0_idx * u.ti;
                                let j0 = j0_idx * u.tj;
                                let tn_eff = u.tn.min(n - n0);
                                let ti_eff = u.ti.min(k - i0);
                                let tj_eff = u.tj.min(k - j0);
                                for dm in 0..tm_eff {
                                    for dr in 0..tr_eff {
                                        for dc in 0..tc_eff {
                                            let (om, r, c) = (m0 + dm, r0 + dr, c0 + dc);
                                            let row = mapping.output_row(om, r, c);
                                            let mut products =
                                                Vec::with_capacity(tn_eff * ti_eff * tj_eff);
                                            let mut cols_seen: HashSet<usize> = HashSet::new();
                                            for dn in 0..tn_eff {
                                                for di in 0..ti_eff {
                                                    for dj in 0..tj_eff {
                                                        let (inm, i, j) =
                                                            (n0 + dn, i0 + di, j0 + dj);
                                                        let col = mapping.operand_col(
                                                            inm, r, c, i, j, stride, dilation,
                                                        );
                                                        // RA property: one
                                                        // column per operand.
                                                        debug_assert!(
                                                            cols_seen.insert(col),
                                                            "column conflict in one cycle \
                                                             (flexcheck FXC02 cdb-race)"
                                                        );
                                                        let (ir, ic) = (
                                                            r * stride + i * dilation,
                                                            c * stride + j * dilation,
                                                        );
                                                        let nid =
                                                            ((inm * s_in + ir) * s_in + ic) as u64;
                                                        let kid = (((om * n + inm) * k + i) * k + j)
                                                            as u64;
                                                        let pe_idx = row * self.d + col;
                                                        let st = &mut self.pes[pe_idx];
                                                        // Lazy neuron delivery.
                                                        let naddr = match st.neuron_addr.get(&nid) {
                                                            Some(&a) => a,
                                                            None => {
                                                                if neuron_broadcast.insert(nid) {
                                                                    fabric.vertical.broadcast(col);
                                                                }
                                                                if st.neuron_next >= STORE_WORDS {
                                                                    st.clear_neurons();
                                                                }
                                                                let a = st.neuron_next;
                                                                st.neuron_next += 1;
                                                                st.neuron_addr.insert(nid, a);
                                                                st.pe.load_neuron(
                                                                    a,
                                                                    input[(inm, ir, ic)],
                                                                );
                                                                a
                                                            }
                                                        };
                                                        // Lazy kernel delivery
                                                        // (IPDR replica).
                                                        let kaddr = match st.kernel_addr.get(&kid) {
                                                            Some(&a) => a,
                                                            None => {
                                                                if kernel_broadcast.insert(kid) {
                                                                    fabric
                                                                        .horizontal
                                                                        .broadcast(row);
                                                                }
                                                                if st.kernel_next >= STORE_WORDS {
                                                                    st.clear_kernels();
                                                                }
                                                                let a = st.kernel_next;
                                                                st.kernel_next += 1;
                                                                st.kernel_addr.insert(kid, a);
                                                                st.pe.load_kernel(
                                                                    a,
                                                                    kernels[(om, inm, i, j)],
                                                                );
                                                                a
                                                            }
                                                        };
                                                        products.push(st.pe.multiply(naddr, kaddr));
                                                        macs += 1;
                                                    }
                                                }
                                            }
                                            let red = adder_tree::reduce(&products);
                                            tree_adds += red.adds;
                                            let acc = accs.entry(row).or_insert(Acc32::ZERO);
                                            *acc = acc.saturating_add(red.sum);
                                            tree_adds += 1; // row accumulator add
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Writeback is pipelined under the next batch; only
                    // segment-boundary spills stall (added after the
                    // loop, mirroring the analytic model).
                    for dm in 0..tm_eff {
                        for dr in 0..tr_eff {
                            for dc in 0..tc_eff {
                                let (om, r, c) = (m0 + dm, r0 + dr, c0 + dc);
                                let row = mapping.output_row(om, r, c);
                                let acc = accs.get(&row).copied().unwrap_or(Acc32::ZERO);
                                out[(om, r, c)] =
                                    apply_activation(acc.to_fx16(), layer.activation());
                            }
                        }
                    }
                }
            }
        }

        let compute_steps = cycles;
        cycles += sch.row_batches * (sch.segments - 1) * crate::analytic::SEGMENT_STALL_CYCLES
            + crate::analytic::PIPELINE_FILL_CYCLES;
        let store_reads: u64 = self.pes.iter().map(|s| s.pe.store_reads()).sum();
        let store_writes: u64 = self.pes.iter().map(|s| s.pe.store_writes()).sum();
        FunctionalReport {
            output: out,
            cycles,
            compute_steps,
            macs,
            vertical_bus_words: fabric.vertical.total_words(),
            horizontal_bus_words: fabric.horizontal.total_words(),
            max_vertical_bus_words: fabric.vertical.max_bus_words(),
            max_horizontal_bus_words: fabric.horizontal.max_bus_words(),
            store_reads,
            store_writes,
            adder_tree_adds: tree_adds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_dataflow::search;
    use flexsim_model::{reference, workloads};

    fn check_layer(layer: &ConvLayer, u: Unroll, d: usize, seed: u64) -> FunctionalReport {
        let (input, kernels) = reference::random_layer_data(layer, seed);
        let mut array = PeArray::new(d);
        let report = array.run_layer(layer, u, &input, &kernels);
        assert_eq!(
            report.output,
            reference::conv(layer, &input, &kernels),
            "functional output mismatch for {} under {u}",
            layer.name()
        );
        report
    }

    #[test]
    fn paper_example_c1_bit_exact() {
        let net = workloads::paper_example();
        let c1 = net.conv_layer("C1").unwrap();
        check_layer(c1, Unroll::new(2, 1, 1, 2, 1, 4), 4, 42);
    }

    #[test]
    fn paper_example_c2_bit_exact() {
        let net = workloads::paper_example();
        let c2 = net.conv_layer("C2").unwrap();
        check_layer(c2, Unroll::new(2, 2, 1, 2, 1, 2), 4, 43);
    }

    #[test]
    fn lenet_c3_with_planned_factors_bit_exact() {
        let net = workloads::lenet5();
        let plan = search::plan_network(&net, 16);
        for (layer, choice) in net.conv_layers().zip(&plan) {
            check_layer(layer, choice.unroll, 16, 7);
        }
    }

    #[test]
    fn cycles_match_analytic_schedule() {
        let layer = ConvLayer::new("C", 5, 3, 9, 3);
        for u in [
            Unroll::new(2, 3, 1, 3, 1, 3),
            Unroll::new(5, 1, 2, 1, 3, 3),
            Unroll::scalar(),
        ] {
            let report = check_layer(&layer, u, 16, 3);
            let sch = schedule_default(&layer, u, 16);
            assert_eq!(report.cycles, sch.cycles, "cycle mismatch under {u}");
            assert_eq!(report.macs, sch.macs);
        }
    }

    #[test]
    fn bus_words_match_analytic_traffic_when_resident() {
        // Small layer, everything fits: functional bus counts equal the
        // closed-form traffic model exactly.
        let layer = ConvLayer::new("C", 4, 2, 8, 3);
        let u = Unroll::new(4, 2, 1, 4, 1, 3);
        let report = check_layer(&layer, u, 16, 9);
        let sch = schedule_default(&layer, u, 16);
        assert_eq!(report.vertical_bus_words, sch.traffic.neuron_in);
        assert_eq!(report.horizontal_bus_words, sch.traffic.kernel_in);
    }

    #[test]
    fn store_reads_are_two_per_mac() {
        let layer = ConvLayer::new("C", 2, 2, 4, 2);
        let u = Unroll::new(2, 2, 1, 2, 2, 2);
        let report = check_layer(&layer, u, 16, 5);
        assert_eq!(report.store_reads, 2 * report.macs);
    }

    #[test]
    fn odd_unrollings_still_bit_exact() {
        // Factors that don't divide the layer dimensions exercise the
        // edge-clamping paths.
        let layer = ConvLayer::new("C", 5, 3, 7, 4);
        for u in [
            Unroll::new(3, 2, 2, 2, 2, 2),
            Unroll::new(4, 3, 1, 2, 2, 2),
            Unroll::new(1, 1, 3, 3, 1, 1),
        ] {
            check_layer(&layer, u, 16, 13);
        }
    }

    #[test]
    fn bus_load_is_balanced_across_columns() {
        // The residue mapping spreads neuron broadcasts across the
        // occupied vertical buses: the busiest bus carries no more than
        // a small multiple of the average.
        let layer = ConvLayer::new("C", 4, 2, 8, 3);
        let u = Unroll::new(4, 2, 1, 4, 1, 3);
        let (input, kernels) = reference::random_layer_data(&layer, 23);
        let mut array = PeArray::new(16);
        let report = array.run_layer(&layer, u, &input, &kernels);
        let avg = report.vertical_bus_words as f64 / u.cols_used() as f64;
        assert!(
            (report.max_vertical_bus_words as f64) < 3.0 * avg,
            "max {} vs avg {avg:.1}",
            report.max_vertical_bus_words
        );
    }

    #[test]
    fn strided_layer_bit_exact() {
        let layer = ConvLayer::new("C", 3, 2, 5, 3).with_stride(2);
        check_layer(&layer, Unroll::new(3, 2, 1, 5, 1, 3), 16, 15);
    }

    #[test]
    fn dilated_layer_bit_exact() {
        // dilation=2 with Ti=Tj=3 (coprime, so RA columns stay
        // distinct) and with the trivial Ti=Tj=1 mapping.
        let layer = ConvLayer::new("C", 3, 2, 5, 3).with_dilation(2);
        check_layer(&layer, Unroll::new(2, 1, 1, 2, 3, 3), 16, 15);
        check_layer(&layer, Unroll::new(2, 2, 2, 2, 1, 1), 16, 16);
    }

    #[test]
    fn strided_dilated_layer_bit_exact() {
        let layer = ConvLayer::new("C", 2, 1, 4, 3)
            .with_stride(2)
            .with_dilation(3);
        check_layer(&layer, Unroll::new(2, 1, 2, 2, 2, 2), 16, 17);
    }
}
