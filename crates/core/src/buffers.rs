//! DataFlow3: on-chip buffer organization (Section 4.5, Figs. 12–13).
//!
//! FlexFlow has three D-banked buffers (Table 5): two 32 KB neuron
//! buffers used ping-pong (one layer's outputs are written in the layout
//! the *next* layer reads — the reason Section 5 couples consecutive
//! layers' factors) and one 32 KB kernel buffer.
//!
//! * **IADP** (In-Advanced Data Placement) pre-arranges data across
//!   banks: the kernel buffer is split into `Tm` groups × `Tr`
//!   sub-groups × `Tc` banks; a neuron buffer into `Tn` groups × `Ti`
//!   sub-groups × `Tj` banks, with each feature map concentrated in one
//!   group and each neuron row in one sub-group — so `D` words stream
//!   conflict-free every cycle.
//! * **IPDR** (In-Place Data Replication) replicates each kernel word
//!   read by the reading controller `Tr·Tc` times onto the free
//!   horizontal-bus bandwidth, so one buffer read feeds a whole logical
//!   group without dedicated wiring.

use flexsim_arch::buffer::BankedBuffer;
use flexsim_dataflow::Unroll;

/// Bytes per neuron/kernel buffer (Table 5: 32 KB).
pub const BUFFER_BYTES: usize = 32 * 1024;

/// The IADP bank layout of a *neuron* buffer under factors
/// `⟨Tn, Ti, Tj⟩`.
///
/// # Example
///
/// ```
/// use flexflow::buffers::NeuronLayout;
///
/// let layout = NeuronLayout::new(2, 1, 4, 16);
/// // Feature map n=1, neuron row 5, column 2 lands in group 1,
/// // sub-group 0, bank 2.
/// assert_eq!(layout.bank_of(1, 5, 2), layout.bank_index(1, 0, 2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeuronLayout {
    tn: usize,
    ti: usize,
    tj: usize,
    banks: usize,
}

impl NeuronLayout {
    /// Creates a layout of `Tn` groups × `Ti` sub-groups × `Tj` banks on
    /// a buffer with `banks` physical banks.
    ///
    /// # Panics
    ///
    /// Panics if the factor product exceeds the bank count or any factor
    /// is zero.
    pub fn new(tn: usize, ti: usize, tj: usize, banks: usize) -> Self {
        assert!(tn > 0 && ti > 0 && tj > 0, "factors must be non-zero");
        assert!(
            tn * ti * tj <= banks,
            "IADP factor product must fit the physical banks (statically provable: flexcheck FXC07 bank-conflict)"
        );
        NeuronLayout { tn, ti, tj, banks }
    }

    /// Creates the layout implied by an unrolling's `⟨Tn, Ti, Tj⟩`.
    pub fn for_unroll(u: &Unroll, banks: usize) -> Self {
        NeuronLayout::new(u.tn, u.ti, u.tj, banks)
    }

    /// Physical bank index of logical `(group, sub_group, lane)`.
    pub fn bank_index(&self, group: usize, sub_group: usize, lane: usize) -> usize {
        (group * self.ti + sub_group) * self.tj + lane
    }

    /// Bank holding neuron `I^(n)_(r,c)`: group `n mod Tn`, sub-group
    /// `r mod Ti`, lane `c mod Tj`.
    pub fn bank_of(&self, n: usize, r: usize, c: usize) -> usize {
        self.bank_index(n % self.tn, r % self.ti, c % self.tj)
    }

    /// Number of banks actually used (`Tn·Ti·Tj`).
    pub fn banks_used(&self) -> usize {
        self.tn * self.ti * self.tj
    }

    /// Total physical banks.
    pub fn banks(&self) -> usize {
        self.banks
    }
}

/// The IADP bank layout of the *kernel* buffer under factors
/// `⟨Tm, Tr, Tc⟩` (Fig. 12a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelLayout {
    tm: usize,
    tr: usize,
    tc: usize,
    banks: usize,
}

impl KernelLayout {
    /// Creates a layout of `Tm` groups × `Tr` sub-groups × `Tc` banks.
    ///
    /// # Panics
    ///
    /// Panics if the factor product exceeds the bank count or any factor
    /// is zero.
    pub fn new(tm: usize, tr: usize, tc: usize, banks: usize) -> Self {
        assert!(tm > 0 && tr > 0 && tc > 0, "factors must be non-zero");
        assert!(
            tm * tr * tc <= banks,
            "IADP factor product must fit the physical banks (statically provable: flexcheck FXC07 bank-conflict)"
        );
        KernelLayout { tm, tr, tc, banks }
    }

    /// Creates the layout implied by an unrolling's `⟨Tm, Tr, Tc⟩`.
    pub fn for_unroll(u: &Unroll, banks: usize) -> Self {
        KernelLayout::new(u.tm, u.tr, u.tc, banks)
    }

    /// Bank group holding kernel `K^(m,·)`: `m mod Tm`.
    pub fn group_of(&self, m: usize) -> usize {
        m % self.tm
    }

    /// Number of banks used (`Tm·Tr·Tc`).
    pub fn banks_used(&self) -> usize {
        self.tm * self.tr * self.tc
    }

    /// IPDR replication factor: each word read by the controller is
    /// replicated `Tr·Tc` times onto the horizontal buses (Fig. 12b).
    pub fn replication(&self) -> usize {
        self.tr * self.tc
    }
}

/// The ping-pong pair of neuron buffers plus the kernel buffer.
///
/// One neuron buffer holds the current layer's inputs (laid out by this
/// layer's `⟨Tn, Ti, Tj⟩`); the other receives its outputs in the *next*
/// layer's layout (`⟨Tm, Tr, Tc⟩` of this layer = `⟨Tn, Ti, Tj⟩` of the
/// next). [`BufferSet::swap`] flips the roles between layers.
#[derive(Clone, Debug)]
pub struct BufferSet {
    neuron_a: BankedBuffer,
    neuron_b: BankedBuffer,
    kernel: BankedBuffer,
    a_is_input: bool,
}

impl BufferSet {
    /// Creates the Table 5 buffer set for a `d`-banked engine.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or 32 KB doesn't divide into `d` banks.
    pub fn new(d: usize) -> Self {
        BufferSet {
            neuron_a: BankedBuffer::new("neuron-A", BUFFER_BYTES, d),
            neuron_b: BankedBuffer::new("neuron-B", BUFFER_BYTES, d),
            kernel: BankedBuffer::new("kernel", BUFFER_BYTES, d),
            a_is_input: true,
        }
    }

    /// The buffer currently feeding the engine.
    pub fn input(&mut self) -> &mut BankedBuffer {
        if self.a_is_input {
            &mut self.neuron_a
        } else {
            &mut self.neuron_b
        }
    }

    /// The buffer currently collecting outputs.
    pub fn output(&mut self) -> &mut BankedBuffer {
        if self.a_is_input {
            &mut self.neuron_b
        } else {
            &mut self.neuron_a
        }
    }

    /// The kernel buffer.
    pub fn kernel(&mut self) -> &mut BankedBuffer {
        &mut self.kernel
    }

    /// Flips the ping-pong roles (end of a layer).
    pub fn swap(&mut self) {
        self.a_is_input = !self.a_is_input;
    }

    /// Total accesses on the buffer currently in the input role.
    pub fn input_accesses(&mut self) -> u64 {
        self.input().accesses()
    }

    /// Resets all counters.
    pub fn reset_counters(&mut self) {
        self.neuron_a.reset_counters();
        self.neuron_b.reset_counters();
        self.kernel.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn one_cycles_reads_hit_distinct_banks() {
        // IADP's purpose: the Tn·Ti·Tj words needed in one cycle map to
        // distinct banks.
        let layout = NeuronLayout::new(2, 2, 3, 16);
        let mut seen = HashSet::new();
        // One chunk: (dn, di, dj) operand offsets for output (r, c) =
        // (4, 9), chunk origin (i0, j0) = (0, 0).
        for dn in 0..2 {
            for di in 0..2 {
                for dj in 0..3 {
                    assert!(seen.insert(layout.bank_of(dn, 4 + di, 9 + dj)));
                }
            }
        }
        assert_eq!(seen.len(), layout.banks_used());
    }

    #[test]
    fn kernel_groups_follow_fig12() {
        let layout = KernelLayout::new(4, 1, 2, 16);
        assert_eq!(layout.group_of(0), 0);
        assert_eq!(layout.group_of(5), 1);
        assert_eq!(layout.replication(), 2);
        assert_eq!(layout.banks_used(), 8);
    }

    #[test]
    #[should_panic(expected = "fit the physical banks")]
    fn oversubscribed_layout_rejected() {
        let _ = NeuronLayout::new(4, 4, 4, 16);
    }

    #[test]
    fn ping_pong_swaps_roles() {
        let mut bufs = BufferSet::new(16);
        bufs.input().read_bulk(10);
        assert_eq!(bufs.input_accesses(), 10);
        bufs.swap();
        // The old input (10 accesses) is now the output buffer.
        assert_eq!(bufs.input_accesses(), 0);
        assert_eq!(bufs.output().accesses(), 10);
    }

    #[test]
    fn table5_capacities() {
        let mut bufs = BufferSet::new(16);
        assert_eq!(bufs.input().capacity_words(), 16 * 1024);
        assert_eq!(bufs.kernel().capacity_words(), 16 * 1024);
    }
}
