//! The FlexFlow processing element (Section 4.1, Fig. 7a).
//!
//! A PE owns a 16-bit multiplier, an adder (contributed to its row's
//! adder tree), a neuron local store, a kernel local store, and a
//! controller (the [`crate::fsm`] pair). There are *no* operand
//! interfaces to neighbour PEs — operands arrive only over the vertical
//! and horizontal common data buses into the local stores.

use crate::local_store::LocalStore;
use flexsim_model::{Acc32, Fx16};

/// One processing element.
///
/// # Example
///
/// ```
/// use flexflow::pe::Pe;
/// use flexsim_model::Fx16;
///
/// let mut pe = Pe::new();
/// pe.load_neuron(0, Fx16::from_f64(2.0));
/// pe.load_kernel(0, Fx16::from_f64(0.5));
/// let product = pe.multiply(0, 0);
/// assert_eq!(product.to_fx16().to_f64(), 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Pe {
    neuron_store: LocalStore,
    kernel_store: LocalStore,
}

impl Pe {
    /// Creates a PE with full-size (256 B + 256 B) local stores.
    pub fn new() -> Self {
        Pe {
            neuron_store: LocalStore::full(),
            kernel_store: LocalStore::full(),
        }
    }

    /// Writes a neuron into the neuron local store (a vertical-CDB
    /// delivery).
    pub fn load_neuron(&mut self, addr: usize, value: Fx16) {
        self.neuron_store.write(addr, value);
    }

    /// Writes a synapse into the kernel local store (a horizontal-CDB
    /// delivery, possibly an IPDR replica).
    pub fn load_kernel(&mut self, addr: usize, value: Fx16) {
        self.kernel_store.write(addr, value);
    }

    /// One datapath step: reads both stores and multiplies
    /// (full-precision product handed to the row adder tree).
    pub fn multiply(&mut self, neuron_addr: usize, kernel_addr: usize) -> Acc32 {
        let x = self.neuron_store.read(neuron_addr);
        let w = self.kernel_store.read(kernel_addr);
        x.widening_mul(w)
    }

    /// Borrows the neuron store (for counters/inspection).
    pub fn neuron_store(&self) -> &LocalStore {
        &self.neuron_store
    }

    /// Borrows the kernel store.
    pub fn kernel_store(&self) -> &LocalStore {
        &self.kernel_store
    }

    /// Total local-store reads across both stores.
    pub fn store_reads(&self) -> u64 {
        self.neuron_store.reads() + self.kernel_store.reads()
    }

    /// Total local-store writes across both stores.
    pub fn store_writes(&self) -> u64 {
        self.neuron_store.writes() + self.kernel_store.writes()
    }

    /// Resets the store counters.
    pub fn reset_counters(&mut self) {
        self.neuron_store.reset_counters();
        self.kernel_store.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_reads_both_stores() {
        let mut pe = Pe::new();
        pe.load_neuron(5, Fx16::from_f64(-1.5));
        pe.load_kernel(9, Fx16::from_f64(2.0));
        let p = pe.multiply(5, 9);
        assert_eq!(p.to_f64(), -3.0);
        assert_eq!(pe.store_reads(), 2);
        assert_eq!(pe.store_writes(), 2);
    }

    #[test]
    fn stores_are_independent() {
        let mut pe = Pe::new();
        pe.load_neuron(0, Fx16::ONE);
        pe.load_kernel(0, Fx16::from_f64(3.0));
        assert_eq!(pe.multiply(0, 0).to_fx16().to_f64(), 3.0);
    }

    #[test]
    fn counters_reset() {
        let mut pe = Pe::new();
        pe.load_neuron(0, Fx16::ONE);
        pe.reset_counters();
        assert_eq!(pe.store_writes(), 0);
    }
}
