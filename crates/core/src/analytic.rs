//! Closed-form schedule model of the FlexFlow engine.
//!
//! Given a CONV layer and an unrolling, the engine executes
//! **row-batches** (one per `⟨m, r, c⟩` tile): each batch assigns
//! `Tm·Tr·Tc` output neurons to PE rows and walks
//! `chunks = ⌈N/Tn⌉·⌈K/Ti⌉·⌈K/Tj⌉` operand chunks, one chunk per cycle,
//! every active PE contributing one product to its row's adder tree.
//!
//! The model also captures two capacity effects of the 256 B local
//! stores (Table 5):
//!
//! * when a pass needs more than 128 operand words per PE, the batch is
//!   **segmented** — partial sums spill to the output neuron buffer and
//!   return (the paper's "the data written back are partial results"
//!   case, Fig. 13f);
//! * kernel residency decides the loop order: keep neurons and re-stream
//!   kernels, or keep kernels and re-read neurons. The planner picks the
//!   cheaper order (what IADP's pre-layout accomplishes).
//!
//! The cycle-stepped functional simulator ([`crate::array`]) follows this
//! same schedule; integration tests hold the two consistent.

use crate::local_store::STORE_WORDS;
use flexsim_arch::stats::Traffic;
use flexsim_dataflow::utilization::ceil_div;
use flexsim_dataflow::Unroll;
use flexsim_model::ConvLayer;
use flexsim_obs::attrib::StallCause;
use flexsim_obs::cycles::{CycleEvent, CycleEventKind};

/// One-off pipeline fill latency per layer (operand preload + adder-tree
/// depth before the first writeback).
pub const PIPELINE_FILL_CYCLES: u64 = 8;

/// Stall cycles at each partial-sum segment boundary (spill the row
/// accumulators to the output buffer and read them back).
pub const SEGMENT_STALL_CYCLES: u64 = 2;

/// Energy-equivalent of one stalled engine cycle in buffer words, used
/// to trade residency strategies off against each other (an idle `D×D`
/// array burns roughly this many word-accesses' worth of energy).
pub const STALL_WORD_EQUIVALENT: u64 = 64;

/// Loop-order choice for operand residency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopOrder {
    /// Spatial tiles outer, output-map groups inner: input neurons are
    /// loaded once per spatial tile and shared across map groups.
    SpatialOuter,
    /// Output-map groups outer, spatial tiles inner: kernels are loaded
    /// once per map group and inputs re-read per group.
    MapOuter,
    /// Segment the operand-chunk walk so every group's kernel slice
    /// co-resides; partial sums spill to the output buffer between
    /// segments (the paper's Fig. 13f flow).
    SegmentedPsum,
}

/// The engine schedule for one layer under one unrolling.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// The unrolling being executed.
    pub unroll: Unroll,
    /// Engine side `D`.
    pub d: usize,
    /// Operand chunks per row-batch (compute cycles per pass).
    pub chunks: u64,
    /// Segments per row-batch (1 = no partial-sum spill).
    pub segments: u64,
    /// Output-map groups (`⌈M/Tm⌉`).
    pub m_groups: u64,
    /// Spatial tiles (`⌈S/Tr⌉·⌈S/Tc⌉`).
    pub spatial_tiles: u64,
    /// Total row-batches (`m_groups · spatial_tiles`).
    pub row_batches: u64,
    /// Chosen loop order.
    pub order: LoopOrder,
    /// Total engine cycles (compute + per-segment writeback).
    pub cycles: u64,
    /// Useful MACs.
    pub macs: u64,
    /// Buffer ↔ engine word traffic.
    pub traffic: Traffic,
}

impl Schedule {
    /// Measured utilization: MACs over PE-cycles.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * (self.d * self.d) as f64)
    }
}

/// Builds the schedule for `layer` under `u` on a `d×d` engine with
/// `store_words`-deep local stores.
///
/// # Panics
///
/// Panics if `d` or `store_words` is zero, or `u` violates the engine
/// occupancy bounds (`Tn·Ti·Tj ≤ d`, `Tm·Tr·Tc ≤ d`).
pub fn schedule(layer: &ConvLayer, u: Unroll, d: usize, store_words: usize) -> Schedule {
    assert!(
        d > 0 && store_words > 0,
        "engine parameters must be non-zero"
    );
    assert!(
        u.cols_used() <= d && u.rows_used() <= d,
        "unrolling exceeds the {d}x{d} engine (statically provable: flexcheck FXC06 unroll-bounds)"
    );
    let (m, n, s, k) = (layer.m(), layer.n(), layer.s(), layer.k());
    let stride = layer.stride();
    let s_in = layer.input_size();

    let chunks = (ceil_div(n, u.tn) * ceil_div(k, u.ti) * ceil_div(k, u.tj)) as u64;
    let m_groups = ceil_div(m, u.tm) as u64;
    let stripes = ceil_div(s, u.tr) as u64;
    let ctiles = ceil_div(s, u.tc) as u64;
    let spatial_tiles = stripes * ctiles;
    let row_batches = m_groups * spatial_tiles;
    let macs = layer.macs();

    // Input words per stripe: every input row a stripe's windows touch,
    // across the full input width (loaded progressively along the
    // column-tile walk; RS preloading hides the latency, the words still
    // cross the vertical buses once).
    let mut stripe_words = 0u64;
    for st in 0..stripes as usize {
        let tr_eff = u.tr.min(s - st * u.tr);
        let rows_in = (tr_eff - 1) * stride + k;
        stripe_words += (rows_in * s_in) as u64;
    }
    let neuron_in_once = n as u64 * stripe_words;

    // Kernel residency: per-PE slice per map group is `chunks` words.
    // Three candidate residency strategies (the planner's IADP choice):
    //
    // A `SpatialOuter` — spatial tiles outer, map groups inner: neurons
    //   read once; kernels resident only if *all* groups' slices fit,
    //   otherwise re-streamed every spatial tile.
    // B `MapOuter` — map groups outer: kernels read once (if one
    //   group's slice fits); neurons re-read per group.
    // C `SegmentedPsum` — segment the operand-chunk walk so every
    //   resident working set (across all map groups) fits the stores:
    //   neurons and kernels each read once, but partial sums spill to
    //   the output buffer and return at every segment boundary
    //   (Fig. 13f).
    let kernel_words = layer.synapses();
    let out_words = (m * s * s) as u64;
    let cap = store_words as u64;
    let all_groups_fit = m_groups.saturating_mul(chunks) <= cap;
    let one_group_fits = chunks <= cap;

    let candidates: Vec<(LoopOrder, u64, u64, u64, u64)> = {
        // (order, neuron_in, kernel_in, psum, segments)
        let mut v = Vec::new();
        if all_groups_fit {
            v.push((LoopOrder::SpatialOuter, neuron_in_once, kernel_words, 0, 1));
        } else {
            // A: kernels re-stream per spatial tile. When even one
            // group's slice overflows, passes are additionally
            // segmented with psum spills.
            let seg_a = chunks.div_ceil(cap);
            let psum_a = 2 * (seg_a - 1) * out_words;
            v.push((
                LoopOrder::SpatialOuter,
                neuron_in_once,
                kernel_words * spatial_tiles,
                psum_a,
                seg_a,
            ));
            // B: neurons re-read per map group; oversized passes also
            // segment within each group.
            let seg_b = chunks.div_ceil(cap);
            v.push((
                LoopOrder::MapOuter,
                neuron_in_once * m_groups,
                kernel_words,
                2 * (seg_b - 1) * out_words,
                seg_b,
            ));
            let _ = one_group_fits;
            // C: slice the chunk walk so all groups' slices co-reside.
            let slice = (cap / m_groups).max(1);
            let seg_c = chunks.div_ceil(slice);
            v.push((
                LoopOrder::SegmentedPsum,
                neuron_in_once,
                kernel_words,
                2 * (seg_c - 1) * out_words,
                seg_c,
            ));
        }
        v
    };
    // Pick the strategy minimizing total cost: buffer words moved plus
    // the engine-time cost of segment-boundary stalls (a stalled cycle
    // idles the whole array, worth roughly STALL_WORD_EQUIVALENT buffer
    // words of energy).
    let (order, neuron_in, kernel_in, psum, segments) = candidates
        .into_iter()
        .min_by_key(|&(_, n_in, k_in, ps, seg)| {
            let stalls = row_batches * (seg - 1) * SEGMENT_STALL_CYCLES;
            n_in + k_in + ps + stalls * STALL_WORD_EQUIVALENT
        })
        .expect("at least one residency strategy");

    // Output writeback is pipelined under the next batch's compute; only
    // partial-sum spills at segment boundaries stall the array, plus a
    // one-off pipeline fill.
    let cycles = row_batches * chunks
        + row_batches * (segments - 1) * SEGMENT_STALL_CYCLES
        + PIPELINE_FILL_CYCLES;

    Schedule {
        unroll: u,
        d,
        chunks,
        segments,
        m_groups,
        spatial_tiles,
        row_batches,
        order,
        cycles,
        macs,
        traffic: Traffic {
            neuron_in,
            neuron_out: out_words,
            kernel_in,
            psum,
        },
    }
}

/// Convenience: schedule with the paper's 256 B (128-word) local stores.
pub fn schedule_default(layer: &ConvLayer, u: Unroll, d: usize) -> Schedule {
    schedule(layer, u, d, STORE_WORDS)
}

/// The aggregate cycle-event stream a schedule implies, in closed form:
/// the one-off pipeline fill, one merged compute pass carrying every
/// useful MAC, and (for segmented passes) the total partial-sum spill
/// stall. The engine's per-batch emission refines this stream in time
/// but folds to the *same* per-cause [`LossLedger`] totals — the
/// identity flexcheck rule `FXC10 cycle-exactness` proves for every
/// (layer, unroll, arch, scale) pair, and the symbolic evaluator
/// (`flexcheck::symbolic`) builds its predictions from.
///
/// [`LossLedger`]: flexsim_obs::attrib::LossLedger
pub fn ledger_events(sch: &Schedule) -> Vec<CycleEvent> {
    let pass = sch.row_batches * sch.chunks;
    let mut events = vec![
        CycleEvent::new(
            CycleEventKind::Stall(StallCause::PipelineFill),
            0,
            PIPELINE_FILL_CYCLES,
            0,
        ),
        CycleEvent::new(
            CycleEventKind::Pass(StallCause::MappingResidueIdle),
            PIPELINE_FILL_CYCLES,
            pass,
            sch.macs,
        ),
    ];
    let spill = sch.row_batches * (sch.segments - 1) * SEGMENT_STALL_CYCLES;
    if spill > 0 {
        events.push(CycleEvent::new(
            CycleEventKind::Stall(StallCause::PsumSpillRoundTrip),
            PIPELINE_FILL_CYCLES + pass,
            spill,
            0,
        ));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_dataflow::search;
    use flexsim_dataflow::utilization::total_utilization;
    use flexsim_model::workloads;

    #[test]
    fn utilization_tracks_closed_form() {
        // With one segment, measured utilization equals Eq. 2/3's Ut up
        // to the one-off pipeline fill.
        let layer = ConvLayer::new("C3", 16, 6, 10, 5);
        let u = Unroll::new(16, 3, 1, 1, 1, 5);
        let sch = schedule_default(&layer, u, 16);
        assert_eq!(sch.segments, 1);
        let ut = total_utilization(&layer, &u, 16);
        let expect = sch.macs as f64
            / ((sch.row_batches * sch.chunks + PIPELINE_FILL_CYCLES) as f64 * 256.0);
        assert!((sch.utilization() - expect).abs() < 1e-12);
        assert!((sch.utilization() - ut).abs() < 0.01);
    }

    #[test]
    fn planned_lenet_utilization_above_80_percent() {
        let net = workloads::lenet5();
        let plan = search::plan_network(&net, 16);
        let mut macs = 0u64;
        let mut pe_cycles = 0u64;
        for (layer, choice) in net.conv_layers().zip(&plan) {
            let sch = schedule_default(layer, choice.unroll, 16);
            macs += sch.macs;
            pe_cycles += sch.cycles * 256;
        }
        let util = macs as f64 / pe_cycles as f64;
        assert!(util > 0.8, "LeNet-5 planned utilization {util:.2}");
    }

    #[test]
    fn segmentation_kicks_in_on_deep_layers() {
        // AlexNet C5 has N=256; any unrolling with small Tn needs more
        // than 128 chunk words per PE.
        let layer = ConvLayer::new("C5", 192, 256, 13, 3).with_input_size(13);
        let u = Unroll::new(1, 1, 1, 13, 1, 3); // chunks = 256*3*1 = 768
        let sch = schedule_default(&layer, u, 16);
        assert!(sch.segments > 1);
        assert!(sch.traffic.psum > 0);
        // Psum spills both ways, (segments-1) times.
        assert_eq!(
            sch.traffic.psum,
            2 * (sch.segments - 1) * layer.output_neurons()
        );
    }

    #[test]
    fn loop_order_prefers_cheaper_operand_restream() {
        // Many map groups + tiny spatial tiling: re-streaming kernels
        // per tile is cheaper than re-reading neurons per group.
        let layer = ConvLayer::new("C", 512, 8, 6, 3);
        let u = Unroll::new(2, 2, 1, 6, 1, 3);
        let sch = schedule_default(&layer, u, 16);
        // 256 map groups make re-reading neurons per group (MapOuter)
        // far more expensive than re-streaming kernels per tile.
        assert_eq!(sch.order, LoopOrder::SpatialOuter);
        // Neurons once per stripe: 6 stripes x 3 input rows x 8 cols x
        // 8 maps.
        assert_eq!(sch.traffic.neuron_in, 8 * 6 * 3 * 8);
        assert_eq!(sch.traffic.kernel_in, layer.synapses() * sch.spatial_tiles);
    }

    #[test]
    fn flexflow_traffic_beats_tiling_shape() {
        // Fig. 17's headline on a mid-size layer: FlexFlow's traffic is
        // a small fraction of the layer's MAC count; Tiling's synapse
        // traffic alone equals the MAC count.
        let layer = ConvLayer::new("C3", 12, 8, 20, 3).with_input_size(22);
        let choice = search::best_unroll(&layer, 16, None);
        let sch = schedule_default(&layer, choice.unroll, 16);
        assert!(sch.traffic.total() < layer.macs() / 5);
    }

    #[test]
    fn ledger_events_tile_the_schedule_exactly() {
        for (layer, u) in [
            (
                ConvLayer::new("C3", 16, 6, 10, 5),
                Unroll::new(16, 3, 1, 1, 1, 5),
            ),
            (
                // Segmented: the spill stall event appears.
                ConvLayer::new("C5", 192, 256, 13, 3).with_input_size(13),
                Unroll::new(1, 1, 1, 13, 1, 3),
            ),
        ] {
            let sch = schedule_default(&layer, u, 16);
            let events = ledger_events(&sch);
            let mut cursor = 0u64;
            let mut macs = 0u64;
            for ev in &events {
                assert_eq!(ev.start_cycle, cursor, "events must tile back to back");
                cursor = ev.end_cycle();
                macs += ev.macs;
            }
            assert_eq!(cursor, sch.cycles);
            assert_eq!(macs, sch.macs);
            assert_eq!(events.len(), if sch.segments > 1 { 3 } else { 2 });
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_unroll_rejected() {
        let layer = ConvLayer::new("C", 4, 4, 8, 3);
        let _ = schedule_default(&layer, Unroll::new(4, 4, 2, 4, 3, 3), 16);
    }
}
