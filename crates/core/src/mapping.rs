//! The complementary-parallelism mapping (Section 4.3).
//!
//! An unrolling `⟨Tm,Tn,Tr,Tc,Ti,Tj⟩` logically divides the PE array into
//! `Tm×Tn` groups of `(Ti·Tj)×(Tr·Tc)` PEs and assigns:
//!
//! * output neuron `O^(m)_(r,c)` → PE row
//!   `(m mod Tm)·Tr·Tc + (r mod Tr)·Tc + (c mod Tc)`,
//! * input neuron `I^(n)_(r,c)` → PE columns
//!   `(n mod Tn)·Ti·Tj + (r mod Ti)·Tj + (c mod Tj)` (all rows — the
//!   "column sharing characteristic"),
//! * kernel `K^(m,n)` → group `(m mod Tm, n mod Tn)`, with each synapse
//!   broadcast to all PEs of the group (the "block sharing
//!   characteristic" exploited by IPDR).
//!
//! These formulas *are* the RA/RS dataflow: Relax Alignment appears as
//! the residue-based column assignment (overlapping neurons land on the
//! same column regardless of which output row consumes them), and Relax
//! Synchronization as the fact that different rows consume a column's
//! broadcast in different cycles.

use flexsim_dataflow::Unroll;

/// The operand/output assignment induced by an unrolling.
///
/// # Example
///
/// ```
/// use flexflow::mapping::Mapping;
/// use flexsim_dataflow::Unroll;
///
/// // The paper's C1 example: <Tm=2, Tn=1, Tr=1, Tc=2, Ti=1, Tj=4>.
/// let map = Mapping::new(Unroll::new(2, 1, 1, 2, 1, 4));
/// // O^(0)_(r,c) maps to row (c mod 2) — "Output neuron O(r,c) is
/// // mapped to PE Row(c mod 2)" for the first output map.
/// assert_eq!(map.output_row(0, 0, 0), 0);
/// assert_eq!(map.output_row(0, 0, 1), 1);
/// assert_eq!(map.output_row(1, 0, 0), 2);
/// // I_(r,c) goes to column (c mod 4).
/// assert_eq!(map.input_col(0, 0, 5), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    u: Unroll,
}

impl Mapping {
    /// Creates the mapping for `u`.
    pub fn new(u: Unroll) -> Self {
        Mapping { u }
    }

    /// The unrolling behind this mapping.
    pub fn unroll(&self) -> Unroll {
        self.u
    }

    /// Logical group of kernel `K^(m,n)`: `(m mod Tm, n mod Tn)`.
    pub fn kernel_group(&self, m: usize, n: usize) -> (usize, usize) {
        (m % self.u.tm, n % self.u.tn)
    }

    /// PE row of output neuron `O^(m)_(r,c)`.
    pub fn output_row(&self, m: usize, r: usize, c: usize) -> usize {
        (m % self.u.tm) * self.u.tr * self.u.tc + (r % self.u.tr) * self.u.tc + (c % self.u.tc)
    }

    /// PE column of input neuron `I^(n)_(r,c)` (shared by all rows).
    pub fn input_col(&self, n: usize, r: usize, c: usize) -> usize {
        (n % self.u.tn) * self.u.ti * self.u.tj + (r % self.u.ti) * self.u.tj + (c % self.u.tj)
    }

    /// PE column serving operand `(n, i, j)` of an output at `(r, c)`:
    /// the column holding input neuron
    /// `I^(n)_(r·stride+i·dilation, c·stride+j·dilation)`. With a
    /// dilated kernel the tap walk stays collision-free only when
    /// `gcd(dilation, Ti) = gcd(dilation, Tj) = 1`
    /// ([`flexsim_dataflow::unroll::dilation_legal`]), which the
    /// planner and flexcheck FXC06 enforce.
    #[allow(clippy::too_many_arguments)] // six scalar tap coordinates, per the paper's notation
    pub fn operand_col(
        &self,
        n: usize,
        r: usize,
        c: usize,
        i: usize,
        j: usize,
        stride: usize,
        dilation: usize,
    ) -> usize {
        self.input_col(n, r * stride + i * dilation, c * stride + j * dilation)
    }

    /// Number of PE rows occupied (`Tm·Tr·Tc`).
    pub fn rows_used(&self) -> usize {
        self.u.rows_used()
    }

    /// Number of PE columns occupied (`Tn·Ti·Tj`).
    pub fn cols_used(&self) -> usize {
        self.u.cols_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rows_within_a_tile_are_distinct() {
        // Every output neuron of one tile must own its own PE row.
        let u = Unroll::new(2, 2, 2, 2, 1, 2);
        let map = Mapping::new(u);
        let mut seen = HashSet::new();
        for dm in 0..u.tm {
            for dr in 0..u.tr {
                for dc in 0..u.tc {
                    assert!(seen.insert(map.output_row(dm, dr, dc)));
                }
            }
        }
        assert_eq!(seen.len(), u.rows_used());
        assert!(seen.iter().all(|&r| r < u.rows_used()));
    }

    #[test]
    fn operands_of_one_cycle_cover_all_columns_once() {
        // RA's guarantee: for any output position (r, c) and chunk
        // origin, the Tn·Ti·Tj operands land on Tn·Ti·Tj *distinct*
        // columns — every PE of the row works every cycle.
        let u = Unroll::new(1, 2, 1, 3, 2, 2);
        let map = Mapping::new(u);
        for (r, c) in [(0usize, 0usize), (3, 1), (7, 5)] {
            let mut seen = HashSet::new();
            for dn in 0..u.tn {
                for di in 0..u.ti {
                    for dj in 0..u.tj {
                        assert!(
                            seen.insert(map.operand_col(dn, r, c, di, dj, 1, 1)),
                            "column collision at output ({r},{c})"
                        );
                    }
                }
            }
            assert_eq!(seen.len(), u.cols_used());
        }
    }

    #[test]
    fn overlapping_neurons_share_a_column() {
        // The paper's RA example: neurons overlapping between PE rows
        // land on the same column, so one vertical-bus broadcast serves
        // both rows. I_(0,1) is operand j=1 for output (0,0) and operand
        // j=0 for output (0,1).
        let u = Unroll::new(2, 1, 1, 2, 1, 4);
        let map = Mapping::new(u);
        let col_a = map.operand_col(0, 0, 0, 0, 1, 1, 1); // I(0, 1) for O(0,0)
        let col_b = map.operand_col(0, 0, 1, 0, 0, 1, 1); // I(0, 1) for O(0,1)
        assert_eq!(col_a, col_b);
        assert_eq!(col_a, map.input_col(0, 0, 1));
    }

    #[test]
    fn dilated_operands_stay_distinct_when_coprime() {
        // dilation=2 with Ti=Tj=3 (coprime): the 9 taps of one output
        // must still land on 9 distinct columns.
        let u = Unroll::new(1, 1, 1, 1, 3, 3);
        let map = Mapping::new(u);
        let mut seen = HashSet::new();
        for di in 0..3 {
            for dj in 0..3 {
                assert!(seen.insert(map.operand_col(0, 2, 5, di, dj, 1, 2)));
            }
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn kernel_groups_tile_the_array() {
        let u = Unroll::new(2, 3, 1, 1, 1, 1);
        let map = Mapping::new(u);
        assert_eq!(map.kernel_group(0, 0), (0, 0));
        assert_eq!(map.kernel_group(5, 7), (1, 1));
        assert_eq!(map.kernel_group(2, 3), (0, 0));
    }

    #[test]
    fn paper_c1_column_assignment() {
        // Section 4.3: for C1, "Input neuron I_(r,c) forwarded to
        // PE(1:2, c mod 4)".
        let map = Mapping::new(Unroll::new(2, 1, 1, 2, 1, 4));
        for c in 0..11 {
            assert_eq!(map.input_col(0, 0, c), c % 4);
        }
    }
}
