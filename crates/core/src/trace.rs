//! PE-occupancy tracing and text visualization.
//!
//! Walks a layer's tiled schedule cycle by cycle (one engine step per
//! tile, as in [`crate::analytic`]) and records how many PEs are busy
//! each cycle — the time-resolved version of the paper's utilization
//! bars, useful for *seeing* where a mapping loses PEs (edge tiles,
//! clamped factors, thin feature maps).

use flexsim_dataflow::{TileIter, Unroll};
use flexsim_model::ConvLayer;
use flexsim_obs::occupancy::OccupancyTimeline;
use std::fmt;

/// A per-cycle record of busy PEs for one layer under one unrolling.
///
/// # Example
///
/// ```
/// use flexflow::trace::trace_layer;
/// use flexsim_dataflow::Unroll;
/// use flexsim_model::ConvLayer;
///
/// let layer = ConvLayer::new("C", 3, 1, 5, 2);
/// let trace = trace_layer(&layer, Unroll::new(2, 1, 1, 5, 2, 2), 16);
/// assert_eq!(trace.cycles(), trace.busy_per_cycle().len() as u64);
/// assert!(trace.utilization() > 0.0 && trace.utilization() <= 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OccupancyTrace {
    d: usize,
    busy: Vec<u32>,
}

/// Traces the schedule of `layer` under `u` on a `d×d` engine.
///
/// # Panics
///
/// Panics if `u` exceeds the engine bounds.
pub fn trace_layer(layer: &ConvLayer, u: Unroll, d: usize) -> OccupancyTrace {
    assert!(
        u.rows_used() <= d && u.cols_used() <= d,
        "unrolling exceeds the engine"
    );
    let busy = TileIter::new(layer, u).map(|t| t.macs() as u32).collect();
    OccupancyTrace { d, busy }
}

impl OccupancyTrace {
    /// Engine side `D`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Total compute cycles traced.
    pub fn cycles(&self) -> u64 {
        self.busy.len() as u64
    }

    /// Busy-PE count per cycle.
    pub fn busy_per_cycle(&self) -> &[u32] {
        &self.busy
    }

    /// Mean utilization over the trace.
    pub fn utilization(&self) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        let total: u64 = self.busy.iter().map(|&b| u64::from(b)).sum();
        total as f64 / (self.busy.len() as u64 * (self.d * self.d) as u64) as f64
    }

    /// Fraction of cycles running at full occupancy.
    pub fn full_cycles_fraction(&self) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        let full = (self.d * self.d) as u32;
        let n = self.busy.iter().filter(|&&b| b == full).count();
        n as f64 / self.busy.len() as f64
    }

    /// Renders the trace as a `width`-character sparkline, each
    /// character the mean occupancy of its time bucket (`' '` = idle,
    /// `'█'` = full).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn sparkline(&self, width: usize) -> String {
        assert!(width > 0, "sparkline width must be non-zero");
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.busy.is_empty() {
            return " ".repeat(width);
        }
        let full = (self.d * self.d) as f64;
        let n = self.busy.len();
        (0..width)
            .map(|i| {
                let lo = i * n / width;
                let hi = (((i + 1) * n).div_ceil(width)).min(n).max(lo + 1);
                let mean: f64 =
                    self.busy[lo..hi].iter().map(|&b| f64::from(b)).sum::<f64>() / (hi - lo) as f64;
                let level = (mean / full * 8.0).round() as usize;
                LEVELS[level.min(8)]
            })
            .collect()
    }

    /// Occupancy histogram over `buckets` equal occupancy ranges:
    /// element `i` counts cycles with busy fraction in
    /// `[i/buckets, (i+1)/buckets)`; the last bucket additionally
    /// includes fraction exactly 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn histogram(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let mut out = vec![0u64; buckets];
        let full = (self.d * self.d) as f64;
        for &b in &self.busy {
            let frac = f64::from(b) / full;
            // `frac == 1.0` would index one past the end under the open
            // interval rule; fold it into the last bucket explicitly.
            let idx = if frac >= 1.0 {
                buckets - 1
            } else {
                ((frac * buckets as f64) as usize).min(buckets - 1)
            };
            out[idx] += 1;
        }
        out
    }

    /// Converts to the architecture-neutral run-length-encoded
    /// [`OccupancyTimeline`] used by the observability exporters; mean
    /// utilization is preserved exactly.
    pub fn to_timeline(&self) -> OccupancyTimeline {
        let full = (self.d * self.d) as f64;
        OccupancyTimeline::from_segments(
            (self.d * self.d) as u32,
            self.busy
                .iter()
                .map(|&b| (1u64, f64::from(b) / full))
                .collect(),
        )
    }
}

impl fmt::Display for OccupancyTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:.1}% mean, {:.0}% full cycles, {} cycles",
            self.sparkline(48),
            self.utilization() * 100.0,
            self.full_cycles_fraction() * 100.0,
            self.cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_dataflow::utilization::total_utilization;

    #[test]
    fn trace_utilization_matches_closed_form() {
        let layer = ConvLayer::new("C3", 16, 6, 10, 5);
        let u = Unroll::new(16, 3, 1, 1, 1, 5);
        let trace = trace_layer(&layer, u, 16);
        let ut = total_utilization(&layer, &u, 16);
        assert!((trace.utilization() - ut).abs() < 1e-12);
    }

    #[test]
    fn perfect_mapping_is_all_full_cycles() {
        let layer = ConvLayer::new("C", 4, 4, 4, 2);
        let u = Unroll::new(4, 4, 1, 4, 2, 2);
        let trace = trace_layer(&layer, u, 16);
        assert!((trace.full_cycles_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(trace.sparkline(8), "████████");
    }

    #[test]
    fn edge_clamping_shows_up_in_the_histogram() {
        // Factors that don't divide S leave partially-filled cycles.
        let layer = ConvLayer::new("C", 3, 1, 5, 2);
        let u = Unroll::new(2, 1, 1, 5, 2, 2);
        let trace = trace_layer(&layer, u, 16);
        let hist = trace.histogram(16);
        assert_eq!(hist.iter().sum::<u64>(), trace.cycles());
        // Both full-ish and clamped cycles exist (40/256 and 20/256
        // busy PEs land in different 1/16 buckets).
        assert!(hist.iter().filter(|&&c| c > 0).count() >= 2);
    }

    #[test]
    fn histogram_boundaries_are_exact() {
        // Full busy: every cycle has frac == 1.0 and must land in the
        // last bucket rather than fall off the end.
        let layer = ConvLayer::new("C", 4, 4, 4, 2);
        let full = trace_layer(&layer, Unroll::new(4, 4, 1, 4, 2, 2), 16);
        assert!((full.full_cycles_fraction() - 1.0).abs() < 1e-12);
        let hist = full.histogram(10);
        assert_eq!(hist[9], full.cycles());
        assert_eq!(hist[..9].iter().sum::<u64>(), 0);
        // Single bucket holds everything.
        assert_eq!(full.histogram(1), vec![full.cycles()]);

        // Zero busy: an empty trace leaves every bucket empty.
        let empty = OccupancyTrace { d: 4, busy: vec![] };
        assert_eq!(empty.histogram(3), vec![0, 0, 0]);
        // All-idle cycles land in bucket 0.
        let idle = OccupancyTrace {
            d: 4,
            busy: vec![0, 0],
        };
        assert_eq!(idle.histogram(3), vec![2, 0, 0]);
        assert_eq!(idle.histogram(1), vec![2]);
    }

    #[test]
    fn to_timeline_preserves_utilization() {
        let layer = ConvLayer::new("C", 3, 1, 5, 2);
        let trace = trace_layer(&layer, Unroll::new(2, 1, 1, 5, 2, 2), 16);
        let tl = trace.to_timeline();
        assert_eq!(tl.cycles(), trace.cycles());
        assert!((tl.utilization() - trace.utilization()).abs() < 1e-12);
        assert_eq!(tl.pe_count(), 256);
        // The RLE form is no longer than the raw per-cycle vector.
        assert!(tl.segments().len() <= trace.busy_per_cycle().len());
    }

    #[test]
    fn sparkline_length_and_charset() {
        let layer = ConvLayer::new("C", 2, 2, 6, 3);
        let trace = trace_layer(&layer, Unroll::new(2, 2, 1, 3, 3, 1), 16);
        let line = trace.sparkline(20);
        assert_eq!(line.chars().count(), 20);
    }

    #[test]
    fn display_is_compact() {
        let layer = ConvLayer::new("C", 2, 1, 4, 2);
        let trace = trace_layer(&layer, Unroll::scalar(), 4);
        let s = trace.to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains('%'));
    }
}
