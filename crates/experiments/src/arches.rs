//! Factories for the four evaluated architectures at the paper's
//! configurations (Section 6.1.1) and at the Fig. 19 scales.

use flexflow::FlexFlow;
use flexsim_arch::Accelerator;
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_model::Network;

/// The four architecture names in the paper's presentation order.
pub const ARCH_NAMES: [&str; 4] = ["Systolic", "2D-Mapping", "Tiling", "FlexFlow"];

/// The Systolic configuration for a workload: 7×(6×6) arrays, except
/// AlexNet which uses 11×11 arrays (Section 6.1.1).
pub fn systolic_for(net: &Network) -> Systolic {
    if net.name() == "AlexNet" {
        Systolic::alexnet_config()
    } else {
        Systolic::dc_cnn()
    }
}

/// All four architectures at the paper's ~256-PE scale, configured for
/// `net`, in [`ARCH_NAMES`] order.
///
/// Each instance is wired to the process-global cycle sink, so a
/// recorder installed via [`flexsim_obs::cycles::set_global_sink`]
/// (e.g. by `flexsim --trace`) sees every layer any experiment runs.
pub fn paper_scale(net: &Network) -> Vec<Box<dyn Accelerator>> {
    crate::lint::gate(net, 16);
    with_global_sink(vec![
        Box::new(systolic_for(net)),
        Box::new(Mapping2d::shidiannao()),
        Box::new(TilingArray::diannao()),
        Box::new(FlexFlow::paper_config()),
    ])
}

/// All four architectures scaled to a `d×d`-equivalent engine
/// (Fig. 19). The systolic geometry follows the workload kernel (11×11
/// arrays for AlexNet). Wired to the global cycle sink like
/// [`paper_scale`].
pub fn at_scale(net: &Network, d: usize) -> Vec<Box<dyn Accelerator>> {
    crate::lint::gate(net, d);
    let array_k = if net.name() == "AlexNet" { 11 } else { 6 };
    with_global_sink(vec![
        Box::new(Systolic::scaled_to(array_k, d * d)),
        Box::new(Mapping2d::new(d, d)),
        Box::new(TilingArray::new(d, d)),
        Box::new(FlexFlow::new(d)),
    ])
}

fn with_global_sink(mut accs: Vec<Box<dyn Accelerator>>) -> Vec<Box<dyn Accelerator>> {
    for acc in &mut accs {
        acc.attach_sink(flexsim_obs::cycles::global_handle());
    }
    accs
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::workloads;

    #[test]
    fn paper_scale_is_about_256_pes() {
        for acc in paper_scale(&workloads::lenet5()) {
            let pes = acc.pe_count();
            assert!((240..=260).contains(&pes), "{}: {pes}", acc.name());
        }
    }

    #[test]
    fn alexnet_gets_11x11_systolic() {
        let sys = systolic_for(&workloads::alexnet());
        assert_eq!(sys.array_k(), 11);
        // 2 arrays keep the scale near 256.
        assert_eq!(sys.pe_count(), 242);
    }

    #[test]
    fn scaling_covers_fig19_range() {
        for d in [8usize, 16, 32, 64] {
            for acc in at_scale(&workloads::alexnet(), d) {
                assert!(acc.pe_count() > 0);
                // One 11x11 systolic array (121 PEs) is the minimum engine
                // even when the budget is 8x8.
                assert!(acc.pe_count() <= (d * d).max(121));
            }
        }
    }
}
