//! Factories for the four evaluated architectures at the paper's
//! configurations (Section 6.1.1) and at the Fig. 19 scales, behind
//! the [`ArchSet`] builder.
//!
//! ```no_run
//! use flexsim_experiments::arches::ArchSet;
//! use flexsim_model::workloads;
//!
//! let net = workloads::alexnet();
//! for mut acc in ArchSet::builder().scale(32).build(&net) {
//!     let _ = acc.run_network(&net);
//! }
//! ```

use flexflow::FlexFlow;
use flexsim_arch::Accelerator;
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_model::Network;
use flexsim_obs::cycles::SinkHandle;
use flexsim_obs::spatial::SpatialHandle;

/// The four architecture names in the paper's presentation order.
pub const ARCH_NAMES: [&str; 4] = ["Systolic", "2D-Mapping", "Tiling", "FlexFlow"];

/// The paper's evaluation scale: every engine is a ~256-PE,
/// 16×16-equivalent configuration (Section 6.1.1).
const PAPER_SCALE: usize = 16;

/// The baseline systolic array side: 6×6 arrays serve every Table 1
/// workload whose kernels are ≤ 6 wide (the DC-CNN configuration).
const BASE_ARRAY_K: usize = 6;

/// The systolic array side for `net` — **the builder rule that
/// replaces the old AlexNet string-compare**: a systolic array must be
/// at least as wide as the widest convolution kernel it executes
/// (row-stationary mapping needs `k` columns), so the side is
/// `max(6, widest conv kernel)`. Among the Table 1 workloads only
/// AlexNet (11×11 C1 kernels) exceeds the 6×6 default, reproducing
/// Section 6.1.1's "11×11 arrays for AlexNet" special case without
/// naming any workload.
fn systolic_array_k(net: &Network) -> usize {
    net.conv_layers()
        .map(flexsim_model::ConvLayer::k)
        .max()
        .unwrap_or(BASE_ARRAY_K)
        .max(BASE_ARRAY_K)
}

/// The four architectures configured for one workload, in
/// [`ARCH_NAMES`] order. Build one with [`ArchSet::builder`].
pub struct ArchSet {
    accs: Vec<Box<dyn Accelerator>>,
}

impl ArchSet {
    /// Starts a builder with the paper defaults: ~256-PE scale, no
    /// cycle sink, lint gate armed.
    pub fn builder() -> ArchSetBuilder {
        ArchSetBuilder {
            scale: PAPER_SCALE,
            sink: SinkHandle::none(),
            spatial: SpatialHandle::none(),
            lint: true,
        }
    }

    /// The configured accelerators, consuming the set.
    pub fn into_vec(self) -> Vec<Box<dyn Accelerator>> {
        self.accs
    }

    /// Number of architectures (always [`ARCH_NAMES`]`.len()`).
    pub fn len(&self) -> usize {
        self.accs.len()
    }

    /// Never true — the set always holds all four architectures.
    pub fn is_empty(&self) -> bool {
        self.accs.is_empty()
    }
}

impl IntoIterator for ArchSet {
    type Item = Box<dyn Accelerator>;
    type IntoIter = std::vec::IntoIter<Box<dyn Accelerator>>;

    fn into_iter(self) -> Self::IntoIter {
        self.accs.into_iter()
    }
}

/// Configures and builds an [`ArchSet`] (see [`ArchSet::builder`]).
/// Callers choose scale, cycle-sink wiring, and lint gating
/// explicitly instead of inheriting a process-global sink.
#[derive(Clone)]
pub struct ArchSetBuilder {
    scale: usize,
    sink: SinkHandle,
    spatial: SpatialHandle,
    lint: bool,
}

impl ArchSetBuilder {
    /// Engine scale `d` (a `d×d`-equivalent PE budget). Defaults to
    /// the paper's 16 (~256 PEs).
    pub fn scale(mut self, d: usize) -> ArchSetBuilder {
        self.scale = d;
        self
    }

    /// Cycle sink every built simulator attaches (default: none).
    pub fn sink(mut self, sink: SinkHandle) -> ArchSetBuilder {
        self.sink = sink;
        self
    }

    /// Spatial sink every built simulator attaches (default: none) —
    /// the `flexsim heatmap` path.
    pub fn spatial(mut self, sink: SpatialHandle) -> ArchSetBuilder {
        self.spatial = sink;
        self
    }

    /// Arms or disarms the flexcheck pre-simulation gate for this
    /// build (default: armed; also subject to the process-wide
    /// `--no-lint` switch).
    pub fn lint(mut self, on: bool) -> ArchSetBuilder {
        self.lint = on;
        self
    }

    /// Builds all four architectures for `net`, in [`ARCH_NAMES`]
    /// order.
    pub fn build(self, net: &Network) -> ArchSet {
        if self.lint {
            crate::lint::gate(net, self.scale);
        }
        let accs = (0..ARCH_NAMES.len())
            .map(|idx| self.make(net, idx))
            .collect();
        ArchSet { accs }
    }

    /// Builds just the architecture at `arch_idx` (an index into
    /// [`ARCH_NAMES`]) — what per-(workload, architecture) pool tasks
    /// use so each task constructs only its own simulator.
    ///
    /// # Panics
    ///
    /// Panics if `arch_idx >= ARCH_NAMES.len()`.
    pub fn build_one(self, net: &Network, arch_idx: usize) -> Box<dyn Accelerator> {
        assert!(arch_idx < ARCH_NAMES.len(), "arch index {arch_idx}");
        if self.lint {
            crate::lint::gate(net, self.scale);
        }
        self.make(net, arch_idx)
    }

    fn make(&self, net: &Network, idx: usize) -> Box<dyn Accelerator> {
        let d = self.scale;
        let mut acc: Box<dyn Accelerator> = match idx {
            0 => Box::new(Systolic::scaled_to(systolic_array_k(net), d * d)),
            1 => Box::new(Mapping2d::new(d, d)),
            2 => Box::new(TilingArray::new(d, d)),
            _ => Box::new(FlexFlow::new(d)),
        };
        if self.sink.is_attached() {
            acc.attach_sink(self.sink.clone());
        }
        if self.spatial.is_attached() {
            acc.attach_spatial(self.spatial.clone());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::workloads;

    #[test]
    fn paper_scale_is_about_256_pes() {
        for acc in ArchSet::builder().build(&workloads::lenet5()) {
            let pes = acc.pe_count();
            assert!((240..=260).contains(&pes), "{}: {pes}", acc.name());
        }
    }

    #[test]
    fn alexnet_gets_11x11_systolic_via_the_kernel_rule() {
        // AlexNet's C1 kernels are 11×11 — the widest in Table 1 — so
        // the widest-kernel rule yields 11×11 arrays (2 of them keep
        // the scale near 256). Every other workload stays at the 6×6
        // DC-CNN default.
        assert_eq!(systolic_array_k(&workloads::alexnet()), 11);
        let sys = ArchSet::builder().build_one(&workloads::alexnet(), 0);
        assert_eq!(sys.pe_count(), 242);
        for net in workloads::all() {
            if net.name() != "AlexNet" {
                assert_eq!(systolic_array_k(&net), 6, "{}", net.name());
            }
        }
    }

    #[test]
    fn scaling_covers_fig19_range() {
        for d in [8usize, 16, 32, 64] {
            for acc in ArchSet::builder().scale(d).build(&workloads::alexnet()) {
                assert!(acc.pe_count() > 0);
                // One 11x11 systolic array (121 PEs) is the minimum engine
                // even when the budget is 8x8.
                assert!(acc.pe_count() <= (d * d).max(121));
            }
        }
    }

    #[test]
    fn builder_wires_the_given_sink() {
        use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
        use std::sync::Arc;
        let net = workloads::lenet5();
        let rec = Arc::new(CycleRecorder::new());
        let set = ArchSet::builder()
            .sink(SinkHandle::new(rec.clone()))
            .build(&net);
        for mut acc in set {
            acc.run_network(&net);
        }
        assert!(!rec.take().is_empty());
    }
}
