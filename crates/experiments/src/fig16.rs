//! Figure 16 — performance (GOPS at 1 GHz), four architectures × six
//! workloads.

use crate::experiment::{Experiment, ExperimentCtx};
use crate::fig15::per_pair;
use crate::report::{fmt_f, ExperimentResult, Table};

/// The registry entry for this experiment.
pub struct Fig16;

impl Experiment for Fig16 {
    fn id(&self) -> &'static str {
        "fig16"
    }
    fn title(&self) -> &'static str {
        "Performance for different baselines (GOPS @ 1 GHz)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "Systolic",
        "2D-Mapping",
        "Tiling",
        "FlexFlow",
        "speedup vs best baseline",
    ]);
    for (net, gops) in per_pair(ctx, |acc, net| acc.run_network(net).gops()) {
        let best_baseline = gops[..3].iter().cloned().fold(f64::MIN, f64::max);
        let mut row = vec![net.name().to_owned()];
        row.extend(gops.iter().map(|g| fmt_f(*g, 1)));
        row.push(format!("{:.2}x", gops[3] / best_baseline));
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig16".into(),
        title: Fig16.title().into(),
        notes: vec![
            "Paper: FlexFlow constantly above 420 GOPS; >2x over Systolic and \
             2D-Mapping, up to 10x over Tiling."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::claims;

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("fig16"))
    }

    #[test]
    fn flexflow_above_420_gops_on_most_workloads() {
        let r = run_serial();
        let mut above = 0;
        for row in r.table.rows() {
            let ff: f64 = row[4].parse().unwrap();
            assert!(ff > 350.0, "{}: {ff} GOPS", row[0]);
            if ff > claims::FLEXFLOW_MIN_GOPS {
                above += 1;
            }
        }
        assert!(above >= 4, "only {above}/6 workloads above 420 GOPS");
    }

    #[test]
    fn flexflow_wins_every_workload() {
        let r = run_serial();
        for row in r.table.rows() {
            let ff: f64 = row[4].parse().unwrap();
            for c in 1..=3 {
                let other: f64 = row[c].parse().unwrap();
                assert!(ff > other, "{}: col {c}", row[0]);
            }
        }
    }

    #[test]
    fn speedups_land_in_the_abstracts_band() {
        // "2-10x performance speedup": FlexFlow vs *each* baseline stays
        // within (or above 1.5x of) that band somewhere, and vs Tiling
        // reaches large factors on small nets.
        let r = run_serial();
        let lenet = r
            .table
            .rows()
            .iter()
            .find(|row| row[0] == "LeNet-5")
            .unwrap()
            .clone();
        let ff: f64 = lenet[4].parse().unwrap();
        let tiling: f64 = lenet[3].parse().unwrap();
        assert!(
            ff / tiling > 5.0,
            "FlexFlow/Tiling on LeNet = {:.1}",
            ff / tiling
        );
        let sys: f64 = lenet[1].parse().unwrap();
        assert!(
            ff / sys > 1.8,
            "FlexFlow/Systolic on LeNet = {:.1}",
            ff / sys
        );
    }
}
