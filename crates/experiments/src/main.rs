//! `flexsim` — CLI driver for the FlexFlow (HPCA'17) evaluation
//! experiments.
//!
//! ```text
//! flexsim all                    # every table/figure, paper order
//! flexsim fig15 table06          # selected experiments
//! flexsim --json all             # machine-readable output
//! flexsim --out DIR all          # also write one .txt + .json each
//! flexsim --trace out.json fig15 # Chrome trace (Perfetto-loadable)
//! flexsim --metrics fig15        # dump the metrics registry
//! flexsim --list                 # available experiment ids
//! flexsim lint                   # static verification sweep
//! flexsim --no-lint fig15        # skip the pre-simulation gate
//! ```
//!
//! Exit status: 0 on success, 1 when `flexsim lint` finds errors, 2 on
//! usage or I/O errors.

use flexsim_experiments::cli::{self, Cli, USAGE};
use flexsim_experiments::{experiment_ids, run_all, run_by_id, ExperimentResult};
use flexsim_obs::cycles::CycleRecorder;
use flexsim_obs::{chrome, cycles, metrics, span};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("flexsim: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if cli.help {
        print!("{USAGE}");
        return;
    }
    if cli.list {
        for id in experiment_ids() {
            println!("{id}");
        }
        return;
    }
    flexsim_experiments::lint::set_enabled(!cli.no_lint);
    if cli.lint {
        let (result, errors) = flexsim_experiments::lint::run();
        emit(vec![result], cli.json);
        std::process::exit(i32::from(errors > 0));
    }

    // Observability: recording host spans and cycle events is opt-in;
    // without `--trace` both stay disabled and cost nothing.
    let recorder = cli.trace.as_ref().map(|_| {
        span::install_recorder();
        let rec = Arc::new(CycleRecorder::new());
        cycles::set_global_sink(Some(rec.clone() as Arc<dyn cycles::CycleSink>));
        rec
    });

    let results = run(&cli);

    if let (Some(file), Some(rec)) = (&cli.trace, &recorder) {
        let spans = span::take_records();
        let timelines = rec.take();
        let snapshot = metrics::global().snapshot();
        let trace = chrome::chrome_trace(&spans, &timelines, &snapshot);
        if let Err(e) = std::fs::write(file, trace.pretty()) {
            eprintln!("cannot write trace {file}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {file}: {} host spans, {} layer timelines",
            spans.len(),
            timelines.len()
        );
    }
    if cli.metrics {
        eprint!("{}", metrics::global().snapshot().dump());
    }
    if let Some(dir) = &cli.out_dir {
        write_out(dir, &results);
    }
    emit(results, cli.json);
}

fn run(cli: &Cli) -> Vec<ExperimentResult> {
    if cli.ids.is_empty() || cli.ids.iter().any(|a| a == "all") {
        return run_all();
    }
    let mut results = Vec::new();
    for id in &cli.ids {
        match run_by_id(id) {
            Some(r) => results.push(r),
            None => {
                eprintln!(
                    "unknown experiment {id:?}; available: {}",
                    experiment_ids().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    results
}

fn write_out(dir: &str, results: &[ExperimentResult]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(2);
    }
    for r in results {
        let txt = format!("{dir}/{}.txt", r.id);
        let json = format!("{dir}/{}.json", r.id);
        if let Err(e) =
            std::fs::write(&txt, r.to_string()).and_then(|_| std::fs::write(&json, r.to_json()))
        {
            eprintln!("cannot write {txt}/{json}: {e}");
            std::process::exit(2);
        }
    }
    eprintln!("wrote {} experiments to {dir}/", results.len());
}

fn emit(results: Vec<ExperimentResult>, json: bool) {
    if json {
        let blobs: Vec<String> = results.iter().map(ExperimentResult::to_json).collect();
        println!("[{}]", blobs.join(",\n"));
    } else {
        for r in results {
            println!("{r}");
        }
    }
}
