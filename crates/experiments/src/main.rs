//! `flexsim` — CLI driver for the FlexFlow (HPCA'17) evaluation
//! experiments.
//!
//! ```text
//! flexsim all                    # every table/figure, paper order
//! flexsim fig15 table06          # selected experiments
//! flexsim --jobs 4 all           # fan (workload, arch) tasks over 4 threads
//! flexsim --json all             # machine-readable output
//! flexsim --out DIR all          # also write one .txt + .json each
//! flexsim --trace out.json fig15 # Chrome trace (Perfetto-loadable)
//! flexsim --metrics fig15        # dump the metrics registry
//! flexsim --list                 # available experiment ids
//! flexsim run lenet              # one workload on all four architectures
//! flexsim run net.ffnet          # ... same, from a user-supplied .ffnet file
//! flexsim workloads              # list every resolvable workload
//! flexsim heatmap lenet          # per-PE heatmaps + bank watermarks (FXC13-gated)
//! flexsim heatmap pv --svg       # ... as an SVG document on stdout
//! flexsim lint                   # static verification sweep
//! flexsim lint --json            # same findings, byte-stable structured JSON
//! flexsim profile alexnet        # per-layer loss attribution + roofline
//! flexsim prove                  # prove cycles/ledgers symbolically (FXC10)
//! flexsim prove pv --mutate      # self-test: a corrupted prediction must fail
//! flexsim tune alexnet           # auto-tune mappings, before/after attribution
//! flexsim tune --budget smoke    # tune all six workloads, write BENCH_tune.json
//! flexsim tune pv --static       # symbolic baseline, engine-verify winners only
//! flexsim bench sweep            # time serial vs parallel, BENCH_pool.json
//! flexsim bench history          # append wall time + attribution to BENCH_history.jsonl
//! flexsim bench check            # fail on wall-time regression vs the history
//! flexsim --no-lint fig15        # skip the pre-simulation gate
//! ```
//!
//! Output is byte-identical at every `--jobs` level: experiments run
//! one at a time and [`flexsim_experiments::ExperimentCtx::map`]
//! returns task results in submission order.
//!
//! Exit status: 0 on success, 1 when `flexsim lint` finds errors or an
//! experiment fails, 2 on usage or I/O errors.

use flexsim_experiments::cli::{self, Cli, USAGE};
use flexsim_experiments::{
    experiment_ids, find, run_suite, Experiment, ExperimentResult, SuiteConfig, REGISTRY,
};
use flexsim_obs::telemetry::{self, Phase};
use flexsim_obs::{chrome, metrics, span};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("flexsim: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if cli.help {
        print!("{USAGE}");
        return;
    }
    if cli.list {
        for id in experiment_ids() {
            println!("{id}");
        }
        return;
    }
    // Host telemetry is opt-in (`--telemetry PATH`, or implied by
    // `stats`). Enabling it only records wall-clock observations —
    // simulation output stays byte-identical either way.
    if cli.telemetry.is_some() || cli.stats {
        telemetry::enable();
    }
    if let Some(path) = &cli.telemetry {
        // Flight dumps land next to the requested snapshot.
        let dir = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map_or_else(
                || std::path::PathBuf::from("."),
                std::path::Path::to_path_buf,
            );
        telemetry::flight::set_dir(Some(&dir));
    }
    flexsim_experiments::lint::set_enabled(!cli.no_lint);
    if cli.lint {
        let errors = if cli.json {
            let (doc, errors) = flexsim_experiments::lint::json_report();
            let mut text = doc.pretty();
            text.push('\n');
            print!("{text}");
            errors
        } else {
            let (result, errors) = flexsim_experiments::lint::run();
            emit(vec![result], false);
            errors
        };
        write_telemetry(&cli);
        std::process::exit(i32::from(errors > 0));
    }
    if cli.stats {
        let (result, failures) = flexsim_experiments::stats::run(&cli);
        if let Some(dir) = &cli.out_dir {
            write_out(dir, std::slice::from_ref(&result));
        }
        emit(vec![result], cli.json);
        write_telemetry(&cli);
        std::process::exit(i32::from(failures > 0));
    }
    if cli.run {
        let code = flexsim_experiments::frontend::run(&cli);
        write_telemetry(&cli);
        std::process::exit(code);
    }
    if cli.workloads {
        let code = flexsim_experiments::frontend::workloads(&cli);
        write_telemetry(&cli);
        std::process::exit(code);
    }
    if cli.heatmap {
        let code = flexsim_experiments::heatmap::heatmap(&cli);
        write_telemetry(&cli);
        std::process::exit(code);
    }
    if cli.bench {
        let code = flexsim_experiments::bench::run(&cli);
        write_telemetry(&cli);
        std::process::exit(code);
    }
    if cli.tune {
        let code = tune_workload(&cli);
        write_telemetry(&cli);
        std::process::exit(code);
    }
    if cli.prove {
        let code = prove_workload(&cli);
        write_telemetry(&cli);
        std::process::exit(code);
    }
    // `flexsim profile <workload>` — the one experiment taking an
    // argument, so it bypasses the plain registry dispatch.
    if cli.ids.first().map(String::as_str) == Some("profile") && cli.ids.len() == 2 {
        profile_workload(&cli);
        write_telemetry(&cli);
        return;
    }

    // Host spans are opt-in; without `--trace` recording stays disabled
    // and costs nothing. Cycle events flow through per-task recorders
    // inside the suite (no process-global sink involved).
    if cli.trace.is_some() {
        span::install_recorder();
        // The main thread doubles as pool worker 0; spawned workers
        // label themselves `flexsim-pool-N`.
        span::set_thread_label("flexsim-main (pool worker 0)");
    }

    let config = SuiteConfig {
        jobs: cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism),
        trace: cli.trace.is_some(),
    };
    let experiments = {
        let _parse = telemetry::phase(Phase::Parse);
        select(&cli)
    };
    let report = run_suite(&experiments, &config);

    {
        let _export = telemetry::phase(Phase::Export);
        if let Some(file) = &cli.trace {
            let spans = span::take_records();
            let snapshot = metrics::global().snapshot();
            let labels = span::thread_labels();
            let written = std::fs::File::create(file).and_then(|f| {
                let mut sink = std::io::BufWriter::new(f);
                chrome::write_chrome_trace(
                    &mut sink,
                    &spans,
                    &report.timelines,
                    &snapshot,
                    &labels,
                )?;
                sink.into_inner()
                    .map_err(std::io::IntoInnerError::into_error)
            });
            if let Err(e) = written {
                eprintln!("cannot write trace {file}: {e}");
                std::process::exit(2);
            }
            eprintln!(
                "wrote {file}: {} host spans, {} layer timelines",
                spans.len(),
                report.timelines.len()
            );
        }
        if cli.metrics {
            eprint!("{}", metrics::global().snapshot().dump());
        }
        if let Some(dir) = &cli.out_dir {
            write_out(dir, &report.results);
        }
        emit(report.results, cli.json);
    }
    write_telemetry(&cli);
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("experiment {} FAILED: {}", f.id, f.message);
        }
        std::process::exit(1);
    }
}

/// Writes the `--telemetry` snapshot: byte-stable JSON at the given
/// path plus a Prometheus text-format sibling at `PATH.prom`.
fn write_telemetry(cli: &Cli) {
    let Some(path) = &cli.telemetry else {
        return;
    };
    let snap = telemetry::snapshot();
    let mut text = snap.to_json().pretty();
    text.push('\n');
    let prom_path = format!("{path}.prom");
    if let Err(e) =
        std::fs::write(path, text).and_then(|()| std::fs::write(&prom_path, snap.to_prom()))
    {
        eprintln!("cannot write telemetry snapshot {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote telemetry snapshot to {path} (+ {prom_path})");
}

/// Resolves the command line's experiment selection against the
/// registry (usage-error exit on an unknown id).
fn select(cli: &Cli) -> Vec<&'static dyn Experiment> {
    if cli.ids.is_empty() || cli.ids.iter().any(|a| a == "all") {
        return REGISTRY.iter().filter(|e| e.in_sweep()).copied().collect();
    }
    let mut experiments = Vec::new();
    for id in &cli.ids {
        match find(id) {
            Some(e) => experiments.push(e),
            None => {
                eprintln!(
                    "unknown experiment {id:?}; available: {}",
                    experiment_ids().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    experiments
}

/// `flexsim profile <workload>`: the per-layer loss-attribution +
/// roofline report for one Table 1 workload.
fn profile_workload(cli: &Cli) {
    let name = &cli.ids[1];
    let net = match flexsim_experiments::frontend::registry().resolve(name) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("flexsim: {e}");
            std::process::exit(2);
        }
    };
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let ctx = flexsim_experiments::ExperimentCtx::parallel("profile", jobs);
    let result = flexsim_experiments::profile::run_workloads(&ctx, &[net]);
    if cli.metrics {
        eprint!("{}", metrics::global().snapshot().dump());
    }
    if let Some(dir) = &cli.out_dir {
        write_out(dir, std::slice::from_ref(&result));
    }
    emit(vec![result], cli.json);
}

/// Resolves a subcommand's optional `[WORKLOAD]` argument: all six
/// Table 1 workloads when absent, the referenced one otherwise — a
/// built-in name, alias, or `.ffnet` path, resolved through the
/// registry (usage-error `Err` exit code on anything else).
fn resolve_workloads(cli: &Cli, cmd: &str) -> Result<Vec<flexsim_model::Network>, i32> {
    match cli.ids.len() {
        0 => Ok(flexsim_model::workloads::all()),
        1 => match flexsim_experiments::frontend::registry().resolve(&cli.ids[0]) {
            Ok(net) => Ok(vec![net]),
            Err(e) => {
                eprintln!("flexsim: {e}");
                Err(2)
            }
        },
        _ => {
            eprintln!("flexsim: {cmd} takes at most one workload");
            Err(2)
        }
    }
}

/// `flexsim tune [WORKLOAD]`: the mapping auto-tuner. With no workload
/// it tunes the full Table 1 sweep and records `BENCH_tune.json`.
fn tune_workload(cli: &Cli) -> i32 {
    use flexsim_experiments::tune::{self, Budget, VerifyMode};
    let budget = cli.budget.unwrap_or(Budget::Full);
    let mode = if cli.static_verify {
        VerifyMode::Static
    } else {
        VerifyMode::Engine
    };
    let nets = match resolve_workloads(cli, "tune") {
        Ok(nets) => nets,
        Err(code) => return code,
    };
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let ctx = flexsim_experiments::ExperimentCtx::parallel("tune", jobs);
    let outcomes = tune::tune_workloads_with(&ctx, &nets, budget, mode);
    if cli.ids.is_empty() {
        // Full-sweep runs are the recorded benchmark.
        let mut text = tune::bench_json(&outcomes, budget).pretty();
        text.push('\n');
        if let Err(e) = std::fs::write("BENCH_tune.json", text) {
            eprintln!("cannot write BENCH_tune.json: {e}");
            return 2;
        }
        let improved = outcomes.iter().filter(|o| o.improved()).count();
        eprintln!(
            "tune: budget {budget}, {improved}/{} workloads improved; wrote BENCH_tune.json",
            outcomes.len()
        );
    }
    let result = tune::report(&outcomes, budget);
    if let Some(dir) = &cli.out_dir {
        write_out(dir, std::slice::from_ref(&result));
    }
    emit(vec![result], cli.json);
    0
}

/// `flexsim prove [WORKLOAD]`: the symbolic cycle/ledger prover. Exits
/// non-zero when any (workload, architecture) pair's static prediction
/// diverges from the engine recording (FXC10).
fn prove_workload(cli: &Cli) -> i32 {
    use flexsim_experiments::prove;
    let nets = match resolve_workloads(cli, "prove") {
        Ok(nets) => nets,
        Err(code) => return code,
    };
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let ctx = flexsim_experiments::ExperimentCtx::parallel("prove", jobs);
    let outcomes = prove::run_workloads(&ctx, &nets, cli.mutate);
    let mismatches = outcomes.iter().filter(|o| !o.proved()).count();
    let result = prove::report(&outcomes);
    if let Some(dir) = &cli.out_dir {
        write_out(dir, std::slice::from_ref(&result));
    }
    if cli.json {
        let mut text = prove::json_doc(&outcomes).pretty();
        text.push('\n');
        print!("{text}");
    } else {
        emit(vec![result], false);
    }
    eprintln!(
        "prove: {}/{} pairs proved (static == dynamic cycles + ledger)",
        outcomes.len() - mismatches,
        outcomes.len()
    );
    i32::from(mismatches > 0)
}

fn write_out(dir: &str, results: &[ExperimentResult]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(2);
    }
    for r in results {
        let txt = format!("{dir}/{}.txt", r.id);
        let json = format!("{dir}/{}.json", r.id);
        if let Err(e) =
            std::fs::write(&txt, r.to_string()).and_then(|_| std::fs::write(&json, r.to_json()))
        {
            eprintln!("cannot write {txt}/{json}: {e}");
            std::process::exit(2);
        }
    }
    eprintln!("wrote {} experiments to {dir}/", results.len());
}

fn emit(results: Vec<ExperimentResult>, json: bool) {
    if json {
        let blobs: Vec<String> = results.iter().map(ExperimentResult::to_json).collect();
        println!("[{}]", blobs.join(",\n"));
    } else {
        for r in results {
            println!("{r}");
        }
    }
}
