//! `flexsim` — CLI driver for the FlexFlow (HPCA'17) evaluation
//! experiments.
//!
//! ```text
//! flexsim all              # every table/figure, paper order
//! flexsim fig15 table06    # selected experiments
//! flexsim --json all       # machine-readable output
//! flexsim --out DIR all    # also write one .txt + .json per experiment
//! flexsim --list           # available experiment ids
//! ```

use flexsim_experiments::{experiment_ids, run_all, run_by_id};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a.as_str() == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();

    if args.iter().any(|a| a == "--list") {
        for id in experiment_ids() {
            println!("{id}");
        }
        return;
    }
    let results = if ids.is_empty() || ids.iter().any(|a| a.as_str() == "all") {
        run_all()
    } else {
        let mut results = Vec::new();
        for id in ids {
            match run_by_id(id) {
                Some(r) => results.push(r),
                None => {
                    eprintln!(
                        "unknown experiment {id:?}; available: {}",
                        experiment_ids().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        results
    };
    if let Some(dir) = out_dir {
        write_out(&dir, &results);
    }
    emit(results, json);
}

fn write_out(dir: &str, results: &[flexsim_experiments::ExperimentResult]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(1);
    }
    for r in results {
        let txt = format!("{dir}/{}.txt", r.id);
        let json = format!("{dir}/{}.json", r.id);
        if let Err(e) =
            std::fs::write(&txt, r.to_string()).and_then(|_| std::fs::write(&json, r.to_json()))
        {
            eprintln!("cannot write {txt}/{json}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("wrote {} experiments to {dir}/", results.len());
}

fn emit(results: Vec<flexsim_experiments::ExperimentResult>, json: bool) {
    if json {
        let blobs: Vec<String> = results.iter().map(|r| r.to_json()).collect();
        println!("[{}]", blobs.join(",\n"));
    } else {
        for r in results {
            println!("{r}");
        }
    }
}
