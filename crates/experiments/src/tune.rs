//! `flexsim tune` — the mapping auto-tuner.
//!
//! Not a figure from the paper: an optimizer over the paper's own
//! search space. The baseline it must beat is the *paper-default
//! mapping*: the published Table 4 factors where the paper gives them
//! (and they fit the engine), else the Section 5 analyzer chain
//! ([`analyzer_chain`] — greedy per-layer unrolling with the IADP
//! placement rule carried forward). Both leave recoverable idle
//! cycles: the greedy chain forces a mapping residue (`Ur·Uc < D²`)
//! the engine then pays on every tile wherever consecutive shapes
//! disagree, and some published factors are simply not cycle-optimal.
//! The tuner relaxes the IADP *equality* while keeping the successor
//! pooling bound `Tr, Tc ≤ P·K'`, and searches each layer's full
//! legal space:
//!
//! 1. **enumerate** — [`flexsim_dataflow::tune`] generates the
//!    candidate unrollings per layer ([`Budget::Full`] = the exhaustive
//!    cross product, [`Budget::Smoke`] = a power-of-two grid,
//!    [`Budget::Cap`] = a deterministic prefix of the full space);
//! 2. **lint-prune** — [`flexcheck::prune_candidates`] rejects illegal
//!    candidates against all nine FXC rules *before* anything runs;
//! 3. **simulate** — surviving candidates are scored across the
//!    work-stealing pool ([`ExperimentCtx::map`], deterministic at any
//!    `--jobs` level) with the exact [`LossLedger`] cost function:
//!    the candidate's full per-cause loss ledger, synthesized from the
//!    closed-form engine schedule (proved equal to the cycle-stepped
//!    engine's recorded ledger, see below);
//! 4. **score** — the winner minimizes total attributed lost
//!    PE-cycles, ties broken by candidate index with the paper-default
//!    mapping seeded at index 0 and the repo compiler's DP plan
//!    ([`plan_network`]) seeded right behind it — so the tuner can
//!    never select a mapping worse than either (the
//!    monotonic-improvement invariant).
//!
//! The winner is then **verified**, not trusted: the cycle-stepped
//! engine re-runs both the default and the tuned mapping through a
//! cycle recorder, the recorded ledger must equal the analytic one on
//! every cause ([`recorded_ledger`]), and the assembled tuned
//! [`Program`] must pass the full flexcheck rule set. The before/after
//! loss attribution per cause is a [`LossDelta`] over the *recorded*
//! ledgers.

use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{eng, ExperimentResult, Table};
use flexcheck::ArchParams;
use flexflow::analytic::{ledger_events, schedule_default};
use flexflow::isa::Instr;
use flexflow::{FlexFlow, Program};
use flexsim_arch::Accelerator;
use flexsim_dataflow::search::{analyzer_chain, best_unroll, plan_network, LayerChoice};
use flexsim_dataflow::tune as search_space;
use flexsim_dataflow::{utilization, Unroll};
use flexsim_model::{workloads, ConvLayer, Layer, Network};
use flexsim_obs::attrib::{LossDelta, LossLedger, StallCause};
use flexsim_obs::cycles::{CycleRecorder, LayerCtx, LayerTimeline, SinkHandle};
use flexsim_testkit::json::Json;
use std::fmt;
use std::sync::Arc;

/// Engine side the tuner targets (the paper's 16×16 configuration).
const D: usize = 16;

/// Candidates per scoring task — small enough to balance across the
/// pool, large enough that task overhead stays negligible.
const SCORE_CHUNK: usize = 256;

/// How hard `flexsim tune` searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// Power-of-two grid per axis — the CI smoke budget.
    Smoke,
    /// The exhaustive legal search space (the CLI default).
    Full,
    /// A deterministic prefix of the full space, at most this many
    /// candidates per layer (the paper-default mapping always stays
    /// seeded at index 0).
    Cap(usize),
}

impl Budget {
    /// Parses a `--budget` value: `smoke`, `full`, or a positive
    /// per-layer candidate cap.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for anything else.
    pub fn parse(s: &str) -> Result<Budget, String> {
        match s {
            "smoke" => Ok(Budget::Smoke),
            "full" => Ok(Budget::Full),
            _ => match s.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Budget::Cap(n)),
                _ => Err(format!(
                    "--budget requires `smoke`, `full`, or a positive candidate cap, got {s:?}"
                )),
            },
        }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Budget::Smoke => f.write_str("smoke"),
            Budget::Full => f.write_str("full"),
            Budget::Cap(n) => write!(f, "{n}"),
        }
    }
}

/// How `flexsim tune` verifies its before/after ledgers on the
/// cycle-stepped engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyMode {
    /// Re-run both the paper-default and the tuned mapping on the
    /// engine (the CLI default).
    Engine,
    /// `--static`: keep the default side symbolic ([`analytic_ledger`],
    /// which `FXC10` proves equal to the engine's emission) and
    /// engine-verify the winners only — half the simulation work, the
    /// same winners and deltas by the cycle-exactness proof.
    Static,
}

impl VerifyMode {
    /// The display form (`engine` / `static`) for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Engine => "engine",
            VerifyMode::Static => "static",
        }
    }
}

/// The registry entry (not part of the sweep): `flexsim tune` at the
/// smoke budget over every Table 1 workload.
pub struct Tune;

impl Experiment for Tune {
    fn id(&self) -> &'static str {
        "tune"
    }
    fn title(&self) -> &'static str {
        "Mapping auto-tuner: recovered mapping-residue idle (flexsim tune)"
    }
    fn in_sweep(&self) -> bool {
        false
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        let outcomes = tune_workloads(ctx, &workloads::all(), Budget::Smoke);
        report(&outcomes, Budget::Smoke)
    }
}

/// The paper-default mapping per CONV layer: the published Table 4
/// factors where the paper gives them and they fit the engine (clamped
/// to the layer, Constraint (1), the successor bound, and the
/// flexcheck candidate rules), else the Section 5 analyzer chain.
///
/// Returns `(choice, source)` with `source` either `"table4"` or
/// `"analyzer"`. Clamping follows `table04`: FR C1's published
/// `Tj=15` exceeds its kernel (`K=5`) and is clamped to it; layers
/// the paper never published (PV C5–C7, all of AlexNet and VGG-11)
/// take the analyzer chain.
pub fn paper_defaults(net: &Network) -> Vec<(LayerChoice, &'static str)> {
    let arch = ArchParams::flexflow_paper();
    let chain = analyzer_chain(net, D);
    let idxs = net.conv_indices();
    net.conv_layers()
        .enumerate()
        .map(|(pos, layer)| {
            let rc_bound = net
                .successor_coupling(idxs[pos])
                .map(|c| c.pool_window * c.next_conv.k());
            let published = crate::paper::TABLE4
                .iter()
                .find(|(w, l, _)| *w == net.name() && *l == layer.name());
            if let Some(&(_, _, pf)) = published {
                let u = Unroll::new(pf[0], pf[1], pf[2], pf[3], pf[4], pf[5]).clamped_to(layer);
                let legal = u.satisfies(layer, D, rc_bound)
                    && flexcheck::prune_candidates(layer, idxs[pos], &[u], &arch)
                        .legal
                        .contains(&u);
                if legal {
                    return (choice_for(layer, u, D), "table4");
                }
            }
            (chain[pos].clone(), "analyzer")
        })
        .collect()
}

/// One CONV layer's tuning result.
#[derive(Clone, Debug)]
pub struct LayerReport {
    /// The paper-default choice (Table 4 factors or analyzer chain —
    /// see [`paper_defaults`]): the before side of the comparison.
    pub default: LayerChoice,
    /// Where the default came from: `"table4"` or `"analyzer"`.
    pub source: &'static str,
    /// The repo compiler's DP choice ([`plan_network`]) — seeded into
    /// the search, so the tuner also never loses to the shipped plan.
    pub planned: LayerChoice,
    /// Engine cycles of the planned choice, same basis as the
    /// before/after cycles (tile count plus fill and spill stalls).
    pub planned_cycles: u64,
    /// The tuner's winner (equals the default when nothing beats it).
    pub tuned: LayerChoice,
    /// Before/after loss attribution over the *recorded* engine
    /// ledgers.
    pub delta: LossDelta,
    /// Candidates the budget enumerated.
    pub enumerated: usize,
    /// Candidates surviving the flexcheck prune (after seeding and
    /// capping — what was actually scored).
    pub scored: usize,
    /// Candidates the flexcheck prune rejected.
    pub pruned: usize,
}

/// One workload's tuning result: the per-layer table plus the
/// assembled (and flexcheck-verified) tuned program.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Workload name.
    pub workload: String,
    /// One entry per CONV layer, in network order.
    pub layers: Vec<LayerReport>,
    /// The tuned program (relaxed coupling, same instruction shape as
    /// the compiler's output).
    pub program: Program,
}

impl TuneOutcome {
    /// PE-cycles recovered from the two mapping-shape causes the tuner
    /// targets: `mapping-residue-idle` and `edge-fragmentation`.
    pub fn residue_edge_recovered(&self) -> i64 {
        self.layers
            .iter()
            .map(|l| {
                l.delta.recovered(StallCause::MappingResidueIdle)
                    + l.delta.recovered(StallCause::EdgeFragmentation)
            })
            .sum()
    }

    /// Net PE-cycles recovered across all causes and layers.
    pub fn recovered_pe_cycles(&self) -> i64 {
        self.layers.iter().map(|l| l.delta.total_recovered()).sum()
    }

    /// Whether the tuner beat the paper-default mapping on this
    /// workload (strictly positive residue + edge recovery).
    pub fn improved(&self) -> bool {
        self.residue_edge_recovered() > 0
    }
}

/// The exact cost function: the candidate's per-cause loss ledger,
/// synthesized from the closed-form engine schedule in O(stripes)
/// instead of stepping O(tile-count) cycles. [`recorded_ledger`]
/// proves it equal to the cycle-stepped engine's emission.
///
/// # Panics
///
/// Panics if `u` over-occupies the engine — prune with flexcheck
/// first.
pub fn analytic_ledger(layer: &ConvLayer, u: Unroll) -> LossLedger {
    let sch = schedule_default(layer, u, D);
    LossLedger::from_timeline(&LayerTimeline {
        ctx: LayerCtx::new("FlexFlow", layer.name(), (D * D) as u32),
        events: ledger_events(&sch),
    })
}

/// Runs `layer` under `u` on the cycle-stepped engine with a private
/// recorder and returns the recorded ledger — after asserting it is
/// FXC09-exact *and* equal, cause by cause, to [`analytic_ledger`].
/// This is the proof obligation behind scoring analytically.
///
/// # Panics
///
/// Panics when the recorded and analytic ledgers disagree (a cost-
/// function bug) or the ledger fails flexcheck FXC09.
pub fn recorded_ledger(layer: &ConvLayer, u: Unroll) -> LossLedger {
    let rec = Arc::new(CycleRecorder::new());
    let mut engine = FlexFlow::paper_config();
    engine.attach_sink(SinkHandle::new(rec.clone()));
    let _ = engine.run_conv_with(layer, u);
    let timelines = rec.take();
    assert_eq!(timelines.len(), 1, "{}: one timeline per run", layer.name());
    let ledger = LossLedger::from_timeline(&timelines[0]);
    let diags = flexcheck::check_ledger(&ledger);
    assert!(
        diags.is_empty(),
        "{}/{u}: {}",
        layer.name(),
        flexcheck::render(&diags)
    );
    let analytic = analytic_ledger(layer, u);
    assert_eq!(
        analytic.total_cycles,
        ledger.total_cycles,
        "{}/{u}: analytic cycles diverge from the engine",
        layer.name()
    );
    assert_eq!(
        analytic.busy_pe_cycles,
        ledger.busy_pe_cycles,
        "{}/{u}: analytic MACs diverge from the engine",
        layer.name()
    );
    for cause in StallCause::ALL {
        assert_eq!(
            analytic.lost(cause),
            ledger.lost(cause),
            "{}/{u}: analytic {cause} attribution diverges from the engine",
            layer.name()
        );
    }
    ledger
}

/// A [`LayerChoice`] for an arbitrary unrolling (the tuner's winners
/// are outside [`plan_network`]'s IADP-coupled space).
fn choice_for(layer: &ConvLayer, u: Unroll, d: usize) -> LayerChoice {
    LayerChoice {
        layer: layer.name().to_owned(),
        unroll: u,
        d,
        row_util: utilization::row_utilization(layer, &u, d),
        col_util: utilization::col_utilization(layer, &u, d),
        cycles: utilization::tile_count(layer, &u),
    }
}

/// One layer's scored search space.
struct CandidateSet {
    /// Legal candidates, the paper default seeded at index 0 and the
    /// compiler's DP plan right behind it (capped last, so the default
    /// seed survives any cap).
    legal: Vec<Unroll>,
    enumerated: usize,
    pruned: usize,
}

/// Enumerates, lint-prunes, and seeds one layer's candidate list.
fn seeded_candidates(
    layer: &ConvLayer,
    layer_index: usize,
    rc_bound: Option<usize>,
    budget: Budget,
    default_u: Unroll,
    plan_u: Unroll,
    arch: &ArchParams,
) -> CandidateSet {
    let raw = match budget {
        Budget::Full | Budget::Cap(_) => search_space::full_candidates(layer, D, rc_bound),
        Budget::Smoke => search_space::grid_candidates(layer, D, rc_bound),
    };
    let enumerated = raw.len();
    let pruned = flexcheck::prune_candidates(layer, layer_index, &raw, arch);
    let mut legal = pruned.legal;
    legal.retain(|u| *u != default_u && *u != plan_u);
    if plan_u != default_u {
        legal.insert(0, plan_u);
    }
    legal.insert(0, default_u);
    if let Budget::Cap(n) = budget {
        legal.truncate(n.max(1));
    }
    CandidateSet {
        legal,
        enumerated,
        pruned: pruned.pruned,
    }
}

/// One scoring task: a contiguous chunk of one layer's candidates.
struct ScoreItem {
    pos: usize,
    base: usize,
    layer: ConvLayer,
    cands: Vec<Unroll>,
}

/// Tunes one workload: enumerate → lint-prune → simulate → score per
/// CONV layer, then verify the winners on the cycle-stepped engine and
/// assemble the flexcheck-clean tuned program.
///
/// # Panics
///
/// Panics if any verification step fails (analytic/recorded ledger
/// divergence, a tuned mapping scoring worse than the default, or the
/// assembled program failing flexcheck).
pub fn tune_network(ctx: &ExperimentCtx, net: &Network, budget: Budget) -> TuneOutcome {
    tune_network_with(ctx, net, budget, VerifyMode::Engine)
}

/// [`tune_network`] with an explicit verification mode:
/// [`VerifyMode::Static`] scores and baselines symbolically and
/// engine-verifies the winners only.
///
/// # Panics
///
/// Same contract as [`tune_network`].
pub fn tune_network_with(
    ctx: &ExperimentCtx,
    net: &Network,
    budget: Budget,
    mode: VerifyMode,
) -> TuneOutcome {
    let arch = ArchParams::flexflow_paper();
    let defaults = paper_defaults(net);
    let plan = plan_network(net, D);
    let idxs = net.conv_indices();
    let convs: Vec<ConvLayer> = net.conv_layers().cloned().collect();

    // Phases 1 + 2: enumerate and lint-prune (static, microseconds).
    let sets: Vec<CandidateSet> = convs
        .iter()
        .enumerate()
        .map(|(pos, layer)| {
            let bound = net
                .successor_coupling(idxs[pos])
                .map(|c| c.pool_window * c.next_conv.k());
            seeded_candidates(
                layer,
                idxs[pos],
                bound,
                budget,
                defaults[pos].0.unroll,
                plan[pos].unroll,
                &arch,
            )
        })
        .collect();

    // Phase 3: score every surviving candidate across the pool. Chunks
    // of every layer fan out together; the winner per layer minimizes
    // (attributed lost PE-cycles, candidate index) — the default sits
    // at index 0, so selection is monotonic and deterministic.
    let mut items = Vec::new();
    for (pos, (layer, set)) in convs.iter().zip(&sets).enumerate() {
        for (chunk_idx, chunk) in set.legal.chunks(SCORE_CHUNK).enumerate() {
            items.push(ScoreItem {
                pos,
                base: chunk_idx * SCORE_CHUNK,
                layer: layer.clone(),
                cands: chunk.to_vec(),
            });
        }
    }
    let scored = ctx.map(
        items,
        |it| format!("{}/score@{}", it.layer.name(), it.base),
        |_tctx, it: ScoreItem| {
            let mut best: Option<(u64, usize, Unroll)> = None;
            for (off, &u) in it.cands.iter().enumerate() {
                let lost = analytic_ledger(&it.layer, u).attributed_lost();
                let idx = it.base + off;
                if best.is_none_or(|(bl, bi, _)| (lost, idx) < (bl, bi)) {
                    best = Some((lost, idx, u));
                }
            }
            (it.pos, best.expect("chunks are never empty"))
        },
    );
    let mut winners: Vec<Option<(u64, usize, Unroll)>> = vec![None; convs.len()];
    for (pos, cand) in scored {
        let slot = &mut winners[pos];
        if slot.is_none_or(|(bl, bi, _)| (cand.0, cand.1) < (bl, bi)) {
            *slot = Some(cand);
        }
    }

    // Verification: the cycle-stepped engine re-runs the winner (and,
    // in engine mode, the default too); recorded must equal analytic
    // on every cause. In static mode the default side stays symbolic —
    // FXC10 proves the two bases identical, so the deltas are too.
    struct VerifyItem {
        layer: ConvLayer,
        default_u: Unroll,
        tuned_u: Unroll,
    }
    let vitems: Vec<VerifyItem> = convs
        .iter()
        .enumerate()
        .map(|(pos, layer)| VerifyItem {
            layer: layer.clone(),
            default_u: defaults[pos].0.unroll,
            tuned_u: winners[pos].expect("every layer scored").2,
        })
        .collect();
    let verified: Vec<(LossLedger, LossLedger)> = ctx.map(
        vitems,
        |it| format!("{}/verify", it.layer.name()),
        move |_tctx, it: VerifyItem| {
            let before = match mode {
                VerifyMode::Engine => recorded_ledger(&it.layer, it.default_u),
                VerifyMode::Static => analytic_ledger(&it.layer, it.default_u),
            };
            (before, recorded_ledger(&it.layer, it.tuned_u))
        },
    );

    let mut layers = Vec::with_capacity(convs.len());
    let mut tuned_choices = Vec::with_capacity(convs.len());
    for (pos, layer) in convs.iter().enumerate() {
        let (before, after) = &verified[pos];
        assert!(
            after.attributed_lost() <= before.attributed_lost(),
            "{}/{}: tuned mapping scores worse than the default",
            net.name(),
            layer.name()
        );
        let tuned_u = winners[pos].expect("every layer scored").2;
        let tuned = choice_for(layer, tuned_u, D);
        // The DP plan was seeded, so the winner dominates it too.
        assert!(
            tuned.cycles <= plan[pos].cycles,
            "{}/{}: tuned mapping scores worse than the compiler plan",
            net.name(),
            layer.name()
        );
        layers.push(LayerReport {
            default: defaults[pos].0.clone(),
            source: defaults[pos].1,
            planned: plan[pos].clone(),
            planned_cycles: analytic_ledger(layer, plan[pos].unroll).total_cycles,
            tuned: tuned.clone(),
            delta: LossDelta::between(before, after),
            enumerated: sets[pos].enumerated,
            scored: sets[pos].legal.len(),
            pruned: sets[pos].pruned,
        });
        tuned_choices.push(tuned);
    }

    let program = tuned_program(net, D, tuned_choices);
    let diags = flexcheck::check(&program, net, &arch);
    assert!(
        !flexcheck::has_errors(&diags),
        "{}: tuned program fails flexcheck: {}",
        net.name(),
        flexcheck::render(&diags)
    );
    TuneOutcome {
        workload: net.name().to_owned(),
        layers,
        program,
    }
}

/// Tunes a list of workloads in order (each fans internally).
pub fn tune_workloads(ctx: &ExperimentCtx, nets: &[Network], budget: Budget) -> Vec<TuneOutcome> {
    tune_workloads_with(ctx, nets, budget, VerifyMode::Engine)
}

/// [`tune_workloads`] with an explicit [`VerifyMode`].
pub fn tune_workloads_with(
    ctx: &ExperimentCtx,
    nets: &[Network],
    budget: Budget,
    mode: VerifyMode,
) -> Vec<TuneOutcome> {
    nets.iter()
        .map(|net| tune_network_with(ctx, net, budget, mode))
        .collect()
}

/// Lowers a network with explicit per-CONV-layer choices — the same
/// instruction shape as [`flexflow::Compiler::compile`], with the
/// tuner's unrollings in the `Configure` stream (FC layers keep the
/// compiler's per-layer optimum; they are uncoupled 1×1 views).
///
/// # Panics
///
/// Panics if `tuned` has fewer entries than the network has CONV
/// layers.
pub fn tuned_program(net: &Network, d: usize, tuned: Vec<LayerChoice>) -> Program {
    let mut conv_plan = tuned.into_iter();
    let mut choices = Vec::new();
    let mut instrs = Vec::new();
    for (li, layer) in net.layers().iter().enumerate() {
        let layer_u8 = li as u8;
        match layer {
            Layer::Conv(_) => {
                let choice = conv_plan.next().expect("one tuned choice per CONV layer");
                instrs.push(Instr::Configure {
                    layer: layer_u8,
                    unroll: choice.unroll,
                });
                instrs.push(Instr::LoadKernels { layer: layer_u8 });
                instrs.push(Instr::Conv { layer: layer_u8 });
                instrs.push(Instr::SwapBuffers);
                choices.push(choice);
            }
            Layer::Pool(_) => instrs.push(Instr::Pool { layer: layer_u8 }),
            Layer::Fc(fc) => {
                let choice = best_unroll(&fc.as_conv(), d, None);
                instrs.push(Instr::Configure {
                    layer: layer_u8,
                    unroll: choice.unroll,
                });
                instrs.push(Instr::LoadKernels { layer: layer_u8 });
                instrs.push(Instr::Conv { layer: layer_u8 });
                instrs.push(Instr::SwapBuffers);
                choices.push(choice);
            }
        }
    }
    instrs.push(Instr::Halt);
    Program::from_parts(net.name(), d, choices, instrs)
}

/// Renders the best-mapping table with before/after loss attribution.
pub fn report(outcomes: &[TuneOutcome], budget: Budget) -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "layer",
        "default",
        "tuned",
        "cycles",
        "tuned cycles",
        "lost PE-cyc",
        "tuned lost",
        "recovered (cause)",
        "cands scored/enum",
    ]);
    for o in outcomes {
        let mut recovered_all = 0i64;
        for l in &o.layers {
            recovered_all += l.delta.total_recovered();
            let default_cell = if l.source == "table4" {
                format!("{} *", l.default.unroll)
            } else {
                l.default.unroll.to_string()
            };
            table.push_row([
                o.workload.clone(),
                l.default.layer.clone(),
                default_cell,
                l.tuned.unroll.to_string(),
                l.delta.before_cycles.to_string(),
                l.delta.after_cycles.to_string(),
                eng(l.delta.before_total() as f64),
                eng(l.delta.after_total() as f64),
                fmt_recoveries(&l.delta),
                format!("{}/{}", l.scored, l.enumerated),
            ]);
        }
        table.push_row([
            o.workload.clone(),
            "(all)".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            o.layers
                .iter()
                .map(|l| l.delta.before_cycles)
                .sum::<u64>()
                .to_string(),
            o.layers
                .iter()
                .map(|l| l.delta.after_cycles)
                .sum::<u64>()
                .to_string(),
            eng(o.layers.iter().map(|l| l.delta.before_total()).sum::<u64>() as f64),
            eng(o.layers.iter().map(|l| l.delta.after_total()).sum::<u64>() as f64),
            recovered_all.to_string(),
            if o.improved() { "improved" } else { "tie" }.to_owned(),
        ]);
    }
    let improved = outcomes.iter().filter(|o| o.improved()).count();
    let total_layers: usize = outcomes.iter().map(|o| o.layers.len()).sum();
    let plan_optimal = outcomes
        .iter()
        .flat_map(|o| &o.layers)
        .filter(|l| l.tuned.cycles == l.planned.cycles)
        .count();
    let mut notes = vec![
        format!(
            "Budget `{budget}`: per layer, candidates are enumerated, \
             lint-pruned by flexcheck (FXC01-FXC09) before any \
             simulation, scored with the exact LossLedger cost \
             function across the pool, and the winner verified on the \
             cycle-stepped engine (recorded == analytic on every \
             cause)."
        ),
        "Defaults marked `*` are the paper's published Table 4 factors \
         (clamped); the rest come from the Section 5 analyzer chain \
         (greedy + IADP placement). The default is seeded at candidate \
         index 0 and the repo compiler's DP plan right behind it, so a \
         tuned mapping never scores worse than either (monotonic \
         improvement). The tuner relaxes IADP *equality* between \
         consecutive CONV layers but keeps the successor pooling bound \
         Tr, Tc \u{2264} P\u{b7}K'."
            .into(),
        format!(
            "{improved} of {} workloads recover mapping-residue-idle + \
             edge-fragmentation PE-cycles over the paper-default \
             mappings; the compiler's DP plan already matches the tuned \
             cycle count on {plan_optimal} of {total_layers} layers.",
            outcomes.len()
        ),
    ];
    if budget == Budget::Full {
        notes.push(
            "Budget `full` is exhaustive, so a tie is a certificate: the \
             default mapping is cycle-optimal over the entire \
             Constraint-(1)-legal unrolling space for that layer."
                .into(),
        );
    }
    ExperimentResult {
        id: "tune".into(),
        title: Tune.title().into(),
        notes,
        table,
    }
}

/// The nonzero per-cause recoveries, largest first (`-` when the tuned
/// mapping ties the default).
fn fmt_recoveries(delta: &LossDelta) -> String {
    let top = delta.top_recoveries();
    if top.is_empty() {
        return "-".to_owned();
    }
    top.iter()
        .map(|(cause, d)| format!("{cause} {d:+}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The `BENCH_tune.json` document: per-workload, per-layer, per-cause
/// before/after attribution plus the honesty fields (`BENCH_pool.json`
/// convention: parallelism, rustc, commit, heatmap cells).
pub fn bench_json(outcomes: &[TuneOutcome], budget: Budget) -> Json {
    let improved = outcomes.iter().filter(|o| o.improved()).count();
    Json::obj(
        [
            ("bench", Json::str("tune")),
            ("budget", Json::str(budget.to_string())),
            ("baseline", Json::str("table4+analyzer-chain")),
        ]
        .into_iter()
        // This document is byte-identity-tested across reruns, so the
        // one wall-clock honesty field stays out; the timing-bearing
        // artifacts (BENCH_pool.json, BENCH_history.jsonl) carry it.
        .chain(
            crate::bench::honesty_fields()
                .into_iter()
                .filter(|(k, _)| *k != "spatial_overhead_pct"),
        )
        .chain([
            ("workloads_total", Json::Int(outcomes.len() as i64)),
            ("workloads_improved", Json::Int(improved as i64)),
            // Only the exhaustive budget turns a tie into an optimality
            // certificate; capped budgets leave the question open.
            (
                "workloads_confirmed_optimal",
                Json::Int(if budget == Budget::Full {
                    (outcomes.len() - improved) as i64
                } else {
                    0
                }),
            ),
            (
                "recovered_pe_cycles",
                Json::Int(outcomes.iter().map(TuneOutcome::recovered_pe_cycles).sum()),
            ),
            (
                "residue_edge_recovered",
                Json::Int(
                    outcomes
                        .iter()
                        .map(TuneOutcome::residue_edge_recovered)
                        .sum(),
                ),
            ),
            (
                "workloads",
                Json::arr(outcomes.iter().map(|o| {
                    Json::obj([
                        ("workload", Json::str(&o.workload)),
                        (
                            "improved",
                            Json::str(if o.improved() { "yes" } else { "no" }),
                        ),
                        (
                            "residue_edge_recovered",
                            Json::Int(o.residue_edge_recovered()),
                        ),
                        ("recovered_pe_cycles", Json::Int(o.recovered_pe_cycles())),
                        (
                            "layers",
                            Json::arr(o.layers.iter().map(|l| {
                                Json::obj([
                                    ("layer", Json::str(&l.default.layer)),
                                    ("default", Json::str(l.default.unroll.to_string())),
                                    ("baseline_source", Json::str(l.source)),
                                    ("tuned", Json::str(l.tuned.unroll.to_string())),
                                    ("cycles_before", Json::Int(l.delta.before_cycles as i64)),
                                    ("cycles_after", Json::Int(l.delta.after_cycles as i64)),
                                    ("cycles_planned", Json::Int(l.planned_cycles as i64)),
                                    ("lost_before", per_cause(|c| l.delta.before(c) as i64)),
                                    ("lost_after", per_cause(|c| l.delta.after(c) as i64)),
                                    ("recovered", per_cause(|c| l.delta.recovered(c))),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ]),
    )
}

/// A per-cause JSON object, all seven causes in taxonomy order (byte-
/// stable keys).
fn per_cause(f: impl Fn(StallCause) -> i64) -> Json {
    Json::obj(StallCause::ALL.iter().map(|&c| (c.name(), Json::Int(f(c)))))
}

/// Aggregate tune-sweep numbers for the bench-history perf log.
pub(crate) struct SweepTotals {
    /// Net PE-cycles recovered across all workloads (smoke budget).
    pub recovered_pe_cycles: i64,
    /// Workloads with positive residue + edge recovery.
    pub workloads_improved: usize,
}

/// Runs the smoke-budget tune sweep and aggregates the recovery totals
/// `bench history` appends (and `bench check` gates on).
pub(crate) fn sweep_totals(jobs: usize) -> SweepTotals {
    sweep_totals_with(jobs, VerifyMode::Engine)
}

/// [`sweep_totals`] under an explicit [`VerifyMode`] — `bench history`
/// times both modes so the `--static` wall-time saving is a recorded,
/// regression-gated number rather than a claim.
pub(crate) fn sweep_totals_with(jobs: usize, mode: VerifyMode) -> SweepTotals {
    let ctx = ExperimentCtx::parallel("tune", jobs);
    let outcomes = tune_workloads_with(&ctx, &workloads::all(), Budget::Smoke, mode);
    SweepTotals {
        recovered_pe_cycles: outcomes.iter().map(TuneOutcome::recovered_pe_cycles).sum(),
        workloads_improved: outcomes.iter().filter(|o| o.improved()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parses_smoke_full_and_caps() {
        assert_eq!(Budget::parse("smoke"), Ok(Budget::Smoke));
        assert_eq!(Budget::parse("full"), Ok(Budget::Full));
        assert_eq!(Budget::parse("500"), Ok(Budget::Cap(500)));
        for bad in ["0", "-3", "exhaustive", "1.5", ""] {
            assert!(Budget::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        assert_eq!(Budget::Smoke.to_string(), "smoke");
        assert_eq!(Budget::Cap(64).to_string(), "64");
    }

    #[test]
    fn analytic_ledger_matches_the_recorded_engine() {
        // The proof obligation, spot-checked directly: recorded_ledger
        // asserts per-cause equality internally.
        let layer = ConvLayer::new("C3", 16, 6, 10, 5).with_input_size(14);
        for u in [
            Unroll::new(16, 3, 1, 1, 1, 5),
            Unroll::new(3, 8, 1, 5, 1, 2),
            Unroll::new(1, 1, 1, 1, 1, 1),
        ] {
            let rec = recorded_ledger(&layer, u);
            assert!(rec.is_exact());
            assert_eq!(rec.busy_pe_cycles, layer.macs());
        }
        // A segmented layer exercises the psum-spill event too.
        let deep = ConvLayer::new("C5", 32, 256, 13, 3).with_input_size(13);
        let rec = recorded_ledger(&deep, Unroll::new(4, 2, 1, 2, 1, 3));
        assert!(rec.lost(StallCause::PsumSpillRoundTrip) > 0);
    }

    #[test]
    fn paper_defaults_prefer_published_table4_factors() {
        // LeNet-5's published C1/C3 rows are feasible and stand as the
        // baseline; FR C1's published Tj=15 is clamped to its kernel
        // (K=5), as in table04; AlexNet has no Table 4 rows at all.
        let lenet = paper_defaults(&workloads::lenet5());
        assert_eq!(lenet[0].1, "table4");
        assert_eq!(lenet[0].0.unroll, Unroll::new(3, 1, 1, 5, 3, 5));
        assert_eq!(lenet[1].1, "table4");
        assert_eq!(lenet[1].0.unroll, Unroll::new(16, 3, 1, 1, 1, 5));
        let fr = paper_defaults(&workloads::fr());
        assert_eq!(fr[0].1, "table4");
        assert_eq!(fr[0].0.unroll, Unroll::new(4, 1, 1, 4, 3, 5));
        assert_eq!(fr[1].1, "table4");
        for (_, src) in paper_defaults(&workloads::alexnet()) {
            assert_eq!(src, "analyzer");
        }
    }

    #[test]
    fn pv_tuning_is_monotonic_and_improves() {
        let ctx = ExperimentCtx::serial("tune");
        let net = workloads::pv();
        let outcome = tune_network(&ctx, &net, Budget::Full);
        assert_eq!(outcome.layers.len(), net.conv_layers().count());
        for l in &outcome.layers {
            // Monotonic: never worse than the default or the DP plan.
            assert!(
                l.delta.after_total() <= l.delta.before_total(),
                "{}",
                l.default.layer
            );
            assert!(l.tuned.cycles <= l.planned.cycles, "{}", l.default.layer);
            assert!(l.scored <= l.enumerated + 2, "{}", l.default.layer);
        }
        // The paper's published PV C3 factors cost 120 tiles over the
        // free optimum; the search must recover them.
        assert!(outcome.improved(), "PV should improve under full budget");
        assert!(outcome.recovered_pe_cycles() > 0);
    }

    #[test]
    fn cap_budget_keeps_the_default_seed() {
        // A cap of 1 leaves exactly the paper-default candidate: the
        // tuner degenerates to the baseline, never an empty space.
        let ctx = ExperimentCtx::serial("tune");
        let net = workloads::lenet5();
        let outcome = tune_network(&ctx, &net, Budget::Cap(1));
        for (l, (d, _)) in outcome.layers.iter().zip(paper_defaults(&net)) {
            assert_eq!(l.tuned.unroll, d.unroll);
            assert_eq!(l.delta.total_recovered(), 0);
            assert_eq!(l.scored, 1);
        }
    }

    #[test]
    fn static_verification_matches_the_engine_path() {
        // The --static acceptance bar: symbolic scoring + winner-only
        // engine verification must pick the same winners and report the
        // same before/after attribution as the fully-simulated path.
        let ctx = ExperimentCtx::serial("tune");
        for net in [workloads::pv(), workloads::lenet5(), workloads::hg()] {
            let engine = tune_network_with(&ctx, &net, Budget::Smoke, VerifyMode::Engine);
            let fast = tune_network_with(&ctx, &net, Budget::Smoke, VerifyMode::Static);
            assert_eq!(engine.layers.len(), fast.layers.len());
            for (e, s) in engine.layers.iter().zip(&fast.layers) {
                assert_eq!(e.tuned.unroll, s.tuned.unroll, "{}", e.default.layer);
                assert_eq!(
                    e.delta.before_cycles, s.delta.before_cycles,
                    "{}",
                    e.default.layer
                );
                assert_eq!(
                    e.delta.after_cycles, s.delta.after_cycles,
                    "{}",
                    e.default.layer
                );
                for cause in StallCause::ALL {
                    assert_eq!(
                        e.delta.recovered(cause),
                        s.delta.recovered(cause),
                        "{}/{cause}",
                        e.default.layer
                    );
                }
            }
            assert_eq!(engine.program.instrs(), fast.program.instrs());
        }
    }

    #[test]
    fn tuned_program_mirrors_compiler_shape() {
        let net = workloads::lenet5();
        let compiled = flexflow::Compiler::new(D).compile(&net);
        let p = tuned_program(&net, D, plan_network(&net, D));
        assert_eq!(p.instrs(), compiled.instrs());
        assert_eq!(p.choices(), compiled.choices());
    }

    #[test]
    fn bench_json_is_parseable_and_counts_improvements() {
        let ctx = ExperimentCtx::serial("tune");
        let outcomes = tune_workloads(&ctx, &[workloads::pv()], Budget::Smoke);
        let doc = bench_json(&outcomes, Budget::Smoke);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert!(text.contains("\"bench\": \"tune\""));
        assert!(text.contains("\"budget\": \"smoke\""));
        assert!(text.contains("mapping-residue-idle"));
    }
}
