//! Table 4 — unrolling factors chosen for a 16×16 FlexFlow.
//!
//! Our planner (the Section 5 compiler) reproduces the paper's factor
//! selection problem: maximize utilization under Constraint (1) plus the
//! IADP chain coupling. Factor *sets* may differ from the paper's on
//! ties; the comparison is the achieved utilization.

use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{pct, ExperimentResult, Table};
use flexsim_dataflow::search::plan_network;
use flexsim_dataflow::utilization::total_utilization;
use flexsim_dataflow::Unroll;
use flexsim_model::{workloads, Network};

/// The registry entry for this experiment.
pub struct Table04;

impl Experiment for Table04 {
    fn id(&self) -> &'static str {
        "table04"
    }
    fn title(&self) -> &'static str {
        "Unrolling factors for four workloads (16x16 FlexFlow)"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table4"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

fn nets() -> Vec<Network> {
    vec![
        workloads::pv(),
        workloads::fr(),
        workloads::lenet5(),
        workloads::hg(),
    ]
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let d = 16;
    // The planner's search is the expensive part; one task per workload.
    let per_net = ctx.map(
        nets(),
        |net| net.name().to_owned(),
        move |_tctx, net| {
            let plan = plan_network(&net, d);
            let mut rows: Vec<[String; 6]> = Vec::new();
            for (layer, choice) in net.conv_layers().zip(&plan) {
                // Only C1/C3 appear in the paper's table.
                let paper = crate::paper::TABLE4
                    .iter()
                    .find(|(wl, ln, _)| *wl == net.name() && *ln == layer.name());
                let Some((_, _, pf)) = paper else { continue };
                let ours = choice.unroll;
                let paper_u = Unroll::new(pf[0], pf[1], pf[2], pf[3], pf[4], pf[5]);
                // Evaluate the paper's factors under Eq. 2/3, clamped to the
                // layer bounds where the printed row is infeasible (FR C1).
                let paper_clamped = paper_u.clamped_to(layer);
                let paper_ut = if paper_clamped.cols_used() <= d && paper_clamped.rows_used() <= d {
                    pct(total_utilization(layer, &paper_clamped, d)).to_string()
                } else {
                    "infeasible".to_owned()
                };
                rows.push([
                    net.name().to_owned(),
                    layer.name().to_owned(),
                    format!(
                        "{},{},{},{},{},{}",
                        ours.tm, ours.tn, ours.tr, ours.tc, ours.ti, ours.tj
                    ),
                    pct(choice.total_utilization()),
                    format!(
                        "{},{},{},{},{},{}",
                        pf[0], pf[1], pf[2], pf[3], pf[4], pf[5]
                    ),
                    paper_ut,
                ]);
            }
            rows
        },
    );
    let mut table = Table::new([
        "workload",
        "layer",
        "ours <Tm,Tn,Tr,Tc,Ti,Tj>",
        "ours Ut %",
        "paper <Tm,Tn,Tr,Tc,Ti,Tj>",
        "paper Ut %",
    ]);
    for row in per_net.into_iter().flatten() {
        table.push_row(row);
    }
    ExperimentResult {
        id: "table04".into(),
        title: Table04.title().into(),
        notes: vec![
            "Ties in Ut admit multiple factor sets; ours minimize total \
             workload cycles under the same constraints."
                .into(),
            "The paper's FR C1 row (Ti=3, Tj=15) occupies 45 PEs/row and \
             violates its own <=D bound; it is evaluated clamped."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("table04"))
    }

    #[test]
    fn covers_the_papers_eight_rows() {
        assert_eq!(run_serial().table.rows().len(), 8);
    }

    #[test]
    fn our_utilization_at_least_matches_paper_factors() {
        // Wherever the paper's factors are feasible, our planner must do
        // at least as well on that layer (up to coupling trade-offs
        // elsewhere, allow a small tolerance).
        let r = run_serial();
        for row in r.table.rows() {
            if row[5] == "infeasible" {
                continue;
            }
            let ours: f64 = row[3].parse().unwrap();
            let paper: f64 = row[5].parse().unwrap();
            assert!(
                ours >= paper - 16.0,
                "{}/{}: ours {ours}% far below paper {paper}%",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn planned_utilization_is_high() {
        let r = run_serial();
        for row in r.table.rows() {
            let ours: f64 = row[3].parse().unwrap();
            assert!(ours > 55.0, "{}/{}: {ours}%", row[0], row[1]);
        }
    }
}
