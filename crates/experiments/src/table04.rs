//! Table 4 — unrolling factors chosen for a 16×16 FlexFlow.
//!
//! Our planner (the Section 5 compiler) reproduces the paper's factor
//! selection problem: maximize utilization under Constraint (1) plus the
//! IADP chain coupling. Factor *sets* may differ from the paper's on
//! ties; the comparison is the achieved utilization.

use crate::report::{pct, ExperimentResult, Table};
use flexsim_dataflow::search::plan_network;
use flexsim_dataflow::utilization::total_utilization;
use flexsim_dataflow::Unroll;
use flexsim_model::{workloads, Network};

fn nets() -> Vec<Network> {
    vec![
        workloads::pv(),
        workloads::fr(),
        workloads::lenet5(),
        workloads::hg(),
    ]
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let d = 16;
    let mut table = Table::new([
        "workload",
        "layer",
        "ours <Tm,Tn,Tr,Tc,Ti,Tj>",
        "ours Ut %",
        "paper <Tm,Tn,Tr,Tc,Ti,Tj>",
        "paper Ut %",
    ]);
    for net in nets() {
        let plan = plan_network(&net, d);
        for (layer, choice) in net.conv_layers().zip(&plan) {
            // Only C1/C3 appear in the paper's table.
            let paper = crate::paper::TABLE4
                .iter()
                .find(|(wl, ln, _)| *wl == net.name() && *ln == layer.name());
            let Some((_, _, pf)) = paper else { continue };
            let ours = choice.unroll;
            let paper_u = Unroll::new(pf[0], pf[1], pf[2], pf[3], pf[4], pf[5]);
            // Evaluate the paper's factors under Eq. 2/3, clamped to the
            // layer bounds where the printed row is infeasible (FR C1).
            let paper_clamped = paper_u.clamped_to(layer);
            let paper_ut = if paper_clamped.cols_used() <= d && paper_clamped.rows_used() <= d {
                pct(total_utilization(layer, &paper_clamped, d)).to_string()
            } else {
                "infeasible".to_owned()
            };
            table.push_row([
                net.name().to_owned(),
                layer.name().to_owned(),
                format!(
                    "{},{},{},{},{},{}",
                    ours.tm, ours.tn, ours.tr, ours.tc, ours.ti, ours.tj
                ),
                pct(choice.total_utilization()),
                format!(
                    "{},{},{},{},{},{}",
                    pf[0], pf[1], pf[2], pf[3], pf[4], pf[5]
                ),
                paper_ut,
            ]);
        }
    }
    ExperimentResult {
        id: "table04".into(),
        title: "Unrolling factors for four workloads (16x16 FlexFlow)".into(),
        notes: vec![
            "Ties in Ut admit multiple factor sets; ours minimize total \
             workload cycles under the same constraints."
                .into(),
            "The paper's FR C1 row (Ti=3, Tj=15) occupies 45 PEs/row and \
             violates its own <=D bound; it is evaluated clamped."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_papers_eight_rows() {
        assert_eq!(run().table.rows().len(), 8);
    }

    #[test]
    fn our_utilization_at_least_matches_paper_factors() {
        // Wherever the paper's factors are feasible, our planner must do
        // at least as well on that layer (up to coupling trade-offs
        // elsewhere, allow a small tolerance).
        let r = run();
        for row in r.table.rows() {
            if row[5] == "infeasible" {
                continue;
            }
            let ours: f64 = row[3].parse().unwrap();
            let paper: f64 = row[5].parse().unwrap();
            assert!(
                ours >= paper - 16.0,
                "{}/{}: ours {ours}% far below paper {paper}%",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn planned_utilization_is_high() {
        let r = run();
        for row in r.table.rows() {
            let ours: f64 = row[3].parse().unwrap();
            assert!(ours > 55.0, "{}/{}: {ours}%", row[0], row[1]);
        }
    }
}
