//! Figure 19 — scalability on AlexNet: utilization (a), power (b), and
//! chip area (c) as the engine scales from 8×8 to 64×64 PEs.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{fmt_f, pct, ExperimentResult, Table};
use flexsim_model::workloads;

/// The Fig. 19 engine scales (side of the PE square).
pub const SCALES: [usize; 4] = [8, 16, 32, 64];

/// The registry entry for this experiment.
pub struct Fig19;

impl Experiment for Fig19 {
    fn id(&self) -> &'static str {
        "fig19"
    }
    fn title(&self) -> &'static str {
        "Scalability on AlexNet (utilization, power, area vs. scale)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let net = workloads::alexnet();
    let mut table = Table::new([
        "scale",
        "metric",
        "Systolic",
        "2D-Mapping",
        "Tiling",
        "FlexFlow",
    ]);
    let pairs: Vec<(usize, usize)> = SCALES
        .iter()
        .flat_map(|&d| (0..ARCH_NAMES.len()).map(move |idx| (d, idx)))
        .collect();
    let wl = net.name().to_owned();
    let cells = ctx.map(
        pairs,
        |(d, idx)| format!("{wl}/{d}x{d}/{}", ARCH_NAMES[*idx]),
        move |tctx, (d, idx)| {
            let mut acc = ArchSet::builder()
                .scale(d)
                .sink(tctx.sink())
                .build_one(&net, idx);
            let s = acc.run_network(&net);
            (
                pct(s.utilization()),
                fmt_f(s.power_w(), 2),
                fmt_f(acc.area().total_mm2(), 2),
            )
        },
    );
    for (chunk, d) in cells.chunks(ARCH_NAMES.len()).zip(SCALES) {
        let scale = format!("{d}x{d}");
        let mut row = vec![scale.clone(), "utilization %".to_owned()];
        row.extend(chunk.iter().map(|(util, _, _)| util.clone()));
        table.push_row(row);
        let mut row = vec![scale.clone(), "power W".to_owned()];
        row.extend(chunk.iter().map(|(_, power, _)| power.clone()));
        table.push_row(row);
        let mut row = vec![scale, "area mm2".to_owned()];
        row.extend(chunk.iter().map(|(_, _, area)| area.clone()));
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig19".into(),
        title: Fig19.title().into(),
        notes: vec![
            "Paper: baselines' utilization drops drastically with scale while \
             FlexFlow stays high; FlexFlow's area grows slower than \
             2D-Mapping/Tiling thanks to the simplified interconnect."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(r: &ExperimentResult, scale: &str, metric: &str, col: usize) -> f64 {
        r.table
            .rows()
            .iter()
            .find(|row| row[0] == scale && row[1] == metric)
            .unwrap()[col]
            .parse()
            .unwrap()
    }

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("fig19"))
    }

    #[test]
    fn flexflow_utilization_stays_high_with_scale() {
        let r = run_serial();
        let at8 = metric(&r, "8x8", "utilization %", 5);
        let at64 = metric(&r, "64x64", "utilization %", 5);
        assert!(at8 > 70.0 && at64 > 55.0, "8x8 {at8}%, 64x64 {at64}%");
        // And the drop is modest compared to the baselines.
        for col in 2..=4 {
            let b8 = metric(&r, "8x8", "utilization %", col);
            let b64 = metric(&r, "64x64", "utilization %", col);
            if b8 > 1.0 {
                let base_drop = b64 / b8;
                let ff_drop = at64 / at8;
                assert!(
                    ff_drop > base_drop || b64 < at64,
                    "col {col}: baseline holds up better than FlexFlow"
                );
            }
        }
    }

    #[test]
    fn baseline_utilization_collapses_at_64() {
        // "the computing resource utilization for the former three
        // baselines drops drastically".
        let r = run_serial();
        let m2d = metric(&r, "64x64", "utilization %", 3);
        assert!(m2d < 30.0, "2D-Mapping at 64x64: {m2d}%");
    }

    #[test]
    fn flexflow_area_grows_slower_than_mesh_and_tree() {
        let r = run_serial();
        let growth =
            |col: usize| metric(&r, "64x64", "area mm2", col) / metric(&r, "8x8", "area mm2", col);
        assert!(growth(5) < growth(3), "FlexFlow vs 2D-Mapping");
        assert!(growth(5) < growth(4), "FlexFlow vs Tiling");
    }

    #[test]
    fn power_grows_with_scale_for_flexflow() {
        // Fig. 19b: FlexFlow's power grows near-linearly in PE count
        // (it actually uses the added PEs).
        let r = run_serial();
        let p8 = metric(&r, "8x8", "power W", 5);
        let p64 = metric(&r, "64x64", "power W", 5);
        assert!(p64 > 10.0 * p8, "power {p8} -> {p64}");
    }
}
