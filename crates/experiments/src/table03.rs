//! Table 3 — cross-layer hardware utilization of the three baselines.
//!
//! Each architecture is parameterized ("-opt") for one layer of a
//! workload and then runs the other layer; the table reports the
//! utilization of the mismatched run normalized to the matched run
//! ("The utilization of 'C1 on C1-opt' is normalized to 100%").

use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{pct, ExperimentResult, Table};
use flexsim_arch::Accelerator;
use flexsim_baselines::{Mapping2d, Systolic, TilingArray};
use flexsim_model::{ConvLayer, Network};

/// The registry entry for this experiment.
pub struct Table03;

impl Experiment for Table03 {
    fn id(&self) -> &'static str {
        "table03"
    }
    fn title(&self) -> &'static str {
        "Cross-layer hardware utilization of three typical architectures"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table3"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

fn workloads4() -> Vec<Network> {
    vec![
        flexsim_model::workloads::pv(),
        flexsim_model::workloads::fr(),
        flexsim_model::workloads::lenet5(),
        flexsim_model::workloads::hg(),
    ]
}

/// Utilization of `run` on an engine optimized for `opt`, normalized to
/// `run` on its *own* optimal engine ("The utilization of 'C1 on
/// C1-opt' is normalized to 100%").
fn normalized_util(
    make: &dyn Fn(&ConvLayer) -> Box<dyn Accelerator>,
    opt: &ConvLayer,
    run: &ConvLayer,
) -> f64 {
    let mismatched = make(opt).run_conv(run).utilization();
    let matched = make(run).run_conv(run).utilization();
    if matched == 0.0 {
        return 0.0;
    }
    (mismatched / matched).min(1.0)
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    // One task per (workload, direction): each measures all three
    // baselines on the mismatched layer pair.
    let pairs: Vec<(Network, &'static str)> = workloads4()
        .into_iter()
        .flat_map(|net| {
            ["C3 on C1-opt", "C1 on C3-opt"]
                .into_iter()
                .map(move |dir| (net.clone(), dir))
        })
        .collect();
    let cells = ctx.map(
        pairs,
        |(net, dir)| format!("{}/{dir}", net.name()),
        |_tctx, (net, direction)| {
            let sys = |l: &ConvLayer| -> Box<dyn Accelerator> { Box::new(Systolic::new(l.k(), 7)) };
            let m2d =
                |l: &ConvLayer| -> Box<dyn Accelerator> { Box::new(Mapping2d::new(l.s(), l.s())) };
            let til = |l: &ConvLayer| -> Box<dyn Accelerator> {
                Box::new(TilingArray::new(l.m(), l.n()))
            };
            let c1 = net.conv_layer("C1").expect("C1 exists").clone();
            let c3 = net.conv_layer("C3").expect("C3 exists").clone();
            let (opt, run_l) = if direction == "C3 on C1-opt" {
                (&c1, &c3)
            } else {
                (&c3, &c1)
            };
            let paper_row = crate::paper::TABLE3
                .iter()
                .find(|(wl, dir, _, _, _)| *wl == net.name() && *dir == direction)
                .expect("paper row");
            [
                net.name().to_owned(),
                direction.to_owned(),
                pct(normalized_util(&sys, opt, run_l)),
                pct(normalized_util(&m2d, opt, run_l)),
                pct(normalized_util(&til, opt, run_l)),
                format!("{}/{}/{}", paper_row.2, paper_row.3, paper_row.4),
            ]
        },
    );
    let mut table = Table::new([
        "workload",
        "direction",
        "Systolic %",
        "2D-Mapping %",
        "Tiling %",
        "paper (Sys/2D/Til)",
    ]);
    for row in cells {
        table.push_row(row);
    }
    ExperimentResult {
        id: "table03".into(),
        title: Table03.title().into(),
        notes: vec![
            "Our numbers use consistent ceiling-based PE-cycle accounting; the \
             paper's table contains a few internally inconsistent entries \
             (see DESIGN.md §4)."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("table03"))
    }

    #[test]
    fn has_all_eight_rows() {
        assert_eq!(run_serial().table.rows().len(), 8);
    }

    #[test]
    fn tiling_pv_c1_on_c3_opt_matches_paper() {
        // The cleanest analytic entry: 8/(ceil(8/12)*12 * ceil(1/8)*8)
        // = 8.3%.
        let r = run_serial();
        let rows = r.table.rows();
        let row = rows
            .iter()
            .find(|row| row[0] == "PV" && row[1] == "C1 on C3-opt")
            .unwrap();
        let tiling: f64 = row[4].parse().unwrap();
        assert!((tiling - 8.3).abs() < 0.5, "got {tiling}");
    }

    #[test]
    fn mismatched_runs_mostly_underutilize() {
        // The table's whole point: cross-layer utilization collapses for
        // most (workload, architecture) combinations.
        let r = run_serial();
        let mut below_60 = 0;
        let mut total = 0;
        for row in r.table.rows() {
            for cell in &row[2..=4] {
                let v: f64 = cell.parse().unwrap();
                assert!(v <= 100.0 + 1e-6);
                total += 1;
                if v < 60.0 {
                    below_60 += 1;
                }
            }
        }
        assert!(
            below_60 * 2 >= total,
            "most cross-layer entries should fall below 60% ({below_60}/{total})"
        );
    }
}
