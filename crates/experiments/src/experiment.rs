//! The [`Experiment`] trait, the static registry, and the parallel
//! suite runner.
//!
//! This module is the seam between the paper's experiments and the
//! `flexsim-pool` scheduler:
//!
//! * [`Experiment`] — an object-safe trait (`id`/`title`/`run`)
//!   replacing the old string-`match` dispatch; [`REGISTRY`] lists
//!   every experiment in paper order.
//! * [`ExperimentCtx`] — what an experiment runs *inside*: a shared
//!   thread pool plus the run's cycle-sink wiring. Experiments fan
//!   their independent (workload, architecture) units out through
//!   [`ExperimentCtx::map`]; results come back in submission order, so
//!   emitted tables and JSON are byte-identical at any `--jobs` level.
//! * [`run_suite`] — drives a list of experiments serially (one at a
//!   time, each parallel inside) with per-experiment panic isolation:
//!   a failing experiment becomes a structured [`SuiteFailure`] and a
//!   placeholder result; the rest of the sweep still runs.
//!
//! Cycle-domain tracing never goes through process-global state: a
//! [`TraceCollector`] is threaded through the context, each parallel
//! task records into its own private [`CycleRecorder`], and completed
//! timelines are merged back in task order — deterministic, and tagged
//! with the owning experiment id. As each timeline lands in the
//! collector its [`LossLedger`] is mirrored into the global metrics
//! registry (`sim_busy_pe_cycles` / `sim_lost_pe_cycles{cause}`), so
//! `--metrics` dumps and exported Chrome traces always agree.
//!
//! [`LossLedger`]: flexsim_obs::attrib::LossLedger

use crate::report::{ExperimentResult, Table};
use flexsim_obs::attrib::LossLedger;
use flexsim_obs::cycles::{
    CycleEvent, CycleRecorder, CycleSink, LayerCtx, LayerTimeline, SinkHandle,
};
use flexsim_obs::{metrics, telemetry};
use flexsim_pool::{Outcome, Pool, Task};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// One experiment of the evaluation: a stable id, a human title, and a
/// run method. Implementations are unit structs registered in
/// [`REGISTRY`]; the trait is object-safe so the registry, the CLI,
/// and the suite runner all work with `&dyn Experiment`.
pub trait Experiment: Sync {
    /// Stable identifier (`"fig15"`, `"table06"`, `"ablation_styles"`).
    fn id(&self) -> &'static str;

    /// One-line human-readable title.
    fn title(&self) -> &'static str;

    /// Alternative ids accepted by lookup (`"fig1"` for `"fig01"`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Whether the experiment is part of the `all` sweep (the
    /// `profile` diagnostic opts out).
    fn in_sweep(&self) -> bool {
        true
    }

    /// Runs the experiment inside `ctx`.
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult;
}

/// Every experiment, in paper order (extensions and diagnostics last).
pub static REGISTRY: &[&dyn Experiment] = &[
    &crate::fig01::Fig01,
    &crate::table03::Table03,
    &crate::table04::Table04,
    &crate::fig15::Fig15,
    &crate::fig16::Fig16,
    &crate::fig17::Fig17,
    &crate::fig18::Fig18,
    &crate::table06::Table06,
    &crate::fig19::Fig19,
    &crate::table07::Table07,
    &crate::ablations::AblationStyles,
    &crate::ablations::AblationStore,
    &crate::ablations::AblationCoupling,
    &crate::ablations::AblationRcBound,
    &crate::extensions::ExtRoofline,
    &crate::extensions::ExtBatching,
    &crate::extensions::ExtRoutingShare,
    &crate::profile::Profile,
    &crate::tune::Tune,
];

/// Looks an experiment up by id or alias.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY
        .iter()
        .find(|e| e.id() == id || e.aliases().contains(&id))
        .copied()
}

/// Collects completed layer timelines from every task of a run, in
/// deterministic (task-submission) order.
#[derive(Debug, Default)]
pub struct TraceCollector {
    done: Mutex<Vec<LayerTimeline>>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    fn append(&self, timelines: Vec<LayerTimeline>) {
        // The single chokepoint every collected timeline crosses:
        // mirror its loss ledger so the metrics registry and the
        // exported trace can never disagree about attribution. Ledger
        // reconstruction re-checks the exactness identity, which is
        // host-side verification work — the Verify phase.
        let _verify = telemetry::phase(telemetry::Phase::Verify);
        for tl in &timelines {
            LossLedger::from_timeline(tl).mirror(metrics::global());
        }
        self.done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(timelines);
    }

    /// Drains every collected timeline.
    pub fn take(&self) -> Vec<LayerTimeline> {
        std::mem::take(
            &mut self
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// A [`CycleSink`] for *serial* (main-thread) emission that forwards
/// each completed layer straight into a shared [`TraceCollector`].
/// Parallel tasks never share one of these — each task gets its own
/// private recorder instead (see [`ExperimentCtx::map`]).
struct CollectorSink {
    collector: Arc<TraceCollector>,
    open: Mutex<Vec<LayerTimeline>>,
}

impl CycleSink for CollectorSink {
    fn enabled(&self) -> bool {
        true
    }

    fn begin_layer(&self, ctx: &LayerCtx) {
        self.open
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(LayerTimeline {
                ctx: ctx.clone(),
                events: Vec::new(),
            });
    }

    fn emit(&self, ev: &CycleEvent) {
        if let Some(current) = self
            .open
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .last_mut()
        {
            current.events.push(*ev);
        }
    }

    fn end_layer(&self) {
        let done = self
            .open
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        if let Some(tl) = done {
            self.collector.append(vec![tl]);
        }
    }
}

/// How runs started from this context reach a cycle sink.
#[derive(Clone)]
enum SinkMode {
    /// No tracing: unattached handles everywhere.
    None,
    /// Per-task private recorders merged into a shared collector in
    /// task order (the `--trace` path).
    Collect(Arc<TraceCollector>),
}

/// Everything an [`Experiment::run`] needs from its surroundings: the
/// experiment's own id, a shared work-stealing pool, and the sink
/// wiring for cycle-domain tracing.
pub struct ExperimentCtx {
    id: String,
    pool: Arc<Pool>,
    sink_mode: SinkMode,
}

/// The per-task view handed to [`ExperimentCtx::map`] closures.
pub struct TaskCtx {
    sink: SinkHandle,
}

impl TaskCtx {
    /// The cycle sink this task should attach to simulators it builds
    /// (already tagged with the owning experiment id; unattached when
    /// tracing is off).
    pub fn sink(&self) -> SinkHandle {
        self.sink.clone()
    }
}

impl ExperimentCtx {
    /// A serial context (one-thread pool, no tracing) — what tests and
    /// benches use to run a single experiment the old way.
    pub fn serial(id: &str) -> ExperimentCtx {
        ExperimentCtx {
            id: id.to_owned(),
            pool: Arc::new(Pool::new(1)),
            sink_mode: SinkMode::None,
        }
    }

    /// An untraced context fanning tasks over `jobs` pool threads —
    /// what `flexsim profile <workload>` uses outside a suite run.
    pub fn parallel(id: &str, jobs: usize) -> ExperimentCtx {
        ExperimentCtx {
            id: id.to_owned(),
            pool: Arc::new(Pool::new(jobs)),
            sink_mode: SinkMode::None,
        }
    }

    /// The context for one experiment of a suite run.
    fn for_suite(id: &str, pool: &Arc<Pool>, trace: Option<&Arc<TraceCollector>>) -> ExperimentCtx {
        ExperimentCtx {
            id: id.to_owned(),
            pool: Arc::clone(pool),
            sink_mode: match trace {
                Some(collector) => SinkMode::Collect(Arc::clone(collector)),
                None => SinkMode::None,
            },
        }
    }

    /// The id of the experiment this context belongs to.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The maximum number of tasks [`ExperimentCtx::map`] runs
    /// concurrently.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// A cycle sink for simulations run directly on the calling thread
    /// (tagged with the experiment id). Prefer [`ExperimentCtx::map`]
    /// for anything fan-out-shaped.
    pub fn sink(&self) -> SinkHandle {
        match &self.sink_mode {
            SinkMode::None => SinkHandle::none(),
            SinkMode::Collect(collector) => SinkHandle::new(Arc::new(CollectorSink {
                collector: Arc::clone(collector),
                open: Mutex::new(Vec::new()),
            }))
            .tagged(&self.id),
        }
    }

    /// Fans `items` out across the pool and returns `work`'s results
    /// **in item order**, independent of completion order and of the
    /// pool's `--jobs` level. Each task runs under a
    /// `task`-category span labelled `experiment-id/label(item)`, gets
    /// a [`TaskCtx`] whose sink records into a private per-task
    /// recorder (merged into the run's [`TraceCollector`] in task
    /// order), and is panic-isolated: if any task panics, the batch
    /// still completes and this method then panics with every failed
    /// task's label and message (so [`run_suite`] reports one
    /// structured failure for the experiment while the rest of the
    /// suite keeps going).
    pub fn map<I, T>(
        &self,
        items: Vec<I>,
        label: impl Fn(&I) -> String,
        work: impl Fn(&TaskCtx, I) -> T + Send + Sync + 'static,
    ) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
    {
        let work = Arc::new(work);
        let tasks = items
            .into_iter()
            .map(|item| {
                let label = format!("{}/{}", self.id, label(&item));
                let work = Arc::clone(&work);
                let mode = self.sink_mode.clone();
                let id = self.id.clone();
                Task::new(label, move || match mode {
                    SinkMode::None => (
                        work(
                            &TaskCtx {
                                sink: SinkHandle::none(),
                            },
                            item,
                        ),
                        Vec::new(),
                    ),
                    SinkMode::Collect(_) => {
                        let rec = Arc::new(CycleRecorder::new());
                        let sink = SinkHandle::new(rec.clone()).tagged(&id);
                        let value = work(&TaskCtx { sink }, item);
                        (value, rec.take())
                    }
                })
            })
            .collect();
        let outcomes = self.pool.run(tasks);
        let mut values = Vec::with_capacity(outcomes.len());
        let mut failures = Vec::new();
        for outcome in outcomes {
            match outcome {
                Outcome::Done((value, timelines)) => {
                    if let SinkMode::Collect(collector) = &self.sink_mode {
                        collector.append(timelines);
                    }
                    values.push(value);
                }
                Outcome::Panicked(failure) => failures.push(failure),
            }
        }
        if !failures.is_empty() {
            let rendered: Vec<String> = failures.iter().map(ToString::to_string).collect();
            panic!(
                "{} of {} tasks failed: {}",
                failures.len(),
                failures.len() + values.len(),
                rendered.join("; ")
            );
        }
        values
    }
}

/// Configuration of one suite run.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Maximum concurrently running tasks (0 = available parallelism).
    pub jobs: usize,
    /// Collect cycle-domain timelines (the `--trace` path).
    pub trace: bool,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            jobs: 1,
            trace: false,
        }
    }
}

/// An experiment that panicked during a suite run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuiteFailure {
    /// The experiment's id.
    pub id: String,
    /// The rendered panic message.
    pub message: String,
}

/// What [`run_suite`] returns: one result per experiment (failed ones
/// get a placeholder), the failures, and any collected timelines.
pub struct SuiteReport {
    /// One result per experiment, in input order.
    pub results: Vec<ExperimentResult>,
    /// Experiments that panicked (empty on a healthy run).
    pub failures: Vec<SuiteFailure>,
    /// Collected cycle timelines (empty unless `trace` was set).
    pub timelines: Vec<LayerTimeline>,
}

/// Runs `experiments` in order. Experiments themselves run one at a
/// time (output order is trivially deterministic); each parallelizes
/// internally over the shared pool via [`ExperimentCtx::map`]. A
/// panicking experiment is caught, reported as a [`SuiteFailure`] plus
/// a placeholder result, and the remaining experiments still run.
pub fn run_suite(experiments: &[&dyn Experiment], config: &SuiteConfig) -> SuiteReport {
    let pool = Arc::new(Pool::new(config.jobs));
    let collector = config.trace.then(|| Arc::new(TraceCollector::new()));
    let mut results = Vec::with_capacity(experiments.len());
    let mut failures = Vec::new();
    for exp in experiments {
        let _span = flexsim_obs::span::span("experiment", exp.id());
        telemetry::flight::record("experiment", format!("begin {}", exp.id()));
        let started = telemetry::now_if_enabled();
        let ctx = ExperimentCtx::for_suite(exp.id(), &pool, collector.as_ref());
        let outcome = catch_unwind(AssertUnwindSafe(|| exp.run(&ctx)));
        if let Some(t0) = started {
            let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            telemetry::observe_experiment_us(us);
            telemetry::flight::record("experiment", format!("end {} ({us} us)", exp.id()));
        }
        match outcome {
            Ok(result) => results.push(result),
            Err(payload) => {
                let message = panic_text(payload.as_ref());
                // The pool already flight-dumped task panics; an
                // experiment panicking outside any task is recorded
                // (and dumped) here instead.
                let _ = telemetry::flight::record_panic(exp.id(), &message);
                failures.push(SuiteFailure {
                    id: exp.id().to_owned(),
                    message: message.clone(),
                });
                let mut table = Table::new(["status"]);
                table.push_row(["FAILED".to_owned()]);
                results.push(ExperimentResult {
                    id: exp.id().into(),
                    title: exp.title().into(),
                    notes: vec![format!("FAILED: {message}")],
                    table,
                });
            }
        }
    }
    SuiteReport {
        results,
        failures,
        timelines: collector.map(|c| c.take()).unwrap_or_default(),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for exp in REGISTRY {
            assert!(seen.insert(exp.id()), "duplicate id {}", exp.id());
            assert!(std::ptr::eq(
                find(exp.id()).expect("id resolves") as *const dyn Experiment as *const (),
                *exp as *const dyn Experiment as *const ()
            ));
            for alias in exp.aliases() {
                assert!(find(alias).is_some(), "alias {alias} resolves");
            }
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn aliases_resolve_to_their_experiment() {
        assert_eq!(find("fig1").unwrap().id(), "fig01");
        assert_eq!(find("table3").unwrap().id(), "table03");
        assert_eq!(find("table6").unwrap().id(), "table06");
    }

    #[test]
    fn profile_is_not_in_the_sweep() {
        let swept: Vec<&str> = REGISTRY
            .iter()
            .filter(|e| e.in_sweep())
            .map(|e| e.id())
            .collect();
        assert!(!swept.contains(&"profile"));
        assert!(!swept.contains(&"tune"));
        assert_eq!(swept.len(), REGISTRY.len() - 2);
    }

    #[test]
    fn map_returns_results_in_item_order() {
        for jobs in [1, 4] {
            let ctx = ExperimentCtx {
                id: "test".into(),
                pool: Arc::new(Pool::new(jobs)),
                sink_mode: SinkMode::None,
            };
            let out = ctx.map(
                (0..32).collect(),
                |i| format!("item{i}"),
                |_tctx, i: usize| i * 10,
            );
            assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_aggregates_task_panics_into_one() {
        let ctx = ExperimentCtx::serial("test");
        let caught = catch_unwind(AssertUnwindSafe(|| {
            ctx.map(
                vec![1, 2, 3],
                |i| format!("t{i}"),
                |_tctx, i: i32| {
                    assert!(i != 2, "injected");
                    i
                },
            )
        }));
        let msg = panic_text(caught.unwrap_err().as_ref());
        assert!(msg.contains("1 of 3 tasks failed"), "{msg}");
        assert!(msg.contains("test/t2"), "{msg}");
    }

    #[test]
    fn suite_isolates_a_failing_experiment() {
        struct Ok1;
        impl Experiment for Ok1 {
            fn id(&self) -> &'static str {
                "ok1"
            }
            fn title(&self) -> &'static str {
                "works"
            }
            fn run(&self, _ctx: &ExperimentCtx) -> ExperimentResult {
                let mut table = Table::new(["x"]);
                table.push_row(["1".to_owned()]);
                ExperimentResult {
                    id: "ok1".into(),
                    title: "works".into(),
                    notes: vec![],
                    table,
                }
            }
        }
        struct Boom;
        impl Experiment for Boom {
            fn id(&self) -> &'static str {
                "boom"
            }
            fn title(&self) -> &'static str {
                "fails"
            }
            fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
                // Panic inside a pooled task, not on the suite thread.
                ctx.map(
                    vec![()],
                    |()| "kaboom".to_owned(),
                    |_t, ()| panic!("injected failure"),
                );
                unreachable!()
            }
        }
        let report = run_suite(&[&Ok1, &Boom, &Ok1], &SuiteConfig::default());
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].id, "boom");
        assert!(report.failures[0].message.contains("injected failure"));
        assert_eq!(report.results[1].notes.len(), 1);
        assert!(report.results[1].notes[0].starts_with("FAILED:"));
        assert_eq!(report.results[0].table.rows().len(), 1);
        assert_eq!(report.results[2].table.rows().len(), 1);
    }

    #[test]
    fn trace_mode_collects_tagged_timelines_in_task_order() {
        struct Emits;
        impl Experiment for Emits {
            fn id(&self) -> &'static str {
                "emits"
            }
            fn title(&self) -> &'static str {
                "emits cycle events"
            }
            fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
                ctx.map(
                    vec!["L0", "L1", "L2"],
                    |l| (*l).to_owned(),
                    |tctx, layer: &str| {
                        let sink = tctx.sink();
                        sink.begin_layer(&LayerCtx::new("TestArch", layer, 4));
                        sink.emit(&CycleEvent::new(
                            flexsim_obs::cycles::CycleEventKind::Pass(
                                flexsim_obs::attrib::StallCause::MappingResidueIdle,
                            ),
                            0,
                            10,
                            40,
                        ));
                        sink.end_layer();
                    },
                );
                ExperimentResult {
                    id: "emits".into(),
                    title: "emits cycle events".into(),
                    notes: vec![],
                    table: Table::new(["x"]),
                }
            }
        }
        let report = run_suite(
            &[&Emits],
            &SuiteConfig {
                jobs: 4,
                trace: true,
            },
        );
        assert!(report.failures.is_empty());
        assert_eq!(report.timelines.len(), 3);
        for (i, tl) in report.timelines.iter().enumerate() {
            assert_eq!(tl.ctx.layer, format!("L{i}")); // task order
            assert_eq!(tl.ctx.experiment, "emits"); // attribution
        }
    }
}
