//! Table 6 — FlexFlow's power breakdown by component.
//!
//! Columns follow the paper: `Pnein` (input-neuron buffer), `Pneout`
//! (output-neuron buffer), `Pkerin` (kernel buffer), and `Pcom` (the
//! computing engine with its local stores, buses, and pooling).

use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{fmt_f, ExperimentResult, Table};
use flexflow::FlexFlow;
use flexsim_arch::Accelerator;
use flexsim_model::workloads;

/// The registry entry for this experiment.
pub struct Table06;

impl Experiment for Table06 {
    fn id(&self) -> &'static str {
        "table06"
    }
    fn title(&self) -> &'static str {
        "FlexFlow power breakdown by component"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table6"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let rows = ctx.map(
        workloads::all(),
        |net| net.name().to_owned(),
        |tctx, net| {
            crate::lint::gate(&net, 16);
            let mut ff = FlexFlow::paper_config();
            ff.attach_sink(tctx.sink());
            let s = ff.run_network(&net);
            let t = s.time_s();
            let e = s.energy();
            let mw = |j: f64| j / t * 1e3;
            let total = e.on_chip_j();
            let cell = |j: f64| format!("{} ({})", fmt_f(mw(j), 0), fmt_f(j / total * 100.0, 1));
            let com_j = e.compute_j() + e.stream_buf_j;
            let paper = crate::paper::TABLE6_MW
                .iter()
                .find(|(wl, ..)| *wl == net.name())
                .expect("paper row");
            [
                net.name().to_owned(),
                cell(e.neuron_in_buf_j),
                cell(e.neuron_out_buf_j),
                cell(e.kernel_buf_j),
                cell(com_j),
                format!("{}/{}/{}/{}", paper.1, paper.2, paper.3, paper.4),
            ]
        },
    );
    let mut table = Table::new([
        "workload",
        "Pnein mW (%)",
        "Pneout mW (%)",
        "Pkerin mW (%)",
        "Pcom mW (%)",
        "paper Pnein/Pneout/Pkerin/Pcom mW",
    ]);
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "table06".into(),
        title: Table06.title().into(),
        notes: vec!["Shape target: buffers take <20% of the power budget; the \
             computing engine (PEs + local stores) dominates."
            .into()],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("table06"))
    }

    fn pcom_pct(row: &[String]) -> f64 {
        let cell = &row[4];
        let open = cell.find('(').unwrap();
        cell[open + 1..cell.len() - 1].parse().unwrap()
    }

    #[test]
    fn compute_dominates_like_the_paper() {
        // Paper: Pcom is 79.9-85.8% of the total.
        let r = run_serial();
        for row in r.table.rows() {
            let pcom = pcom_pct(row);
            assert!(
                pcom > 70.0,
                "{}: Pcom only {pcom}% of on-chip power",
                row[0]
            );
        }
    }

    #[test]
    fn buffer_shares_are_small() {
        let r = run_serial();
        for row in r.table.rows() {
            for col in 1..=3 {
                let cell = &row[col];
                let open = cell.find('(').unwrap();
                let pct: f64 = cell[open + 1..cell.len() - 1].parse().unwrap();
                assert!(
                    pct < 20.0,
                    "{}: {} = {pct}%",
                    row[0],
                    r.table.headers()[col]
                );
            }
        }
    }

    #[test]
    fn total_power_in_watt_class() {
        // Paper totals: 0.84-1.12 W.
        let r = run_serial();
        for row in r.table.rows() {
            let total: f64 = (1..=4)
                .map(|c| {
                    let cell = &row[c];
                    cell[..cell.find(' ').unwrap()].parse::<f64>().unwrap()
                })
                .sum();
            assert!(
                (300.0..2500.0).contains(&total),
                "{}: total {total} mW",
                row[0]
            );
        }
    }
}
