//! Figure 17 — volume of data transmission (buffer ↔ engine words), the
//! paper's proxy for data reusability.

use crate::experiment::{Experiment, ExperimentCtx};
use crate::fig15::per_pair;
use crate::report::{eng, ExperimentResult, Table};

/// The registry entry for this experiment.
pub struct Fig17;

impl Experiment for Fig17 {
    fn id(&self) -> &'static str {
        "fig17"
    }
    fn title(&self) -> &'static str {
        "Total volume of data transmitted (words)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "Systolic",
        "2D-Mapping",
        "Tiling",
        "FlexFlow",
        "Tiling/FlexFlow",
    ]);
    for (net, words) in per_pair(ctx, |acc, net| {
        acc.run_network(net).traffic().total() as f64
    }) {
        let mut row = vec![net.name().to_owned()];
        row.extend(words.iter().map(|w| eng(*w)));
        row.push(format!("{:.0}x", words[2] / words[3]));
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig17".into(),
        title: Fig17.title().into(),
        notes: vec![
            "Paper: FlexFlow imposes the least data volume on every workload; \
             Tiling dictates a huge volume (no local reuse); Systolic slightly \
             better than 2D-Mapping."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_words(cell: &str) -> f64 {
        let (num, mul) = match cell.chars().last().unwrap() {
            'K' => (&cell[..cell.len() - 1], 1e3),
            'M' => (&cell[..cell.len() - 1], 1e6),
            'G' => (&cell[..cell.len() - 1], 1e9),
            _ => (cell, 1.0),
        };
        num.parse::<f64>().unwrap() * mul
    }

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("fig17"))
    }

    #[test]
    fn flexflow_moves_the_least_data_everywhere() {
        let r = run_serial();
        for row in r.table.rows() {
            let ff = as_words(&row[4]);
            for c in 1..=3 {
                let other = as_words(&row[c]);
                assert!(
                    ff < other,
                    "{}: FlexFlow {} vs col {c} {}",
                    row[0],
                    row[4],
                    row[c]
                );
            }
        }
    }

    #[test]
    fn tiling_is_orders_of_magnitude_worse() {
        let r = run_serial();
        for row in r.table.rows() {
            let tiling = as_words(&row[3]);
            let ff = as_words(&row[4]);
            assert!(tiling > 10.0 * ff, "{}: only {:.0}x", row[0], tiling / ff);
        }
    }

    #[test]
    fn systolic_beats_2d_mapping_mostly() {
        // "2D-Mapping is slightly worse than Systolic".
        let r = run_serial();
        let mut wins = 0;
        for row in r.table.rows() {
            if as_words(&row[1]) < as_words(&row[2]) {
                wins += 1;
            }
        }
        // Our model has Systolic ahead on the small nets and a PV
        // near-tie; the big nets favour 2D-Mapping (its halo re-reads
        // amortize better than full-input re-streams at AlexNet/VGG
        // sizes).
        assert!(wins >= 3, "Systolic beats 2D-Mapping on {wins}/6 workloads");
    }
}
