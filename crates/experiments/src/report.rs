//! Result containers and ASCII table rendering.

use flexsim_testkit::json::Json;
use std::fmt;

/// A rendered experiment: identifier, caption, commentary, and a table.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Short id (`"fig15"`).
    pub id: String,
    /// Caption (what the paper's table/figure shows).
    pub title: String,
    /// Free-form notes (methodology, deviations).
    pub notes: Vec<String>,
    /// The data.
    pub table: Table,
}

impl ExperimentResult {
    /// Serializes to pretty JSON (for post-processing). The emission is
    /// byte-stable — field and key order are fixed — so committed
    /// results files diff cleanly across runs.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("id", Json::str(&self.id)),
            ("title", Json::str(&self.title)),
            ("notes", Json::str_arr(&self.notes)),
            (
                "table",
                Json::obj([
                    ("headers", Json::str_arr(self.table.headers())),
                    (
                        "rows",
                        Json::arr(self.table.rows().iter().map(Json::str_arr)),
                    ),
                ]),
            ),
        ])
        .pretty()
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{}", self.table)?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// A simple rectangular table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width doesn't match the headers.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Looks up a cell by row predicate and column name.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(row_key))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Width in characters, not bytes: format padding counts chars,
        // and cells may hold multi-byte sparkline glyphs.
        let chars = |s: &String| s.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(chars).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(chars(cell));
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Formats a large count with engineering suffixes (K/M/G).
pub fn eng(v: f64) -> String {
    let (scaled, suffix) = if v >= 1e9 {
        (v / 1e9, "G")
    } else if v >= 1e6 {
        (v / 1e6, "M")
    } else if v >= 1e3 {
        (v / 1e3, "K")
    } else {
        (v, "")
    };
    format!("{scaled:.2}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["arch", "GOPS"]);
        t.push_row(["FlexFlow", "450.0"]);
        t.push_row(["Tiling", "42.0"]);
        let s = t.to_string();
        assert!(s.contains("FlexFlow"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new(["arch", "GOPS"]);
        t.push_row(["FlexFlow", "450.0"]);
        assert_eq!(t.cell("FlexFlow", "GOPS"), Some("450.0"));
        assert_eq!(t.cell("FlexFlow", "watts"), None);
        assert_eq!(t.cell("Eyeriss", "GOPS"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.756), "75.6");
        assert_eq!(eng(1_500_000.0), "1.50M");
        assert_eq!(eng(12.0), "12.00");
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }

    #[test]
    fn json_round_trips_structurally() {
        let mut t = Table::new(["k"]);
        t.push_row(["v"]);
        let r = ExperimentResult {
            id: "x".into(),
            title: "t".into(),
            notes: vec!["n".into()],
            table: t,
        };
        let j = r.to_json();
        assert!(j.contains("\"id\": \"x\""));
        // Byte-stable pretty layout (two-space indent, fixed key order).
        let want = "{\n  \"id\": \"x\",\n  \"title\": \"t\",\n  \"notes\": [\n    \"n\"\n  ],\n  \"table\": {\n    \"headers\": [\n      \"k\"\n    ],\n    \"rows\": [\n      [\n        \"v\"\n      ]\n    ]\n  }\n}";
        assert_eq!(j, want);
    }
}
