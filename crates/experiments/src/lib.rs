//! # flexsim-experiments — regenerating the FlexFlow (HPCA'17)
//! evaluation
//!
//! One module per table/figure of the paper's Section 6, each exposing
//! a unit struct implementing the [`Experiment`] trait (plus a
//! `run(&ExperimentCtx)` function). The [`experiment::REGISTRY`] lists
//! them in paper order; the `flexsim` binary (`src/main.rs`) drives
//! them through [`experiment::run_suite`], fanning each experiment's
//! (workload, architecture) units out across a `flexsim-pool`
//! work-stealing pool:
//!
//! ```text
//! cargo run -p flexsim-experiments --release -- all
//! cargo run -p flexsim-experiments --release -- --jobs 8 fig15 table06
//! ```
//!
//! Results are merged in submission order, so the emitted tables and
//! JSON are byte-identical at every `--jobs` level.
//!
//! Paper-reported values (where the paper prints numbers rather than
//! bars) live in [`paper`] and are shown side by side with measured
//! values.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod arches;
pub mod bench;
pub mod cli;
pub mod experiment;
pub mod extensions;
pub mod fig01;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod frontend;
pub mod heatmap;
pub mod lint;
pub mod paper;
pub mod profile;
pub mod prove;
pub mod report;
pub mod stats;
pub mod table03;
pub mod table04;
pub mod table06;
pub mod table07;
pub mod tune;

pub use experiment::{
    find, run_suite, Experiment, ExperimentCtx, SuiteConfig, SuiteReport, TaskCtx, REGISTRY,
};
pub use report::{ExperimentResult, Table};

/// All experiment ids, in paper order.
pub fn experiment_ids() -> &'static [&'static str] {
    &[
        "fig01",
        "table03",
        "table04",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "table06",
        "fig19",
        "table07",
        "ablation_styles",
        "ablation_store",
        "ablation_coupling",
        "ablation_rc_bound",
        "ext_roofline",
        "ext_batching",
        "ext_routing_share",
        "profile",
        "tune",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_mirror_the_registry() {
        let from_registry: Vec<&str> = REGISTRY.iter().map(|e| e.id()).collect();
        assert_eq!(experiment_ids(), from_registry.as_slice());
    }
}
