//! # flexsim-experiments — regenerating the FlexFlow (HPCA'17)
//! evaluation
//!
//! One module per table/figure of the paper's Section 6, each exposing
//! `run() -> ExperimentResult`. The `flexsim` binary (`src/main.rs`)
//! drives them:
//!
//! ```text
//! cargo run -p flexsim-experiments --release -- all
//! cargo run -p flexsim-experiments --release -- fig15 table06
//! ```
//!
//! Paper-reported values (where the paper prints numbers rather than
//! bars) live in [`paper`] and are shown side by side with measured
//! values.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod arches;
pub mod cli;
pub mod extensions;
pub mod fig01;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod lint;
pub mod paper;
pub mod profile;
pub mod report;
pub mod table03;
pub mod table04;
pub mod table06;
pub mod table07;

pub use report::{ExperimentResult, Table};

/// Runs every paper experiment in paper order. The `profile`
/// diagnostic experiment is opt-in (`flexsim profile`) and not part of
/// the sweep.
pub fn run_all() -> Vec<ExperimentResult> {
    experiment_ids()
        .iter()
        .filter(|&&id| id != "profile")
        // Invariant: `experiment_ids` and `run_by_id` are maintained
        // together; a listed id always dispatches.
        .map(|id| run_by_id(id).expect("every listed id resolves"))
        .collect()
}

/// Looks up an experiment by id (e.g. `"fig15"`, `"table06"`). Each
/// run is wrapped in an `experiment`-category host span so `--trace`
/// output groups work per experiment.
pub fn run_by_id(id: &str) -> Option<ExperimentResult> {
    let _span = flexsim_obs::span::span("experiment", id);
    match id {
        "fig01" | "fig1" => Some(fig01::run()),
        "table03" | "table3" => Some(table03::run()),
        "table04" | "table4" => Some(table04::run()),
        "fig15" => Some(fig15::run()),
        "fig16" => Some(fig16::run()),
        "fig17" => Some(fig17::run()),
        "fig18" => Some(fig18::run()),
        "table06" | "table6" => Some(table06::run()),
        "fig19" => Some(fig19::run()),
        "table07" | "table7" => Some(table07::run()),
        "ablation_styles" => Some(ablations::styles()),
        "ablation_store" => Some(ablations::local_store()),
        "ablation_coupling" => Some(ablations::coupling()),
        "ablation_rc_bound" => Some(ablations::rc_bound()),
        "ext_roofline" => Some(extensions::roofline()),
        "ext_batching" => Some(extensions::batching()),
        "ext_routing_share" => Some(extensions::routing_share()),
        "profile" => Some(profile::run()),
        _ => None,
    }
}

/// All experiment ids, in paper order.
pub fn experiment_ids() -> &'static [&'static str] {
    &[
        "fig01",
        "table03",
        "table04",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "table06",
        "fig19",
        "table07",
        "ablation_styles",
        "ablation_store",
        "ablation_coupling",
        "ablation_rc_bound",
        "ext_roofline",
        "ext_batching",
        "ext_routing_share",
        "profile",
    ]
}
