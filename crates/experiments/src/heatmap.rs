//! `flexsim heatmap` — the spatial observability report.
//!
//! Simulates one workload on the selected architectures with a
//! [`SpatialRecorder`] attached, gates every record against the loss
//! ledgers (flexcheck FXC13 — per-cause heatmap cell sums must equal
//! the ledger exactly), and renders per-PE utilization heatmaps,
//! per-bank occupancy watermarks, and contention summaries as an
//! ASCII report, byte-stable `--json`, or an `--svg` document.
//!
//! Architectures run in parallel (bounded by `--jobs`) but results are
//! assembled in [`ARCH_NAMES`] order and mirrored into the metrics
//! registry from the main thread, so output is byte-identical at every
//! `--jobs` level.
//!
//! Exit status: 0 with every FXC13 identity holding, 1 on any
//! spatial-exactness violation, 2 on a resolution/usage error.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::cli::Cli;
use crate::report::{pct, Table};
use flexcheck::Diagnostic;
use flexsim_model::Network;
use flexsim_obs::attrib::{ledgers, LossLedger, StallCause};
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_obs::spatial::{LayerSpatial, SpatialHandle, SpatialRecorder};
use flexsim_testkit::json::Json;
use std::sync::{Arc, Mutex};

/// The busy-fraction shade ramp, idle to saturated.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// The ramp character for a busy fraction in `[0, 1]`.
pub fn shade(frac: f64) -> char {
    let idx = (frac.clamp(0.0, 1.0) * RAMP.len() as f64) as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// One architecture's spatial records, their paired ledgers, and the
/// FXC13 verdict.
pub struct ArchHeat {
    /// Architecture name (an [`ARCH_NAMES`] entry).
    pub arch: &'static str,
    /// Configured PE count.
    pub pe_count: usize,
    /// One spatial record per simulated layer, in layer order.
    pub spatials: Vec<LayerSpatial>,
    /// The loss ledgers the spatial records are gated against.
    pub ledgers: Vec<LossLedger>,
    /// FXC13 diagnostics (empty when every identity holds).
    pub diags: Vec<Diagnostic>,
}

/// `flexsim heatmap WORKLOAD|PATH.ffnet [--arch A] [--json|--svg]`.
/// Returns the process exit code.
pub fn heatmap(cli: &Cli) -> i32 {
    let [reference] = cli.ids.as_slice() else {
        eprintln!("flexsim: heatmap takes exactly one workload name or .ffnet path");
        return 2;
    };
    let net = match crate::frontend::registry().resolve(reference) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("flexsim: {e}");
            return 2;
        }
    };
    let selected = match select_arches(cli.arch.as_deref()) {
        Ok(sel) => sel,
        Err(msg) => {
            eprintln!("flexsim: {msg}");
            return 2;
        }
    };
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let heats = simulate_selected(&net, &selected, jobs);
    // Mirror from the main thread, in report order, so the metrics
    // registry fills deterministically regardless of `--jobs`.
    for heat in &heats {
        for sp in &heat.spatials {
            sp.mirror(flexsim_obs::metrics::global());
        }
    }
    if cli.metrics {
        eprint!("{}", flexsim_obs::metrics::global().snapshot().dump());
    }
    let failed = heats.iter().any(|h| flexcheck::has_errors(&h.diags));
    if cli.json {
        let mut text = heatmap_json(&net, reference, &heats).pretty();
        text.push('\n');
        print!("{text}");
    } else if cli.svg {
        print!("{}", heatmap_svg(&net, &heats));
    } else {
        print!("{}", heatmap_text(&net, &heats));
    }
    i32::from(failed)
}

/// Resolves `--arch` to indices into [`ARCH_NAMES`]: all four when
/// absent, otherwise the case-insensitive name or unambiguous prefix.
pub fn select_arches(filter: Option<&str>) -> Result<Vec<usize>, String> {
    let Some(filter) = filter else {
        return Ok((0..ARCH_NAMES.len()).collect());
    };
    let want = filter.to_ascii_lowercase();
    let exact: Vec<usize> = ARCH_NAMES
        .iter()
        .enumerate()
        .filter(|(_, n)| n.to_ascii_lowercase() == want)
        .map(|(i, _)| i)
        .collect();
    if exact.len() == 1 {
        return Ok(exact);
    }
    let prefixed: Vec<usize> = ARCH_NAMES
        .iter()
        .enumerate()
        .filter(|(_, n)| n.to_ascii_lowercase().starts_with(&want))
        .map(|(i, _)| i)
        .collect();
    match prefixed.len() {
        1 => Ok(prefixed),
        0 => Err(format!(
            "unknown architecture {filter:?}; available: {}",
            ARCH_NAMES.join(", ")
        )),
        _ => Err(format!(
            "ambiguous architecture {filter:?}; matches: {}",
            prefixed
                .iter()
                .map(|&i| ARCH_NAMES[i])
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Runs one architecture (an [`ARCH_NAMES`] index) with cycle and
/// spatial recorders attached and gates the records (FXC13).
pub fn simulate(net: &Network, idx: usize) -> ArchHeat {
    let cyc = Arc::new(CycleRecorder::new());
    let spa = Arc::new(SpatialRecorder::new());
    let mut acc = ArchSet::builder()
        .sink(SinkHandle::new(cyc.clone()))
        .spatial(SpatialHandle::new(spa.clone()))
        .build_one(net, idx);
    acc.run_network(net);
    let ledgers = ledgers(&cyc.take());
    let spatials = spa.take();
    let diags = flexcheck::check_spatials(&spatials, &ledgers);
    ArchHeat {
        arch: ARCH_NAMES[idx],
        pe_count: acc.pe_count(),
        spatials,
        ledgers,
        diags,
    }
}

/// Simulates the selected architectures, fanning over at most `jobs`
/// threads; the returned vector follows `selected` order exactly.
fn simulate_selected(net: &Network, selected: &[usize], jobs: usize) -> Vec<ArchHeat> {
    let workers = jobs.max(1).min(selected.len());
    if workers <= 1 {
        return selected.iter().map(|&idx| simulate(net, idx)).collect();
    }
    let produced: Mutex<Vec<(usize, ArchHeat)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..workers {
            let produced = &produced;
            s.spawn(move || {
                // Strided work split: deterministic assignment, no
                // shared counter needed for ≤ 4 tasks.
                let mut local = Vec::new();
                let mut pos = w;
                while pos < selected.len() {
                    local.push((pos, simulate(net, selected[pos])));
                    pos += workers;
                }
                produced
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let mut pairs = produced
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    pairs.sort_by_key(|(pos, _)| *pos);
    pairs.into_iter().map(|(_, heat)| heat).collect()
}

/// Array-wide busy fraction of one layer record.
fn busy_fraction(sp: &LayerSpatial) -> f64 {
    let denom = sp.total_cycles.saturating_mul(sp.pe_count() as u64);
    if denom == 0 {
        return 0.0;
    }
    sp.busy_total() as f64 / denom as f64
}

/// The grep-able per-architecture verdict line (CI keys on `FXC13`).
fn fxc13_line(h: &ArchHeat) -> String {
    if h.diags.is_empty() {
        format!(
            "FXC13 spatial-exactness: ok ({} layers, {})\n",
            h.spatials.len(),
            h.arch
        )
    } else {
        format!(
            "FXC13 spatial-exactness: {} violation(s) ({})\n{}",
            h.diags.len(),
            h.arch,
            flexcheck::render(&h.diags)
        )
    }
}

fn heatmap_text(net: &Network, heats: &[ArchHeat]) -> String {
    let mut out = format!(
        "== heatmap — {} ({} layers) ==\nlegend: per-PE busy fraction, \
         idle ' ' through saturated '@' ({})\n",
        net.name(),
        net.layers().len(),
        RAMP.iter().collect::<String>().trim_start(),
    );
    for h in heats {
        out.push_str(&format!("\n-- {} ({} PEs) --\n", h.arch, h.pe_count));
        for sp in &h.spatials {
            out.push_str(&format!(
                "{}: {}x{} array, {} cycles, busy {}%\n",
                sp.layer,
                sp.rows,
                sp.cols,
                sp.total_cycles,
                pct(busy_fraction(sp)),
            ));
            for row in 0..sp.rows {
                out.push_str("  |");
                for col in 0..sp.cols {
                    out.push(shade(sp.busy_frac(row, col)));
                }
                out.push_str("|\n");
            }
            let losses: Vec<String> = StallCause::ALL
                .iter()
                .filter_map(|&cause| {
                    let lost = sp.lost_total(cause);
                    (lost > 0).then(|| format!("{}={lost}", cause.name()))
                })
                .collect();
            if !losses.is_empty() {
                out.push_str(&format!("  lost PE-cycles: {}\n", losses.join(", ")));
            }
            if !sp.adder_tree.is_empty() || !sp.cdb.is_empty() {
                out.push_str(&format!(
                    "  contention: adder-tree {} collisions / {} port pairs, \
                     cdb {} / {}\n",
                    sp.adder_tree.total(),
                    sp.adder_tree.pairs().len(),
                    sp.cdb.total(),
                    sp.cdb.pairs().len(),
                ));
            }
        }
        let mut banks = Table::new(["Layer", "Bank", "Capacity", "High water", "Mean", "Peak %"]);
        for sp in &h.spatials {
            for bank in &sp.banks {
                banks.push_row([
                    sp.layer.clone(),
                    bank.bank.clone(),
                    bank.capacity_words.to_string(),
                    bank.high_water_words.to_string(),
                    format!("{:.1}", bank.mean_words()),
                    pct(bank.high_water_words as f64 / bank.capacity_words as f64),
                ]);
            }
        }
        out.push_str(&banks.to_string());
        out.push_str(&fxc13_line(h));
    }
    out
}

fn heatmap_json(net: &Network, reference: &str, heats: &[ArchHeat]) -> Json {
    Json::obj([
        ("command", Json::str("heatmap")),
        ("reference", Json::str(reference)),
        ("workload", Json::str(net.name())),
        (
            "architectures",
            Json::arr(heats.iter().map(|h| {
                Json::obj([
                    ("arch", Json::str(h.arch)),
                    ("pe_count", Json::Int(h.pe_count as i64)),
                    ("fxc13_violations", Json::Int(h.diags.len() as i64)),
                    (
                        "layers",
                        Json::arr(h.spatials.iter().map(|sp| {
                            Json::obj([
                                ("layer", Json::str(&sp.layer)),
                                ("rows", Json::Int(sp.rows as i64)),
                                ("cols", Json::Int(sp.cols as i64)),
                                ("total_cycles", Json::Int(sp.total_cycles as i64)),
                                (
                                    "busy_pe_cycles",
                                    Json::arr(sp.busy.iter().map(|&b| Json::Int(b as i64))),
                                ),
                                (
                                    "lost_by_cause",
                                    Json::obj(StallCause::ALL.iter().map(|&cause| {
                                        (cause.name(), Json::Int(sp.lost_total(cause) as i64))
                                    })),
                                ),
                                (
                                    "banks",
                                    Json::arr(sp.banks.iter().map(|b| {
                                        Json::obj([
                                            ("bank", Json::str(&b.bank)),
                                            ("capacity_words", Json::Int(b.capacity_words as i64)),
                                            (
                                                "high_water_words",
                                                Json::Int(b.high_water_words as i64),
                                            ),
                                            ("mean_words", Json::Float(b.mean_words())),
                                            ("sampled_cycles", Json::Int(b.sampled_cycles as i64)),
                                        ])
                                    })),
                                ),
                                (
                                    "adder_tree_collisions",
                                    Json::Int(sp.adder_tree.total() as i64),
                                ),
                                ("cdb_collisions", Json::Int(sp.cdb.total() as i64)),
                            ])
                        })),
                    ),
                ])
            })),
        ),
    ])
}

/// Escapes the XML special characters for element text and attributes.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// The fill color of a cell: a cold-to-hot ramp over the busy
/// fraction.
fn svg_color(frac: f64) -> String {
    let hot = (frac.clamp(0.0, 1.0) * 255.0).round() as u8;
    format!("#{:02x}30{:02x}", hot, 255 - hot)
}

fn heatmap_svg(net: &Network, heats: &[ArchHeat]) -> String {
    const CELL: usize = 10;
    const MARGIN: usize = 12;
    const LINE: usize = 16;
    let width = heats
        .iter()
        .flat_map(|h| h.spatials.iter())
        .map(|sp| sp.cols * CELL)
        .max()
        .unwrap_or(0)
        .max(360)
        + 2 * MARGIN;
    let mut body = String::new();
    let mut y = MARGIN + LINE;
    body.push_str(&format!(
        "  <text x=\"{MARGIN}\" y=\"{y}\" class=\"h\">heatmap — {}</text>\n",
        xml_escape(net.name()),
    ));
    y += LINE;
    for h in heats {
        y += LINE;
        body.push_str(&format!(
            "  <text x=\"{MARGIN}\" y=\"{y}\" class=\"h\">{} ({} PEs)</text>\n",
            xml_escape(h.arch),
            h.pe_count,
        ));
        y += LINE / 2;
        for sp in &h.spatials {
            y += LINE;
            body.push_str(&format!(
                "  <text x=\"{MARGIN}\" y=\"{y}\">{}: {} cycles, busy {}%</text>\n",
                xml_escape(&sp.layer),
                sp.total_cycles,
                pct(busy_fraction(sp)),
            ));
            y += LINE / 2;
            for row in 0..sp.rows {
                for col in 0..sp.cols {
                    body.push_str(&format!(
                        "  <rect x=\"{}\" y=\"{}\" width=\"{CELL}\" height=\"{CELL}\" \
                         fill=\"{}\"><title>{} r{row} c{col}: {} busy</title></rect>\n",
                        MARGIN + col * CELL,
                        y + row * CELL,
                        svg_color(sp.busy_frac(row, col)),
                        xml_escape(&sp.layer),
                        sp.busy_at(row, col),
                    ));
                }
            }
            y += sp.rows * CELL + LINE / 2;
        }
        y += LINE;
        let verdict = if h.diags.is_empty() {
            format!("FXC13 spatial-exactness: ok ({} layers)", h.spatials.len())
        } else {
            format!("FXC13 spatial-exactness: {} violation(s)", h.diags.len())
        };
        body.push_str(&format!(
            "  <text x=\"{MARGIN}\" y=\"{y}\">{}</text>\n",
            xml_escape(&verdict),
        ));
    }
    let height = y + MARGIN;
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n  <style>text {{ font: 12px monospace; }} \
         .h {{ font-weight: bold; }}</style>\n{body}</svg>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::workloads;

    #[test]
    fn shade_ramp_covers_the_unit_interval() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(0.05), ' ');
        assert_eq!(shade(0.5), '+');
        assert_eq!(shade(0.99), '@');
        assert_eq!(shade(1.0), '@');
        assert_eq!(shade(-0.5), ' ');
        assert_eq!(shade(2.0), '@');
    }

    #[test]
    fn arch_filter_matches_names_and_prefixes() {
        assert_eq!(select_arches(None).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(select_arches(Some("flexflow")).unwrap(), vec![3]);
        assert_eq!(select_arches(Some("FLEXFLOW")).unwrap(), vec![3]);
        assert_eq!(select_arches(Some("sys")).unwrap(), vec![0]);
        assert_eq!(select_arches(Some("2d")).unwrap(), vec![1]);
        assert_eq!(select_arches(Some("Ti")).unwrap(), vec![2]);
        assert!(select_arches(Some("eyeriss"))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn simulation_is_fxc13_clean_and_jobs_invariant() {
        let net = workloads::lenet5();
        let selected: Vec<usize> = (0..ARCH_NAMES.len()).collect();
        let serial = simulate_selected(&net, &selected, 1);
        for h in &serial {
            assert!(
                h.diags.is_empty(),
                "{}: {}",
                h.arch,
                flexcheck::render(&h.diags)
            );
            assert_eq!(h.spatials.len(), h.ledgers.len());
        }
        let parallel = simulate_selected(&net, &selected, 4);
        // Byte-identity across --jobs: every rendering agrees.
        assert_eq!(heatmap_text(&net, &serial), heatmap_text(&net, &parallel));
        assert_eq!(
            heatmap_json(&net, "lenet", &serial).pretty(),
            heatmap_json(&net, "lenet", &parallel).pretty()
        );
        assert_eq!(heatmap_svg(&net, &serial), heatmap_svg(&net, &parallel));
    }

    #[test]
    fn text_report_carries_heatmaps_banks_and_verdicts() {
        let net = workloads::lenet5();
        let heats = simulate_selected(&net, &[3], 1);
        let text = heatmap_text(&net, &heats);
        assert!(text.contains("== heatmap — LeNet-5"));
        assert!(text.contains("-- FlexFlow (256 PEs) --"));
        assert!(text.contains("FXC13 spatial-exactness: ok"));
        assert!(text.contains("neuron-in"));
        assert!(text.contains("local-store"));
        // 16 shade rows per layer, each framed by pipes.
        assert!(text
            .lines()
            .any(|l| l.starts_with("  |") && l.ends_with('|')));
    }

    #[test]
    fn json_report_is_byte_stable_and_exact() {
        let net = workloads::pv();
        let heats = simulate_selected(&net, &[0, 3], 2);
        let doc = heatmap_json(&net, "pv", &heats);
        let text = doc.pretty();
        assert!(text.contains("\"command\": \"heatmap\""));
        assert!(text.contains("\"fxc13_violations\": 0"));
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.pretty(), text);
        // The serialized busy plane still sums to the ledger.
        for h in &heats {
            for (sp, led) in h.spatials.iter().zip(&h.ledgers) {
                assert_eq!(sp.busy_total(), led.busy_pe_cycles);
            }
        }
    }

    #[test]
    fn svg_report_is_well_formed_and_escaped() {
        let net = workloads::lenet5();
        let heats = simulate_selected(&net, &[3], 1);
        let svg = heatmap_svg(&net, &heats);
        assert!(svg.starts_with("<svg xmlns="));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("FXC13 spatial-exactness: ok"));
        assert!(svg.contains("<rect"));
        assert_eq!(
            xml_escape("a<b>&\"c\"'d'"),
            "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;"
        );
    }
}
