//! `flexsim run` / `flexsim workloads` — the workload-frontend
//! commands behind the [`flexsim_model::WorkloadRegistry`].
//!
//! * `flexsim run WORKLOAD|PATH.ffnet` resolves one workload reference
//!   (built-in name, alias, `.ffnet` path, or a bare stem from
//!   `examples/`) and simulates it on all four architectures at the
//!   paper scale, checking every loss ledger against the FXC09
//!   exactness identity.
//! * `flexsim workloads` lists every resolvable workload with layer,
//!   CONV-MAC, and parameter counts, as a text table or byte-stable
//!   `--json`.
//!
//! Resolution failures — unknown names, unreadable files, `.ffnet`
//! parse or shape errors — are usage errors (exit 2) with the parser's
//! line/path diagnostic passed through verbatim.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::cli::Cli;
use crate::report::{pct, Table};
use flexsim_model::registry::{param_count, WorkloadSource};
use flexsim_model::{Network, WorkloadRegistry};
use flexsim_obs::attrib::{ledgers, StallCause};
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_testkit::json::Json;
use std::sync::Arc;

/// The search directory whose `*.ffnet` files resolve by bare stem.
pub const EXAMPLES_DIR: &str = "examples";

/// The registry every `flexsim` command resolves workload references
/// against: the built-ins plus `examples/*.ffnet`.
pub fn registry() -> WorkloadRegistry {
    WorkloadRegistry::new().with_dir(EXAMPLES_DIR)
}

/// `flexsim run WORKLOAD|PATH.ffnet`: one workload on all four
/// architectures. Returns the process exit code (0 ok, 1 on a ledger
/// exactness failure, 2 on a resolution/usage error).
pub fn run(cli: &Cli) -> i32 {
    let [reference] = cli.ids.as_slice() else {
        eprintln!("flexsim: run takes exactly one workload name or .ffnet path");
        return 2;
    };
    let net = match registry().resolve(reference) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("flexsim: {e}");
            return 2;
        }
    };
    let mut rows = Vec::new();
    for (idx, &arch) in ARCH_NAMES.iter().enumerate() {
        let rec = Arc::new(CycleRecorder::new());
        let mut acc = ArchSet::builder()
            .sink(SinkHandle::new(rec.clone()))
            .build_one(&net, idx);
        let summary = acc.run_network(&net);
        let mut busy = 0u64;
        let mut lost = 0u64;
        let mut exact = true;
        for ledger in ledgers(&rec.take()) {
            let diags = flexcheck::check_ledgers(std::slice::from_ref(&ledger));
            if !diags.is_empty() {
                eprintln!(
                    "{}/{}: FXC09 exactness violated:\n{}",
                    net.name(),
                    acc.name(),
                    flexcheck::render(&diags)
                );
                exact = false;
            }
            busy += ledger.busy_pe_cycles;
            for cause in StallCause::ALL {
                lost += ledger.lost(cause);
            }
        }
        rows.push(ArchRow {
            arch,
            pe_count: acc.pe_count(),
            cycles: summary.cycles(),
            utilization: summary.utilization(),
            busy_pe_cycles: busy,
            lost_pe_cycles: lost,
            exact,
        });
    }
    let failed = rows.iter().any(|r| !r.exact);
    if cli.json {
        let mut text = run_json(&net, reference, &rows).pretty();
        text.push('\n');
        print!("{text}");
    } else {
        print!("{}", run_text(&net, &rows));
    }
    i32::from(failed)
}

/// One architecture's measurements for the `run` report.
struct ArchRow {
    arch: &'static str,
    pe_count: usize,
    cycles: u64,
    utilization: f64,
    busy_pe_cycles: u64,
    lost_pe_cycles: u64,
    exact: bool,
}

fn run_text(net: &Network, rows: &[ArchRow]) -> String {
    let mut table = Table::new([
        "Architecture",
        "PEs",
        "Cycles",
        "Utilization",
        "Busy PE-cycles",
        "Lost PE-cycles",
        "Ledger",
    ]);
    for r in rows {
        table.push_row([
            r.arch.to_owned(),
            r.pe_count.to_string(),
            r.cycles.to_string(),
            pct(r.utilization),
            r.busy_pe_cycles.to_string(),
            r.lost_pe_cycles.to_string(),
            if r.exact { "exact" } else { "VIOLATED" }.to_owned(),
        ]);
    }
    format!(
        "== run — {} ({} layers, {} CONV MACs, {} params) ==\n{table}",
        net.name(),
        net.layers().len(),
        net.conv_macs(),
        param_count(net),
    )
}

fn run_json(net: &Network, reference: &str, rows: &[ArchRow]) -> Json {
    Json::obj([
        ("command", Json::str("run")),
        ("reference", Json::str(reference)),
        ("workload", Json::str(net.name())),
        ("layers", Json::Int(net.layers().len() as i64)),
        ("conv_macs", Json::Int(net.conv_macs() as i64)),
        ("params", Json::Int(param_count(net) as i64)),
        (
            "architectures",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("arch", Json::str(r.arch)),
                    ("pe_count", Json::Int(r.pe_count as i64)),
                    ("cycles", Json::Int(r.cycles as i64)),
                    ("utilization", Json::Float(r.utilization)),
                    ("busy_pe_cycles", Json::Int(r.busy_pe_cycles as i64)),
                    ("lost_pe_cycles", Json::Int(r.lost_pe_cycles as i64)),
                    ("ledger_exact", Json::Bool(r.exact)),
                ])
            })),
        ),
    ])
}

/// `flexsim workloads`: the registry listing with per-workload layer,
/// MAC, and parameter counts. Returns the process exit code (always 0;
/// unparseable `.ffnet` files are listed with their diagnostic rather
/// than failing the listing).
pub fn workloads(cli: &Cli) -> i32 {
    if !cli.ids.is_empty() {
        eprintln!("flexsim: workloads takes no arguments");
        return 2;
    }
    let reg = registry();
    let rows: Vec<EntryRow> = reg
        .entries()
        .into_iter()
        .map(|entry| {
            let (source, resolved) = match &entry.source {
                WorkloadSource::Builtin => (
                    "builtin".to_owned(),
                    reg.resolve(&entry.name).map_err(|e| e.to_string()),
                ),
                WorkloadSource::File(path) => (
                    path.display().to_string(),
                    reg.resolve(&path.display().to_string())
                        .map_err(|e| e.to_string()),
                ),
            };
            EntryRow {
                name: entry.name,
                aliases: entry.aliases.iter().map(|a| (*a).to_owned()).collect(),
                source,
                resolved,
            }
        })
        .collect();
    let builtin = rows.iter().filter(|r| r.source == "builtin").count();
    if cli.json {
        let mut text = workloads_json(&rows, builtin).pretty();
        text.push('\n');
        print!("{text}");
    } else {
        print!("{}", workloads_text(&rows));
    }
    0
}

/// One registry entry's listing row: counts when the workload
/// resolves, the diagnostic when it does not.
struct EntryRow {
    name: String,
    aliases: Vec<String>,
    source: String,
    resolved: Result<Network, String>,
}

fn workloads_text(rows: &[EntryRow]) -> String {
    let mut table = Table::new([
        "Workload",
        "Aliases",
        "Source",
        "Layers",
        "CONV MACs",
        "Params",
    ]);
    for r in rows {
        match &r.resolved {
            Ok(net) => table.push_row([
                r.name.clone(),
                r.aliases.join(", "),
                r.source.clone(),
                net.layers().len().to_string(),
                net.conv_macs().to_string(),
                param_count(net).to_string(),
            ]),
            Err(e) => table.push_row([
                r.name.clone(),
                r.aliases.join(", "),
                r.source.clone(),
                "-".to_owned(),
                "-".to_owned(),
                format!("unparseable: {e}"),
            ]),
        }
    }
    format!("== workloads — {} resolvable ==\n{table}", rows.len())
}

fn workloads_json(rows: &[EntryRow], builtin: usize) -> Json {
    Json::obj([
        ("command", Json::str("workloads")),
        ("total", Json::Int(rows.len() as i64)),
        ("builtin", Json::Int(builtin as i64)),
        ("ffnet", Json::Int((rows.len() - builtin) as i64)),
        (
            "workloads",
            Json::arr(rows.iter().map(|r| {
                let mut fields = vec![
                    ("name", Json::str(&r.name)),
                    ("aliases", Json::str_arr(&r.aliases)),
                    ("source", Json::str(&r.source)),
                ];
                match &r.resolved {
                    Ok(net) => fields.extend([
                        ("layers", Json::Int(net.layers().len() as i64)),
                        ("conv_macs", Json::Int(net.conv_macs() as i64)),
                        ("params", Json::Int(param_count(net) as i64)),
                    ]),
                    Err(e) => fields.push(("error", Json::str(e))),
                }
                Json::obj(fields)
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_builtins_and_examples() {
        let reg = registry();
        assert_eq!(reg.resolve("lenet").unwrap().name(), "LeNet-5");
        assert_eq!(reg.search_dirs().len(), 1);
    }

    #[test]
    fn workloads_listing_counts_table1_builtins() {
        let reg = registry();
        let builtins = reg
            .entries()
            .iter()
            .filter(|e| e.source == WorkloadSource::Builtin)
            .count();
        assert!(builtins >= 9, "expected the built-in table, got {builtins}");
    }

    #[test]
    fn workloads_json_is_structured_per_entry() {
        let rows = vec![
            EntryRow {
                name: "good".to_owned(),
                aliases: vec!["g".to_owned()],
                source: "builtin".to_owned(),
                resolved: Ok(flexsim_model::workloads::lenet5()),
            },
            EntryRow {
                name: "bad".to_owned(),
                aliases: Vec::new(),
                source: "x.ffnet".to_owned(),
                resolved: Err("x.ffnet:3:1: boom".to_owned()),
            },
        ];
        let doc = workloads_json(&rows, 1);
        let text = doc.pretty();
        assert!(text.contains("\"total\": 2"));
        assert!(text.contains("\"builtin\": 1"));
        assert!(text.contains("\"ffnet\": 1"));
        assert!(text.contains("\"params\": 2550"));
        assert!(text.contains("\"error\""));
        // Byte-stable: re-parsing and re-printing is the identity.
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.pretty(), text);
    }

    #[test]
    fn run_text_reports_every_architecture() {
        let net = flexsim_model::workloads::lenet5();
        let rows = vec![ArchRow {
            arch: "FlexFlow",
            pe_count: 256,
            cycles: 12_345,
            utilization: 0.875,
            busy_pe_cycles: 100,
            lost_pe_cycles: 7,
            exact: true,
        }];
        let text = run_text(&net, &rows);
        assert!(text.contains("LeNet-5"));
        assert!(text.contains("FlexFlow"));
        assert!(text.contains("12345"));
        assert!(text.contains("exact"));
    }
}
