//! `flexsim prove` — the flexproof front-end.
//!
//! For every requested Table 1 workload on each of the four Section
//! 6.1.1 architectures, the command derives the **static** per-layer
//! loss ledgers with the symbolic evaluator
//! ([`flexcheck::predicted_ledgers`], no cycle stepping) and the
//! **dynamic** ledgers by running the same configuration on the
//! simulator with a private cycle recorder, then holds the two equal
//! with flexcheck rule `FXC10 cycle-exactness`: total cycles, busy
//! PE-cycles, and every per-cause lost bucket, layer by layer.
//!
//! The text report is a per-pair verdict table; `--json` emits a
//! byte-stable document of the static-vs-dynamic deltas (all zero on a
//! proved pair). The process exits non-zero on any mismatch, which is
//! what makes the CI stage meaningful: `--mutate` perturbs the first
//! predicted ledger by one cycle and must flip the exit status.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::experiment::ExperimentCtx;
use crate::report::{ExperimentResult, Table};
use flexcheck::{ArchParams, Diagnostic, EngineGeometry};
use flexsim_model::Network;
use flexsim_obs::attrib::{ledgers, LossLedger, StallCause};
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_testkit::json::Json;
use std::sync::Arc;

/// Engine scale the prover targets (the paper's 16×16 configuration).
const D: usize = 16;

/// One (workload, architecture) proof attempt: both ledger sequences
/// plus the `FXC10` diagnostics comparing them.
pub struct ProveOutcome {
    /// Workload name.
    pub workload: String,
    /// Architecture name ([`ARCH_NAMES`] order).
    pub arch: &'static str,
    /// The symbolic evaluator's per-layer ledgers, network order.
    pub predicted: Vec<LossLedger>,
    /// The engine-recorded per-layer ledgers, network order.
    pub recorded: Vec<LossLedger>,
    /// `FXC10` findings; empty means the pair is proved.
    pub diags: Vec<Diagnostic>,
}

impl ProveOutcome {
    /// Whether static equalled dynamic on every layer and cause.
    pub fn proved(&self) -> bool {
        self.diags.is_empty()
    }

    fn cycles(side: &[LossLedger]) -> u64 {
        side.iter().map(|l| l.total_cycles).sum()
    }

    fn lost(side: &[LossLedger]) -> u64 {
        side.iter().map(LossLedger::attributed_lost).sum()
    }
}

/// Proves one (workload, architecture) pair: symbolic ledgers from the
/// geometry the experiments builder would construct, recorded ledgers
/// from actually running that simulator. `mutate` perturbs the first
/// predicted ledger by one cycle — the CI handle proving the
/// comparison has teeth.
pub fn prove_pair(net: &Network, arch_idx: usize, mutate: bool) -> ProveOutcome {
    let suite = ArchParams::paper_suite(net.name());
    let geom = EngineGeometry::from_arch(&suite[arch_idx], D);
    let mut predicted = flexcheck::predicted_ledgers(&geom, net);
    if mutate {
        if let Some(first) = predicted.first_mut() {
            first.total_cycles += 1;
        }
    }
    let rec = Arc::new(CycleRecorder::new());
    let mut acc = ArchSet::builder()
        .sink(SinkHandle::new(rec.clone()))
        .build_one(net, arch_idx);
    let _ = acc.run_network(net);
    let recorded = ledgers(&rec.take());
    let diags = flexcheck::check_cycle_exactness_all(&predicted, &recorded);
    ProveOutcome {
        workload: net.name().to_owned(),
        arch: ARCH_NAMES[arch_idx],
        predicted,
        recorded,
        diags,
    }
}

/// Proves every (workload, architecture) pair, fanned over the pool in
/// submission order (output is byte-identical at any `--jobs` level).
pub fn run_workloads(ctx: &ExperimentCtx, nets: &[Network], mutate: bool) -> Vec<ProveOutcome> {
    let items: Vec<(Network, usize)> = nets
        .iter()
        .flat_map(|net| (0..ARCH_NAMES.len()).map(move |idx| (net.clone(), idx)))
        .collect();
    ctx.map(
        items,
        |(net, idx)| format!("{}/{}", net.name(), ARCH_NAMES[*idx]),
        move |_tctx, (net, idx): (Network, usize)| prove_pair(&net, idx, mutate),
    )
}

/// Renders the per-pair verdict table (mismatch diagnostics go into
/// the notes, so the text output names every failing layer and cause).
pub fn report(outcomes: &[ProveOutcome]) -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "architecture",
        "layers",
        "static cycles",
        "engine cycles",
        "static lost",
        "engine lost",
        "verdict",
    ]);
    let mut notes_tail = Vec::new();
    for o in outcomes {
        table.push_row([
            o.workload.clone(),
            o.arch.to_owned(),
            o.predicted.len().to_string(),
            ProveOutcome::cycles(&o.predicted).to_string(),
            ProveOutcome::cycles(&o.recorded).to_string(),
            ProveOutcome::lost(&o.predicted).to_string(),
            ProveOutcome::lost(&o.recorded).to_string(),
            if o.proved() {
                "proved".to_owned()
            } else {
                format!("MISMATCH ({})", o.diags.len())
            },
        ]);
        for d in &o.diags {
            notes_tail.push(format!("{}/{}: {d}", o.workload, o.arch));
        }
    }
    let mismatched = outcomes.iter().filter(|o| !o.proved()).count();
    let mut notes = vec![if mismatched == 0 {
        format!(
            "PROVED: the symbolic evaluator reproduces the engine-recorded \
             cycles and loss attribution exactly (FXC10) on all {} \
             (workload, architecture) pairs — no cycle was simulated to \
             produce the static side.",
            outcomes.len()
        )
    } else {
        format!(
            "FAIL: {mismatched} of {} pairs diverge between the static \
             prediction and the engine recording.",
            outcomes.len()
        )
    }];
    notes.extend(notes_tail);
    ExperimentResult {
        id: "prove".to_owned(),
        title: "flexproof: symbolic cycle/ledger proof vs the cycle-stepped engines (FXC10)"
            .to_owned(),
        notes,
        table,
    }
}

/// The byte-stable `--json` document: per-pair and per-layer
/// static-vs-dynamic deltas (cycles, busy PE-cycles, and all seven
/// per-cause lost buckets — every delta zero on a proved pair).
pub fn json_doc(outcomes: &[ProveOutcome]) -> Json {
    let proved = outcomes.iter().filter(|o| o.proved()).count();
    Json::obj([
        ("bench", Json::str("prove")),
        ("rule", Json::str("FXC10 cycle-exactness")),
        ("scale", Json::Int(D as i64)),
        ("pairs_total", Json::Int(outcomes.len() as i64)),
        ("pairs_proved", Json::Int(proved as i64)),
        ("mismatches", Json::Int((outcomes.len() - proved) as i64)),
        (
            "pairs",
            Json::arr(outcomes.iter().map(|o| {
                Json::obj([
                    ("workload", Json::str(&o.workload)),
                    ("architecture", Json::str(o.arch)),
                    ("proved", Json::str(if o.proved() { "yes" } else { "no" })),
                    (
                        "static_cycles",
                        Json::Int(ProveOutcome::cycles(&o.predicted) as i64),
                    ),
                    (
                        "dynamic_cycles",
                        Json::Int(ProveOutcome::cycles(&o.recorded) as i64),
                    ),
                    ("layers", Json::arr(layer_deltas(o))),
                    (
                        "diagnostics",
                        Json::arr(o.diags.iter().map(|d| Json::str(d.to_string()))),
                    ),
                ])
            })),
        ),
    ])
}

/// Per-layer delta rows for one pair. Predicted and recorded ledgers
/// pair up positionally; a length mismatch (itself an `FXC10` error)
/// truncates to the common prefix here — the diagnostics array carries
/// the finding.
fn layer_deltas(o: &ProveOutcome) -> Vec<Json> {
    o.predicted
        .iter()
        .zip(&o.recorded)
        .map(|(p, r)| {
            Json::obj([
                ("layer", Json::str(&r.layer)),
                ("static_cycles", Json::Int(p.total_cycles as i64)),
                ("dynamic_cycles", Json::Int(r.total_cycles as i64)),
                (
                    "delta_cycles",
                    Json::Int(p.total_cycles as i64 - r.total_cycles as i64),
                ),
                (
                    "delta_busy_pe_cycles",
                    Json::Int(p.busy_pe_cycles as i64 - r.busy_pe_cycles as i64),
                ),
                (
                    "delta_lost",
                    Json::obj(
                        StallCause::ALL
                            .iter()
                            .map(|&c| (c.name(), Json::Int(p.lost(c) as i64 - r.lost(c) as i64))),
                    ),
                ),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::workloads;

    #[test]
    fn every_pair_proves_at_the_paper_scale() {
        let ctx = ExperimentCtx::serial("prove");
        let nets = workloads::all();
        let outcomes = run_workloads(&ctx, &nets, false);
        assert_eq!(outcomes.len(), nets.len() * ARCH_NAMES.len());
        for o in &outcomes {
            assert!(
                o.proved(),
                "{}/{}: {}",
                o.workload,
                o.arch,
                flexcheck::render(&o.diags)
            );
            assert_eq!(o.predicted.len(), o.recorded.len());
        }
        let result = report(&outcomes);
        assert!(result.to_string().contains("proved"));
        assert!(!result.to_string().contains("MISMATCH"));
    }

    #[test]
    fn a_mutated_prediction_is_rejected() {
        let o = prove_pair(&workloads::pv(), 3, true);
        assert!(!o.proved());
        assert!(
            o.diags[0].message.contains("cycle mismatch"),
            "{}",
            o.diags[0].message
        );
        let result = report(std::slice::from_ref(&o));
        assert!(result.to_string().contains("MISMATCH"));
    }

    #[test]
    fn json_doc_is_byte_stable_and_parseable() {
        let ctx = ExperimentCtx::serial("prove");
        let outcomes = run_workloads(&ctx, &[workloads::lenet5()], false);
        let doc = json_doc(&outcomes);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(text, json_doc(&outcomes).pretty());
        assert!(text.contains("\"pairs_proved\": 4"));
        assert!(text.contains("\"delta_cycles\": 0"));
        assert!(text.contains("mapping-residue-idle"));
    }
}
