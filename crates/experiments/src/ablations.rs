//! Ablation studies of FlexFlow's design choices (beyond the paper's
//! own figures, but directly quantifying its three claims):
//!
//! * [`styles`] — *complementary parallelism*: restrict the factor
//!   search to single-parallelism processing styles (what a
//!   Systolic-/2D-Mapping-/Tiling-style engine could achieve on
//!   FlexFlow's substrate) and compare with the full `MFMNMS` planner;
//! * [`local_store`] — *per-PE local stores*: sweep the store capacity
//!   and watch segmentation (partial-sum spills) eat utilization and
//!   traffic on the deep workloads;
//! * [`coupling`] — *IADP inter-layer coupling*: the network-coupled DP
//!   planner vs. a greedy per-layer chain;
//! * [`rc_bound`] — the Section 5 constraint `Tr, Tc ≤ P·K'`: what the
//!   IADP pre-layout guarantee costs in raw per-layer utilization.

use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{eng, fmt_f, pct, ExperimentResult, Table};
use flexflow::analytic;
use flexsim_dataflow::search::{best_unroll, best_unroll_where, plan_network};
use flexsim_dataflow::{Style, Unroll};
use flexsim_model::{workloads, Network};

/// Registry entry for the complementary-parallelism ablation.
pub struct AblationStyles;

impl Experiment for AblationStyles {
    fn id(&self) -> &'static str {
        "ablation_styles"
    }
    fn title(&self) -> &'static str {
        "Ablation: complementary parallelism vs. single-parallelism styles"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        styles(ctx)
    }
}

/// Registry entry for the local-store capacity ablation.
pub struct AblationStore;

impl Experiment for AblationStore {
    fn id(&self) -> &'static str {
        "ablation_store"
    }
    fn title(&self) -> &'static str {
        "Ablation: per-PE local store capacity (Table 5 uses 128 words)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        local_store(ctx)
    }
}

/// Registry entry for the IADP coupling ablation.
pub struct AblationCoupling;

impl Experiment for AblationCoupling {
    fn id(&self) -> &'static str {
        "ablation_coupling"
    }
    fn title(&self) -> &'static str {
        "Ablation: coupled (DP) factor planning vs. greedy per-layer chain"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        coupling(ctx)
    }
}

/// Registry entry for the successor-bound ablation.
pub struct AblationRcBound;

impl Experiment for AblationRcBound {
    fn id(&self) -> &'static str {
        "ablation_rc_bound"
    }
    fn title(&self) -> &'static str {
        "Ablation: the Section 5 successor bound Tr,Tc <= P*K'"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        rc_bound(ctx)
    }
}

/// MAC-weighted utilization of a per-layer style-restricted plan.
fn styled_utilization(net: &Network, d: usize, style: Option<Style>) -> f64 {
    let idxs = net.conv_indices();
    let mut macs = 0u64;
    let mut pe_cycles = 0u64;
    for (pos, layer) in net.conv_layers().enumerate() {
        let bound = net
            .successor_coupling(idxs[pos])
            .map(|c| c.pool_window * c.next_conv.k());
        let choice = match style {
            None => best_unroll(layer, d, bound),
            Some(st) => best_unroll_where(layer, d, bound, |u| {
                Style::from_unroll(u) == st || *u == Unroll::scalar()
            })
            .expect("scalar is always admissible"),
        };
        macs += layer.macs();
        pe_cycles += choice.cycles * (d * d) as u64;
    }
    macs as f64 / pe_cycles as f64
}

/// Ablation 1: complementary parallelism.
pub fn styles(ctx: &ExperimentCtx) -> ExperimentResult {
    let d = 16;
    let rows = ctx.map(
        workloads::all(),
        |net| net.name().to_owned(),
        move |_tctx, net| {
            let sp = styled_utilization(&net, d, Some(Style::systolic()));
            let np = styled_utilization(&net, d, Some(Style::mapping2d()));
            let fp = styled_utilization(&net, d, Some(Style::tiling()));
            let full = styled_utilization(&net, d, None);
            let best_single = sp.max(np).max(fp);
            [
                net.name().to_owned(),
                pct(sp),
                pct(np),
                pct(fp),
                pct(full),
                format!("{:.2}x", full / best_single),
            ]
        },
    );
    let mut table = Table::new([
        "workload",
        "SP only (SFSNMS) %",
        "NP only (SFMNSS) %",
        "FP only (MFSNSS) %",
        "full MFMNMS %",
        "gain vs best single",
    ]);
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "ablation_styles".into(),
        title: AblationStyles.title().into(),
        notes: vec![
            "All rows run on the same FlexFlow substrate; only the factor \
             search is restricted. The gain column is the utilization the \
             MFMNMS mixing itself buys (Section 4.2's claim)."
                .into(),
        ],
        table,
    }
}

/// Ablation 2: local-store capacity.
pub fn local_store(ctx: &ExperimentCtx) -> ExperimentResult {
    let d = 16;
    let per_net = ctx.map(
        vec![workloads::alexnet(), workloads::vgg11()],
        |net| net.name().to_owned(),
        move |_tctx, net| {
            let plan = plan_network(&net, d);
            let mut rows: Vec<[String; 5]> = Vec::new();
            for words in [16usize, 32, 64, 128, 256] {
                let mut macs = 0u64;
                let mut pe_cycles = 0u64;
                let mut traffic = 0u64;
                let mut psum = 0u64;
                for (layer, choice) in net.conv_layers().zip(&plan) {
                    let sch = analytic::schedule(layer, choice.unroll, d, words);
                    macs += sch.macs;
                    pe_cycles += sch.cycles * (d * d) as u64;
                    traffic += sch.traffic.total();
                    psum += sch.traffic.psum;
                }
                rows.push([
                    net.name().to_owned(),
                    words.to_string(),
                    pct(macs as f64 / pe_cycles as f64),
                    eng(traffic as f64),
                    eng(psum as f64),
                ]);
            }
            rows
        },
    );
    let mut table = Table::new([
        "workload",
        "store words",
        "utilization %",
        "traffic words",
        "psum words",
    ]);
    for row in per_net.into_iter().flatten() {
        table.push_row(row);
    }
    ExperimentResult {
        id: "ablation_store".into(),
        title: AblationStore.title().into(),
        notes: vec![
            "Smaller stores force more partial-sum segmentation (Fig. 13f \
             spills) and more operand re-streaming; beyond the deep layers' \
             working sets, extra capacity buys nothing."
                .into(),
        ],
        table,
    }
}

/// Ablation 3: IADP network coupling (DP planner vs. greedy chain).
pub fn coupling(ctx: &ExperimentCtx) -> ExperimentResult {
    let d = 16;
    let rows = ctx.map(
        workloads::all(),
        |net| net.name().to_owned(),
        move |_tctx, net| {
            let plan = plan_network(&net, d);
            let planned: u64 = plan.iter().map(|c| c.cycles).sum();

            // Greedy: first layer free, then clamp each layer's row side to
            // the previous col side.
            let idxs = net.conv_indices();
            let mut greedy = 0u64;
            let mut prev: Option<Unroll> = None;
            for (pos, layer) in net.conv_layers().enumerate() {
                let bound = net
                    .successor_coupling(idxs[pos])
                    .map(|c| c.pool_window * c.next_conv.k());
                let mut choice = best_unroll(layer, d, bound);
                if let Some(p) = prev {
                    let u = Unroll::new(
                        choice.unroll.tm,
                        p.tm.min(layer.n()),
                        choice.unroll.tr,
                        choice.unroll.tc,
                        p.tr.min(layer.k()),
                        p.tc.min(layer.k()),
                    );
                    choice = best_unroll_where(layer, d, bound, |cand| {
                        cand.tn == u.tn && cand.ti == u.ti && cand.tj == u.tj
                    })
                    .unwrap_or(choice);
                }
                greedy += choice.cycles;
                prev = Some(choice.unroll);
            }
            [
                net.name().to_owned(),
                greedy.to_string(),
                planned.to_string(),
                fmt_f((1.0 - planned as f64 / greedy as f64) * 100.0, 1),
            ]
        },
    );
    let mut table = Table::new([
        "workload",
        "greedy cycles",
        "planned cycles",
        "improvement %",
    ]);
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "ablation_coupling".into(),
        title: AblationCoupling.title().into(),
        notes: vec![
            "Both planners honour the IADP chain constraint; the DP looks \
             ahead so an early layer's ⟨Tm,Tr,Tc⟩ choice doesn't strand a \
             later layer with a bad ⟨Tn,Ti,Tj⟩."
                .into(),
        ],
        table,
    }
}

/// Ablation 4: the `Tr, Tc ≤ P·K'` successor constraint.
pub fn rc_bound(ctx: &ExperimentCtx) -> ExperimentResult {
    let pairs: Vec<(usize, Network)> = [16usize, 32, 64]
        .into_iter()
        .flat_map(|d| workloads::all().into_iter().map(move |net| (d, net)))
        .collect();
    let rows = ctx.map(
        pairs,
        |(d, net)| format!("{d}x{d}/{}", net.name()),
        |_tctx, (d, net)| {
            let idxs = net.conv_indices();
            let mut bsum = 0.0;
            let mut usum = 0.0;
            let mut count = 0.0;
            let mut worst = 0.0f64;
            for (pos, layer) in net.conv_layers().enumerate() {
                let Some(coupling) = net.successor_coupling(idxs[pos]) else {
                    continue; // last layer: no bound to ablate
                };
                let bound = coupling.pool_window * coupling.next_conv.k();
                let bounded = best_unroll(layer, d, Some(bound));
                let unbounded = best_unroll(layer, d, None);
                bsum += bounded.total_utilization();
                usum += unbounded.total_utilization();
                count += 1.0;
                worst = worst.max(unbounded.total_utilization() - bounded.total_utilization());
            }
            [
                format!("{d}x{d}"),
                net.name().to_owned(),
                pct(bsum / count),
                pct(usum / count),
                format!("{:.1} pts", worst * 100.0),
            ]
        },
    );
    let mut table = Table::new([
        "engine",
        "workload",
        "mean bounded Ut %",
        "mean unbounded Ut %",
        "worst layer cost",
    ]);
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "ablation_rc_bound".into(),
        title: AblationRcBound.title().into(),
        notes: vec![
            "Dropping the bound would let some layers pick bigger spatial \
             factors, but their outputs would land in the wrong IADP layout \
             for the next layer — the cost column is what FlexFlow pays for \
             congestion-free layer transitions."
                .into(),
            "Finding: across 16x16-64x64 engines and all six workloads the \
             bound never costs a single utilization point — the engine-size \
             constraint Tm*Tr*Tc <= D always dominates P*K' (>= 6 for these \
             nets), so IADP's congestion-free layer handoff is free. The \
             paper never quantifies this; it explains why FlexFlow can \
             afford the strict output-layout guarantee."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_beats_every_single_style() {
        let r = styles(&ExperimentCtx::serial("ablation_styles"));
        for row in r.table.rows() {
            let full: f64 = row[4].parse().unwrap();
            for col in 1..=3 {
                let single: f64 = row[col].parse().unwrap();
                assert!(
                    full >= single - 1e-9,
                    "{}: full {full}% below {}",
                    row[0],
                    r.table.headers()[col]
                );
            }
            let gain: f64 = row[5].trim_end_matches('x').parse().unwrap();
            assert!(gain >= 1.0);
        }
        // On at least half the workloads the mix buys >15%.
        let big_gains = r
            .table
            .rows()
            .iter()
            .filter(|row| row[5].trim_end_matches('x').parse::<f64>().unwrap() > 1.15)
            .count();
        assert!(big_gains >= 3, "only {big_gains} workloads gain >15%");
    }

    #[test]
    fn store_capacity_is_monotone_in_utilization() {
        let r = local_store(&ExperimentCtx::serial("ablation_store"));
        for wl in ["AlexNet", "VGG-11"] {
            let utils: Vec<f64> = r
                .table
                .rows()
                .iter()
                .filter(|row| row[0] == wl)
                .map(|row| row[2].parse().unwrap())
                .collect();
            assert_eq!(utils.len(), 5);
            for pair in utils.windows(2) {
                // Bigger stores occasionally trade a sliver of cycles
                // for much less traffic (the residency-strategy choice
                // optimizes energy, not utilization alone).
                assert!(
                    pair[1] >= pair[0] - 0.5,
                    "{wl}: utilization must not drop materially with bigger stores"
                );
            }
            // Tiny stores must hurt.
            assert!(utils[0] < utils[4]);
        }
    }

    #[test]
    fn rc_bound_is_free_at_every_scale() {
        // The surprising (and checkable) finding: the engine-size
        // constraint dominates P*K' on every workload and scale, so the
        // IADP layout guarantee costs nothing.
        let r = rc_bound(&ExperimentCtx::serial("ablation_rc_bound"));
        assert_eq!(r.table.rows().len(), 18); // 3 scales x 6 workloads
        for row in r.table.rows() {
            let bounded: f64 = row[2].parse().unwrap();
            let unbounded: f64 = row[3].parse().unwrap();
            assert!(unbounded + 1e-6 >= bounded, "{}/{}", row[0], row[1]);
            assert!(
                (unbounded - bounded).abs() < 0.1,
                "{}/{}: bound unexpectedly binds",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn planned_never_slower_than_greedy() {
        let r = coupling(&ExperimentCtx::serial("ablation_coupling"));
        for row in r.table.rows() {
            let greedy: u64 = row[1].parse().unwrap();
            let planned: u64 = row[2].parse().unwrap();
            assert!(planned <= greedy, "{}: DP slower than greedy", row[0]);
        }
    }
}
