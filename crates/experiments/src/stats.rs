//! `flexsim stats` — the host-telemetry report.
//!
//! Runs the Table 1 sweep with [`flexsim_obs::telemetry`] enabled and
//! reports where the *simulator's own* wall time goes — the
//! host-side counterpart of `flexsim profile` (which attributes
//! *simulated* cycles). The report covers:
//!
//! * per-phase exclusive wall time over the host pipeline (parse →
//!   flexcheck → schedule → simulate → verify → export), plus an
//!   `(other)` row for un-phased time so the table always reconciles
//!   against total wall time;
//! * per-worker scheduler stats from `flexsim-pool` — busy/idle/wall
//!   time (busy + idle == wall by construction), task and steal
//!   counts, and the queue-depth high-water mark;
//! * latency histograms (count, p50/p90/p99, max) for per-experiment
//!   wall time, per-layer simulation wall time, and pool task latency;
//! * flight-recorder occupancy.
//!
//! The sweep runs with tracing on so the verify path (ledger
//! mirroring) is exercised, and the suite output is rendered — and
//! discarded — under the export phase, so every declared phase shows
//! real work. Telemetry never perturbs simulation results; the
//! `integration_telemetry` suite holds the sweep output byte-identical
//! with telemetry on vs. off.

use crate::cli::Cli;
use crate::experiment::{run_suite, Experiment, SuiteConfig};
use crate::report::{ExperimentResult, Table};
use crate::REGISTRY;
use flexsim_obs::hist::Histogram;
use flexsim_obs::telemetry::{self, Phase, TelemetrySnapshot};
use std::time::Instant;

/// Runs the telemetry-instrumented sweep and returns the report plus
/// the number of experiment failures (the CLI exit status).
pub fn run(cli: &Cli) -> (ExperimentResult, usize) {
    telemetry::enable();
    telemetry::reset();
    let start = Instant::now();
    let experiments: Vec<&'static dyn Experiment> = {
        let _parse = telemetry::phase(Phase::Parse);
        REGISTRY.iter().filter(|e| e.in_sweep()).copied().collect()
    };
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    // Tracing on: collected timelines cross the verify chokepoint
    // (ledger exactness mirroring), so the verify phase sees the same
    // work a `--trace` run would.
    let report = run_suite(&experiments, &SuiteConfig { jobs, trace: true });
    // Render the suite the way `flexsim all --json` would — real
    // export work, measured, then discarded (stats prints its own
    // report instead).
    let rendered_bytes: usize = {
        let _export = telemetry::phase(Phase::Export);
        report
            .results
            .iter()
            .map(|r| r.to_json().len() + r.to_string().len())
            .sum()
    };
    let wall_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let snap = telemetry::snapshot();
    let result = render(
        &snap,
        wall_us,
        jobs,
        experiments.len(),
        &report
            .failures
            .iter()
            .map(|f| f.id.clone())
            .collect::<Vec<_>>(),
        rendered_bytes,
    );
    (result, report.failures.len())
}

/// One histogram summarized on a note line.
fn hist_note(what: &str, h: &Histogram) -> String {
    if h.is_empty() {
        return format!("{what}: no samples");
    }
    format!(
        "{what}: n={} p50={}us p90={}us p99={}us max={}us",
        h.count(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.max()
    )
}

/// Builds the stats [`ExperimentResult`] from a snapshot.
fn render(
    snap: &TelemetrySnapshot,
    wall_us: u64,
    jobs: usize,
    experiments: usize,
    failures: &[String],
    rendered_bytes: usize,
) -> ExperimentResult {
    let mut table = Table::new(["phase", "calls", "self_ms", "share_pct"]);
    let mut phased_us = 0u64;
    for &(p, calls, us) in &snap.phases {
        phased_us += us;
        table.push_row([
            p.name().to_owned(),
            calls.to_string(),
            format!("{:.3}", us as f64 / 1e3),
            format!("{:.1}", share_pct(us, wall_us)),
        ]);
    }
    let other_us = wall_us.saturating_sub(phased_us);
    table.push_row([
        "(other)".to_owned(),
        "-".to_owned(),
        format!("{:.3}", other_us as f64 / 1e3),
        format!("{:.1}", share_pct(other_us, wall_us)),
    ]);
    table.push_row([
        "(wall)".to_owned(),
        "-".to_owned(),
        format!("{:.3}", wall_us as f64 / 1e3),
        "100.0".to_owned(),
    ]);

    let mut notes = vec![
        format!(
            "host telemetry over the Table 1 sweep: {experiments} experiments at --jobs {jobs}, \
             wall {:.3} ms, suite output {rendered_bytes} bytes rendered",
            wall_us as f64 / 1e3
        ),
        "phase self-time sums across worker threads (like `time`'s user+sys), so shares can \
         exceed 100% of wall when --jobs > 1"
            .to_owned(),
    ];
    if !failures.is_empty() {
        notes.push(format!("FAILED experiments: {}", failures.join(", ")));
    }
    notes.push(format!(
        "pool: queue-depth high-water {}",
        snap.queue_high_water
    ));
    for (i, w) in &snap.workers {
        notes.push(format!(
            "worker {i}: wall={}us busy={}us idle={}us ({} tasks, {} steals)",
            w.wall_us, w.busy_us, w.idle_us, w.tasks, w.steals
        ));
    }
    notes.push(hist_note("experiment wall", &snap.experiment_wall));
    notes.push(hist_note("layer sim wall", &snap.layer_sim_wall));
    notes.push(hist_note("task latency", &snap.task_wall));
    notes.push(format!(
        "flight recorder: {} events retained, {} dropped",
        snap.flight_events, snap.flight_dropped
    ));
    ExperimentResult {
        id: "stats".to_owned(),
        title: "host-side runtime telemetry: phase profile, scheduler stats, latency histograms"
            .to_owned(),
        notes,
        table,
    }
}

/// `part` as a percentage of `whole` (0 when `whole` is 0).
fn share_pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_obs::telemetry::WorkerTotals;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut h = Histogram::new();
        h.observe(100);
        h.observe(250);
        TelemetrySnapshot {
            phases: Phase::ALL.iter().map(|&p| (p, 2, 1_000)).collect(),
            workers: vec![(
                0,
                WorkerTotals {
                    wall_us: 9_000,
                    busy_us: 6_000,
                    idle_us: 3_000,
                    tasks: 12,
                    steals: 1,
                },
            )],
            queue_high_water: 7,
            experiment_wall: h.clone(),
            layer_sim_wall: h.clone(),
            task_wall: h,
            flight_events: 3,
            flight_dropped: 0,
        }
    }

    #[test]
    fn every_phase_appears_plus_reconciliation_rows() {
        let result = render(&sample_snapshot(), 10_000, 2, 17, &[], 4_096);
        let text = result.to_string();
        for p in Phase::ALL {
            assert!(text.contains(p.name()), "{} missing:\n{text}", p.name());
        }
        // 6 phases × 1000us leaves 4000us unphased of the 10ms wall.
        assert!(text.contains("(other)"), "{text}");
        assert!(text.contains("(wall)"), "{text}");
        assert!(text.contains("10.0"), "{text}"); // each phase's share
    }

    #[test]
    fn worker_and_histogram_lines_are_reported() {
        let result = render(&sample_snapshot(), 10_000, 2, 17, &[], 0);
        let text = result.to_string();
        assert!(
            text.contains("worker 0: wall=9000us busy=6000us idle=3000us (12 tasks, 1 steals)"),
            "{text}"
        );
        assert!(text.contains("queue-depth high-water 7"), "{text}");
        assert!(text.contains("task latency: n=2"), "{text}");
        assert!(text.contains("flight recorder: 3 events"), "{text}");
    }

    #[test]
    fn failures_are_called_out() {
        let result = render(&sample_snapshot(), 10_000, 1, 17, &["fig15".to_owned()], 0);
        assert!(result.to_string().contains("FAILED experiments: fig15"));
    }

    #[test]
    fn share_handles_zero_wall() {
        assert_eq!(share_pct(5, 0), 0.0);
        assert!((share_pct(1, 4) - 25.0).abs() < 1e-12);
    }
}
