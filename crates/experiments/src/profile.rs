//! `profile` — cycle-domain occupancy profile of every architecture on
//! every Table 1 workload.
//!
//! Not a figure from the paper: a diagnostic built on the observability
//! layer. Each (workload, architecture) run records its cycle-domain
//! events through a private [`CycleRecorder`], then renders the
//! network's time-resolved PE occupancy as a sparkline next to the
//! analytic utilization — the bars of Fig. 15, unrolled over time.
//! Excluded from `flexsim all`; run it with `flexsim profile`.

use crate::arches;
use crate::report::{eng, pct, ExperimentResult, Table};
use flexsim_model::workloads;
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_obs::occupancy::OccupancyTimeline;
use std::sync::Arc;

/// Sparkline width in the occupancy column.
const SPARK_WIDTH: usize = 32;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "arch",
        "layers",
        "cycles",
        "util %",
        "occupancy (time \u{2192})",
    ]);
    for net in workloads::all() {
        for mut acc in arches::paper_scale(&net) {
            // A private recorder (replacing the global handle wired by
            // `paper_scale`) so concurrent `--trace` output is not
            // polluted with the profile's own sweep.
            let rec = Arc::new(CycleRecorder::new());
            acc.attach_sink(SinkHandle::new(rec.clone()));
            let summary = acc.run_network(&net);
            let timelines = rec.take();
            let mut segments = Vec::new();
            for tl in &timelines {
                segments.extend_from_slice(tl.occupancy().segments());
            }
            let occ = OccupancyTimeline::from_segments(acc.pe_count() as u32, segments);
            table.push_row([
                net.name().to_owned(),
                acc.name().to_owned(),
                summary.layers.len().to_string(),
                eng(summary.cycles() as f64),
                pct(summary.utilization()),
                format!("[{}]", occ.sparkline(SPARK_WIDTH)),
            ]);
        }
    }
    ExperimentResult {
        id: "profile".into(),
        title: "Cycle-domain PE-occupancy profile (observability demo)".into(),
        notes: vec![
            "Sparklines are trace-derived: each run is re-recorded \
             through the cycle-event sink and rendered over time; the \
             cycle-weighted mean of every sparkline equals the analytic \
             utilization column."
                .into(),
            "Use `flexsim --trace FILE profile` for the same data as a \
             Perfetto-loadable Chrome trace."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_workload_and_arch() {
        let r = run();
        let nets = workloads::all();
        assert_eq!(r.table.rows().len(), nets.len() * arches::ARCH_NAMES.len());
        for row in r.table.rows() {
            assert!(arches::ARCH_NAMES.contains(&row[1].as_str()), "{row:?}");
            let util: f64 = row[4].parse().unwrap();
            assert!(util > 0.0 && util <= 100.0, "{row:?}");
            // "[" + WIDTH spark chars + "]".
            assert_eq!(row[5].chars().count(), SPARK_WIDTH + 2, "{row:?}");
        }
    }

    #[test]
    fn trace_derived_occupancy_matches_analytic_utilization() {
        // Spot-check one workload: rebuild what `run` renders and
        // compare the timeline's mean against RunSummary::utilization.
        let net = workloads::lenet5();
        for mut acc in arches::paper_scale(&net) {
            let rec = std::sync::Arc::new(CycleRecorder::new());
            acc.attach_sink(SinkHandle::new(rec.clone()));
            let summary = acc.run_network(&net);
            let mut segments = Vec::new();
            for tl in &rec.take() {
                segments.extend_from_slice(tl.occupancy().segments());
            }
            let occ = OccupancyTimeline::from_segments(acc.pe_count() as u32, segments);
            assert!(
                (occ.utilization() - summary.utilization()).abs() < 1e-9,
                "{}: {} vs {}",
                acc.name(),
                occ.utilization(),
                summary.utilization()
            );
        }
    }
}
