//! `profile` — per-layer cycle-loss attribution and roofline analysis
//! for every architecture.
//!
//! Not a figure from the paper: the diagnostic report behind `flexsim
//! profile <workload>`. Each (workload, architecture) run records its
//! cycle-domain events through a private [`CycleRecorder`], folds every
//! layer's event stream into a [`LossLedger`] (gated by flexcheck
//! `FXC09 attribution-exactness` — the ledger must balance to the last
//! PE-cycle), classifies each layer compute- vs bandwidth-bound on the
//! DDR3-style roofline, and renders, per layer:
//!
//! * cycles and analytic utilization (the bars of Fig. 15),
//! * the roofline bound and arithmetic intensity (ops per DRAM word),
//! * the top loss causes as percentages of total PE-cycles — the
//!   paper's Table 3 "why utilization is lost" story, made exact.
//!
//! A final `(all)` row per (workload, architecture) aggregates the
//! network, so the report doubles as a cross-architecture comparison.
//! Excluded from `flexsim all`; run it with `flexsim profile
//! [workload]`.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{eng, pct, ExperimentResult, Table};
use flexsim_arch::bandwidth::DramInterface;
use flexsim_model::{workloads, Network};
use flexsim_obs::attrib::{ledgers, LossLedger};
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_obs::roofline::{classify, LayerRoofline};
use std::sync::Arc;

/// How many loss causes the `top losses` column shows per layer.
const TOP_CAUSES: usize = 2;

/// The registry entry for this experiment (not part of the sweep).
pub struct Profile;

impl Experiment for Profile {
    fn id(&self) -> &'static str {
        "profile"
    }
    fn title(&self) -> &'static str {
        "Per-layer loss attribution + roofline (flexsim profile)"
    }
    fn in_sweep(&self) -> bool {
        false
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the report over every Table 1 workload.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    run_workloads(ctx, &workloads::all())
}

/// Runs the report over a chosen set of workloads (`flexsim profile
/// alexnet` passes exactly one).
pub fn run_workloads(ctx: &ExperimentCtx, nets: &[Network]) -> ExperimentResult {
    let pairs: Vec<(Network, usize)> = nets
        .iter()
        .flat_map(|net| (0..ARCH_NAMES.len()).map(move |idx| (net.clone(), idx)))
        .collect();
    let row_groups = ctx.map(
        pairs,
        |(net, idx)| format!("{}/{}", net.name(), ARCH_NAMES[*idx]),
        |_tctx, (net, idx)| profile_one(&net, idx),
    );
    let mut table = Table::new([
        "workload",
        "arch",
        "layer",
        "cycles",
        "util %",
        "bound",
        "ops/word",
        "top losses (% of PE-cycles)",
    ]);
    for row in row_groups.into_iter().flatten() {
        table.push_row(row);
    }
    ExperimentResult {
        id: "profile".into(),
        title: Profile.title().into(),
        notes: vec![
            "Loss columns are trace-derived: each run is re-recorded \
             through a private cycle-event sink and folded into per-layer \
             loss ledgers; every ledger is checked against flexcheck FXC09 \
             (busy + \u{3a3} attributed lost == cycles \u{d7} PEs, no \
             unattributed bucket)."
                .into(),
            "`bound` classifies the layer on a DDR3-style roofline \
             (6.4 GB/s sustained): bandwidth-bound when ops/word \u{d7} \
             words/s undercuts the engine's peak GOPS."
                .into(),
            "`(all)` rows aggregate the network \u{2014} compare them \
             across architectures for the Fig. 15 story with exact \
             attribution."
                .into(),
            "Use `flexsim --trace FILE profile` for the same events as a \
             Perfetto-loadable Chrome trace (per-event `cause` args), or \
             `flexsim --metrics profile` for the mirrored counters."
                .into(),
        ],
        table,
    }
}

/// Profiles one (workload, architecture) pair: per-layer rows plus the
/// aggregate `(all)` row.
fn profile_one(net: &Network, arch_idx: usize) -> Vec<[String; 8]> {
    // A private recorder (instead of the task's trace sink) so
    // concurrent `--trace` output is not polluted with the profile's
    // own sweep.
    let rec = Arc::new(CycleRecorder::new());
    let mut acc = ArchSet::builder()
        .sink(SinkHandle::new(rec.clone()))
        .build_one(net, arch_idx);
    let summary = acc.run_network(net);
    let layer_ledgers = ledgers(&rec.take());

    // The FXC09 gate: an unbalanced ledger is a simulator bug, not a
    // reportable result.
    let diags = flexcheck::check_ledgers(&layer_ledgers);
    assert!(
        diags.is_empty(),
        "{}/{}: {}",
        net.name(),
        acc.name(),
        flexcheck::render(&diags)
    );
    assert_eq!(
        layer_ledgers.len(),
        summary.layers.len(),
        "{}/{}: one timeline per simulated layer",
        net.name(),
        acc.name()
    );

    // Mirror attribution into the global registry so `--metrics`
    // reports the same busy/lost split as this table.
    let registry = flexsim_obs::metrics::global();
    for ledger in &layer_ledgers {
        ledger.mirror(registry);
    }

    let dram = DramInterface::default();
    let mut rows = Vec::with_capacity(summary.layers.len() + 1);
    let mut net_ledger: Option<LossLedger> = None;
    for (lr, ledger) in summary.layers.iter().zip(&layer_ledgers) {
        assert_eq!(lr.layer, ledger.layer, "timeline order matches results");
        let roof = classify(
            (2 * lr.macs) as f64,
            (lr.events.dram_reads + lr.events.dram_writes) as f64,
            dram.words_per_second(),
            lr.nominal_gops(),
        );
        rows.push([
            net.name().to_owned(),
            acc.name().to_owned(),
            lr.layer.clone(),
            eng(lr.cycles as f64),
            pct(lr.utilization()),
            roof.bound.name().to_owned(),
            fmt_intensity(&roof),
            fmt_losses(ledger),
        ]);
        match &mut net_ledger {
            Some(total) => total.absorb(ledger),
            None => net_ledger = Some(ledger.clone()),
        }
    }
    if let Some(total) = net_ledger {
        let ev = summary.events();
        let roof = classify(
            (2 * summary.macs()) as f64,
            (ev.dram_reads + ev.dram_writes) as f64,
            dram.words_per_second(),
            2.0 * acc.pe_count() as f64,
        );
        rows.push([
            net.name().to_owned(),
            acc.name().to_owned(),
            "(all)".to_owned(),
            eng(summary.cycles() as f64),
            pct(summary.utilization()),
            roof.bound.name().to_owned(),
            fmt_intensity(&roof),
            fmt_losses(&total),
        ]);
    }
    rows
}

/// Arithmetic intensity, `inf` when the layer touches no DRAM words.
fn fmt_intensity(roof: &LayerRoofline) -> String {
    if roof.intensity.is_finite() {
        format!("{:.1}", roof.intensity)
    } else {
        "inf".to_owned()
    }
}

/// The top loss causes as `cause p%` pairs, largest first.
fn fmt_losses(ledger: &LossLedger) -> String {
    let total = ledger.total_pe_cycles();
    if total == 0 {
        return "-".to_owned();
    }
    let top = ledger.top_causes();
    if top.is_empty() {
        return "-".to_owned();
    }
    top.iter()
        .take(TOP_CAUSES)
        .map(|(cause, lost)| format!("{} {:.1}%", cause, 100.0 * *lost as f64 / total as f64))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim_model::registry::WorkloadRegistry;

    #[test]
    fn covers_every_workload_arch_and_layer() {
        let r = run(&ExperimentCtx::serial("profile"));
        let expected: usize = workloads::all()
            .iter()
            .map(|net| (net.conv_layers().count() + 1) * ARCH_NAMES.len())
            .sum();
        assert_eq!(r.table.rows().len(), expected);
        for row in r.table.rows() {
            assert!(ARCH_NAMES.contains(&row[1].as_str()), "{row:?}");
            let util: f64 = row[4].parse().unwrap();
            assert!(util > 0.0 && util <= 100.0, "{row:?}");
            assert!(
                row[5] == "compute" || row[5] == "bandwidth",
                "bound column: {row:?}"
            );
            assert_ne!(row[7], "", "loss column never empty: {row:?}");
        }
    }

    #[test]
    fn single_workload_report_is_cross_arch() {
        let r = run_workloads(
            &ExperimentCtx::serial("profile"),
            &[WorkloadRegistry::new().resolve("lenet5").unwrap()],
        );
        // 2 conv layers + the (all) row, for each of the 4 architectures.
        assert_eq!(r.table.rows().len(), 3 * ARCH_NAMES.len());
        let all_rows: Vec<_> = r
            .table
            .rows()
            .iter()
            .filter(|row| row[2] == "(all)")
            .collect();
        assert_eq!(all_rows.len(), ARCH_NAMES.len());
    }

    #[test]
    fn ledgers_are_exact_for_every_arch() {
        // The invariant behind every rendered row: the ledger balances
        // and busy PE-cycles equal the analytic MAC count.
        let net = workloads::lenet5();
        for idx in 0..ARCH_NAMES.len() {
            let rec = Arc::new(CycleRecorder::new());
            let mut acc = ArchSet::builder()
                .sink(SinkHandle::new(rec.clone()))
                .build_one(&net, idx);
            let summary = acc.run_network(&net);
            for (lr, ledger) in summary.layers.iter().zip(ledgers(&rec.take())) {
                assert!(ledger.is_exact(), "{}/{}", acc.name(), ledger.layer);
                assert_eq!(ledger.busy_pe_cycles, lr.macs, "{}", acc.name());
                assert!(flexcheck::check_ledger(&ledger).is_empty());
            }
        }
    }
}
