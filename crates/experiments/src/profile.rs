//! `profile` — cycle-domain occupancy profile of every architecture on
//! every Table 1 workload.
//!
//! Not a figure from the paper: a diagnostic built on the observability
//! layer. Each (workload, architecture) run records its cycle-domain
//! events through a private [`CycleRecorder`], then renders the
//! network's time-resolved PE occupancy as a sparkline next to the
//! analytic utilization — the bars of Fig. 15, unrolled over time.
//! Excluded from `flexsim all`; run it with `flexsim profile`.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{eng, pct, ExperimentResult, Table};
use flexsim_model::{workloads, Network};
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_obs::occupancy::OccupancyTimeline;
use std::sync::Arc;

/// Sparkline width in the occupancy column.
const SPARK_WIDTH: usize = 32;

/// The registry entry for this experiment (not part of the sweep).
pub struct Profile;

impl Experiment for Profile {
    fn id(&self) -> &'static str {
        "profile"
    }
    fn title(&self) -> &'static str {
        "Cycle-domain PE-occupancy profile (observability demo)"
    }
    fn in_sweep(&self) -> bool {
        false
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let pairs: Vec<(Network, usize)> = workloads::all()
        .iter()
        .flat_map(|net| (0..ARCH_NAMES.len()).map(move |idx| (net.clone(), idx)))
        .collect();
    let rows = ctx.map(
        pairs,
        |(net, idx)| format!("{}/{}", net.name(), ARCH_NAMES[*idx]),
        |_tctx, (net, idx)| {
            // A private recorder (instead of the task's trace sink) so
            // concurrent `--trace` output is not polluted with the
            // profile's own sweep.
            let rec = Arc::new(CycleRecorder::new());
            let mut acc = ArchSet::builder()
                .sink(SinkHandle::new(rec.clone()))
                .build_one(&net, idx);
            let summary = acc.run_network(&net);
            let timelines = rec.take();
            let mut segments = Vec::new();
            for tl in &timelines {
                segments.extend_from_slice(tl.occupancy().segments());
            }
            let occ = OccupancyTimeline::from_segments(acc.pe_count() as u32, segments);
            [
                net.name().to_owned(),
                acc.name().to_owned(),
                summary.layers.len().to_string(),
                eng(summary.cycles() as f64),
                pct(summary.utilization()),
                format!("[{}]", occ.sparkline(SPARK_WIDTH)),
            ]
        },
    );
    let mut table = Table::new([
        "workload",
        "arch",
        "layers",
        "cycles",
        "util %",
        "occupancy (time \u{2192})",
    ]);
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "profile".into(),
        title: Profile.title().into(),
        notes: vec![
            "Sparklines are trace-derived: each run is re-recorded \
             through the cycle-event sink and rendered over time; the \
             cycle-weighted mean of every sparkline equals the analytic \
             utilization column."
                .into(),
            "Use `flexsim --trace FILE profile` for the same data as a \
             Perfetto-loadable Chrome trace."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_workload_and_arch() {
        let r = run(&ExperimentCtx::serial("profile"));
        let nets = workloads::all();
        assert_eq!(r.table.rows().len(), nets.len() * ARCH_NAMES.len());
        for row in r.table.rows() {
            assert!(ARCH_NAMES.contains(&row[1].as_str()), "{row:?}");
            let util: f64 = row[4].parse().unwrap();
            assert!(util > 0.0 && util <= 100.0, "{row:?}");
            // "[" + WIDTH spark chars + "]".
            assert_eq!(row[5].chars().count(), SPARK_WIDTH + 2, "{row:?}");
        }
    }

    #[test]
    fn trace_derived_occupancy_matches_analytic_utilization() {
        // Spot-check one workload: rebuild what `run` renders and
        // compare the timeline's mean against RunSummary::utilization.
        let net = workloads::lenet5();
        for idx in 0..ARCH_NAMES.len() {
            let rec = Arc::new(CycleRecorder::new());
            let mut acc = ArchSet::builder()
                .sink(SinkHandle::new(rec.clone()))
                .build_one(&net, idx);
            let summary = acc.run_network(&net);
            let mut segments = Vec::new();
            for tl in &rec.take() {
                segments.extend_from_slice(tl.occupancy().segments());
            }
            let occ = OccupancyTimeline::from_segments(acc.pe_count() as u32, segments);
            assert!(
                (occ.utilization() - summary.utilization()).abs() < 1e-9,
                "{}: {} vs {}",
                acc.name(),
                occ.utilization(),
                summary.utilization()
            );
        }
    }
}
