//! Strict command-line parsing for the `flexsim` binary.
//!
//! Unlike a scan-and-ignore loop, [`parse`] rejects anything it does
//! not understand — an unknown `--flag` or a value flag with its
//! argument missing is an error, not a silent no-op — so typos fail
//! loudly with the usage text instead of quietly running `all`.

/// Usage text printed on `--help` and on every parse error.
pub const USAGE: &str = "\
usage: flexsim [OPTIONS] [EXPERIMENT-ID...]
       flexsim run WORKLOAD|PATH.ffnet [--json] [--jobs N]
       flexsim heatmap WORKLOAD|PATH.ffnet [--arch A] [--json|--svg] [--jobs N]
       flexsim workloads [--json]
       flexsim lint [--json]
       flexsim profile [WORKLOAD] [--json]
       flexsim prove [WORKLOAD] [--json] [--mutate] [--jobs N]
       flexsim tune [WORKLOAD] [--budget smoke|full|N] [--static] [--jobs N]
       flexsim stats [--jobs N] [--json] [--telemetry PATH]
       flexsim bench sweep [--jobs N]
       flexsim bench history [--jobs N]
       flexsim bench check [--baseline FILE] [--threshold PCT]

Runs the FlexFlow (HPCA'17) evaluation experiments. With no ids (or
with `all`) every experiment runs in paper order.

Everywhere a WORKLOAD is accepted it is a workload *reference*: a
built-in name or alias (case- and hyphen-insensitive — `lenet`,
`LeNet-5`, `vgg`, ...), a path to a `.ffnet` network file, or the bare
stem of a file in `examples/`. `flexsim workloads` lists what resolves.

`flexsim run WORKLOAD|PATH.ffnet` simulates one workload on all four
architectures (Systolic, 2D-Mapping, Tiling, FlexFlow) at the paper
scale: cycles, utilization, and lost PE-cycles per architecture, with
every loss ledger checked against the FXC09 exactness identity.
Unresolvable references (unknown name, unreadable file, or a `.ffnet`
parse/shape error with line and path context) exit 2.

`flexsim heatmap WORKLOAD|PATH.ffnet` simulates one workload with the
spatial sink attached and renders per-PE utilization heatmaps (one per
layer and architecture), per-buffer-bank occupancy watermarks, and the
adder-tree/CDB contention pairs. Every record is exactness-gated:
per-cause heatmap cell sums must equal the layer's loss ledger
(flexcheck FXC13 spatial-exactness) or the process exits 1. `--arch`
restricts to one architecture (a case-insensitive name or prefix:
`flexflow`, `sys`, ...); `--json` emits the byte-stable structured
document; `--svg` an SVG rendering. Output is byte-identical at every
`--jobs` level.

`flexsim workloads` lists every resolvable workload — built-ins plus
`examples/*.ffnet` — with layer, CONV-MAC, and parameter counts.

`flexsim lint` statically verifies every Table 1 workload on all four
architectures with the flexcheck rules (FXC01-FXC13: local-store
capacity, bus races, adder-tree ports, FSM bounds, ISA protocol,
unroll bounds, bank conflicts, utilization sanity, attribution
exactness, cycle exactness, ISA coverage, interference freedom,
spatial exactness) and
exits non-zero on any error. The same check also gates every
simulation. `--json` emits the findings as a byte-stable structured
document instead of the text table.

`flexsim profile [WORKLOAD]` renders the per-layer loss-attribution +
roofline report for one Table 1 workload (all six when omitted):
cycles, utilization, compute- vs bandwidth-bound, and the top loss
causes, with every ledger balanced to the FXC09 exactness identity.

`flexsim prove [WORKLOAD]` proves, without simulating, each Table 1
workload's per-layer cycle counts and loss ledgers on all four
architectures: the symbolic evaluator derives them in closed form, the
cycle-recorded engine run must match exactly (flexcheck FXC10), and
the process exits non-zero on any divergence. `--json` emits the
byte-stable static-vs-dynamic delta document; `--mutate` perturbs the
first prediction by one cycle (the CI self-test that the comparison
has teeth).

`flexsim tune [WORKLOAD]` searches each CONV layer's legal unrolling
space for the mapping minimizing lost PE-cycles: candidates are
enumerated per `--budget`, statically pruned by the flexcheck rules
before any simulation, scored in parallel with the exact loss-ledger
cost function, and the winners verified on the cycle-stepped engine.
Prints the best-mapping table with before/after loss attribution per
cause; with no workload, tunes all six and writes BENCH_tune.json.
`--static` ranks candidates symbolically and engine-verifies the
winners only — the FXC10 proof guarantees the same winners and deltas
at a fraction of the simulation time.

`flexsim stats` runs the Table 1 sweep with host-side telemetry
enabled and reports where *simulator* wall time goes: per-phase
exclusive time (parse, flexcheck, schedule, simulate, verify, export),
per-worker scheduler stats (busy/idle/wall, tasks, steals, queue
high-water), and latency histograms (p50/p90/p99) for experiments,
per-layer simulations, and pool tasks. Telemetry never changes
simulation output — results stay byte-identical with it on or off.

`flexsim bench sweep` times the full sweep serially and at the given
`--jobs` level and writes the comparison to BENCH_pool.json.

`flexsim bench history` times the sweep once, aggregates loss
attribution, and appends one JSON line (wall time, busy/lost
PE-cycles, parallelism, rustc, commit) to BENCH_history.jsonl.

`flexsim bench check` re-times the sweep and exits non-zero when wall
time regressed more than `--threshold` percent (default 50) past the
last line of `--baseline` (default BENCH_history.jsonl); with no
baseline file it reports and exits 0.

options:
  --jobs N        run up to N experiment tasks concurrently (default:
                  available parallelism; `--jobs 1` is byte-identical
                  to the historical serial output)
  --arch A        heatmap: restrict to one architecture (name or
                  case-insensitive prefix)
  --svg           heatmap: emit an SVG rendering instead of text
  --budget B      tune search budget: `smoke` (power-of-two grid),
                  `full` (exhaustive, the default), or a positive
                  per-layer candidate cap
  --static        tune: keep the baseline side symbolic and
                  engine-verify only the winners
  --mutate        prove: perturb the first prediction by one cycle and
                  require the mismatch to be caught (exit non-zero)
  --json          machine-readable JSON on stdout
  --out DIR       also write one .txt + .json per experiment into DIR
  --trace FILE    write a Chrome trace-event JSON file (host spans +
                  cycle-domain timelines + metrics), loadable in
                  Perfetto or chrome://tracing
  --telemetry PATH collect host-side runtime telemetry during any run
                  and write the snapshot to PATH (byte-stable JSON)
                  plus PATH.prom (Prometheus text format); flight
                  dumps (flight-<ts>.json) go to PATH's directory
  --metrics       print the metrics-registry dump to stderr after the run
  --baseline FILE JSONL file `bench check` compares against (default:
                  BENCH_history.jsonl)
  --threshold PCT percent wall-time slowdown `bench check` tolerates
                  (positive integer, default: 50)
  --no-lint       skip the static pre-simulation verification gate
  --list          list experiment ids and exit
  --help          show this message

environment:
  FLEXSIM_LOG     log filter, e.g. `debug` or `span=debug,engine=off`
";

/// A parsed `flexsim` command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cli {
    /// Emit machine-readable JSON on stdout.
    pub json: bool,
    /// List experiment ids and exit.
    pub list: bool,
    /// Show the usage text and exit.
    pub help: bool,
    /// Print the metrics-registry dump after the run.
    pub metrics: bool,
    /// Run the static verifier sweep instead of any experiment.
    pub lint: bool,
    /// Simulate one workload reference on all four architectures.
    pub run: bool,
    /// Render the spatial observability report for one workload.
    pub heatmap: bool,
    /// `heatmap --svg`: emit an SVG rendering instead of text.
    pub svg: bool,
    /// `heatmap --arch`: restrict to one architecture.
    pub arch: Option<String>,
    /// List every resolvable workload instead of any experiment.
    pub workloads: bool,
    /// Run the benchmark subcommand instead of any experiment.
    pub bench: bool,
    /// Run the mapping auto-tuner instead of any experiment.
    pub tune: bool,
    /// Run the symbolic cycle/ledger prover instead of any experiment.
    pub prove: bool,
    /// `tune --static`: symbolic baseline, engine-verify winners only.
    pub static_verify: bool,
    /// `prove --mutate`: corrupt one prediction to self-test the gate.
    pub mutate: bool,
    /// Run the host-telemetry report instead of any experiment.
    pub stats: bool,
    /// Disarm the pre-simulation verification gate.
    pub no_lint: bool,
    /// Maximum concurrently running experiment tasks (`None` = pick the
    /// machine's available parallelism).
    pub jobs: Option<usize>,
    /// Write a Chrome trace-event file to this path.
    pub trace: Option<String>,
    /// Collect host telemetry and write the snapshot to this path
    /// (JSON; a `.prom` sibling carries the Prometheus rendering).
    pub telemetry: Option<String>,
    /// Directory for per-experiment `.txt` + `.json` output.
    pub out_dir: Option<String>,
    /// Baseline JSONL file for `bench check` (default:
    /// `BENCH_history.jsonl`).
    pub baseline: Option<String>,
    /// Percent wall-time slowdown `bench check` tolerates before
    /// failing (default: 50).
    pub threshold_pct: Option<u32>,
    /// Search budget for `flexsim tune` (default: full).
    pub budget: Option<crate::tune::Budget>,
    /// Experiment ids to run; empty means `all`. For `bench` this holds
    /// the benchmark name (`sweep`).
    pub ids: Vec<String>,
}

/// Parses the argument list (program name already stripped).
///
/// # Errors
///
/// Returns a one-line message for unknown flags, for `--out` /
/// `--trace` / `--jobs` missing their value (a following argument that
/// itself looks like a flag does not count as a value), and for a
/// `--jobs` value that is not a positive integer.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut iter = args.iter().map(AsRef::as_ref);
    while let Some(arg) = iter.next() {
        match arg {
            "--json" => cli.json = true,
            "--list" => cli.list = true,
            "--help" | "-h" => cli.help = true,
            "--metrics" => cli.metrics = true,
            "--no-lint" => cli.no_lint = true,
            "lint" => cli.lint = true,
            "run" => cli.run = true,
            "heatmap" => cli.heatmap = true,
            "workloads" => cli.workloads = true,
            "bench" => cli.bench = true,
            "tune" => cli.tune = true,
            "prove" => cli.prove = true,
            "stats" => cli.stats = true,
            "--static" => cli.static_verify = true,
            "--mutate" => cli.mutate = true,
            "--svg" => cli.svg = true,
            "--arch" => cli.arch = Some(value_of(&mut iter, "--arch", "an architecture name")?),
            "--jobs" => {
                let v = value_of(&mut iter, "--jobs", "a positive integer")?;
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cli.jobs = Some(n),
                    _ => return Err(format!("--jobs requires a positive integer, got {v:?}")),
                }
            }
            "--budget" => {
                let v = value_of(&mut iter, "--budget", "`smoke`, `full`, or a candidate cap")?;
                cli.budget = Some(crate::tune::Budget::parse(&v)?);
            }
            "--out" => cli.out_dir = Some(value_of(&mut iter, "--out", "a directory")?),
            "--trace" => cli.trace = Some(value_of(&mut iter, "--trace", "a file path")?),
            "--telemetry" => {
                cli.telemetry = Some(value_of(&mut iter, "--telemetry", "a file path")?);
            }
            "--baseline" => cli.baseline = Some(value_of(&mut iter, "--baseline", "a file path")?),
            "--threshold" => {
                let v = value_of(&mut iter, "--threshold", "a positive integer percent")?;
                match v.parse::<u32>() {
                    Ok(n) if n > 0 => cli.threshold_pct = Some(n),
                    _ => {
                        return Err(format!(
                            "--threshold requires a positive integer percent, got {v:?}"
                        ))
                    }
                }
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option {flag:?}"));
            }
            id => cli.ids.push(id.to_owned()),
        }
    }
    Ok(cli)
}

/// Pulls the value for `flag` off the iterator, refusing flag-shaped
/// arguments so `--out --json` reads as a missing value rather than a
/// directory literally named `--json`.
fn value_of<'a>(
    iter: &mut impl Iterator<Item = &'a str>,
    flag: &str,
    what: &str,
) -> Result<String, String> {
    match iter.next() {
        Some(v) if !v.starts_with('-') => Ok(v.to_owned()),
        _ => Err(format!("{flag} requires {what} argument")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Cli, String> {
        parse(args)
    }

    #[test]
    fn flags_and_ids_mix_in_any_order() {
        let cli = p(&[
            "--json",
            "fig15",
            "--out",
            "results",
            "table06",
            "--metrics",
        ])
        .unwrap();
        assert!(cli.json && cli.metrics && !cli.list && !cli.help);
        assert_eq!(cli.out_dir.as_deref(), Some("results"));
        assert_eq!(cli.trace, None);
        assert_eq!(cli.ids, ["fig15", "table06"]);
    }

    #[test]
    fn empty_args_mean_run_all() {
        let cli = p(&[]).unwrap();
        assert_eq!(cli, Cli::default());
        assert!(cli.ids.is_empty());
    }

    #[test]
    fn trace_takes_a_path() {
        let cli = p(&["--trace", "out.json", "all"]).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("out.json"));
        assert_eq!(cli.ids, ["all"]);
    }

    #[test]
    fn jobs_takes_a_positive_integer() {
        let cli = p(&["--jobs", "4", "all"]).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(p(&[]).unwrap().jobs, None);
    }

    #[test]
    fn bad_jobs_values_are_rejected() {
        for bad in ["0", "four", "-2", "1.5"] {
            let err = p(&["--jobs", bad]).unwrap_err();
            assert!(err.contains("--jobs requires"), "{bad}: {err}");
        }
        assert!(p(&["--jobs"]).unwrap_err().contains("--jobs requires"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        for bad in ["--jsno", "--outdir", "-x", "--trace-file", "--job"] {
            let err = p(&[bad, "all"]).unwrap_err();
            assert!(err.contains("unknown option"), "{bad}: {err}");
            assert!(err.contains(bad), "{bad}: {err}");
        }
    }

    #[test]
    fn value_flags_require_their_value() {
        // At the end of the line…
        assert!(p(&["--out"]).unwrap_err().contains("--out requires"));
        assert!(p(&["fig15", "--trace"])
            .unwrap_err()
            .contains("--trace requires"));
        // …and when the next token is itself a flag.
        assert!(p(&["--out", "--json"]).unwrap_err().contains("--out"));
        assert!(p(&["--trace", "-h"]).unwrap_err().contains("--trace"));
    }

    #[test]
    fn help_short_and_long() {
        assert!(p(&["-h"]).unwrap().help);
        assert!(p(&["--help"]).unwrap().help);
    }

    #[test]
    fn lint_is_a_subcommand_not_an_id() {
        let cli = p(&["lint"]).unwrap();
        assert!(cli.lint && !cli.no_lint);
        assert!(cli.ids.is_empty());
        let cli = p(&["lint", "--json"]).unwrap();
        assert!(cli.lint && cli.json);
    }

    #[test]
    fn bench_is_a_subcommand_with_a_name() {
        let cli = p(&["bench", "sweep"]).unwrap();
        assert!(cli.bench);
        assert_eq!(cli.ids, ["sweep"]);
        let cli = p(&["bench", "sweep", "--jobs", "2"]).unwrap();
        assert!(cli.bench);
        assert_eq!(cli.jobs, Some(2));
    }

    #[test]
    fn bench_check_takes_baseline_and_threshold() {
        let cli = p(&[
            "bench",
            "check",
            "--baseline",
            "b.jsonl",
            "--threshold",
            "25",
        ])
        .unwrap();
        assert!(cli.bench);
        assert_eq!(cli.ids, ["check"]);
        assert_eq!(cli.baseline.as_deref(), Some("b.jsonl"));
        assert_eq!(cli.threshold_pct, Some(25));
        // Defaults stay unset for the caller to fill in.
        let cli = p(&["bench", "check"]).unwrap();
        assert_eq!(cli.baseline, None);
        assert_eq!(cli.threshold_pct, None);
    }

    #[test]
    fn bad_threshold_values_are_rejected() {
        for bad in ["0", "-5", "half", "1.5"] {
            let err = p(&["bench", "check", "--threshold", bad]).unwrap_err();
            assert!(err.contains("--threshold requires"), "{bad}: {err}");
        }
        assert!(p(&["--baseline"]).unwrap_err().contains("--baseline"));
    }

    #[test]
    fn tune_is_a_subcommand_with_budget() {
        let cli = p(&["tune"]).unwrap();
        assert!(cli.tune && !cli.bench);
        assert!(cli.ids.is_empty());
        assert_eq!(cli.budget, None);
        let cli = p(&["tune", "alexnet", "--budget", "smoke", "--jobs", "2"]).unwrap();
        assert!(cli.tune);
        assert_eq!(cli.ids, ["alexnet"]);
        assert_eq!(cli.budget, Some(crate::tune::Budget::Smoke));
        assert_eq!(cli.jobs, Some(2));
        let cli = p(&["tune", "--budget", "128"]).unwrap();
        assert_eq!(cli.budget, Some(crate::tune::Budget::Cap(128)));
    }

    #[test]
    fn bad_budget_values_are_rejected() {
        for bad in ["0", "exhaustive", "1.5"] {
            let err = p(&["tune", "--budget", bad]).unwrap_err();
            assert!(err.contains("--budget requires"), "{bad}: {err}");
        }
        assert!(p(&["tune", "--budget"]).unwrap_err().contains("--budget"));
        // Flag-shaped values read as a missing value, not a budget.
        assert!(p(&["tune", "--budget", "--json"])
            .unwrap_err()
            .contains("--budget"));
    }

    #[test]
    fn prove_is_a_subcommand_with_mutate() {
        let cli = p(&["prove"]).unwrap();
        assert!(cli.prove && !cli.tune && !cli.mutate);
        assert!(cli.ids.is_empty());
        let cli = p(&["prove", "alexnet", "--json", "--mutate", "--jobs", "2"]).unwrap();
        assert!(cli.prove && cli.json && cli.mutate);
        assert_eq!(cli.ids, ["alexnet"]);
        assert_eq!(cli.jobs, Some(2));
    }

    #[test]
    fn tune_static_is_a_flag() {
        let cli = p(&["tune", "pv", "--static", "--budget", "smoke"]).unwrap();
        assert!(cli.tune && cli.static_verify);
        assert_eq!(cli.ids, ["pv"]);
        assert_eq!(cli.budget, Some(crate::tune::Budget::Smoke));
        assert!(!p(&["tune"]).unwrap().static_verify);
    }

    #[test]
    fn stats_is_a_subcommand() {
        let cli = p(&["stats"]).unwrap();
        assert!(cli.stats && !cli.bench && !cli.tune);
        assert!(cli.ids.is_empty());
        let cli = p(&["stats", "--jobs", "4", "--json"]).unwrap();
        assert!(cli.stats && cli.json);
        assert_eq!(cli.jobs, Some(4));
    }

    #[test]
    fn telemetry_takes_a_path_on_any_command() {
        let cli = p(&["--telemetry", "telemetry.json", "all"]).unwrap();
        assert_eq!(cli.telemetry.as_deref(), Some("telemetry.json"));
        assert_eq!(cli.ids, ["all"]);
        let cli = p(&["stats", "--telemetry", "t.json"]).unwrap();
        assert!(cli.stats);
        assert_eq!(cli.telemetry.as_deref(), Some("t.json"));
        // Missing or flag-shaped values are rejected.
        assert!(p(&["--telemetry"]).unwrap_err().contains("--telemetry"));
        assert!(p(&["--telemetry", "--json"])
            .unwrap_err()
            .contains("--telemetry"));
    }

    #[test]
    fn profile_takes_a_workload_argument() {
        let cli = p(&["profile", "alexnet", "--json"]).unwrap();
        assert!(cli.json);
        assert_eq!(cli.ids, ["profile", "alexnet"]);
    }

    #[test]
    fn run_is_a_subcommand_with_a_reference() {
        let cli = p(&["run", "examples/resnet_block.ffnet", "--json"]).unwrap();
        assert!(cli.run && cli.json && !cli.lint);
        assert_eq!(cli.ids, ["examples/resnet_block.ffnet"]);
        let cli = p(&["run", "lenet", "--jobs", "2"]).unwrap();
        assert!(cli.run);
        assert_eq!(cli.ids, ["lenet"]);
        assert_eq!(cli.jobs, Some(2));
    }

    #[test]
    fn heatmap_is_a_subcommand_with_arch_and_svg() {
        let cli = p(&["heatmap", "lenet"]).unwrap();
        assert!(cli.heatmap && !cli.run && !cli.svg);
        assert_eq!(cli.ids, ["lenet"]);
        assert_eq!(cli.arch, None);
        let cli = p(&[
            "heatmap", "pv", "--arch", "flexflow", "--svg", "--jobs", "2",
        ])
        .unwrap();
        assert!(cli.heatmap && cli.svg);
        assert_eq!(cli.arch.as_deref(), Some("flexflow"));
        assert_eq!(cli.jobs, Some(2));
        let cli = p(&["heatmap", "examples/dilated.ffnet", "--json"]).unwrap();
        assert!(cli.heatmap && cli.json);
        assert_eq!(cli.ids, ["examples/dilated.ffnet"]);
        // --arch refuses missing or flag-shaped values.
        assert!(p(&["heatmap", "pv", "--arch"])
            .unwrap_err()
            .contains("--arch"));
        assert!(p(&["heatmap", "pv", "--arch", "--json"])
            .unwrap_err()
            .contains("--arch"));
    }

    #[test]
    fn workloads_is_a_subcommand() {
        let cli = p(&["workloads"]).unwrap();
        assert!(cli.workloads && !cli.run && !cli.bench);
        assert!(cli.ids.is_empty());
        let cli = p(&["workloads", "--json"]).unwrap();
        assert!(cli.workloads && cli.json);
    }

    #[test]
    fn no_lint_disarms_the_gate() {
        let cli = p(&["--no-lint", "fig15"]).unwrap();
        assert!(cli.no_lint && !cli.lint);
        assert_eq!(cli.ids, ["fig15"]);
    }
}
