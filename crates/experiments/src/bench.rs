//! `flexsim bench` — wall-clock benchmarks and the perf-regression
//! tracking harness.
//!
//! Three subcommands, dispatched by [`run`]:
//!
//! * `bench sweep` — times the full experiment sweep serially and at
//!   the requested `--jobs` level and writes the comparison to
//!   `BENCH_pool.json`, tagged with the machine's available
//!   parallelism, the rustc version, and the git commit so a recorded
//!   speedup can never be mistaken for one measured elsewhere.
//! * `bench history` — times the sweep once, aggregates exact loss
//!   attribution over every (workload, architecture) pair, and appends
//!   one JSON line to [`HISTORY_FILE`]. The file is an append-only
//!   log: each entry carries enough provenance (jobs, parallelism,
//!   rustc, commit) to explain a wall-time shift.
//! * `bench check` — re-times the sweep and compares against the last
//!   entry of `--baseline` (default [`HISTORY_FILE`]): exits non-zero
//!   when wall time regressed more than `--threshold` percent
//!   (default [`DEFAULT_THRESHOLD_PCT`]). With no baseline file it
//!   reports the measurement and exits 0, so the first CI run on a
//!   fresh clone records rather than fails.
//!
//! Wall-clock comparisons are inherently machine-sensitive; the
//! default threshold is generous on purpose — the harness catches
//! "the sweep got 2× slower" regressions, not 5% noise.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::cli::Cli;
use crate::experiment::{run_suite, Experiment, ExperimentCtx, SuiteConfig};
use crate::tune::VerifyMode;
use crate::REGISTRY;
use flexsim_model::workloads;
use flexsim_obs::attrib::{ledgers, StallCause};
use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
use flexsim_testkit::json::Json;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The append-only perf-regression log `bench history` writes and
/// `bench check` reads.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Percent wall-time slowdown `bench check` tolerates when
/// `--threshold` is not given.
pub const DEFAULT_THRESHOLD_PCT: u32 = 50;

/// Runs the `bench` subcommand named in `cli.ids`, returning the
/// process exit code (0 ok, 1 regression/failure, 2 usage/I-O error).
pub fn run(cli: &Cli) -> i32 {
    match cli.ids.first().map(String::as_str) {
        Some("sweep") if cli.ids.len() == 1 => sweep(cli),
        Some("history") if cli.ids.len() == 1 => history(cli),
        Some("check") if cli.ids.len() == 1 => check(cli),
        _ => {
            eprintln!(
                "flexsim: bench expects exactly one benchmark name: sweep, history, or check"
            );
            2
        }
    }
}

/// The experiments a bench run times: the sweep set, in paper order.
fn sweep_experiments() -> Vec<&'static dyn Experiment> {
    REGISTRY.iter().filter(|e| e.in_sweep()).copied().collect()
}

/// Times one full sweep at `jobs`; `Err(1)` when an experiment failed.
fn timed_sweep(experiments: &[&'static dyn Experiment], jobs: usize) -> Result<f64, i32> {
    let start = Instant::now();
    let report = run_suite(experiments, &SuiteConfig { jobs, trace: false });
    let wall_s = start.elapsed().as_secs_f64();
    if report.failures.is_empty() {
        Ok(wall_s)
    } else {
        for f in &report.failures {
            eprintln!("experiment {} FAILED: {}", f.id, f.message);
        }
        Err(1)
    }
}

/// `bench sweep`: serial vs `--jobs` wall time, into `BENCH_pool.json`.
fn sweep(cli: &Cli) -> i32 {
    let experiments = sweep_experiments();
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let serial_s = match timed_sweep(&experiments, 1) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let parallel_s = match timed_sweep(&experiments, jobs) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let speedup = serial_s / parallel_s.max(1e-12);
    let doc = Json::obj(
        [
            ("bench", Json::str("sweep")),
            ("experiments", Json::Int(experiments.len() as i64)),
        ]
        .into_iter()
        .chain(honesty_fields())
        .chain([
            ("serial_jobs", Json::Int(1)),
            ("serial_wall_s", Json::Float(serial_s)),
            ("parallel_jobs", Json::Int(jobs as i64)),
            ("parallel_wall_s", Json::Float(parallel_s)),
            ("speedup", Json::Float(speedup)),
        ]),
    );
    let mut text = doc.pretty();
    text.push('\n');
    if let Err(e) = std::fs::write("BENCH_pool.json", text) {
        eprintln!("cannot write BENCH_pool.json: {e}");
        return 2;
    }
    eprintln!(
        "bench sweep: serial {serial_s:.3}s, --jobs {jobs} {parallel_s:.3}s \
         ({speedup:.2}x); wrote BENCH_pool.json"
    );
    0
}

/// `bench history`: one timed sweep + exact attribution, appended as a
/// JSON line to [`HISTORY_FILE`].
///
/// The sweep is timed twice — telemetry off, then on — so every entry
/// also records the host-phase wall breakdown and the measured
/// telemetry overhead, keeping the "telemetry is ≈free" claim gated
/// the same way wall-time regressions are. The entry also times the
/// smoke-budget tuner twice (engine verification vs `--static`
/// symbolic verification — the log is where the static path's speedup
/// is recorded) and the flexproof all-pairs sweep; a prove mismatch
/// refuses to record, keeping the history free of unproved entries.
fn history(cli: &Cli) -> i32 {
    let experiments = sweep_experiments();
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let wall_s = match timed_sweep(&experiments, jobs) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let host = match telemetry_sweep(&experiments, jobs, wall_s) {
        Ok(h) => h,
        Err(code) => return code,
    };
    let attrib = attribution_totals();
    let tune_start = Instant::now();
    let tune = crate::tune::sweep_totals_with(jobs, VerifyMode::Engine);
    let tune_wall_s = tune_start.elapsed().as_secs_f64();
    let static_start = Instant::now();
    let tune_static = crate::tune::sweep_totals_with(jobs, VerifyMode::Static);
    let tune_static_wall_s = static_start.elapsed().as_secs_f64();
    assert_eq!(
        tune.recovered_pe_cycles, tune_static.recovered_pe_cycles,
        "static tuner verification diverged from the engine path"
    );
    let prove_start = Instant::now();
    let prove_ctx = ExperimentCtx::parallel("prove", jobs);
    let proofs = crate::prove::run_workloads(&prove_ctx, &workloads::all(), false);
    let prove_wall_s = prove_start.elapsed().as_secs_f64();
    if let Some(bad) = proofs.iter().find(|o| !o.proved()) {
        eprintln!(
            "bench history: prove sweep FAILED on {}/{} — refusing to record",
            bad.workload, bad.arch
        );
        return 1;
    }
    let timings = SweepTimings {
        tune_wall_s,
        tune_static_wall_s,
        prove_pairs: proofs.len(),
        prove_wall_s,
    };
    let entry = history_entry(
        unix_seconds(),
        wall_s,
        jobs,
        experiments.len(),
        honesty_fields(),
        &attrib,
        &tune,
        &timings,
        &host,
    );
    let mut line = entry.compact();
    line.push('\n');
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(HISTORY_FILE)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("cannot append to {HISTORY_FILE}: {e}");
        return 2;
    }
    eprintln!(
        "bench history: sweep {wall_s:.3}s at --jobs {jobs}, busy {} PE-cycles, \
         lost {} PE-cycles, telemetry overhead {:.1}%; appended to {HISTORY_FILE}",
        attrib.busy_pe_cycles,
        attrib.lost.iter().map(|(_, v)| v).sum::<u64>(),
        host.overhead_pct
    );
    0
}

/// Host-telemetry measurements for one history entry: the per-phase
/// exclusive wall totals from a telemetry-on sweep, and that sweep's
/// overhead relative to the telemetry-off wall time.
struct HostTotals {
    phase_us: Vec<(&'static str, u64)>,
    overhead_pct: f64,
}

/// Re-times the sweep with telemetry enabled and compares against the
/// already-measured `off_wall_s`. Telemetry state is reset before and
/// disabled after, so the measurement never leaks into the rest of the
/// process.
fn telemetry_sweep(
    experiments: &[&'static dyn Experiment],
    jobs: usize,
    off_wall_s: f64,
) -> Result<HostTotals, i32> {
    use flexsim_obs::telemetry;
    telemetry::enable();
    telemetry::reset();
    let on_wall_s = match timed_sweep(experiments, jobs) {
        Ok(s) => s,
        Err(code) => {
            telemetry::disable();
            return Err(code);
        }
    };
    let snap = telemetry::snapshot();
    telemetry::disable();
    // Recorded honestly, noise and all: on a sub-100ms sweep this can
    // even go negative (cache warming beats the probe cost). The
    // acceptance bar lives in the integration tests; the log is data.
    let overhead_pct = (on_wall_s - off_wall_s) / off_wall_s.max(1e-9) * 100.0;
    Ok(HostTotals {
        phase_us: snap
            .phases
            .iter()
            .map(|&(p, _, us)| (p.name(), us))
            .collect(),
        overhead_pct,
    })
}

/// `bench check`: re-time the sweep and gate on the recorded baseline.
fn check(cli: &Cli) -> i32 {
    let path = cli.baseline.as_deref().unwrap_or(HISTORY_FILE);
    let threshold = cli.threshold_pct.unwrap_or(DEFAULT_THRESHOLD_PCT);
    let baseline = match baseline_wall_s(path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("flexsim: {msg}");
            return 2;
        }
    };
    let tune_baseline = match baseline_tune_recovered(path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("flexsim: {msg}");
            return 2;
        }
    };
    let experiments = sweep_experiments();
    let jobs = cli.jobs.unwrap_or_else(flexsim_pool::available_parallelism);
    let wall_s = match timed_sweep(&experiments, jobs) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut code = match baseline {
        None => {
            eprintln!(
                "bench check: no baseline at {path}; measured {wall_s:.3}s \
                 (recording only — run `flexsim bench history` to create one)"
            );
            0
        }
        Some(base) => {
            if regressed(base, wall_s, threshold) {
                eprintln!(
                    "bench check: REGRESSION — sweep took {wall_s:.3}s vs baseline \
                     {base:.3}s (> {threshold}% slower; baseline {path})"
                );
                1
            } else {
                eprintln!(
                    "bench check: ok — sweep took {wall_s:.3}s vs baseline {base:.3}s \
                     (threshold {threshold}%; baseline {path})"
                );
                0
            }
        }
    };
    // Tuner quality gate: recovered PE-cycles are a deterministic
    // simulated quantity (no wall-clock noise), so *any* drop below
    // the recorded baseline is a regression.
    if let Some(base_recovered) = tune_baseline {
        let tune = crate::tune::sweep_totals(jobs);
        if tune.recovered_pe_cycles < base_recovered {
            eprintln!(
                "bench check: TUNER REGRESSION — smoke-budget sweep recovers {} \
                 PE-cycles vs baseline {base_recovered} (baseline {path})",
                tune.recovered_pe_cycles
            );
            code = 1;
        } else {
            eprintln!(
                "bench check: tune ok — smoke-budget sweep recovers {} PE-cycles \
                 (baseline {base_recovered})",
                tune.recovered_pe_cycles
            );
        }
    }
    code
}

/// The regression predicate: `measured` exceeds `baseline` by more
/// than `threshold_pct` percent.
fn regressed(baseline_s: f64, measured_s: f64, threshold_pct: u32) -> bool {
    measured_s > baseline_s * (1.0 + f64::from(threshold_pct) / 100.0)
}

/// The last entry of the baseline file, parsed; `Ok(None)` when the
/// file does not exist (fresh clone) or holds no entries, `Err` when
/// it exists but cannot be understood (a corrupt baseline must not
/// silently pass the gate).
fn baseline_entry(path: &str) -> Result<Option<Json>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read baseline {path}: {e}")),
    };
    let Some(last) = text.lines().rev().find(|l| !l.trim().is_empty()) else {
        return Ok(None);
    };
    Json::parse(last)
        .map(Some)
        .map_err(|e| format!("baseline {path}: bad last line: {e:?}"))
}

/// The `wall_s` of the last entry in the baseline file (see
/// [`baseline_entry`] for the `Ok(None)`/`Err` contract).
fn baseline_wall_s(path: &str) -> Result<Option<f64>, String> {
    match baseline_entry(path)? {
        None => Ok(None),
        Some(doc) => json_field(&doc, "wall_s")
            .and_then(json_f64)
            .map(Some)
            .ok_or_else(|| format!("baseline {path}: last line has no numeric \"wall_s\"")),
    }
}

/// The `tune_recovered_pe_cycles` of the last baseline entry, when the
/// baseline predates the tuner `None` (old logs stay valid baselines).
fn baseline_tune_recovered(path: &str) -> Result<Option<i64>, String> {
    Ok(baseline_entry(path)?
        .as_ref()
        .and_then(|doc| json_field(doc, "tune_recovered_pe_cycles"))
        .and_then(json_f64)
        .map(|v| v as i64))
}

/// Workload-sweep attribution totals: busy PE-cycles plus lost
/// PE-cycles per cause, summed over every Table 1 workload on all four
/// architectures. Panics (via the ledger exactness assert) if any
/// simulator's attribution stopped balancing — the bench log must
/// never record inexact numbers.
struct AttributionTotals {
    busy_pe_cycles: u64,
    lost: Vec<(&'static str, u64)>,
}

fn attribution_totals() -> AttributionTotals {
    let mut busy = 0u64;
    let mut lost = [0u64; StallCause::COUNT];
    for net in workloads::all() {
        for idx in 0..ARCH_NAMES.len() {
            let rec = Arc::new(CycleRecorder::new());
            let mut acc = ArchSet::builder()
                .sink(SinkHandle::new(rec.clone()))
                .build_one(&net, idx);
            let _ = acc.run_network(&net);
            for ledger in ledgers(&rec.take()) {
                let diags = flexcheck::check_ledgers(std::slice::from_ref(&ledger));
                assert!(
                    diags.is_empty(),
                    "{}/{}: {}",
                    net.name(),
                    acc.name(),
                    flexcheck::render(&diags)
                );
                busy += ledger.busy_pe_cycles;
                for cause in StallCause::ALL {
                    lost[cause.index()] += ledger.lost(cause);
                }
            }
        }
    }
    AttributionTotals {
        busy_pe_cycles: busy,
        lost: StallCause::ALL
            .iter()
            .map(|c| (c.name(), lost[c.index()]))
            .collect(),
    }
}

/// Wall times of the verification sweeps a history entry records
/// alongside the experiment sweep: the tuner with engine verification,
/// the tuner with static (symbolic) verification, and the flexproof
/// all-pairs proof sweep.
struct SweepTimings {
    tune_wall_s: f64,
    tune_static_wall_s: f64,
    prove_pairs: usize,
    prove_wall_s: f64,
}

/// The provenance fields every bench artifact carries — machine
/// parallelism, compiler, commit, and the spatial-instrumentation
/// probe — produced in one place so `BENCH_pool.json`,
/// `BENCH_tune.json`, and [`HISTORY_FILE`] can never drift apart in
/// what "honest numbers" means.
pub(crate) fn honesty_fields() -> [(&'static str, Json); 5] {
    let spatial = spatial_probe();
    [
        (
            "available_parallelism",
            Json::Int(flexsim_pool::available_parallelism() as i64),
        ),
        ("rustc", Json::str(rustc_version())),
        ("commit", Json::str(git_commit())),
        ("heatmap_cells", Json::Int(spatial.cells as i64)),
        ("spatial_overhead_pct", Json::Float(spatial.overhead_pct)),
    ]
}

/// The spatial-probe measurements: how many heatmap cells one
/// reference run records, and the wall-clock overhead of recording
/// them.
struct SpatialProbe {
    cells: u64,
    overhead_pct: f64,
}

/// Times a reference workload (LeNet-5 on FlexFlow) with and without a
/// spatial sink attached. The cell count documents the heatmap volume
/// behind the overhead number; the overhead keeps the "spatial
/// observability is ≈free when detached, cheap when attached" claim on
/// the record, noise and all (like the telemetry overhead, the
/// acceptance bar lives in the integration tests — the log is data).
fn spatial_probe() -> SpatialProbe {
    use flexsim_obs::spatial::{SpatialHandle, SpatialRecorder};
    let net = workloads::lenet5();
    let plain_start = Instant::now();
    let mut acc = ArchSet::builder().build_one(&net, ARCH_NAMES.len() - 1);
    let _ = acc.run_network(&net);
    let plain_s = plain_start.elapsed().as_secs_f64();
    let spa = Arc::new(SpatialRecorder::new());
    let spatial_start = Instant::now();
    let mut acc = ArchSet::builder()
        .spatial(SpatialHandle::new(spa.clone()))
        .build_one(&net, ARCH_NAMES.len() - 1);
    let _ = acc.run_network(&net);
    let spatial_s = spatial_start.elapsed().as_secs_f64();
    let cells = spa
        .take()
        .iter()
        .map(|sp| sp.pe_count() as u64)
        .sum::<u64>();
    SpatialProbe {
        cells,
        overhead_pct: (spatial_s - plain_s) / plain_s.max(1e-9) * 100.0,
    }
}

/// Workload-count honesty fields for a history entry: how many
/// workloads were resolvable when the line was recorded, split into
/// built-ins and discovered `.ffnet` files — so a wall-time or
/// attribution shift caused by the workload set growing is
/// attributable from the log alone.
fn workload_counts() -> [(&'static str, Json); 3] {
    use flexsim_model::registry::WorkloadSource;
    let entries = crate::frontend::registry().entries();
    let builtin = entries
        .iter()
        .filter(|e| e.source == WorkloadSource::Builtin)
        .count();
    [
        ("workloads_total", Json::Int(entries.len() as i64)),
        ("workloads_builtin", Json::Int(builtin as i64)),
        (
            "workloads_ffnet",
            Json::Int((entries.len() - builtin) as i64),
        ),
    ]
}

/// One history line, keys in stable order.
#[allow(clippy::too_many_arguments)] // a serialization boundary, not an API
fn history_entry(
    ts_unix: u64,
    wall_s: f64,
    jobs: usize,
    experiments: usize,
    honesty: [(&'static str, Json); 5],
    attrib: &AttributionTotals,
    tune: &crate::tune::SweepTotals,
    timings: &SweepTimings,
    host: &HostTotals,
) -> Json {
    Json::obj(
        [
            ("bench", Json::str("history")),
            ("ts_unix", Json::Int(ts_unix as i64)),
            ("wall_s", Json::Float(wall_s)),
            ("jobs", Json::Int(jobs as i64)),
            ("experiments", Json::Int(experiments as i64)),
        ]
        .into_iter()
        .chain(honesty)
        .chain(workload_counts())
        .chain([
            ("busy_pe_cycles", Json::Int(attrib.busy_pe_cycles as i64)),
            (
                "lost_pe_cycles",
                Json::obj(
                    attrib
                        .lost
                        .iter()
                        .map(|&(name, v)| (name, Json::Int(v as i64))),
                ),
            ),
            ("tune_budget", Json::str("smoke")),
            (
                "tune_recovered_pe_cycles",
                Json::Int(tune.recovered_pe_cycles),
            ),
            (
                "tune_workloads_improved",
                Json::Int(tune.workloads_improved as i64),
            ),
            ("tune_wall_s", Json::Float(timings.tune_wall_s)),
            (
                "tune_static_wall_s",
                Json::Float(timings.tune_static_wall_s),
            ),
            ("prove_pairs", Json::Int(timings.prove_pairs as i64)),
            ("prove_wall_s", Json::Float(timings.prove_wall_s)),
            (
                "host_phase_us",
                Json::obj(
                    host.phase_us
                        .iter()
                        .map(|&(name, us)| (name, Json::Int(us as i64))),
                ),
            ),
            ("telemetry_overhead_pct", Json::Float(host.overhead_pct)),
        ]),
    )
}

/// Seconds since the Unix epoch (0 if the clock is before it).
fn unix_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// `rustc -V`, or `"unknown"` when the compiler is not on PATH.
pub(crate) fn rustc_version() -> String {
    command_line("rustc", &["-V"])
}

/// Short git commit hash, or `"unknown"` outside a repository.
pub(crate) fn git_commit() -> String {
    command_line("git", &["rev-parse", "--short", "HEAD"])
}

/// First stdout line of a subprocess, `"unknown"` on any failure.
fn command_line(program: &str, args: &[&str]) -> String {
    std::process::Command::new(program)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .and_then(|s| s.lines().next().map(str::to_owned))
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Looks up `key` in a JSON object.
fn json_field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric value of an `Int` or `Float` node.
fn json_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_predicate_uses_the_threshold() {
        assert!(!regressed(10.0, 10.0, 50));
        assert!(!regressed(10.0, 14.9, 50));
        assert!(regressed(10.0, 15.1, 50));
        assert!(regressed(1.0, 1.3, 25));
        assert!(!regressed(1.0, 1.2, 25));
    }

    #[test]
    fn history_entry_round_trips_and_keeps_wall_s_extractable() {
        let attrib = AttributionTotals {
            busy_pe_cycles: 123,
            lost: StallCause::ALL.iter().map(|c| (c.name(), 7)).collect(),
        };
        let tune = crate::tune::SweepTotals {
            recovered_pe_cycles: 4_096,
            workloads_improved: 4,
        };
        let host = HostTotals {
            phase_us: vec![("parse", 11), ("simulate", 42_000)],
            overhead_pct: 1.5,
        };
        let timings = SweepTimings {
            tune_wall_s: 3.5,
            tune_static_wall_s: 0.25,
            prove_pairs: 24,
            prove_wall_s: 0.75,
        };
        let honesty = [
            ("available_parallelism", Json::Int(16)),
            ("rustc", Json::str("rustc 1.x")),
            ("commit", Json::str("abc1234")),
            ("heatmap_cells", Json::Int(1024)),
            ("spatial_overhead_pct", Json::Float(0.5)),
        ];
        let entry = history_entry(
            1_700_000_000,
            4.25,
            8,
            17,
            honesty,
            &attrib,
            &tune,
            &timings,
            &host,
        );
        let line = entry.compact();
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed, entry);
        assert_eq!(json_field(&parsed, "wall_s").and_then(json_f64), Some(4.25));
        assert_eq!(json_field(&parsed, "commit"), Some(&Json::str("abc1234")));
        assert_eq!(json_field(&parsed, "heatmap_cells"), Some(&Json::Int(1024)));
        assert_eq!(
            json_field(&parsed, "spatial_overhead_pct").and_then(json_f64),
            Some(0.5)
        );
        assert_eq!(
            json_field(&parsed, "tune_static_wall_s").and_then(json_f64),
            Some(0.25)
        );
        assert_eq!(json_field(&parsed, "prove_pairs"), Some(&Json::Int(24)));
        assert_eq!(
            json_field(&parsed, "prove_wall_s").and_then(json_f64),
            Some(0.75)
        );
        let lost = json_field(&parsed, "lost_pe_cycles").unwrap();
        for cause in StallCause::ALL {
            assert_eq!(json_field(lost, cause.name()), Some(&Json::Int(7)));
        }
        assert_eq!(
            json_field(&parsed, "tune_recovered_pe_cycles"),
            Some(&Json::Int(4_096))
        );
        let phases = json_field(&parsed, "host_phase_us").unwrap();
        assert_eq!(json_field(phases, "simulate"), Some(&Json::Int(42_000)));
        assert_eq!(
            json_field(&parsed, "telemetry_overhead_pct").and_then(json_f64),
            Some(1.5)
        );
    }

    #[test]
    fn tune_baseline_is_optional_in_old_logs() {
        let dir = std::env::temp_dir();
        let old = dir.join("flexsim_bench_pre_tune_test.jsonl");
        std::fs::write(&old, "{\"wall_s\": 2.0}\n").unwrap();
        // A log written before the tuner existed gates wall time only.
        assert_eq!(
            baseline_tune_recovered(old.to_str().unwrap()).unwrap(),
            None
        );
        let new = dir.join("flexsim_bench_with_tune_test.jsonl");
        std::fs::write(
            &new,
            "{\"wall_s\": 2.0, \"tune_recovered_pe_cycles\": 123}\n",
        )
        .unwrap();
        assert_eq!(
            baseline_tune_recovered(new.to_str().unwrap()).unwrap(),
            Some(123)
        );
        for f in [old, new] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn baseline_reader_handles_missing_empty_and_corrupt_files() {
        // Missing file: fresh clone, no baseline.
        assert_eq!(
            baseline_wall_s("bench_test_definitely_missing.jsonl").unwrap(),
            None
        );
        let dir = std::env::temp_dir();
        let empty = dir.join("flexsim_bench_empty_test.jsonl");
        std::fs::write(&empty, "\n\n").unwrap();
        assert_eq!(baseline_wall_s(empty.to_str().unwrap()).unwrap(), None);
        let corrupt = dir.join("flexsim_bench_corrupt_test.jsonl");
        std::fs::write(&corrupt, "{not json\n").unwrap();
        assert!(baseline_wall_s(corrupt.to_str().unwrap()).is_err());
        let good = dir.join("flexsim_bench_good_test.jsonl");
        std::fs::write(&good, "{\"wall_s\": 1.0}\n{\"wall_s\": 2.5}\n").unwrap();
        assert_eq!(baseline_wall_s(good.to_str().unwrap()).unwrap(), Some(2.5));
        for f in [empty, corrupt, good] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn honesty_fields_carry_the_spatial_probe() {
        let fields = honesty_fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            [
                "available_parallelism",
                "rustc",
                "commit",
                "heatmap_cells",
                "spatial_overhead_pct"
            ]
        );
        // The probe actually records cells: LeNet-5 on the 16×16
        // FlexFlow engine yields 256 per CONV layer.
        match &fields[3].1 {
            Json::Int(cells) => assert!(*cells > 0, "no heatmap cells recorded"),
            other => panic!("heatmap_cells is not an integer: {other:?}"),
        }
        assert!(matches!(fields[4].1, Json::Float(_)));
    }

    #[test]
    fn subprocess_probes_never_panic() {
        // Whatever the environment, these must degrade to "unknown",
        // not fail — CI containers may lack git metadata.
        assert!(!rustc_version().is_empty());
        assert!(!git_commit().is_empty());
        assert_eq!(command_line("flexsim-no-such-binary", &[]), "unknown");
    }

    #[test]
    fn attribution_totals_cover_multiple_causes() {
        let attrib = attribution_totals();
        assert!(attrib.busy_pe_cycles > 0);
        let nonzero = attrib.lost.iter().filter(|(_, v)| *v > 0).count();
        assert!(
            nonzero >= 4,
            "expected several causes, got {:?}",
            attrib.lost
        );
    }
}
