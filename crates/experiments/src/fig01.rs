//! Figure 1 — nominal vs. achievable performance of the three baseline
//! architectures on LeNet-5.
//!
//! The paper's motivating figure: engines promise `2·PEs·f` GOPS but
//! deliver a fraction of it on a real workload ("It's not uncommon that
//! merely 10% GOPS is achieved in practice").

use crate::arches::ArchSet;
use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{fmt_f, pct, ExperimentResult, Table};
use flexsim_model::workloads;

/// The registry entry for this experiment.
pub struct Fig01;

impl Experiment for Fig01 {
    fn id(&self) -> &'static str {
        "fig01"
    }
    fn title(&self) -> &'static str {
        "Nominal vs. achievable performance (LeNet-5)"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig1"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let net = workloads::lenet5();
    let mut table = Table::new([
        "architecture",
        "nominal GOPS",
        "achieved GOPS",
        "achievable/nominal %",
    ]);
    // Fig. 1 shows the three prior architectures; FlexFlow (index 3)
    // is excluded.
    let wl = net.name().to_owned();
    let rows = ctx.map(
        (0..3usize).collect(),
        |&idx| format!("{wl}/{}", crate::arches::ARCH_NAMES[idx]),
        move |tctx, idx| {
            let mut acc = ArchSet::builder().sink(tctx.sink()).build_one(&net, idx);
            let summary = acc.run_network(&net);
            let nominal = 2.0 * acc.pe_count() as f64 * acc.clock_ghz();
            let achieved = summary.gops();
            [
                acc.name().to_owned(),
                fmt_f(nominal, 0),
                fmt_f(achieved, 1),
                pct(achieved / nominal),
            ]
        },
    );
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig01".into(),
        title: Fig01.title().into(),
        notes: vec![
            "Paper shows unlabeled bars; the text's claim is that achievable \
             performance drops far below nominal (down to ~10%)."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("fig01"))
    }

    #[test]
    fn all_baselines_fall_well_short_of_nominal() {
        let r = run_serial();
        assert_eq!(r.table.rows().len(), 3);
        for row in r.table.rows() {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(
                ratio < 60.0,
                "{}: achievable {}% should be far below nominal",
                row[0],
                row[3]
            );
        }
    }

    #[test]
    fn tiling_is_the_worst_on_lenet() {
        // LeNet-5 has few feature maps; Tiling starves (Fig. 1's lowest
        // bar in our reading and Table 3's 6-8% entries).
        let r = run_serial();
        let ratio = |name: &str| -> f64 {
            r.table
                .cell(name, "achievable/nominal %")
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(ratio("Tiling") < ratio("Systolic"));
        assert!(ratio("Tiling") < ratio("2D-Mapping"));
        assert!(ratio("Tiling") < 12.0);
    }
}
