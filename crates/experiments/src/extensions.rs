//! Extension experiments beyond the paper's figures.
//!
//! * [`roofline`] — carries Fig. 17/Table 7's data-reuse story to its
//!   system-level consequence: with a DDR3-class DRAM interface, which
//!   architectures are memory-bound at the paper's 1 GHz clock?
//! * [`batching`] — weight amortization across a batch of inferences:
//!   the fix for the small-net memory roof [`roofline`] exposes;
//! * [`routing_share`] — the Section 6.2.5 routing-network share trend
//!   (the paper quotes 28.34 % / 25.97 % / 21.32 % for 16×16 / 32×32 /
//!   64×64), measured on our area model.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{fmt_f, pct, ExperimentResult, Table};
use flexflow::FlexFlow;
use flexsim_arch::bandwidth::DramInterface;
use flexsim_arch::dram::{network_traffic, network_traffic_fused};
use flexsim_arch::Accelerator;
use flexsim_model::{workloads, Network};

/// Registry entry for the roofline extension.
pub struct ExtRoofline;

impl Experiment for ExtRoofline {
    fn id(&self) -> &'static str {
        "ext_roofline"
    }
    fn title(&self) -> &'static str {
        "Extension: DRAM roofline at DDR3-class bandwidth (6.4 GB/s)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        roofline(ctx)
    }
}

/// Registry entry for the batching extension.
pub struct ExtBatching;

impl Experiment for ExtBatching {
    fn id(&self) -> &'static str {
        "ext_batching"
    }
    fn title(&self) -> &'static str {
        "Extension: batched inference lifts the small-net memory roof"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        batching(ctx)
    }
}

/// Registry entry for the routing-share extension.
pub struct ExtRoutingShare;

impl Experiment for ExtRoutingShare {
    fn id(&self) -> &'static str {
        "ext_routing_share"
    }
    fn title(&self) -> &'static str {
        "Extension: FlexFlow interconnect share vs. engine scale (Sec. 6.2.5)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        routing_share(ctx)
    }
}

/// Runs the roofline extension.
pub fn roofline(ctx: &ExperimentCtx) -> ExperimentResult {
    let pairs: Vec<(Network, usize)> = workloads::all()
        .iter()
        .flat_map(|net| (0..ARCH_NAMES.len()).map(move |idx| (net.clone(), idx)))
        .collect();
    let rows = ctx.map(
        pairs,
        |(net, idx)| format!("{}/{}", net.name(), ARCH_NAMES[*idx]),
        |tctx, (net, idx)| {
            let dram = DramInterface::ddr3_style();
            // DRAM traffic depends on buffer capacity, shared by all four
            // engines (Table 5) — the architectures differ in the compute
            // side.
            let traffic = network_traffic(&net, 16 * 1024, 16 * 1024);
            let mut acc = ArchSet::builder().sink(tctx.sink()).build_one(&net, idx);
            let s = acc.run_network(&net);
            let point = dram.cap(s.gops(), traffic, net.conv_macs());
            [
                net.name().to_owned(),
                acc.name().to_owned(),
                fmt_f(point.compute_gops, 0),
                if point.roofline_gops.is_finite() {
                    fmt_f(point.roofline_gops, 0)
                } else {
                    "inf".to_owned()
                },
                fmt_f(point.achievable_gops, 0),
                if point.memory_bound {
                    "memory"
                } else {
                    "compute"
                }
                .to_owned(),
            ]
        },
    );
    let mut table = Table::new([
        "workload",
        "arch",
        "compute GOPS",
        "roofline GOPS",
        "achievable GOPS",
        "bound",
    ]);
    for row in rows {
        table.push_row(row);
    }
    ExperimentResult {
        id: "ext_roofline".into(),
        title: ExtRoofline.title().into(),
        notes: vec![
            "All engines share the Table 5 buffers, so per-frame DRAM \
             traffic is common across architectures; the bound column shows \
             whose compute throughput exceeds the memory roof."
                .into(),
            "Finding: on the big nets (AlexNet) the roof is high enough that \
             FlexFlow's 496 GOPS is realizable, while on the small nets the \
             arithmetic intensity of a *single inference* is so low that \
             every engine faster than ~150-200 GOPS hits the same DRAM roof \
             — deploying the paper's speedups on small CNNs requires \
             batching or persistent on-chip weights (they fit: LeNet-5's \
             weights are ~26 KB)."
                .into(),
        ],
        table,
    }
}

/// Runs the batching extension: FlexFlow's achievable GOPS vs. batch
/// size under the DDR3-class roofline.
pub fn batching(ctx: &ExperimentCtx) -> ExperimentResult {
    let per_net = ctx.map(
        vec![workloads::lenet5(), workloads::pv(), workloads::alexnet()],
        |net| net.name().to_owned(),
        |tctx, net| {
            let dram = DramInterface::ddr3_style();
            crate::lint::gate(&net, 16);
            let mut ff = FlexFlow::paper_config();
            ff.attach_sink(tctx.sink());
            let compute = ff.run_network(&net).gops();
            let mut rows: Vec<[String; 6]> = Vec::new();
            for batch in [1u64, 4, 16, 64] {
                // Fused-chain traffic: FlexFlow's ping-pong neuron buffers
                // keep fitting intermediates on chip.
                let traffic = network_traffic_fused(&net, 16 * 1024, 16 * 1024, batch);
                let point = dram.cap(compute, traffic, net.conv_macs() * batch);
                rows.push([
                    net.name().to_owned(),
                    batch.to_string(),
                    fmt_f(point.compute_gops, 0),
                    fmt_f(point.roofline_gops, 0),
                    fmt_f(point.achievable_gops, 0),
                    if point.memory_bound {
                        "memory"
                    } else {
                        "compute"
                    }
                    .to_owned(),
                ]);
            }
            rows
        },
    );
    let mut table = Table::new([
        "workload",
        "batch",
        "compute GOPS",
        "roofline GOPS",
        "achievable GOPS",
        "bound",
    ]);
    for row in per_net.into_iter().flatten() {
        table.push_row(row);
    }
    ExperimentResult {
        id: "ext_batching".into(),
        title: ExtBatching.title().into(),
        notes: vec![
            "With the engine's own ping-pong buffers keeping intermediates \
             on chip (layer fusion) and weights amortized across the batch, \
             the small workloads become compute-bound within a few frames, \
             making the paper's speedups deployable."
                .into(),
        ],
        table,
    }
}

/// Runs the routing-share extension (Section 6.2.5's quoted trend).
/// Purely analytic (area model only), so it stays on the calling thread.
pub fn routing_share(_ctx: &ExperimentCtx) -> ExperimentResult {
    let mut table = Table::new([
        "scale",
        "interconnect mm2",
        "total mm2",
        "share %",
        "paper power-share %",
    ]);
    for (d, paper) in crate::paper::ROUTING_POWER_SHARE {
        let ff = FlexFlow::new(d);
        let area = ff.area();
        table.push_row([
            format!("{d}x{d}"),
            fmt_f(area.interconnect_mm2, 2),
            fmt_f(area.total_mm2(), 2),
            pct(area.interconnect_fraction()),
            fmt_f(paper, 2),
        ]);
    }
    ExperimentResult {
        id: "ext_routing_share".into(),
        title: ExtRoutingShare.title().into(),
        notes: vec![
            "The paper quotes the routing network's *power* share; we measure \
             the area share of the same CDB fabric. Both decline with scale \
             because the buses are an affine (backbone + per-PE tap) cost."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_flexflow_is_compute_bound() {
        // The big-net case the paper's reuse story enables: FlexFlow's
        // ~500 GOPS on AlexNet fits under the DDR3 roof.
        let r = roofline(&ExperimentCtx::serial("ext_roofline"));
        let row = r
            .table
            .rows()
            .iter()
            .find(|row| row[0] == "AlexNet" && row[1] == "FlexFlow")
            .unwrap()
            .clone();
        assert_eq!(row[5], "compute");
        let compute: f64 = row[2].parse().unwrap();
        let achievable: f64 = row[4].parse().unwrap();
        assert!((compute - achievable).abs() < 1.0);
    }

    #[test]
    fn small_nets_share_a_memory_roof_at_single_frame() {
        // Low single-inference arithmetic intensity: on every small net
        // the fastest engines (FlexFlow included) hit the same roof —
        // the slow ones (Tiling) stay compute-bound below it.
        let r = roofline(&ExperimentCtx::serial("ext_roofline"));
        for wl in ["PV", "FR", "LeNet-5", "HG"] {
            let ff = r
                .table
                .rows()
                .iter()
                .find(|row| row[0] == wl && row[1] == "FlexFlow")
                .unwrap()
                .clone();
            assert_eq!(ff[5], "memory", "{wl}");
            let tiling = r
                .table
                .rows()
                .iter()
                .find(|row| row[0] == wl && row[1] == "Tiling")
                .unwrap()
                .clone();
            assert_eq!(tiling[5], "compute", "{wl}");
        }
    }

    #[test]
    fn batching_lifts_the_memory_roof() {
        let r = batching(&ExperimentCtx::serial("ext_batching"));
        let roof_at = |wl: &str, b: &str| -> f64 {
            r.table
                .rows()
                .iter()
                .find(|row| row[0] == wl && row[1] == b)
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        // With fusion, LeNet-5 squeaks past the roof even at batch 1
        // (within ~10% of compute) and batching gives real headroom.
        let compute = 424.0;
        assert!(roof_at("LeNet-5", "1") > 0.9 * compute);
        assert!(roof_at("LeNet-5", "16") > 1.5 * compute);
        // AlexNet's roof is batch-independent (intermediates too big to
        // fuse, weights dominated by activations).
        assert!((roof_at("AlexNet", "1") - roof_at("AlexNet", "64")).abs() < 1.0);
        // Roofline is monotone nondecreasing in batch.
        for wl in ["LeNet-5", "PV", "AlexNet"] {
            let roofs: Vec<f64> = r
                .table
                .rows()
                .iter()
                .filter(|row| row[0] == wl)
                .map(|row| row[3].parse().unwrap())
                .collect();
            for pair in roofs.windows(2) {
                assert!(pair[1] >= pair[0] - 1e-9, "{wl}");
            }
        }
    }

    #[test]
    fn routing_share_declines_like_the_paper() {
        let r = routing_share(&ExperimentCtx::serial("ext_routing_share"));
        let shares: Vec<f64> = r
            .table
            .rows()
            .iter()
            .map(|row| row[3].parse().unwrap())
            .collect();
        assert_eq!(shares.len(), 3);
        assert!(shares[0] > shares[1] && shares[1] > shares[2]);
        // Same ballpark as the quoted power shares (15-30%).
        for s in shares {
            assert!((10.0..32.0).contains(&s));
        }
    }
}
