//! Figure 18 — power efficiency (GOPS/W), energy, and power, four
//! architectures × six workloads.

use crate::experiment::{Experiment, ExperimentCtx};
use crate::fig15::per_pair;
use crate::report::{fmt_f, ExperimentResult, Table};

/// The registry entry for this experiment.
pub struct Fig18;

impl Experiment for Fig18 {
    fn id(&self) -> &'static str {
        "fig18"
    }
    fn title(&self) -> &'static str {
        "Power efficiency (a), energy (b), and power (c)"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment (all three panels in one table).
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "metric",
        "Systolic",
        "2D-Mapping",
        "Tiling",
        "FlexFlow",
    ]);
    for (net, metrics) in per_pair(ctx, |acc, net| {
        let s = acc.run_network(net);
        (
            s.efficiency_gops_per_w(),
            s.energy_j() * 1e6, // µJ
            s.power_w() * 1e3,  // mW
        )
    }) {
        let mut row = vec![net.name().to_owned(), "GOPS/W".to_owned()];
        row.extend(metrics.iter().map(|(eff, _, _)| fmt_f(*eff, 0)));
        table.push_row(row);
        let mut row = vec![net.name().to_owned(), "energy uJ".to_owned()];
        row.extend(metrics.iter().map(|(_, energy, _)| fmt_f(*energy, 1)));
        table.push_row(row);
        let mut row = vec![net.name().to_owned(), "power mW".to_owned()];
        row.extend(metrics.iter().map(|(_, _, power)| fmt_f(*power, 0)));
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig18".into(),
        title: Fig18.title().into(),
        notes: vec!["Paper: FlexFlow has the highest efficiency (1.5-2.5x over \
             Systolic/2D-Mapping, up to 10x over Tiling) and the lowest \
             energy, while drawing the highest raw power (utilization!)."
            .into()],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric_rows(r: &ExperimentResult, metric: &str) -> Vec<Vec<f64>> {
        r.table
            .rows()
            .iter()
            .filter(|row| row[1] == metric)
            .map(|row| row[2..].iter().map(|v| v.parse().unwrap()).collect())
            .collect()
    }

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("fig18"))
    }

    #[test]
    fn flexflow_most_efficient_everywhere() {
        let r = run_serial();
        for vals in metric_rows(&r, "GOPS/W") {
            let ff = vals[3];
            for (i, &v) in vals[..3].iter().enumerate() {
                assert!(ff > v, "FlexFlow {ff} vs baseline {i} {v}");
            }
        }
    }

    #[test]
    fn flexflow_lowest_energy_everywhere() {
        let r = run_serial();
        for vals in metric_rows(&r, "energy uJ") {
            let ff = vals[3];
            for &v in &vals[..3] {
                assert!(ff < v);
            }
        }
    }

    #[test]
    fn flexflow_draws_the_highest_power() {
        // Fig. 18c: high utilization costs watts.
        let r = run_serial();
        let mut highest = 0;
        for vals in metric_rows(&r, "power mW") {
            let ff = vals[3];
            if vals[..3].iter().all(|&v| ff > v) {
                highest += 1;
            }
        }
        assert!(highest >= 5, "FlexFlow highest power on only {highest}/6");
    }

    #[test]
    fn efficiency_gap_over_tiling_is_large() {
        let r = run_serial();
        // On the small nets the Tiling gap approaches the paper's 10x.
        let rows = metric_rows(&r, "GOPS/W");
        let lenet = &rows[2]; // PV, FR, LeNet-5 order
        assert!(lenet[3] / lenet[2] > 4.0);
    }
}
