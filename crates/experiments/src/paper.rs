//! Values the paper reports numerically, for side-by-side comparison.
//!
//! Only numbers the paper *prints* are transcribed here; bar-chart
//! figures (15–18) carry no numeric labels, so their comparisons are
//! qualitative (orderings, bounds, factors quoted in the text) and
//! recorded in `EXPERIMENTS.md` instead.

/// Chip areas at the 256-PE scale, mm² (Section 6.2.1), in the order
/// Systolic, 2D-Mapping, Tiling, FlexFlow.
pub const AREAS_MM2: [(&str, f64); 4] = [
    ("Systolic", 3.52),
    ("2D-Mapping", 3.46),
    ("Tiling", 3.21),
    ("FlexFlow", 3.89),
];

/// Table 3: hardware utilization (%) for three architectures across
/// four workloads: `(workload, direction, systolic, mapping2d, tiling)`.
pub const TABLE3: [(&str, &str, f64, f64, f64); 8] = [
    ("PV", "C3 on C1-opt", 25.0, 19.0, 75.0),
    ("PV", "C1 on C3-opt", 100.0, 56.0, 8.3),
    ("FR", "C3 on C1-opt", 80.0, 12.7, 100.0),
    ("FR", "C1 on C3-opt", 39.0, 87.0, 6.2),
    ("LeNet-5", "C3 on C1-opt", 100.0, 12.7, 88.0),
    ("LeNet-5", "C1 on C3-opt", 100.0, 87.0, 6.2),
    ("HG", "C3 on C1-opt", 80.0, 100.0, 11.0),
    ("HG", "C1 on C3-opt", 39.0, 100.0, 8.3),
];

/// Table 4: the paper's unrolling factors per workload/layer:
/// `(workload, layer, [tm, tn, tr, tc, ti, tj])`.
pub const TABLE4: [(&str, &str, [usize; 6]); 8] = [
    ("PV", "C1", [8, 1, 1, 2, 2, 6]),
    ("PV", "C3", [3, 8, 1, 5, 1, 2]),
    ("FR", "C1", [4, 1, 1, 4, 3, 15]),
    ("FR", "C3", [16, 4, 1, 1, 1, 4]),
    ("LeNet-5", "C1", [3, 1, 1, 5, 3, 5]),
    ("LeNet-5", "C3", [16, 3, 1, 1, 1, 5]),
    ("HG", "C1", [3, 1, 1, 5, 3, 5]),
    ("HG", "C3", [4, 2, 1, 4, 2, 4]),
];

/// Table 6: FlexFlow power breakdown (mW):
/// `(workload, p_nein, p_neout, p_kerin, p_com)`.
pub const TABLE6_MW: [(&str, f64, f64, f64, f64); 6] = [
    ("PV", 48.0, 66.0, 15.0, 711.0),
    ("FR", 61.0, 75.0, 25.0, 847.0),
    ("LeNet-5", 49.0, 72.0, 28.0, 779.0),
    ("HG", 54.0, 94.0, 79.0, 900.0),
    ("AlexNet", 58.0, 75.0, 27.0, 958.0),
    ("VGG-11", 50.0, 86.0, 23.0, 860.0),
];

/// Table 7: accelerator comparison. `None` = the paper printed "NA".
#[derive(Clone, Copy, Debug)]
pub struct AcceleratorSpecRow {
    /// Accelerator name.
    pub name: &'static str,
    /// Process node.
    pub process: &'static str,
    /// Number of PEs.
    pub pes: u32,
    /// Local store per PE, bytes.
    pub local_store_b: Option<u32>,
    /// On-chip buffer size, KB.
    pub buffer_kb: u32,
    /// Chip area, mm².
    pub area_mm2: f64,
    /// DRAM accesses per operation.
    pub dram_acc_per_op: Option<f64>,
}

/// The three Table 7 rows.
pub const TABLE7: [AcceleratorSpecRow; 3] = [
    AcceleratorSpecRow {
        name: "DianNao",
        process: "65nm",
        pes: 256,
        local_store_b: None,
        buffer_kb: 36,
        area_mm2: 3.02,
        dram_acc_per_op: None,
    },
    AcceleratorSpecRow {
        name: "Eyeriss",
        process: "65nm",
        pes: 168,
        local_store_b: Some(512),
        buffer_kb: 108,
        area_mm2: 16.0,
        dram_acc_per_op: Some(0.006),
    },
    AcceleratorSpecRow {
        name: "FlexFlow",
        process: "65nm",
        pes: 256,
        local_store_b: Some(512),
        buffer_kb: 64,
        area_mm2: 3.89,
        dram_acc_per_op: Some(0.0049),
    },
];

/// Routing-network power share vs. engine scale (Section 6.2.5):
/// `(D, percent)`.
pub const ROUTING_POWER_SHARE: [(usize, f64); 3] = [(16, 28.34), (32, 25.97), (64, 21.32)];

/// Textual claims used as quantitative checks.
pub mod claims {
    /// "FlexFlow obtains over 80% resource utilization across all
    /// workloads" (Fig. 15 commentary).
    pub const FLEXFLOW_MIN_UTILIZATION: f64 = 0.80;
    /// "FlexFlow can constantly acquire over 420 GOPs performance with
    /// 1 GHz working frequency" (Section 6.2.3).
    pub const FLEXFLOW_MIN_GOPS: f64 = 420.0;
    /// "2-10x performance speedup ... compared with three
    /// state-of-the-art accelerator architectures" (abstract).
    pub const SPEEDUP_RANGE: (f64, f64) = (2.0, 10.0);
    /// "2.5-10x power efficiency improvement" (abstract).
    pub const EFFICIENCY_RANGE: (f64, f64) = (2.5, 10.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcriptions_are_consistent() {
        assert_eq!(TABLE3.len(), 8);
        assert_eq!(TABLE4.len(), 8);
        assert_eq!(TABLE6_MW.len(), 6);
        // Table 6's Pcom dominates every row (>75% of the total).
        for (wl, nein, neout, ker, com) in TABLE6_MW {
            let total = nein + neout + ker + com;
            assert!(com / total > 0.75, "{wl}");
        }
        // Table 7's FlexFlow row matches the Section 6.2.1 area.
        assert_eq!(TABLE7[2].area_mm2, AREAS_MM2[3].1);
    }
}
