//! The `flexsim lint` subcommand and the pre-simulation gate.
//!
//! `flexsim lint` runs the [`flexcheck`] static verifier over every
//! Table 1 workload on all four architectures and exits non-zero if any
//! rule reports an `Error`. Independently, every experiment calls
//! [`gate`] before simulating a workload: a program that fails the
//! verifier refuses to simulate (the process aborts with the rendered
//! diagnostics) unless the user passes `--no-lint`.

use crate::report::{ExperimentResult, Table};
use flexcheck::{check_network, ArchParams, Diagnostic, Severity};
use flexsim_model::{workloads, Network};
use flexsim_obs::telemetry;
use flexsim_testkit::json::Json;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Whether the pre-simulation gate is armed (`--no-lint` disarms it).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Arms or disarms the pre-simulation gate for this process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Workload × engine-size pairs that already passed the gate, so a
/// sweep relints each combination once, not once per experiment.
fn passed() -> &'static Mutex<HashSet<(String, usize)>> {
    static PASSED: OnceLock<Mutex<HashSet<(String, usize)>>> = OnceLock::new();
    PASSED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// The pre-simulation gate: statically verifies the program the
/// compiler emits for `net` on a `d×d` FlexFlow engine before any
/// simulation of that workload runs. Results are cached per
/// `(workload, d)`; `--no-lint` (via [`set_enabled`]) skips the check.
///
/// # Panics
///
/// Panics with the rendered diagnostics if the verifier reports any
/// `Error` — refusing to spend minutes simulating a program that is
/// statically known to violate a hardware invariant.
pub fn gate(net: &Network, d: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let key = (net.name().to_owned(), d);
    // Invariant: the experiments never panic while holding this lock
    // mid-insert, so the mutex cannot be poisoned by a gate failure
    // (the panic below happens with the lock released).
    let mut cache = passed().lock().expect("lint cache lock poisoned");
    if cache.contains(&key) {
        return;
    }
    let _flexcheck = telemetry::phase(telemetry::Phase::Flexcheck);
    let diags = check_network(net, &ArchParams::flexflow(d));
    if flexcheck::has_errors(&diags) {
        drop(cache);
        panic!(
            "flexcheck: refusing to simulate {} on a {d}x{d} FlexFlow engine:\n{}\
             (pass --no-lint to simulate anyway)",
            net.name(),
            flexcheck::render(&diags)
        );
    }
    cache.insert(key);
}

/// One (workload, architecture) verification unit of the lint sweep.
struct LintUnit {
    workload: String,
    arch: &'static str,
    diags: Vec<Diagnostic>,
}

impl LintUnit {
    fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }
}

/// Runs the verifier over every Table 1 workload on all four Section
/// 6.1.1 architectures — the single sweep both the text and the JSON
/// report render, so the two can never disagree on the findings.
fn sweep_units() -> Vec<LintUnit> {
    let _flexcheck = telemetry::phase(telemetry::Phase::Flexcheck);
    let mut units = Vec::new();
    for net in workloads::all() {
        for arch in ArchParams::paper_suite(net.name()) {
            units.push(LintUnit {
                workload: net.name().to_owned(),
                arch: arch.kind.name(),
                diags: check_network(&net, &arch),
            });
        }
    }
    units
}

/// Runs the full static-verification sweep: every Table 1 workload on
/// all four Section 6.1.1 architectures. Returns the report and the
/// number of `Error` diagnostics (the CLI exit status).
pub fn run() -> (ExperimentResult, usize) {
    let units = sweep_units();
    let mut table = Table::new(["workload", "architecture", "errors", "warnings", "findings"]);
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut rendered = String::new();
    for u in &units {
        errors += u.count(Severity::Error);
        warnings += u.count(Severity::Warning);
        for d in &u.diags {
            rendered.push_str(&format!("{}/{}: {d}\n", u.workload, u.arch));
        }
        table.push_row([
            u.workload.clone(),
            u.arch.to_owned(),
            u.count(Severity::Error).to_string(),
            u.count(Severity::Warning).to_string(),
            if u.diags.is_empty() {
                "clean".to_owned()
            } else {
                format!("{} finding(s)", u.diags.len())
            },
        ]);
    }
    let mut notes = vec![if errors == 0 {
        format!("OK: 0 errors, {warnings} warnings across every workload x architecture")
    } else {
        format!("FAIL: {errors} errors, {warnings} warnings")
    }];
    if !rendered.is_empty() {
        notes.extend(rendered.lines().map(str::to_owned));
    }
    let result = ExperimentResult {
        id: "lint".to_owned(),
        title: "flexcheck: static schedule/mapping verification (12 rules x 4 architectures)"
            .to_owned(),
        notes,
        table,
    };
    (result, errors)
}

/// The `flexsim lint --json` document: the same sweep and the same
/// findings as the text report, but structured (rule code/name,
/// severity, location, message, hint, and the rendered line) and
/// byte-stable — two runs on the same tree emit identical bytes.
pub fn json_report() -> (Json, usize) {
    let units = sweep_units();
    let errors: usize = units.iter().map(|u| u.count(Severity::Error)).sum();
    let warnings: usize = units.iter().map(|u| u.count(Severity::Warning)).sum();
    let doc = Json::obj([
        ("lint", Json::str("flexcheck")),
        (
            "rules",
            Json::arr(
                flexcheck::RuleId::ALL
                    .iter()
                    .map(|r| Json::str(format!("{} {}", r.code(), r.name()))),
            ),
        ),
        ("units_total", Json::Int(units.len() as i64)),
        ("errors", Json::Int(errors as i64)),
        ("warnings", Json::Int(warnings as i64)),
        (
            "units",
            Json::arr(units.iter().map(|u| {
                Json::obj([
                    ("workload", Json::str(&u.workload)),
                    ("architecture", Json::str(u.arch)),
                    ("errors", Json::Int(u.count(Severity::Error) as i64)),
                    ("warnings", Json::Int(u.count(Severity::Warning) as i64)),
                    (
                        "diagnostics",
                        Json::arr(u.diags.iter().map(diagnostic_json)),
                    ),
                ])
            })),
        ),
    ]);
    (doc, errors)
}

/// One diagnostic as a structured JSON object (plus its rendered text
/// line, byte-equal to what the text report prints).
fn diagnostic_json(d: &Diagnostic) -> Json {
    let location = match (&d.location.layer, d.location.pc) {
        (Some(l), _) => Json::str(l),
        (None, Some(pc)) => Json::str(format!("pc {pc}")),
        (None, None) => Json::str("program"),
    };
    Json::obj([
        ("rule", Json::str(d.rule.code())),
        ("name", Json::str(d.rule.name())),
        ("severity", Json::str(d.severity.to_string())),
        ("location", location),
        ("message", Json::str(&d.message)),
        ("hint", Json::str(&d.hint)),
        ("rendered", Json::str(d.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_paper_suite_lints_clean() {
        let (result, errors) = run();
        assert_eq!(errors, 0, "{result}");
    }

    #[test]
    fn gate_passes_and_caches_clean_workloads() {
        let net = workloads::lenet5();
        gate(&net, 16);
        gate(&net, 16); // second call hits the cache
        assert!(passed()
            .lock()
            .unwrap()
            .contains(&("LeNet-5".to_owned(), 16)));
    }
}
