//! Table 7 — comparison with other accelerators (DianNao, Eyeriss).
//!
//! DianNao's and Eyeriss's rows are the paper's published specs; the
//! FlexFlow row is *measured* from our models (area from the area model,
//! DRAM accesses per operation from the tiled DRAM-traffic estimator on
//! AlexNet, matching Eyeriss's evaluation workload).

use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{fmt_f, ExperimentResult, Table};
use flexflow::FlexFlow;
use flexsim_arch::dram::network_traffic;
use flexsim_arch::Accelerator;
use flexsim_model::workloads;

/// The registry entry for this experiment.
pub struct Table07;

impl Experiment for Table07 {
    fn id(&self) -> &'static str {
        "table07"
    }
    fn title(&self) -> &'static str {
        "Comparison of accelerators"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["table7"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Runs the experiment. No cycle simulation happens here (area and DRAM
/// traffic are analytic), so the work stays on the calling thread.
pub fn run(_ctx: &ExperimentCtx) -> ExperimentResult {
    let mut table = Table::new([
        "accelerator",
        "process",
        "PEs",
        "local store/PE",
        "buffer KB",
        "area mm2",
        "DRAM acc/op",
    ]);
    for row in crate::paper::TABLE7 {
        if row.name == "FlexFlow" {
            continue; // replaced by our measured row below
        }
        table.push_row([
            row.name.to_owned(),
            row.process.to_owned(),
            row.pes.to_string(),
            row.local_store_b
                .map_or("NA".to_owned(), |b| format!("{b}B")),
            row.buffer_kb.to_string(),
            fmt_f(row.area_mm2, 2),
            row.dram_acc_per_op.map_or("NA".to_owned(), |v| fmt_f(v, 4)),
        ]);
    }
    let ff = FlexFlow::paper_config();
    let net = workloads::alexnet();
    let traffic = network_traffic(&net, 16 * 1024, 16 * 1024);
    let acc_per_op = traffic.per_op(net.conv_macs());
    table.push_row([
        "FlexFlow (ours)".to_owned(),
        "65nm (model)".to_owned(),
        ff.pe_count().to_string(),
        "512B".to_owned(),
        "64".to_owned(),
        fmt_f(ff.area().total_mm2(), 2),
        fmt_f(acc_per_op, 4),
    ]);
    table.push_row([
        "FlexFlow (paper)".to_owned(),
        "65nm".to_owned(),
        "256".to_owned(),
        "512B".to_owned(),
        "64".to_owned(),
        "3.89".to_owned(),
        "0.0049".to_owned(),
    ]);
    ExperimentResult {
        id: "table07".into(),
        title: Table07.title().into(),
        notes: vec![
            "FlexFlow's DRAM Acc/Op is measured on AlexNet with the Table 5 \
             32 KB + 32 KB buffers; the paper's headline is beating Eyeriss's \
             0.006."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("table07"))
    }

    #[test]
    fn measured_area_close_to_paper() {
        let r = run_serial();
        let ours: f64 = r
            .table
            .cell("FlexFlow (ours)", "area mm2")
            .unwrap()
            .parse()
            .unwrap();
        assert!((ours - 3.89).abs() / 3.89 < 0.05);
    }

    #[test]
    fn dram_acc_per_op_beats_eyeriss() {
        let r = run_serial();
        let ours: f64 = r
            .table
            .cell("FlexFlow (ours)", "DRAM acc/op")
            .unwrap()
            .parse()
            .unwrap();
        assert!(ours < 0.010, "acc/op {ours}");
        assert!(ours > 0.001);
    }

    #[test]
    fn all_four_rows_present() {
        assert_eq!(run_serial().table.rows().len(), 4);
    }
}
