//! Figure 15 — computing resource utilization, four architectures ×
//! six workloads.

use crate::arches::{ArchSet, ARCH_NAMES};
use crate::experiment::{Experiment, ExperimentCtx};
use crate::report::{pct, ExperimentResult, Table};
use flexsim_model::{workloads, Network};

/// The registry entry for this experiment.
pub struct Fig15;

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }
    fn title(&self) -> &'static str {
        "Computing resource utilization for different baselines"
    }
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentResult {
        run(ctx)
    }
}

/// Fans every (workload, architecture) pair of the Table 1 × Section
/// 6.1.1 cross product out across the pool and returns one value per
/// pair, grouped per workload in [`ARCH_NAMES`] order.
pub(crate) fn per_pair<T: Send + 'static>(
    ctx: &ExperimentCtx,
    measure: impl Fn(&mut dyn flexsim_arch::Accelerator, &Network) -> T + Send + Sync + 'static,
) -> Vec<(Network, Vec<T>)> {
    let nets = workloads::all();
    let pairs: Vec<(Network, usize)> = nets
        .iter()
        .flat_map(|net| (0..ARCH_NAMES.len()).map(move |idx| (net.clone(), idx)))
        .collect();
    let values = ctx.map(
        pairs,
        |(net, idx)| format!("{}/{}", net.name(), ARCH_NAMES[*idx]),
        move |tctx, (net, idx)| {
            let mut acc = ArchSet::builder().sink(tctx.sink()).build_one(&net, idx);
            measure(acc.as_mut(), &net)
        },
    );
    nets.into_iter()
        .zip(chunk(values, ARCH_NAMES.len()))
        .collect()
}

/// Splits `values` into consecutive chunks of `size`.
fn chunk<T>(values: Vec<T>, size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::with_capacity(values.len().div_ceil(size.max(1)));
    let mut it = values.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(size).collect();
        if chunk.is_empty() {
            return out;
        }
        out.push(chunk);
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "Systolic %",
        "2D-Mapping %",
        "Tiling %",
        "FlexFlow %",
    ]);
    for (net, utils) in per_pair(ctx, |acc, net| acc.run_network(net).utilization()) {
        let mut row = vec![net.name().to_owned()];
        row.extend(utils.into_iter().map(pct));
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig15".into(),
        title: Fig15.title().into(),
        notes: vec![
            "Paper (bars): FlexFlow >80% everywhere; baselines mostly <40%, \
             volatile across workloads; Tiling high only on AlexNet/VGG \
             (feature-map counts are multiples of 16)."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: &ExperimentResult, wl: &str, arch: &str) -> f64 {
        r.table.cell(wl, arch).unwrap().parse().unwrap()
    }

    fn run_serial() -> ExperimentResult {
        run(&ExperimentCtx::serial("fig15"))
    }

    #[test]
    fn flexflow_leads_every_workload() {
        let r = run_serial();
        for row in r.table.rows() {
            let ff: f64 = row[4].parse().unwrap();
            for c in 1..=3 {
                let other: f64 = row[c].parse().unwrap();
                assert!(
                    ff > other,
                    "{}: FlexFlow {ff}% vs {} {other}%",
                    row[0],
                    r.table.headers()[c]
                );
            }
            assert!(ff > 70.0, "{}: FlexFlow only {ff}%", row[0]);
        }
    }

    #[test]
    fn tiling_recovers_on_alexnet_and_vgg() {
        // The paper's crossover: Tiling is near-useless on the small
        // nets but competitive on AlexNet/VGG.
        let r = run_serial();
        let small = col(&r, "LeNet-5", "Tiling %");
        let alex = col(&r, "AlexNet", "Tiling %");
        let vgg = col(&r, "VGG-11", "Tiling %");
        assert!(alex > 3.0 * small);
        assert!(vgg > 3.0 * small);
        assert!(alex > 50.0 && vgg > 60.0);
    }

    #[test]
    fn baselines_are_volatile() {
        // Per-architecture spread across workloads exceeds 25 points for
        // at least two baselines (the "volatile" observation).
        let r = run_serial();
        let mut volatile = 0;
        for c in 1..=3 {
            let vals: Vec<f64> = r
                .table
                .rows()
                .iter()
                .map(|row| row[c].parse().unwrap())
                .collect();
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            if max - min > 25.0 {
                volatile += 1;
            }
        }
        assert!(volatile >= 2);
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let serial = run(&ExperimentCtx::serial("fig15"));
        let report = crate::experiment::run_suite(
            &[&Fig15],
            &crate::experiment::SuiteConfig {
                jobs: 4,
                trace: false,
            },
        );
        assert!(report.failures.is_empty());
        assert_eq!(serial.to_json(), report.results[0].to_json());
    }
}
