//! Figure 15 — computing resource utilization, four architectures ×
//! six workloads.

use crate::arches;
use crate::report::{pct, ExperimentResult, Table};
use flexsim_model::workloads;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "Systolic %",
        "2D-Mapping %",
        "Tiling %",
        "FlexFlow %",
    ]);
    for net in workloads::all() {
        let mut row = vec![net.name().to_owned()];
        for mut acc in arches::paper_scale(&net) {
            let s = acc.run_network(&net);
            row.push(pct(s.utilization()));
        }
        table.push_row(row);
    }
    ExperimentResult {
        id: "fig15".into(),
        title: "Computing resource utilization for different baselines".into(),
        notes: vec![
            "Paper (bars): FlexFlow >80% everywhere; baselines mostly <40%, \
             volatile across workloads; Tiling high only on AlexNet/VGG \
             (feature-map counts are multiples of 16)."
                .into(),
        ],
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: &ExperimentResult, wl: &str, arch: &str) -> f64 {
        r.table.cell(wl, arch).unwrap().parse().unwrap()
    }

    #[test]
    fn flexflow_leads_every_workload() {
        let r = run();
        for row in r.table.rows() {
            let ff: f64 = row[4].parse().unwrap();
            for c in 1..=3 {
                let other: f64 = row[c].parse().unwrap();
                assert!(
                    ff > other,
                    "{}: FlexFlow {ff}% vs {} {other}%",
                    row[0],
                    r.table.headers()[c]
                );
            }
            assert!(ff > 70.0, "{}: FlexFlow only {ff}%", row[0]);
        }
    }

    #[test]
    fn tiling_recovers_on_alexnet_and_vgg() {
        // The paper's crossover: Tiling is near-useless on the small
        // nets but competitive on AlexNet/VGG.
        let r = run();
        let small = col(&r, "LeNet-5", "Tiling %");
        let alex = col(&r, "AlexNet", "Tiling %");
        let vgg = col(&r, "VGG-11", "Tiling %");
        assert!(alex > 3.0 * small);
        assert!(vgg > 3.0 * small);
        assert!(alex > 50.0 && vgg > 60.0);
    }

    #[test]
    fn baselines_are_volatile() {
        // Per-architecture spread across workloads exceeds 25 points for
        // at least two baselines (the "volatile" observation).
        let r = run();
        let mut volatile = 0;
        for c in 1..=3 {
            let vals: Vec<f64> = r
                .table
                .rows()
                .iter()
                .map(|row| row[c].parse().unwrap())
                .collect();
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            if max - min > 25.0 {
                volatile += 1;
            }
        }
        assert!(volatile >= 2);
    }
}
