//! # flexsim-pool — a hermetic, std-only work-stealing thread pool
//!
//! The experiment sweep is embarrassingly parallel (workloads ×
//! architectures × layer simulations), and this crate is the scheduler
//! behind `flexsim --jobs N`. It follows the workspace's no-external-deps
//! discipline: no crossbeam, no rayon — just `std::thread` plus
//! `Mutex`/`Condvar`-guarded deques.
//!
//! Properties the experiment harness depends on:
//!
//! * **Deterministic result ordering.** Every task carries its
//!   submission index; [`Pool::run`] returns outcomes in submission
//!   order no matter which worker finished first. A sweep's tables are
//!   therefore byte-identical at any `--jobs` level.
//! * **Per-task panic isolation.** A panicking task is caught with
//!   [`std::panic::catch_unwind`] and reported as a structured
//!   [`TaskFailure`]; the batch always completes and the pool survives.
//! * **Serial fidelity.** A pool built with `jobs = 1` spawns no worker
//!   threads at all: the submitting thread drains its own queue in
//!   submission order, so `--jobs 1` reproduces single-threaded
//!   behaviour exactly (same thread, same ordering, same span nesting).
//! * **Observability.** Each task runs inside a `task`-category
//!   [`flexsim_obs::span`], and the pool mirrors queue depth, steal
//!   counts, and task totals into the global metrics registry
//!   (`pool_queue_depth`, `pool_steals_total`, `pool_tasks_total`,
//!   `pool_tasks_panicked_total`, `pool_workers`). When
//!   [`flexsim_obs::telemetry`] is enabled the pool additionally keeps
//!   per-worker busy/idle wall time, steal counts, task counts, and a
//!   task-latency histogram in per-worker buffers (each worker touches
//!   only its own `Mutex` slot — "lock-free enough": the lock is never
//!   contended on the hot path) and merges them into the global
//!   telemetry in worker-index order when the pool is dropped, so the
//!   merged stats are deterministic. Workers register
//!   `flexsim-pool-{i}` thread labels so Chrome-trace thread names
//!   reflect real workers, and a task panic is recorded into the
//!   telemetry flight ring (triggering a flight dump when a dump
//!   directory is configured).
//!
//! ## Scheduling
//!
//! The pool owns one `Mutex<VecDeque<Job>>` per executor. Submission
//! round-robins jobs across the deques; an executor pops from the
//! *front* of its own deque and, when empty, steals from the *back* of
//! a sibling's. Idle workers park on a `Condvar` and are woken on
//! submission. The thread that calls [`Pool::run`] is itself an
//! executor while it waits — a pool with `jobs = N` therefore runs at
//! most `N` tasks concurrently using `N - 1` spawned threads, and
//! nested `run` calls from inside a task cannot deadlock (the waiting
//! caller keeps draining work).
//!
//! ```
//! use flexsim_pool::{Outcome, Pool, Task};
//!
//! let pool = Pool::new(4);
//! let tasks = (0..8)
//!     .map(|i| Task::new(format!("square/{i}"), move || i * i))
//!     .collect();
//! let results = pool.run(tasks);
//! assert_eq!(results.len(), 8);
//! for (i, r) in results.into_iter().enumerate() {
//!     assert_eq!(r, Outcome::Done(i * i));
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use flexsim_obs::hist::Histogram;
use flexsim_obs::span::{set_thread_label, span};
use flexsim_obs::{metrics, telemetry};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

thread_local! {
    /// The executor index of the current thread while it is running
    /// pool work (spawned workers set it for their lifetime; the
    /// calling thread is executor 0 while inside [`Pool::run`]).
    static CURRENT_WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The executor index of the calling thread, when it is a pool
/// executor (spawned worker, or the submitting thread inside
/// [`Pool::run`]). Task bodies can call this to learn which worker is
/// running them.
pub fn current_worker() -> Option<usize> {
    CURRENT_WORKER.with(Cell::get)
}

/// A unit of work: a label (for spans and failure reports) plus the
/// closure to run.
pub struct Task<T> {
    label: String,
    work: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Task<T> {
    /// Packages `work` under `label`. The label names the task in
    /// `task`-category trace spans and in [`TaskFailure`] reports; the
    /// convention in this workspace is `experiment/workload/arch`.
    pub fn new(label: impl Into<String>, work: impl FnOnce() -> T + Send + 'static) -> Task<T> {
        Task {
            label: label.into(),
            work: Box::new(work),
        }
    }

    /// The task's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A structured report of a task that panicked.
#[derive(Clone, Debug)]
pub struct TaskFailure {
    /// The label of the task that panicked.
    pub label: String,
    /// The panic payload, rendered to text.
    pub message: String,
    /// The executor index the task was running on (0 = the submitting
    /// thread). Advisory scheduling detail: deliberately excluded from
    /// equality and from [`std::fmt::Display`], because which worker
    /// ran a task varies run-to-run while the failure's *identity*
    /// (label + message) — and therefore all rendered output — must
    /// stay byte-identical at every `--jobs` level.
    pub worker: usize,
}

impl PartialEq for TaskFailure {
    fn eq(&self, other: &TaskFailure) -> bool {
        self.label == other.label && self.message == other.message
    }
}

impl Eq for TaskFailure {}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task '{}' panicked: {}", self.label, self.message)
    }
}

/// What became of one task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The task ran to completion.
    Done(T),
    /// The task panicked; the panic was contained to this task.
    Panicked(TaskFailure),
}

impl<T> Outcome<T> {
    /// The completed value, if any.
    pub fn done(self) -> Option<T> {
        match self {
            Outcome::Done(v) => Some(v),
            Outcome::Panicked(_) => None,
        }
    }

    /// The failure report, if the task panicked.
    pub fn failure(&self) -> Option<&TaskFailure> {
        match self {
            Outcome::Done(_) => None,
            Outcome::Panicked(f) => Some(f),
        }
    }
}

/// The number of executors [`Pool::new`] uses for `jobs = 0`:
/// `std::thread::available_parallelism()`, or 1 when unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

type Job = Box<dyn FnOnce() + Send>;

/// Per-worker telemetry buffer. Each executor touches only its own
/// slot, so the `Mutex` around it is uncontended on the hot path; the
/// pool reads every slot once, in index order, at drop.
#[derive(Default)]
struct WorkerStats {
    /// Wall microseconds the executor existed (spawn → loop exit for
    /// workers; accumulated time inside [`Pool::run`] for executor 0).
    wall_us: u64,
    /// Microseconds spent executing task bodies.
    busy_us: u64,
    /// Tasks executed.
    tasks: u64,
    /// Tasks stolen from a sibling's deque.
    steals: u64,
    /// Per-task execution latency.
    hist: Histogram,
}

/// State shared between the submitting thread and the workers.
struct Shared {
    /// One work deque per executor (workers + the submitting thread).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// One telemetry buffer per executor.
    stats: Vec<Mutex<WorkerStats>>,
    /// Queued-but-unstarted jobs; checked before parking so a submit
    /// that lands between "deques empty" and "wait" is never missed.
    queued: AtomicUsize,
    /// Pairs with `work_cv`; holds no data, only the park protocol.
    idle: Mutex<()>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

fn locked<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Invariant: jobs never panic while holding a pool lock (panics are
    // caught inside the job body), so poisoning is unreachable; recover
    // anyway rather than propagate.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// Pops a job, preferring the front of `own`'s deque and stealing
    /// from the back of siblings otherwise.
    fn grab(&self, own: usize) -> Option<Job> {
        if let Some(job) = locked(&self.deques[own]).pop_front() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            self.depth_gauge();
            return Some(job);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(job) = locked(&self.deques[victim]).pop_back() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                metrics::global().add("pool_steals_total", &[], 1);
                if telemetry::enabled() {
                    locked(&self.stats[own]).steals += 1;
                }
                self.depth_gauge();
                return Some(job);
            }
        }
        None
    }

    fn depth_gauge(&self) {
        metrics::global().set(
            "pool_queue_depth",
            &[],
            self.queued.load(Ordering::Acquire) as u64,
        );
    }

    /// Runs one job as executor `me`, charging its wall time to `me`'s
    /// telemetry buffer (one relaxed load when telemetry is off).
    fn run_job(&self, me: usize, job: Job) {
        let start = telemetry::now_if_enabled();
        job();
        if let Some(t0) = start {
            let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            let mut st = locked(&self.stats[me]);
            st.busy_us += us;
            st.tasks += 1;
            st.hist.observe(us);
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    set_thread_label(format!("flexsim-pool-{me}"));
    CURRENT_WORKER.with(|w| w.set(Some(me)));
    let birth = Instant::now();
    loop {
        if let Some(job) = shared.grab(me) {
            shared.run_job(me, job);
            continue;
        }
        let guard = locked(&shared.idle);
        if shared.shutdown.load(Ordering::Acquire) {
            drop(guard);
            locked(&shared.stats[me]).wall_us =
                birth.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            return;
        }
        if shared.queued.load(Ordering::Acquire) > 0 {
            continue; // a submit raced our emptiness check; retry
        }
        // Submitters bump `queued` before taking `idle` to notify, so a
        // wakeup can't slip between the recheck above and this wait.
        drop(
            shared
                .work_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }
}

/// Bookkeeping for one [`Pool::run`] batch.
struct Batch {
    remaining: Mutex<usize>,
    done_cv: Condvar,
}

/// A work-stealing thread pool. See the crate docs for the full
/// contract; dropping the pool shuts the workers down and joins them.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
    next_deque: AtomicUsize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("jobs", &self.jobs).finish()
    }
}

impl Pool {
    /// Creates a pool that runs at most `jobs` tasks concurrently
    /// (`jobs = 0` means [`available_parallelism`]). `jobs - 1` worker
    /// threads are spawned; the thread calling [`Pool::run`] is the
    /// remaining executor. With `jobs = 1` no threads exist and tasks
    /// run on the submitting thread in submission order.
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        };
        let shared = Arc::new(Shared {
            deques: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: (0..jobs)
                .map(|_| Mutex::new(WorkerStats::default()))
                .collect(),
            queued: AtomicUsize::new(0),
            idle: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..jobs)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flexsim-pool-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        metrics::global().set("pool_workers", &[], jobs as u64);
        Pool {
            shared,
            workers,
            jobs,
            next_deque: AtomicUsize::new(0),
        }
    }

    /// The maximum number of concurrently running tasks.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a batch of tasks to completion and returns one [`Outcome`]
    /// per task **in submission order**, regardless of completion
    /// order. The calling thread participates in execution while it
    /// waits, so nested `run` calls from inside a task make progress
    /// instead of deadlocking.
    pub fn run<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> Vec<Outcome<T>> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Arc<Mutex<Vec<Option<Outcome<T>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let batch = Arc::new(Batch {
            remaining: Mutex::new(n),
            done_cv: Condvar::new(),
        });
        for (seq, task) in tasks.into_iter().enumerate() {
            let slots = Arc::clone(&slots);
            let batch = Arc::clone(&batch);
            self.submit(Box::new(move || {
                let outcome = run_one(task);
                locked(&slots)[seq] = Some(outcome);
                let mut remaining = locked(&batch.remaining);
                *remaining -= 1;
                if *remaining == 0 {
                    batch.done_cv.notify_all();
                }
            }));
        }
        // Help drain the pool until this batch is complete. The calling
        // thread is executor 0 for the duration (unless it already *is*
        // a worker — a nested `run` from inside a task keeps the outer
        // identity, and its drain time is already counted as that
        // task's busy time).
        let outer_worker = current_worker();
        let wall_start = outer_worker.is_none().then(Instant::now);
        if outer_worker.is_none() {
            CURRENT_WORKER.with(|w| w.set(Some(0)));
        }
        loop {
            if *locked(&batch.remaining) == 0 {
                break;
            }
            if let Some(job) = self.shared.grab(0) {
                self.shared.run_job(current_worker().unwrap_or(0), job);
                continue;
            }
            let remaining = locked(&batch.remaining);
            if *remaining == 0 {
                break;
            }
            drop(
                batch
                    .done_cv
                    .wait(remaining)
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
        if let Some(t0) = wall_start {
            CURRENT_WORKER.with(|w| w.set(None));
            locked(&self.shared.stats[0]).wall_us +=
                t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        }
        let outcomes = locked(&slots)
            .iter_mut()
            .map(|slot| {
                // Invariant: `remaining` only reaches 0 after every job
                // has filled its slot, so no result can be lost.
                slot.take().expect("batch complete but a result slot empty")
            })
            .collect();
        outcomes
    }

    fn submit(&self, job: Job) {
        let target = self.next_deque.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        let depth = self.shared.queued.fetch_add(1, Ordering::AcqRel) + 1;
        telemetry::pool_queue_depth(depth as u64);
        locked(&self.shared.deques[target]).push_back(job);
        self.shared.depth_gauge();
        let _guard = locked(&self.shared.idle);
        self.shared.work_cv.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = locked(&self.shared.idle);
            self.shared.work_cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job is a pool bug; the
            // join error is ignored rather than double-panicked so Drop
            // stays well-behaved during unwinding.
            let _ = worker.join();
        }
        // Every worker has exited, so the per-worker buffers are
        // quiescent: merge them into the global telemetry in worker
        // index order — a deterministic merge no matter how the batch
        // was scheduled.
        if telemetry::enabled() {
            for (index, slot) in self.shared.stats.iter().enumerate() {
                let st = locked(slot);
                if st.wall_us == 0 && st.tasks == 0 && st.steals == 0 {
                    continue; // executor never participated
                }
                let totals = telemetry::WorkerTotals {
                    wall_us: st.wall_us,
                    busy_us: st.busy_us,
                    // Idle is wall minus busy *by construction*, so
                    // busy + idle == wall holds exactly per worker.
                    idle_us: st.wall_us.saturating_sub(st.busy_us),
                    tasks: st.tasks,
                    steals: st.steals,
                };
                telemetry::merge_worker(index, &totals, &st.hist);
            }
        }
    }
}

/// Runs one task under a `task` span with panic containment, mirroring
/// the totals into the metrics registry.
fn run_one<T>(task: Task<T>) -> Outcome<T> {
    let Task { label, work } = task;
    let result = {
        let _span = span("task", label.clone());
        catch_unwind(AssertUnwindSafe(work))
    };
    metrics::global().add("pool_tasks_total", &[], 1);
    match result {
        Ok(value) => Outcome::Done(value),
        Err(payload) => {
            metrics::global().add("pool_tasks_panicked_total", &[], 1);
            let message = panic_message(payload.as_ref());
            // The flight recorder captures the failure and dumps the
            // ring while the rest of the batch keeps running (no-op
            // when telemetry is off or no dump dir is configured).
            let _ = telemetry::flight::record_panic(&label, &message);
            Outcome::Panicked(TaskFailure {
                label,
                message,
                worker: current_worker().unwrap_or(0),
            })
        }
    }
}

/// Renders a panic payload to text (`&str` and `String` payloads cover
/// every `panic!` in this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(pool: &Pool, n: usize) -> Vec<Outcome<usize>> {
        pool.run(
            (0..n)
                .map(|i| Task::new(format!("sq/{i}"), move || i * i))
                .collect(),
        )
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for jobs in [1, 2, 4, 8] {
            let pool = Pool::new(jobs);
            let results = squares(&pool, 100);
            for (i, r) in results.into_iter().enumerate() {
                assert_eq!(r, Outcome::Done(i * i), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn serial_pool_spawns_no_threads_and_runs_in_order() {
        let pool = Pool::new(1);
        assert!(pool.workers.is_empty());
        let caller = std::thread::current().id();
        let order = Arc::new(Mutex::new(Vec::new()));
        let results = pool.run(
            (0..10)
                .map(|i| {
                    let order = Arc::clone(&order);
                    Task::new(format!("t/{i}"), move || {
                        locked(&order).push(i);
                        std::thread::current().id()
                    })
                })
                .collect(),
        );
        assert_eq!(*locked(&order), (0..10).collect::<Vec<_>>());
        for r in results {
            assert_eq!(r.done(), Some(caller));
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        let pool = Pool::new(0);
        assert_eq!(pool.jobs(), available_parallelism());
    }

    #[test]
    fn a_panicking_task_is_isolated() {
        let pool = Pool::new(4);
        let results = pool.run(vec![
            Task::new("ok/0", || 1),
            Task::new("boom", || -> i32 { panic!("injected failure") }),
            Task::new("ok/2", || 3),
        ]);
        assert_eq!(results[0], Outcome::Done(1));
        let failure = results[1].failure().expect("task 1 panicked");
        assert_eq!(failure.label, "boom");
        assert_eq!(failure.message, "injected failure");
        assert_eq!(
            failure.to_string(),
            "task 'boom' panicked: injected failure"
        );
        assert_eq!(results[2], Outcome::Done(3));
        // The pool survives a panic and keeps serving batches.
        assert_eq!(squares(&pool, 4).len(), 4);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = Pool::new(2);
        assert!(pool.run::<()>(Vec::new()).is_empty());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = Pool::new(3);
        for round in 0..20 {
            let results = squares(&pool, round);
            assert_eq!(results.len(), round);
        }
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = Arc::new(Pool::new(2));
        let inner_pool = Arc::clone(&pool);
        let results = pool.run(vec![Task::new("outer", move || {
            let inner = inner_pool.run(vec![
                Task::new("inner/0", || 10),
                Task::new("inner/1", || 20),
            ]);
            inner.into_iter().filter_map(Outcome::done).sum::<i32>()
        })]);
        assert_eq!(results, vec![Outcome::Done(30)]);
    }

    #[test]
    fn dropped_pool_merges_worker_stats_into_telemetry() {
        telemetry::enable();
        {
            let pool = Pool::new(3);
            drop(squares(&pool, 32));
        } // drop merges, in worker-index order
        let snap = telemetry::snapshot();
        telemetry::disable();
        assert!(!snap.workers.is_empty());
        let tasks: u64 = snap.workers.iter().map(|(_, w)| w.tasks).sum();
        // Other tests may run pools concurrently while telemetry is
        // enabled, so assert at-least rather than exactly.
        assert!(tasks >= 32, "merged {tasks} tasks");
        for (i, w) in &snap.workers {
            assert_eq!(w.busy_us + w.idle_us, w.wall_us, "worker {i}");
        }
        assert!(snap.task_wall.count() >= 32);
    }

    #[test]
    fn failures_report_a_worker_but_compare_by_identity() {
        let a = TaskFailure {
            label: "t".into(),
            message: "m".into(),
            worker: 0,
        };
        let b = TaskFailure {
            label: "t".into(),
            message: "m".into(),
            worker: 3,
        };
        // Same identity on different workers: equal, and rendered
        // identically (worker placement must never leak into output).
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn task_totals_are_mirrored_into_metrics() {
        let before = metrics::global().snapshot();
        let pool = Pool::new(2);
        drop(squares(&pool, 10));
        let grown = metrics::global().snapshot().diff(&before);
        assert!(grown.get("pool_tasks_total", &[]) >= 10);
    }
}
