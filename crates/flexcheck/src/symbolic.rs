//! flexproof — the symbolic schedule evaluator (rules `FXC10`–`FXC12`).
//!
//! The dynamic simulators *step* a layer and emit a cycle-domain
//! timeline; this module *derives* the same timeline in closed form —
//! per-phase cycle counts, per-[`StallCause`] loss attribution, and
//! interval-based access sets — by abstract interpretation of the
//! compiled schedule, the address-FSM configuration, and the ISA
//! stream. No per-cycle stepping happens anywhere in this file.
//!
//! Three rules ride on the evaluator:
//!
//! * **`FXC10` cycle-exactness** ([`check_cycle_exactness`]) — the
//!   symbolic prediction must equal the engine-recorded
//!   [`LossLedger`] exactly: total cycles, busy PE-cycles, and every
//!   per-cause lost bucket. `flexsim prove` runs it over all Table 1
//!   (workload, architecture) pairs.
//! * **`FXC11` isa-coverage** ([`check_isa_coverage`]) — the abstract
//!   interpreter must observe every decoded instruction's effect. A
//!   `Configure` whose symbolic state is overwritten before any `Conv`
//!   reads it is discarded-unread state: the engine would execute the
//!   layer under the *newer* factors while the schedule claim attached
//!   to the shadowed `Configure` was never checked against anything.
//! * **`FXC12` interference-freedom** ([`check_interference`]) — bus,
//!   adder-tree-port, and buffer-bank access sets, expressed as
//!   residue intervals, must be pairwise disjoint. This is the `O(1)`
//!   interval form subsuming the per-step enumerations that rules
//!   `FXC02`/`FXC03`/`FXC07` historically walked.
//!
//! The evaluator is exact by construction, not by fiat: every engine
//! emits its timeline through the [`Coalescer`], whose ledger depends
//! only on per-cause cycle/MAC totals — so the per-batch streams the
//! engines push fold to precisely the aggregate events predicted here.
//! `tests/proptests.rs` holds the FlexFlow side equal to
//! [`flexflow::analytic::schedule`] on thousands of random legal
//! unrollings, and the root mutation harness trips each rule both
//! statically and dynamically.
//!
//! [`Coalescer`]: flexsim_obs::cycles::Coalescer

use crate::diag::{Diagnostic, Location, RuleId};
use crate::params::{ArchKind, ArchParams};
use crate::plan::LayerPlan;
use flexflow::analytic::{ledger_events, schedule};
use flexflow::compiler::Program;
use flexflow::isa::Instr;
use flexflow::local_store::STORE_WORDS;
use flexsim_dataflow::search::best_unroll;
use flexsim_dataflow::utilization::ceil_div;
use flexsim_dataflow::{plan_network, Unroll};
use flexsim_model::{ConvLayer, Layer, Network};
use flexsim_obs::attrib::{LossLedger, StallCause};
use flexsim_obs::cycles::{CycleEvent, CycleEventKind, LayerCtx, LayerTimeline};
use std::collections::HashMap;

/// The timing-relevant geometry of one simulated engine — the minimal
/// state the abstract interpreter needs to reproduce an engine's
/// cycle-domain emission in closed form.
///
/// Built from an [`ArchParams`] via [`EngineGeometry::from_arch`]
/// (mirroring the experiment builder's scaling rules) or directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineGeometry {
    /// The FlexFlow engine: a `d×d` PE array with `store_words`-word
    /// local stores.
    FlexFlow {
        /// Engine side `D`.
        d: usize,
        /// Per-PE local-store capacity in words.
        store_words: usize,
    },
    /// The DC-CNN-style engine: `num_arrays` systolic arrays of
    /// `array_k × array_k` PEs.
    Systolic {
        /// Side of each array.
        array_k: usize,
        /// Number of identical arrays.
        num_arrays: usize,
    },
    /// The ShiDianNao-style engine: one `tr × tc` PE mesh.
    Mapping2d {
        /// Output-row tile side `Tr`.
        tr: usize,
        /// Output-column tile side `Tc`.
        tc: usize,
    },
    /// The DianNao-style engine: `tm` output lanes of `tn`-input adder
    /// trees.
    Tiling {
        /// Output-map lanes `Tm`.
        tm: usize,
        /// Inputs per adder tree `Tn`.
        tn: usize,
    },
}

impl EngineGeometry {
    /// The geometry the experiments builder constructs for `arch` at
    /// engine scale `scale` (a `scale×scale` PE budget): systolic
    /// engines pack `max(1, scale²/array_k²)` arrays, every other
    /// family is a `scale`-sided grid.
    pub fn from_arch(arch: &ArchParams, scale: usize) -> EngineGeometry {
        match arch.kind {
            ArchKind::FlexFlow => EngineGeometry::FlexFlow {
                d: scale,
                store_words: arch.store_words.max(1),
            },
            ArchKind::Systolic => EngineGeometry::Systolic {
                array_k: arch.array_k,
                num_arrays: ((scale * scale) / (arch.array_k * arch.array_k)).max(1),
            },
            ArchKind::Mapping2d => EngineGeometry::Mapping2d {
                tr: scale,
                tc: scale,
            },
            ArchKind::Tiling => EngineGeometry::Tiling {
                tm: scale,
                tn: scale,
            },
        }
    }

    /// The engine's display name, byte-equal to the simulator's
    /// `Accelerator::name` (ledger identity depends on it).
    pub fn arch_name(&self) -> &'static str {
        match self {
            EngineGeometry::FlexFlow { .. } => "FlexFlow",
            EngineGeometry::Systolic { .. } => "Systolic",
            EngineGeometry::Mapping2d { .. } => "2D-Mapping",
            EngineGeometry::Tiling { .. } => "Tiling",
        }
    }

    /// Total PEs (the occupancy denominator).
    pub fn pe_count(&self) -> usize {
        match *self {
            EngineGeometry::FlexFlow { d, .. } => d * d,
            EngineGeometry::Systolic {
                array_k,
                num_arrays,
            } => num_arrays * array_k * array_k,
            EngineGeometry::Mapping2d { tr, tc } => tr * tc,
            EngineGeometry::Tiling { tm, tn } => tm * tn,
        }
    }
}

/// Appends `cycles` of `kind` (carrying `macs`) at the running cursor,
/// keeping the predicted events tiling the timeline exactly like a
/// [`Coalescer`](flexsim_obs::cycles::Coalescer) flush does.
fn push_event(
    events: &mut Vec<CycleEvent>,
    cursor: &mut u64,
    kind: CycleEventKind,
    cycles: u64,
    macs: u64,
) {
    if cycles > 0 {
        events.push(CycleEvent::new(kind, *cursor, cycles, macs));
        *cursor += cycles;
    }
}

/// Symbolically evaluates one CONV layer on `geom`, returning the
/// predicted cycle-domain timeline: the per-cause aggregate of the
/// event stream the engine would emit, with identical cycle, MAC, and
/// per-cause totals (and therefore an identical [`LossLedger`]).
///
/// `unroll` selects the FlexFlow mapping; `None` falls back to the
/// engine's own per-layer planner, and the baselines ignore it (their
/// dataflow is fixed by geometry).
pub fn predict_conv(
    geom: &EngineGeometry,
    layer: &ConvLayer,
    unroll: Option<Unroll>,
) -> LayerTimeline {
    let mut events = Vec::new();
    let mut cursor = 0u64;
    match *geom {
        EngineGeometry::FlexFlow { d, store_words } => {
            // The engine schedules, then emits fill → per-batch pass →
            // per-batch spill. All batches share one cause per phase,
            // so the ledger-exact aggregate is the analytic one.
            let u = unroll.unwrap_or_else(|| best_unroll(layer, d, None).unroll);
            let sch = schedule(layer, u, d, store_words);
            events = ledger_events(&sch);
        }
        EngineGeometry::Systolic {
            array_k,
            num_arrays,
        } => {
            // Per (m-group, input map) step: a `pk·chain` bubble split
            // ceil/floor into fill/drain, then a `pk·w²` streaming
            // pass. Full groups keep all arrays busy
            // (mapping-residue loss only); the final partial group
            // idles `M mod num_arrays` arrays (edge fragmentation).
            let (m, n, k, s) = (layer.m(), layer.n(), layer.k(), layer.s());
            let w = layer.input_size();
            let pk = (ceil_div(k, array_k) * ceil_div(k, array_k)) as u64;
            let chain = ((array_k - 1) * w + array_k) as u64;
            let stream = (w * w) as u64;
            let steps = (ceil_div(m, num_arrays) * n) as u64;
            let bubble = pk * chain;
            let full_groups = (m / num_arrays) as u64;
            let edge_arrays = (m % num_arrays) as u64;
            let pass_macs_per_array = (s * s * k * k) as u64;
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Stall(StallCause::PipelineFill),
                steps * bubble.div_ceil(2),
                0,
            );
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Stall(StallCause::PipelineDrain),
                steps * (bubble / 2),
                0,
            );
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Pass(StallCause::MappingResidueIdle),
                full_groups * n as u64 * pk * stream,
                full_groups * n as u64 * num_arrays as u64 * pass_macs_per_array,
            );
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Pass(StallCause::EdgeFragmentation),
                u64::from(edge_arrays > 0) * n as u64 * pk * stream,
                n as u64 * edge_arrays * pass_macs_per_array,
            );
        }
        EngineGeometry::Mapping2d { tr, tc } => {
            // Per spatial tile: a `Tc`-cycle window load (the whole
            // mesh waits on edge injection), then an `M·N·K²` pass
            // whose only residue is the `Tr_eff·Tc_eff` edge clamp.
            // Clamped tile areas sum to exactly `S²` over the grid.
            let (m, n, k, s) = (layer.m(), layer.n(), layer.k(), layer.s());
            let tiles = (ceil_div(s, tr) * ceil_div(s, tc)) as u64;
            let pass = (m * n * k * k) as u64;
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Stall(StallCause::BufferBandwidthWait),
                tiles * tc as u64,
                0,
            );
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Pass(StallCause::EdgeFragmentation),
                tiles * pass,
                (s * s) as u64 * pass,
            );
        }
        EngineGeometry::Tiling { tm, tn } => {
            // Per (m-tile, n-tile): one `S²K²` pass whose residue goes
            // to whichever clamp dominates — idle output rows
            // (edge fragmentation) vs underfed adder trees
            // (adder-tree contention). Four closed-form tile classes
            // cover the grid: interior, m-edge, n-edge, corner.
            let (m, n, k, s) = (layer.m(), layer.n(), layer.k(), layer.s());
            let pass = (s * s * k * k) as u64;
            let (fm, rm) = ((m / tm) as u64, m % tm);
            let (fnt, rn) = ((n / tn) as u64, n % tn);
            let mut by_cause = [(0u64, 0u64); 2]; // [edge, adder] (cycles, macs)
            let mut add = |is_adder: bool, count: u64, macs_per_tile: u64| {
                let slot = &mut by_cause[usize::from(is_adder)];
                slot.0 += count * pass;
                slot.1 += count * macs_per_tile;
            };
            add(false, fm * fnt, (tm * tn) as u64 * pass);
            if rm > 0 {
                // Row clamp only: row loss positive, lane loss zero.
                add(false, fnt, (rm * tn) as u64 * pass);
            }
            if rn > 0 {
                // Lane clamp only: lane loss positive, row loss zero.
                add(true, fm, (tm * rn) as u64 * pass);
            }
            if rm > 0 && rn > 0 {
                let row_loss = ((tm - rm) * tn) as u64;
                let lane_loss = (rm * (tn - rn)) as u64;
                add(lane_loss > row_loss, 1, (rm * rn) as u64 * pass);
            }
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Pass(StallCause::EdgeFragmentation),
                by_cause[0].0,
                by_cause[0].1,
            );
            push_event(
                &mut events,
                &mut cursor,
                CycleEventKind::Pass(StallCause::AdderTreeContention),
                by_cause[1].0,
                by_cause[1].1,
            );
        }
    }
    LayerTimeline {
        ctx: LayerCtx::new(
            geom.arch_name(),
            layer.name(),
            u32::try_from(geom.pe_count()).unwrap_or(u32::MAX),
        ),
        events,
    }
}

/// Symbolically evaluates every CONV layer of `net` on `geom`, in
/// network order — the static mirror of `Accelerator::run_network`.
/// FlexFlow plans the whole network jointly (IADP coupling), exactly
/// as the engine does; the baselines evaluate each layer independently.
pub fn predict_network(geom: &EngineGeometry, net: &Network) -> Vec<LayerTimeline> {
    match *geom {
        EngineGeometry::FlexFlow { d, .. } => {
            let plan = plan_network(net, d);
            net.conv_layers()
                .zip(&plan)
                .map(|(layer, choice)| predict_conv(geom, layer, Some(choice.unroll)))
                .collect()
        }
        _ => net
            .conv_layers()
            .map(|layer| predict_conv(geom, layer, None))
            .collect(),
    }
}

/// Symbolically evaluates every CONV layer of `net` on `geom` and
/// folds each predicted timeline into its [`LossLedger`] — the static
/// side of the `FXC10` comparison.
pub fn predicted_ledgers(geom: &EngineGeometry, net: &Network) -> Vec<LossLedger> {
    predict_network(geom, net)
        .iter()
        .map(LossLedger::from_timeline)
        .collect()
}

/// Abstract interpretation of a compiled ISA stream: walks the
/// instruction list once, carrying each layer's configured unrolling as
/// symbolic state, and evaluates every `Conv` under the factors the
/// on-chip decoder would hand the engine. Returns one predicted
/// timeline per `Conv`, in stream order.
///
/// This is the stream-level entry the `FXC10`/`FXC11` tests drive:
/// unlike [`predict_network`] it derives the mapping from the
/// *instructions*, so a stream whose `Configure` disagrees with the
/// program's planned choices predicts what the hardware would actually
/// do.
pub fn predict_program(program: &Program, net: &Network) -> Vec<LayerTimeline> {
    let geom = EngineGeometry::FlexFlow {
        d: program.d(),
        store_words: STORE_WORDS,
    };
    let layers = net.layers();
    let mut configured: HashMap<u8, Unroll> = HashMap::new();
    let mut conv_idx = 0usize;
    let mut out = Vec::new();
    for instr in program.instrs() {
        match *instr {
            Instr::Configure { layer, unroll } => {
                configured.insert(layer, unroll);
            }
            Instr::Conv { layer } => {
                let view = match layers.get(layer as usize) {
                    Some(Layer::Conv(c)) => c.clone(),
                    Some(Layer::Fc(fc)) => fc.as_conv(),
                    _ => continue, // FXC05 territory; nothing to time.
                };
                let planned = program.choices().get(conv_idx).map(|c| c.unroll);
                conv_idx += 1;
                let u = configured.get(&layer).copied().or(planned);
                out.push(predict_conv(&geom, &view, u));
            }
            _ => {}
        }
    }
    out
}

/// `FXC10`: the symbolic prediction must equal the engine-recorded
/// ledger *exactly* — identity (arch, layer, PE count), total cycles,
/// busy PE-cycles, and every per-cause lost bucket. Any delta is an
/// error: either an engine emitter drifted from its analytic schedule
/// or the evaluator's closed form is wrong, and both invalidate the
/// "replace simulation of regular phases" contract.
pub fn check_cycle_exactness(predicted: &LossLedger, recorded: &LossLedger) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = || Location::layer(recorded.layer.clone());
    if predicted.arch != recorded.arch || predicted.layer != recorded.layer {
        diags.push(Diagnostic::error(
            RuleId::CycleExactness,
            at(),
            format!(
                "ledger identity mismatch: predicted {}/{} vs recorded {}/{}",
                predicted.arch, predicted.layer, recorded.arch, recorded.layer
            ),
            "compare ledgers of the same (architecture, layer) pair in network order",
        ));
        return diags;
    }
    if predicted.pe_count != recorded.pe_count {
        diags.push(Diagnostic::error(
            RuleId::CycleExactness,
            at(),
            format!(
                "PE-count mismatch: symbolic geometry says {} PEs, engine recorded {}",
                predicted.pe_count, recorded.pe_count
            ),
            "rebuild the EngineGeometry from the same scale the engine was built at",
        ));
    }
    if predicted.total_cycles != recorded.total_cycles {
        diags.push(Diagnostic::error(
            RuleId::CycleExactness,
            at(),
            format!(
                "cycle mismatch: static evaluator proves {} cycles, engine recorded {}",
                predicted.total_cycles, recorded.total_cycles
            ),
            "the closed-form phase counts must tile the engine timeline exactly",
        ));
    }
    if predicted.busy_pe_cycles != recorded.busy_pe_cycles {
        diags.push(Diagnostic::error(
            RuleId::CycleExactness,
            at(),
            format!(
                "busy-PE mismatch: static evaluator proves {} MAC-cycles, engine recorded {}",
                predicted.busy_pe_cycles, recorded.busy_pe_cycles
            ),
            "predicted pass MACs must equal the schedule's tiled MAC total",
        ));
    }
    for cause in StallCause::ALL {
        let (p, r) = (predicted.lost(cause), recorded.lost(cause));
        if p != r {
            diags.push(Diagnostic::error(
                RuleId::CycleExactness,
                at(),
                format!(
                    "loss-attribution mismatch on {}: static evaluator proves {p} lost \
                     PE-cycles, engine recorded {r}",
                    cause.name()
                ),
                "per-cause aggregates must match the engine's emission exactly",
            ));
        }
    }
    diags
}

/// Runs [`check_cycle_exactness`] over two ledger sequences in lockstep
/// (the per-network form `flexsim prove` uses). A length mismatch is
/// itself an `FXC10` error: a layer the engine simulated but the
/// evaluator never predicted (or vice versa) is an unproven layer.
pub fn check_cycle_exactness_all(
    predicted: &[LossLedger],
    recorded: &[LossLedger],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if predicted.len() != recorded.len() {
        diags.push(Diagnostic::error(
            RuleId::CycleExactness,
            Location::program(),
            format!(
                "{} predicted ledgers but {} recorded layers",
                predicted.len(),
                recorded.len()
            ),
            "the evaluator must visit exactly the layers the engine simulates",
        ));
    }
    for (p, r) in predicted.iter().zip(recorded) {
        diags.extend(check_cycle_exactness(p, r));
    }
    diags
}

/// `FXC11`: every instruction's effect must be observed by the
/// abstract interpreter. The interpreter walks the stream linearly, so
/// the only way symbolic state dies unread is *shadowing*: a
/// `Configure` overwritten by a later `Configure` for the same layer
/// before any `Conv` consumes it. The engine then executes under the
/// newer factors while the shadowed claim — factors the compiler
/// emitted, flexcheck verified, and the prover timed — silently never
/// reaches hardware, so its prediction can diverge from the measured
/// run. (A `Configure` with *no* following `Conv` at all is dead code,
/// already reported by `FXC05`.)
pub fn check_isa_coverage(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Layer → pc of the live (not-yet-consumed) Configure.
    let mut live: HashMap<u8, usize> = HashMap::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        match *instr {
            Instr::Configure { layer, .. } => {
                if let Some(shadowed_pc) = live.insert(layer, pc) {
                    diags.push(Diagnostic::error(
                        RuleId::IsaCoverage,
                        Location::pc(shadowed_pc),
                        format!(
                            "symbolic state discarded unread: Configure for L{layer} at pc \
                             {shadowed_pc} is overwritten by pc {pc} before any Conv observes it"
                        ),
                        "drop the shadowed Configure or move its Conv before the reconfigure",
                    ));
                }
            }
            Instr::Conv { layer } => {
                live.remove(&layer);
            }
            _ => {}
        }
    }
    diags
}

/// `FXC12`: interference freedom by symbolic interval disjointness —
/// the `O(1)` closed form subsuming the per-step enumerations of
/// `FXC02` (vertical-bus races), `FXC03` (adder-tree ports), and
/// `FXC07` (buffer banks).
///
/// The walk's operand offsets land on vertical bus
/// `(n mod Tn, i mod Ti, j mod Tj)` — a mixed-radix index — so the
/// per-step bus access set is injective iff each walk interval fits
/// inside its residue period: `walk ⊆ [0, T)` in all three
/// coordinates. The row/adder-port side is the mirror statement over
/// `(Tm, Tr, Tc)`, and the bank side asks the occupied row/column
/// interval to fit `[0, banks)`. Three interval inclusions per
/// resource, no enumeration; `tests/proptests.rs` holds each exactly
/// equivalent to the exhaustive per-step walk.
pub fn check_interference(plan: &LayerPlan, arch: &ArchParams) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = || Location::layer(plan.layer.name());
    let u = plan.mapping;
    let (w, b) = (plan.walk, plan.batch);

    let bus_disjoint = w.tn <= u.tn && w.ti <= u.ti && w.tj <= u.tj;
    if !bus_disjoint {
        diags.push(Diagnostic::error(
            RuleId::InterferenceFreedom,
            at(),
            format!(
                "bus access intervals overlap: walk <Tn={} Ti={} Tj={}> exceeds the residue \
                 periods <Tn={} Ti={} Tj={}> — two producers share a vertical bus each step",
                w.tn, w.ti, w.tj, u.tn, u.ti, u.tj
            ),
            "shrink the walk to the mapping's residue classes (walk ⊆ period per coordinate)",
        ));
    }

    let port_disjoint = b.tm <= u.tm && b.tr <= u.tr && b.tc <= u.tc;
    if !port_disjoint {
        diags.push(Diagnostic::error(
            RuleId::InterferenceFreedom,
            at(),
            format!(
                "adder-port access intervals overlap: batch <Tm={} Tr={} Tc={}> exceeds the \
                 residue periods <Tm={} Tr={} Tc={}> — two neurons share a row port per batch",
                b.tm, b.tr, b.tc, u.tm, u.tr, u.tc
            ),
            "shrink the row batch to the mapping's residue classes",
        ));
    }

    for (buffer, used) in [("neuron", u.cols_used()), ("kernel", u.rows_used())] {
        if used > arch.buffer_banks {
            diags.push(Diagnostic::error(
                RuleId::InterferenceFreedom,
                at(),
                format!(
                    "{buffer}-buffer bank interval [0, {used}) exceeds the physical [0, {}) — \
                     conflict-free streaming is impossible",
                    arch.buffer_banks
                ),
                "reduce the factor product or add buffer banks",
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexflow::FlexFlow;
    use flexsim_arch::Accelerator;
    use flexsim_model::workloads;
    use flexsim_obs::attrib::ledgers;
    use flexsim_obs::cycles::{CycleRecorder, SinkHandle};
    use std::sync::Arc;

    fn recorded_flexflow(net: &Network, d: usize) -> Vec<LossLedger> {
        let rec = Arc::new(CycleRecorder::new());
        let mut engine = FlexFlow::new(d);
        engine.attach_sink(SinkHandle::new(rec.clone()));
        let _ = engine.run_network(net);
        ledgers(&rec.take())
    }

    #[test]
    fn flexflow_prediction_equals_the_engine_ledger() {
        for net in [workloads::lenet5(), workloads::alexnet()] {
            let geom = EngineGeometry::FlexFlow {
                d: 16,
                store_words: STORE_WORDS,
            };
            let predicted = predicted_ledgers(&geom, &net);
            let recorded = recorded_flexflow(&net, 16);
            let diags = check_cycle_exactness_all(&predicted, &recorded);
            assert!(
                diags.is_empty(),
                "{}: {}",
                net.name(),
                crate::render(&diags)
            );
        }
    }

    #[test]
    fn prediction_is_scale_sensitive() {
        // A scale-8 prediction must NOT match a scale-16 run — the
        // comparison has teeth.
        let net = workloads::lenet5();
        let geom = EngineGeometry::FlexFlow {
            d: 8,
            store_words: STORE_WORDS,
        };
        let predicted = predicted_ledgers(&geom, &net);
        let recorded = recorded_flexflow(&net, 16);
        assert!(!check_cycle_exactness_all(&predicted, &recorded).is_empty());
    }

    #[test]
    fn program_interpretation_follows_the_configured_factors() {
        let net = workloads::lenet5();
        let program = flexflow::Compiler::new(16).compile(&net);
        let stream = predict_program(&program, &net);
        let planned = predict_network(
            &EngineGeometry::FlexFlow {
                d: 16,
                store_words: STORE_WORDS,
            },
            &net,
        );
        // A compiled program configures exactly the planned factors,
        // so the stream-level interpreter agrees with the
        // network-level one.
        assert_eq!(stream.len(), planned.len());
        for (s, p) in stream.iter().zip(&planned) {
            assert_eq!(s.events, p.events, "{}", s.ctx.layer);
        }
    }

    #[test]
    fn clean_program_has_full_isa_coverage() {
        let net = workloads::alexnet();
        let program = flexflow::Compiler::new(16).compile(&net);
        assert!(check_isa_coverage(&program).is_empty());
    }

    #[test]
    fn shadowed_configure_trips_isa_coverage() {
        let net = workloads::lenet5();
        let program = flexflow::Compiler::new(16).compile(&net);
        // Duplicate the first Configure right after itself: the first
        // copy's symbolic state dies unread.
        let mut instrs = program.instrs().to_vec();
        let pos = instrs
            .iter()
            .position(|i| matches!(i, Instr::Configure { .. }))
            .unwrap();
        let dup = instrs[pos];
        instrs.insert(pos + 1, dup);
        let mutated = Program::from_parts(
            program.name().to_owned(),
            program.d(),
            program.choices().to_vec(),
            instrs,
        );
        let diags = check_isa_coverage(&mutated);
        assert_eq!(diags.len(), 1, "{}", crate::render(&diags));
        assert_eq!(diags[0].rule, RuleId::IsaCoverage);
        assert_eq!(diags[0].location.pc, Some(pos));
    }

    #[test]
    fn interference_mirrors_the_enumerated_rules() {
        let layer = ConvLayer::new("C3", 16, 6, 10, 5);
        let u = Unroll::new(2, 2, 1, 2, 2, 3);
        let arch = ArchParams::flexflow_paper();
        let mut plan = LayerPlan::derive(&layer, 0, u, u, arch.d, arch.store_words).unwrap();
        assert!(check_interference(&plan, &arch).is_empty());
        // Widen the walk past its residue period: FXC12's bus interval
        // overlaps, exactly where FXC02's enumeration would race.
        plan.walk.tj = 4;
        let diags = check_interference(&plan, &arch);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::InterferenceFreedom);
        assert!(
            diags[0].message.contains("bus access intervals"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn bank_interval_overflow_is_interference() {
        let layer = ConvLayer::new("C3", 16, 6, 10, 5);
        let u = Unroll::new(2, 2, 1, 2, 2, 3);
        let mut arch = ArchParams::flexflow_paper();
        arch.buffer_banks = 4; // cols_used = 2·2·3 = 12 > 4
        let plan = LayerPlan::derive(&layer, 0, u, u, arch.d, arch.store_words).unwrap();
        let diags = check_interference(&plan, &arch);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == RuleId::InterferenceFreedom));
    }
}
