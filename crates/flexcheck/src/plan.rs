//! The static picture of one layer's execution that the rules inspect.
//!
//! A [`LayerPlan`] gathers everything the hardware is configured with
//! for one CONV layer — the *mapping* unroll the compiler planned data
//! placement for (IADP), the *walk* and *batch* shapes the `Configure`
//! instruction programs into the sequencer, the closed-form
//! [`Schedule`], the per-segment resident slice, and the address-FSM
//! envelope configurations — so each rule can check one consistency
//! edge of that picture. In a well-formed program all of these derive
//! from the same `Unroll`; the mutation harness corrupts individual
//! fields to prove each rule fires on exactly its own invariant.

use crate::diag::{Diagnostic, Location, RuleId};
use flexflow::analytic::{self, Schedule};
use flexflow::fsm::FsmConfig;
use flexsim_dataflow::utilization::ceil_div;
use flexsim_dataflow::Unroll;
use flexsim_model::ConvLayer;

/// The operand offsets one logical step walks: `Tn·Ti·Tj` producers on
/// the vertical (neuron) buses. Programmed by `Configure`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkShape {
    /// Input-map offsets per step.
    pub tn: usize,
    /// Synapse-row offsets per step.
    pub ti: usize,
    /// Synapse-column offsets per step.
    pub tj: usize,
}

/// The output offsets one row-batch covers: `Tm·Tr·Tc` adder-tree
/// (row) ports. Programmed by `Configure`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchShape {
    /// Output-map offsets per batch.
    pub tm: usize,
    /// Neuron-row offsets per batch.
    pub tr: usize,
    /// Neuron-column offsets per batch.
    pub tc: usize,
}

/// One local store's read-FSM configuration plus its trip envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsmPlan {
    /// The four-field FSM configuration (Section 4.4, Fig. 11).
    pub config: FsmConfig,
    /// Neuron rows the FSM walks before reset (`S3/JUMP` count + 1).
    pub rows: usize,
}

/// The complete static picture of one layer's execution.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerPlan {
    /// CONV view of the layer (FC layers appear as 1×1 convolutions).
    pub layer: ConvLayer,
    /// Index of the layer in the network/program.
    pub layer_index: usize,
    /// The unroll the compiler planned data placement (IADP) and the
    /// residue [`flexflow::mapping::Mapping`] for.
    pub mapping: Unroll,
    /// The per-step operand walk the sequencer is programmed with.
    pub walk: WalkShape,
    /// The per-batch output coverage the sequencer is programmed with.
    pub batch: BatchShape,
    /// The closed-form engine schedule (compiled-for store size).
    pub schedule: Schedule,
    /// Per-PE resident operand words per segment
    /// (`⌈chunks/segments⌉`) — the working set each local store holds.
    pub slice_words: usize,
    /// Neuron-store read FSM (overlapping kernel-row-share windows).
    pub neuron_fsm: FsmPlan,
    /// Kernel-store read FSM (kernel-slice windows).
    pub kernel_fsm: FsmPlan,
}

impl LayerPlan {
    /// Derives the plan for `layer` compiled with `choice` (the
    /// planner's unroll) and configured with `instr` (the `Configure`
    /// instruction's unroll — identical in a well-formed program).
    ///
    /// # Errors
    ///
    /// Returns the `FXC06` diagnostic when `choice` over-occupies the
    /// `d×d` engine: no schedule exists, so the capacity/FSM rules have
    /// nothing to check (rule `FXC06` subsumes them).
    pub fn derive(
        layer: &ConvLayer,
        layer_index: usize,
        choice: Unroll,
        instr: Unroll,
        d: usize,
        store_words: usize,
    ) -> Result<LayerPlan, Diagnostic> {
        if choice.rows_used() > d || choice.cols_used() > d {
            return Err(Diagnostic::error(
                RuleId::UnrollBounds,
                Location::layer(layer.name()),
                format!(
                    "unroll {choice} occupies {}x{} PEs on a {d}x{d} engine",
                    choice.rows_used(),
                    choice.cols_used()
                ),
                format!("reduce the factors until Tm*Tr*Tc <= {d} and Tn*Ti*Tj <= {d}"),
            ));
        }
        let schedule = analytic::schedule(layer, choice, d, store_words);
        let slice_words = schedule.chunks.div_ceil(schedule.segments) as usize;
        let k = layer.k();
        // Per-PE shares of the operand walk: a PE holds every `Tj`-th
        // synapse column and every `Ti`-th synapse row of its lane.
        let share_j = ceil_div(k, choice.tj);
        let share_ij = share_j * ceil_div(k, choice.ti);
        Ok(LayerPlan {
            layer: layer.clone(),
            layer_index,
            mapping: choice,
            walk: WalkShape {
                tn: instr.tn,
                ti: instr.ti,
                tj: instr.tj,
            },
            batch: BatchShape {
                tm: instr.tm,
                tr: instr.tr,
                tc: instr.tc,
            },
            schedule,
            slice_words,
            neuron_fsm: fsm_envelope(slice_words, share_j),
            kernel_fsm: fsm_envelope(slice_words, share_ij),
        })
    }
}

/// The FSM configuration whose overlapping-window walk covers exactly
/// the resident slice `[0, slice)` with windows of `share` operands:
/// with step 1 every address is a window start except the last
/// `share − 1`, so `windows_per_row = slice − window + 1` and the walk's
/// maximum address is `slice − 1` (see [`crate::rules::max_fsm_addr`]).
fn fsm_envelope(slice: usize, share: usize) -> FsmPlan {
    let slice = slice.max(1);
    let window = share.clamp(1, slice);
    FsmPlan {
        config: FsmConfig {
            step: 1,
            window,
            windows_per_row: slice - window + 1,
            row_stride: slice,
        },
        rows: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use flexflow::local_store::STORE_WORDS;

    fn layer() -> ConvLayer {
        ConvLayer::new("C3", 16, 6, 10, 5)
    }

    #[test]
    fn well_formed_plan_derives() {
        let u = Unroll::new(16, 3, 1, 1, 1, 5);
        let p = LayerPlan::derive(&layer(), 0, u, u, 16, STORE_WORDS).unwrap();
        assert_eq!(p.slice_words as u64, p.schedule.chunks); // one segment
        assert_eq!(p.walk.tj, 5);
        assert_eq!(p.batch.tm, 16);
        // The neuron FSM's window is the PE's kernel-row share ⌈K/Tj⌉.
        assert_eq!(p.neuron_fsm.config.window, 1);
        assert_eq!(
            p.neuron_fsm.config.windows_per_row,
            p.slice_words - p.neuron_fsm.config.window + 1
        );
    }

    #[test]
    fn oversized_choice_is_fxc06() {
        let u = Unroll::new(8, 1, 2, 2, 1, 1); // 32 rows on a 16x16 engine
        let err = LayerPlan::derive(&layer(), 0, u, u, 16, STORE_WORDS).unwrap_err();
        assert_eq!(err.rule, RuleId::UnrollBounds);
        assert_eq!(err.severity, Severity::Error);
    }

    #[test]
    fn segmented_layer_slices_to_the_store() {
        // AlexNet-C5-like: chunks exceed the store, so segments > 1 and
        // the slice is at most the store.
        let deep = ConvLayer::new("C5", 192, 256, 13, 3).with_input_size(13);
        let u = Unroll::new(1, 1, 1, 13, 1, 3);
        let p = LayerPlan::derive(&deep, 0, u, u, 16, STORE_WORDS).unwrap();
        assert!(p.schedule.segments > 1);
        assert!(p.slice_words <= STORE_WORDS);
        // The FSM envelope tops out exactly at the slice.
        let cfg = p.neuron_fsm.config;
        assert_eq!(cfg.windows_per_row + cfg.window - 1, p.slice_words);
    }
}
