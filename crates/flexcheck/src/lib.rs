//! # flexcheck — static schedule/mapping verifier for the simulators
//!
//! A compiled FlexFlow [`Program`](flexflow::Program) (and each
//! baseline's tiling plan) makes resource claims: operand slices fit
//! the 256 B local stores, no two producers drive one common data bus
//! in a cycle, every address FSM trip stays in bounds, the instruction
//! stream obeys the decoder protocol. The cycle-stepped simulators
//! *check* those claims with runtime asserts — after minutes of
//! simulation, at one failing cycle. `flexcheck` *proves* them up
//! front, in microseconds, without stepping a single cycle:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `FXC01 ls-capacity` | per-PE resident slice ≤ local-store words |
//! | `FXC02 cdb-race` | per-step vertical-bus injectivity (no write-write race) |
//! | `FXC03 adder-tree-port` | per-batch PE-row/adder-port injectivity |
//! | `FXC04 fsm-bounds` | closed-form FSM address envelope ⊂ resident slice |
//! | `FXC05 isa-protocol` | encode/decode round-trip, stream protocol, no dead code |
//! | `FXC06 unroll-bounds` | Constraint (1): factors fit the layer and the engine |
//! | `FXC07 bank-conflict` | IADP/tiling/2D-mapping bank usage ≤ physical banks |
//! | `FXC08 util-sanity` | schedule loop counts/MACs/cycles equal their closed forms |
//! | `FXC09 attribution-exactness` | loss ledger balances: busy + Σ lost = cycles × PEs |
//! | `FXC10 cycle-exactness` | symbolic prediction == engine-recorded cycles and ledger |
//! | `FXC11 isa-coverage` | every instruction observed; no symbolic state dies unread |
//! | `FXC12 interference-freedom` | bus/port/bank access intervals pairwise disjoint |
//! | `FXC13 spatial-exactness` | heatmap cell sums == ledger per cause; banks cover the layer |
//!
//! The techniques are static by construction: rules 2–3 abstract-
//! interpret the residue algebra of the Section 4.3
//! [`Mapping`](flexflow::mapping::Mapping) (injectivity over residue
//! classes), rule 4 evaluates a closed-form maximum over the
//! [`AddrFsm`](flexflow::fsm::AddrFsm) configuration (proved equal to
//! exhaustive stepping by property test), and rules 1 and 8 re-derive
//! the [`analytic`](flexflow::analytic) arithmetic from the layer shape.
//!
//! Entry points:
//!
//! * [`check`] — lint a compiled [`Program`](flexflow::Program) against
//!   an [`ArchParams`];
//! * [`check_network`] — lint a workload on any of the four evaluated
//!   architectures (compiles first when the target is FlexFlow);
//! * `flexsim lint` — the CLI front-end over every Table 1 workload ×
//!   all four architectures (exits non-zero on any `Error`).
//!
//! The experiments crate calls [`check_network`] before *every*
//! simulation; a failing program refuses to simulate unless the user
//! passes `--no-lint`.
//!
//! Soundness is demonstrated, not assumed: for each rule the mutation
//! harness (`tests/integration_flexcheck.rs`) corrupts one field of a
//! clean schedule, asserts the corruption trips *exactly that rule*
//! statically, and then confirms the dynamic simulators catch the same
//! corruption at runtime (static ⊆ dynamic).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod diag;
pub mod params;
pub mod plan;
pub mod rules;
pub mod symbolic;

pub use diag::{has_errors, render, Diagnostic, Location, RuleId, Severity};
pub use params::{ArchKind, ArchParams};
pub use plan::{BatchShape, FsmPlan, LayerPlan, WalkShape};
pub use rules::{
    check, check_candidate, check_layer_plan, check_ledger, check_ledgers, check_network,
    check_spatial, check_spatials, max_fsm_addr, prune_candidates, PrunedCandidates,
};
pub use symbolic::{
    check_cycle_exactness, check_cycle_exactness_all, check_interference, check_isa_coverage,
    predict_conv, predict_network, predict_program, predicted_ledgers, EngineGeometry,
};
