//! Target-hardware parameters the rules check a schedule against.
//!
//! A compiled `Program` bakes in the compiler's assumptions (paper
//! Table 5: 128-word local stores, `D`-banked buffers). [`ArchParams`]
//! describes the hardware the program is about to be *simulated on*;
//! the rules prove the program's resource claims against it. Shrinking
//! a field below the compiled assumption is how the mutation harness
//! provokes each capacity rule.

use flexflow::local_store::STORE_WORDS;

/// Which of the four evaluated architectures a parameter set describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// The FlexFlow `D×D` engine (full 8-rule check).
    FlexFlow,
    /// DC-CNN-style systolic arrays (geometry + bank rules).
    Systolic,
    /// ShiDianNao-style 2D neuron mapping (geometry + bank rules).
    Mapping2d,
    /// DianNao-style `⟨Tm,Tn⟩` tiling array (geometry + bank rules).
    Tiling,
}

impl ArchKind {
    /// Paper-order presentation name.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::FlexFlow => "FlexFlow",
            ArchKind::Systolic => "Systolic",
            ArchKind::Mapping2d => "2D-Mapping",
            ArchKind::Tiling => "Tiling",
        }
    }
}

/// The hardware budget a schedule must fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArchParams {
    /// Architecture family.
    pub kind: ArchKind,
    /// Engine side: `D` for FlexFlow, `⟨Tr,Tc⟩ = ⟨d,d⟩` for 2D-Mapping,
    /// `⟨Tm,Tn⟩ = ⟨d,d⟩` for Tiling.
    pub d: usize,
    /// Per-PE local-store capacity in 16-bit words (FlexFlow only).
    pub store_words: usize,
    /// Physical banks per on-chip buffer (conflict-free words/cycle).
    pub buffer_banks: usize,
    /// Systolic array side `K` (Systolic only; 0 elsewhere).
    pub array_k: usize,
}

impl ArchParams {
    /// FlexFlow at engine side `d` with the paper's Table 5 stores and
    /// `d`-banked buffers.
    pub fn flexflow(d: usize) -> Self {
        ArchParams {
            kind: ArchKind::FlexFlow,
            d,
            store_words: STORE_WORDS,
            buffer_banks: d,
            array_k: 0,
        }
    }

    /// The paper's 16×16 FlexFlow configuration.
    pub fn flexflow_paper() -> Self {
        ArchParams::flexflow(16)
    }

    /// A systolic engine of `array_k × array_k` arrays.
    pub fn systolic(array_k: usize) -> Self {
        ArchParams {
            kind: ArchKind::Systolic,
            d: array_k,
            store_words: 0,
            buffer_banks: array_k,
            array_k,
        }
    }

    /// A `d×d` 2D-Mapping (ShiDianNao-style) engine.
    pub fn mapping2d(d: usize) -> Self {
        ArchParams {
            kind: ArchKind::Mapping2d,
            d,
            store_words: 0,
            buffer_banks: d,
            array_k: 0,
        }
    }

    /// A `⟨Tm,Tn⟩ = ⟨d,d⟩` tiling (DianNao-style) engine.
    pub fn tiling(d: usize) -> Self {
        ArchParams {
            kind: ArchKind::Tiling,
            d,
            store_words: 0,
            buffer_banks: d,
            array_k: 0,
        }
    }

    /// The paper's four Section 6.1.1 configurations for a workload:
    /// Systolic (11×11 arrays for AlexNet, 6×6 otherwise), 16×16
    /// 2D-Mapping, ⟨16,16⟩ Tiling, 16×16 FlexFlow.
    pub fn paper_suite(net_name: &str) -> [ArchParams; 4] {
        let array_k = if net_name == "AlexNet" { 11 } else { 6 };
        [
            ArchParams::systolic(array_k),
            ArchParams::mapping2d(16),
            ArchParams::tiling(16),
            ArchParams::flexflow_paper(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flexflow_matches_table5() {
        let p = ArchParams::flexflow_paper();
        assert_eq!(p.d, 16);
        assert_eq!(p.store_words, 128); // 256 B of 16-bit words
        assert_eq!(p.buffer_banks, 16);
    }

    #[test]
    fn alexnet_gets_11x11_systolic() {
        let suite = ArchParams::paper_suite("AlexNet");
        assert_eq!(suite[0].array_k, 11);
        let suite = ArchParams::paper_suite("LeNet-5");
        assert_eq!(suite[0].array_k, 6);
        assert_eq!(suite[3].kind, ArchKind::FlexFlow);
    }
}
