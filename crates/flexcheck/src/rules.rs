//! The static rules.
//!
//! Each rule proves one hardware invariant *without stepping the
//! simulator*, by abstract-interpreting the residue algebra of the
//! [`flexflow::mapping::Mapping`] (rules 2, 3), the closed-form address
//! envelope of the [`flexflow::fsm::AddrFsm`] configuration (rule 4),
//! or the arithmetic identities of the [`flexflow::analytic`] schedule
//! (rules 1, 8). Rule 5 drives the on-chip [`Decoder`] front-end over
//! the encoded stream (still static: no engine cycle executes), rule 6
//! re-checks Constraint (1), and rule 7 checks IADP bank fits for all
//! four architectures.
//!
//! Every rule is *sound relative to the dynamic simulators*: a schedule
//! that passes a rule cannot trip the corresponding runtime assert (the
//! mutation harness in `tests/integration_flexcheck.rs` demonstrates
//! the contrapositive for each rule).

use crate::diag::{Diagnostic, Location, RuleId};
use crate::params::{ArchKind, ArchParams};
use crate::plan::LayerPlan;
use flexflow::analytic::{PIPELINE_FILL_CYCLES, SEGMENT_STALL_CYCLES};
use flexflow::compiler::Program;
use flexflow::decoder::{DecodeProgramError, Decoder};
use flexflow::fsm::FsmConfig;
use flexflow::isa::Instr;
use flexflow::local_store::STORE_WORDS;
use flexsim_dataflow::utilization::ceil_div;
use flexsim_model::{ConvLayer, Layer, Network};
use flexsim_obs::attrib::LossLedger;
use flexsim_obs::spatial::LayerSpatial;
use std::collections::HashMap;

/// Closed-form maximum address an [`flexflow::fsm::AddrFsm`] with
/// `config` emits while walking `rows` neuron rows — the bound rule
/// `FXC04` proves instead of stepping the FSM. Delegates to
/// [`FsmConfig::max_addr`] (the hardware-side closed form):
/// within a row the last window starts at `(windows_per_row−1)·step`
/// and ends `(window−1)·step` later; rows advance by `row_stride`.
///
/// `tests/proptests.rs` holds this exactly equal to the stepped FSM's
/// maximum for every configuration.
pub fn max_fsm_addr(config: &FsmConfig, rows: usize) -> usize {
    config.max_addr(rows)
}

/// Runs the per-layer rules (`FXC01`–`FXC04`, `FXC06`–`FXC08`) over one
/// [`LayerPlan`] against the target hardware.
pub fn check_layer_plan(plan: &LayerPlan, arch: &ArchParams) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = || Location::layer(plan.layer.name());
    let u = plan.mapping;

    // FXC06 — Constraint (1): factors within the layer and the engine.
    if !u.satisfies(&plan.layer, arch.d, None) {
        diags.push(Diagnostic::error(
            RuleId::UnrollBounds,
            at(),
            format!(
                "unroll {u} violates Constraint (1) for {} (M={}, N={}, S={}, K={}) on a {d}x{d} engine",
                plan.layer.name(),
                plan.layer.m(),
                plan.layer.n(),
                plan.layer.s(),
                plan.layer.k(),
                d = arch.d
            ),
            "clamp each factor to its loop bound and the engine occupancy",
        ));
    }

    // FXC01 — the per-segment resident slice fits the local stores.
    if plan.slice_words > arch.store_words {
        diags.push(Diagnostic::error(
            RuleId::LsCapacity,
            at(),
            format!(
                "per-PE resident slice of {} operand words exceeds the {}-word local store \
                 (chunks={}, segments={})",
                plan.slice_words, arch.store_words, plan.schedule.chunks, plan.schedule.segments
            ),
            "re-segment the chunk walk for the target store, or enlarge Tn/Ti/Tj",
        ));
    }

    // FXC02 — vertical-bus write-write races (column injectivity).
    diags.extend(rule_cdb_race(plan));

    // FXC03 — adder-tree row-port conflicts (row injectivity).
    diags.extend(rule_adder_tree_port(plan));

    // FXC04 — FSM address envelope stays inside the resident slice.
    for (store, fsm) in [("neuron", &plan.neuron_fsm), ("kernel", &plan.kernel_fsm)] {
        let max = max_fsm_addr(&fsm.config, fsm.rows);
        if max >= plan.slice_words {
            diags.push(Diagnostic::error(
                RuleId::FsmBounds,
                at(),
                format!(
                    "{store}-store FSM (step={}, window={}, windows/row={}, row_stride={}, \
                     rows={}) reaches address {max} but only {} words are resident",
                    fsm.config.step,
                    fsm.config.window,
                    fsm.config.windows_per_row,
                    fsm.config.row_stride,
                    fsm.rows,
                    plan.slice_words
                ),
                "shrink the window walk so (windows/row − 1 + window − 1)·step + \
                 (rows − 1)·row_stride < resident words",
            ));
        }
    }

    // FXC07 — IADP bank layouts fit the physical buffer banks.
    for (buffer, used) in [("neuron", u.cols_used()), ("kernel", u.rows_used())] {
        if used > arch.buffer_banks {
            diags.push(Diagnostic::error(
                RuleId::BankConflict,
                at(),
                format!(
                    "IADP {buffer}-buffer layout needs {used} banks but the buffer has {}",
                    arch.buffer_banks
                ),
                "reduce the factor product or add buffer banks",
            ));
        }
    }

    // FXC08 — utilization sanity: the schedule's loop counts, MACs and
    // cycle total must equal their closed forms.
    diags.extend(rule_util_sanity(plan));

    diags
}

/// `FXC02`: symbolic interval disjointness of one logical step. The
/// sequencer walks `walk.tn × walk.ti × walk.tj` operand offsets per
/// step; each lands on vertical bus `input_col(n, r·stride+i,
/// c·stride+j)` of the *mapping* unroll. The bus index is mixed-radix
/// in the three residues `(n mod Tn, (r·stride+i₀) mod Ti,
/// (c·stride+j₀) mod Tj)`, so two offsets collide iff they are
/// congruent in *all three* coordinates — which happens for some pair
/// iff a walk interval is wider than its residue period. That turns
/// the old per-step enumeration (O(lanes²) per layer) into three
/// comparisons; `tests/proptests.rs` holds the closed form exactly
/// equal to exhaustive enumeration.
fn rule_cdb_race(plan: &LayerPlan) -> Vec<Diagnostic> {
    let u = plan.mapping;
    let w = &plan.walk;
    if w.tn <= u.tn && w.ti <= u.ti && w.tj <= u.tj {
        return Vec::new();
    }
    // The first collision of the lexicographic walk from residue
    // (0, 0, 0): the offset one full period into the overflowing
    // coordinate re-lands on bus 0 — the same bus the enumeration used
    // to report.
    let col = 0;
    vec![Diagnostic::error(
        RuleId::CdbRace,
        Location::layer(plan.layer.name()),
        format!(
            "two producers drive vertical bus {col} in one step: \
             walk <Tn={}, Ti={}, Tj={}> is wider than the mapping's \
             residue classes <Tn={}, Ti={}, Tj={}>",
            w.tn, w.ti, w.tj, u.tn, u.ti, u.tj
        ),
        "program the Configure walk with the same <Tn,Ti,Tj> the \
         mapping was planned for",
    )]
}

/// `FXC03`: the row-side mirror of [`rule_cdb_race`]. A row-batch
/// covers `batch.tm × batch.tr × batch.tc` output neurons; each owns PE
/// row `output_row(m, r, c)` and its adder-tree accumulator port. The
/// row index is mixed-radix in the `(m mod Tm, r mod Tr, c mod Tc)`
/// residues, so a duplicate port exists iff a batch interval is wider
/// than its residue period — the same three-comparison closed form as
/// the bus side, replacing the old O(rows²) enumeration (held equal by
/// property test).
fn rule_adder_tree_port(plan: &LayerPlan) -> Vec<Diagnostic> {
    let u = plan.mapping;
    let b = &plan.batch;
    if b.tm <= u.tm && b.tr <= u.tr && b.tc <= u.tc {
        return Vec::new();
    }
    // As in rule_cdb_race: the first collision of the enumeration's
    // lexicographic walk is the wraparound onto row 0.
    let row = 0;
    vec![Diagnostic::error(
        RuleId::AdderTreePort,
        Location::layer(plan.layer.name()),
        format!(
            "two output neurons contend for PE row {row}'s adder-tree \
             port in one batch: batch <Tm={}, Tr={}, Tc={}> vs \
             mapping <Tm={}, Tr={}, Tc={}>",
            b.tm, b.tr, b.tc, u.tm, u.tr, u.tc
        ),
        "program the Configure batch with the same <Tm,Tr,Tc> the \
         mapping was planned for",
    )]
}

/// `FXC08`: re-derives the schedule's loop counts, MAC total, and cycle
/// total from the layer shape and checks them against the `Schedule`'s
/// own claims, including that the claimed MACs are issuable by
/// `parallel_macs` lanes.
fn rule_util_sanity(plan: &LayerPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = || Location::layer(plan.layer.name());
    let u = plan.mapping;
    let l = &plan.layer;
    let sch = &plan.schedule;

    let chunks = (ceil_div(l.n(), u.tn) * ceil_div(l.k(), u.ti) * ceil_div(l.k(), u.tj)) as u64;
    let batches = (ceil_div(l.m(), u.tm) * ceil_div(l.s(), u.tr) * ceil_div(l.s(), u.tc)) as u64;
    if sch.chunks != chunks || sch.row_batches != batches {
        diags.push(Diagnostic::error(
            RuleId::UtilSanity,
            at(),
            format!(
                "schedule loop counts diverge from the layer: chunks {} (expected {chunks}), \
                 row-batches {} (expected {batches})",
                sch.chunks, sch.row_batches
            ),
            "rebuild the schedule from the planned unroll",
        ));
    }
    if sch.macs != l.macs() {
        diags.push(Diagnostic::error(
            RuleId::UtilSanity,
            at(),
            format!(
                "schedule claims {} MACs; the layer computes {}",
                sch.macs,
                l.macs()
            ),
            "every MAC must be issued exactly once",
        ));
    }
    let expected_cycles = batches * chunks
        + batches * (sch.segments - 1) * SEGMENT_STALL_CYCLES
        + PIPELINE_FILL_CYCLES;
    if sch.cycles != expected_cycles {
        diags.push(Diagnostic::error(
            RuleId::UtilSanity,
            at(),
            format!(
                "schedule claims {} cycles; batches*chunks + stalls + fill = {expected_cycles}",
                sch.cycles
            ),
            "recompute cycles from the loop counts and segment stalls",
        ));
    }
    let lane_budget = batches * chunks * u.parallel_macs() as u64;
    if sch.macs > lane_budget {
        diags.push(Diagnostic::error(
            RuleId::UtilSanity,
            at(),
            format!(
                "schedule claims {} MACs but {} steps of {} parallel lanes issue at most \
                 {lane_budget}",
                sch.macs,
                batches * chunks,
                u.parallel_macs()
            ),
            "the statically derived parallel MACs bound the schedule's total",
        ));
    }
    diags
}

/// Lints one tuner candidate unrolling for `layer`: derives the
/// [`LayerPlan`] (an over-occupying candidate yields the `FXC06`
/// diagnostic — no schedule exists, so there is nothing further to
/// check) and runs the per-layer rules (`FXC01`–`FXC04`,
/// `FXC06`–`FXC08`) over it. The program-level rules still apply later:
/// `FXC05` on the assembled tuned program ([`check`]) and `FXC09` on
/// the simulated ledgers ([`check_ledgers`]).
pub fn check_candidate(
    layer: &ConvLayer,
    layer_index: usize,
    u: flexsim_dataflow::Unroll,
    arch: &ArchParams,
) -> Vec<Diagnostic> {
    match LayerPlan::derive(layer, layer_index, u, u, arch.d, arch.store_words) {
        Ok(plan) => check_layer_plan(&plan, arch),
        Err(diag) => vec![diag],
    }
}

/// A batch of tuner candidates split by legality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrunedCandidates {
    /// Candidates every per-layer rule accepts, in input order.
    pub legal: Vec<flexsim_dataflow::Unroll>,
    /// How many candidates a rule rejected.
    pub pruned: usize,
}

/// Batch legality pruning for the mapping auto-tuner: runs
/// [`check_candidate`] over every candidate and keeps only those with
/// no error diagnostics, preserving input order (the tuner's
/// deterministic tie-breaking depends on it). The flexcheck rules act
/// here as the search's legality oracle — illegal mappings are
/// discarded *before* any simulation is spent on them.
pub fn prune_candidates(
    layer: &ConvLayer,
    layer_index: usize,
    candidates: &[flexsim_dataflow::Unroll],
    arch: &ArchParams,
) -> PrunedCandidates {
    let mut legal = Vec::with_capacity(candidates.len());
    let mut pruned = 0usize;
    for &u in candidates {
        if crate::diag::has_errors(&check_candidate(layer, layer_index, u, arch)) {
            pruned += 1;
        } else {
            legal.push(u);
        }
    }
    PrunedCandidates { legal, pruned }
}

/// Full FlexFlow program check: rule `FXC05` over the instruction
/// stream, then the per-layer rules over every compiled CONV/FC layer.
///
/// `net` supplies the layer shapes the `Program`'s choices refer to (a
/// program stores factor plans by layer name only).
pub fn check(program: &Program, net: &Network, arch: &ArchParams) -> Vec<Diagnostic> {
    let mut diags = check_isa(program, net);
    // FXC11 — the abstract interpreter must observe every instruction's
    // effect (no symbolic state discarded unread).
    diags.extend(crate::symbolic::check_isa_coverage(program));

    // Pair the k-th Conv instruction with the k-th planned choice and
    // the network layer it targets, then run the per-layer rules.
    let layers = net.layers();
    let mut configured: HashMap<u8, flexsim_dataflow::Unroll> = HashMap::new();
    let mut conv_idx = 0usize;
    for instr in program.instrs() {
        match *instr {
            Instr::Configure { layer, unroll } => {
                configured.insert(layer, unroll);
            }
            Instr::Conv { layer } => {
                let view = match layers.get(layer as usize) {
                    Some(Layer::Conv(c)) => c.clone(),
                    Some(Layer::Fc(fc)) => fc.as_conv(),
                    _ => continue, // already reported by check_isa
                };
                let Some(choice) = program.choices().get(conv_idx) else {
                    continue; // count mismatch reported by check_isa
                };
                conv_idx += 1;
                let instr_u = configured.get(&layer).copied().unwrap_or(choice.unroll);
                match LayerPlan::derive(
                    &view,
                    layer as usize,
                    choice.unroll,
                    instr_u,
                    program.d(),
                    STORE_WORDS,
                ) {
                    Ok(plan) => diags.extend(check_layer_plan(&plan, arch)),
                    Err(diag) => diags.push(diag),
                }
            }
            _ => {}
        }
    }
    diags
}

/// `FXC05`: ISA invariants. Encode-range and round-trip per
/// instruction, the on-chip decoder's stream protocol, instruction
/// targets cross-checked against the network's layer kinds, and
/// dead-code detection (a `Configure`/plan entry no `Conv` consumes).
fn check_isa(program: &Program, net: &Network) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let layers = net.layers();

    // Encode range first: Instr::encode panics above 128, so the
    // round-trip/stream checks only run on encodable programs.
    let mut encodable = true;
    for (pc, instr) in program.instrs().iter().enumerate() {
        if let Instr::Configure { unroll: u, .. } = instr {
            for f in [u.tm, u.tn, u.tr, u.tc, u.ti, u.tj] {
                if f > 128 {
                    encodable = false;
                    diags.push(Diagnostic::error(
                        RuleId::IsaProtocol,
                        Location::pc(pc),
                        format!("unrolling factor {f} exceeds the ISA's 7-bit field (max 128)"),
                        "no factor may exceed 128",
                    ));
                }
            }
        }
    }
    if encodable {
        let words = program.encode();
        for (pc, (word, instr)) in words.iter().zip(program.instrs()).enumerate() {
            if Instr::decode(*word).ok().as_ref() != Some(instr) {
                diags.push(Diagnostic::error(
                    RuleId::IsaProtocol,
                    Location::pc(pc),
                    format!("instruction `{instr}` does not round-trip through the encoder"),
                    "encoder and decoder must agree on every field",
                ));
            }
        }
        if let Err(e) = Decoder::new(program.d()).decode_stream(&words) {
            let pc = match e {
                DecodeProgramError::BadWord { pc, .. }
                | DecodeProgramError::OversizedFactors { pc, .. }
                | DecodeProgramError::ConvWithoutConfigure { pc, .. }
                | DecodeProgramError::ConvWithoutKernels { pc, .. }
                | DecodeProgramError::TrailingWords { pc } => Some(pc),
                DecodeProgramError::MissingHalt => None,
            };
            let loc = pc.map_or_else(Location::program, Location::pc);
            diags.push(Diagnostic::error(
                RuleId::IsaProtocol,
                loc,
                format!("the on-chip decoder rejects the stream: {e}"),
                "emit Configure/LoadKernels before Conv and terminate with a single Halt",
            ));
        }
    }

    // Targets must exist and match the layer kind the opcode drives.
    let mut conv_count = 0usize;
    let mut live_configure: HashMap<u8, usize> = HashMap::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        let (layer, wants_conv) = match *instr {
            Instr::Configure { layer, .. } => {
                live_configure.insert(layer, pc);
                (layer, true)
            }
            Instr::LoadKernels { layer } => (layer, true),
            Instr::Conv { layer } => {
                conv_count += 1;
                live_configure.remove(&layer);
                (layer, true)
            }
            Instr::Pool { layer } => (layer, false),
            Instr::SwapBuffers | Instr::Halt => continue,
        };
        match layers.get(layer as usize) {
            None => diags.push(Diagnostic::error(
                RuleId::IsaProtocol,
                Location::pc(pc),
                format!(
                    "`{instr}` targets layer L{layer}, but the network has {} layers",
                    layers.len()
                ),
                "layer indices follow network order",
            )),
            Some(Layer::Pool(_)) if wants_conv => diags.push(Diagnostic::error(
                RuleId::IsaProtocol,
                Location::pc(pc),
                format!("`{instr}` targets pooling layer L{layer}"),
                "Configure/LoadKernels/Conv drive CONV or FC layers only",
            )),
            Some(Layer::Conv(_) | Layer::Fc(_)) if !wants_conv => {
                diags.push(Diagnostic::error(
                    RuleId::IsaProtocol,
                    Location::pc(pc),
                    format!("`{instr}` targets non-pooling layer L{layer}"),
                    "Pool drives pooling layers only",
                ));
            }
            _ => {}
        }
    }
    if conv_count != program.choices().len() {
        diags.push(Diagnostic::error(
            RuleId::IsaProtocol,
            Location::program(),
            format!(
                "{} Conv instructions but {} planned layer choices",
                conv_count,
                program.choices().len()
            ),
            "every planned choice must lower to exactly one Conv",
        ));
    }
    for (layer, pc) in live_configure {
        diags.push(Diagnostic::warning(
            RuleId::IsaProtocol,
            Location::pc(pc),
            format!("dead code: Configure for L{layer} is never consumed by a Conv"),
            "remove the configure or add the missing Conv",
        ));
    }
    diags
}

/// Lints a workload against one architecture. FlexFlow compiles the
/// network and runs the full static program check (rules 1–8); the
/// baselines run the geometry and bank rules that apply to their
/// dataflow. Rule 9 ([`check_ledger`]) runs post-simulation, over the
/// recorded loss ledgers.
pub fn check_network(net: &Network, arch: &ArchParams) -> Vec<Diagnostic> {
    match arch.kind {
        ArchKind::FlexFlow => {
            let program = flexflow::Compiler::new(arch.d).compile(net);
            check(&program, net, arch)
        }
        ArchKind::Systolic => check_systolic(net, arch),
        ArchKind::Mapping2d => check_mapping2d(net, arch),
        ArchKind::Tiling => check_tiling(net, arch),
    }
}

/// `FXC09`: a recorded layer's loss attribution must balance exactly —
/// `busy + Σ attributed_lost == total_cycles × num_pes`, with the
/// events tiling the timeline (no gaps, no overlap) and zero
/// unattributed PE-cycles. Unlike rules 1–8 this checks a *dynamic*
/// artifact (the emitted ledger), but it is still a closed identity: a
/// violation means a simulator's emitter dropped, double-counted, or
/// mislabeled a loss, never a modeling judgment call.
pub fn check_ledger(ledger: &LossLedger) -> Vec<Diagnostic> {
    if ledger.is_exact() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    if ledger.covered_cycles != ledger.total_cycles {
        diags.push(Diagnostic::error(
            RuleId::AttributionExactness,
            Location::layer(&ledger.layer),
            format!(
                "{}: events cover {} of {} cycles (gap or overlap in the timeline)",
                ledger.arch, ledger.covered_cycles, ledger.total_cycles
            ),
            "every emitted event must tile the layer timeline back to back",
        ));
    }
    if ledger.unattributed() != 0 {
        diags.push(Diagnostic::error(
            RuleId::AttributionExactness,
            Location::layer(&ledger.layer),
            format!(
                "{}: busy {} + attributed {} != total {} PE-cycles ({} unattributed)",
                ledger.arch,
                ledger.busy_pe_cycles,
                ledger.attributed_lost(),
                ledger.total_pe_cycles(),
                ledger.unattributed()
            ),
            "attribute every lost PE-cycle to a StallCause; no bucketless losses",
        ));
    }
    diags
}

/// [`check_ledger`] over a batch (one ledger per recorded layer).
pub fn check_ledgers(ledgers: &[LossLedger]) -> Vec<Diagnostic> {
    ledgers.iter().flat_map(check_ledger).collect()
}

/// `FXC13`: a layer's spatial heatmap must reproduce its loss ledger
/// exactly — the same hard-identity discipline as `FXC09`/`FXC10`,
/// applied to the spatial planes:
///
/// * the array geometry matches (`rows × cols == pe_count`, and both
///   records agree on the PE count and total cycles);
/// * the busy plane sums to `busy_pe_cycles`;
/// * for every [`StallCause`], the per-cell loss sums to
///   `ledger.lost(cause)`;
/// * every bank watermark covers the full layer duration
///   (`sampled_cycles == total_cycles` — a dropped sample is a hole in
///   the occupancy story) and never exceeds its capacity.
///
/// A violation means a simulator's spatial emitter distributed work to
/// the wrong cells, dropped a sample, or a consumer tampered with the
/// planes — never a modeling judgment call.
///
/// [`StallCause`]: flexsim_obs::attrib::StallCause
pub fn check_spatial(spatial: &LayerSpatial, ledger: &LossLedger) -> Vec<Diagnostic> {
    use flexsim_obs::attrib::StallCause;
    let mut diags = Vec::new();
    let at = || Location::layer(&spatial.layer);
    if spatial.pe_count() != ledger.pe_count as usize {
        diags.push(Diagnostic::error(
            RuleId::SpatialExactness,
            at(),
            format!(
                "{}: heatmap geometry {}x{} = {} cells != {} PEs in the ledger",
                spatial.arch,
                spatial.rows,
                spatial.cols,
                spatial.pe_count(),
                ledger.pe_count
            ),
            "emit one heatmap cell per physical PE",
        ));
    }
    if spatial.total_cycles != ledger.total_cycles {
        diags.push(Diagnostic::error(
            RuleId::SpatialExactness,
            at(),
            format!(
                "{}: heatmap spans {} cycles, ledger {}",
                spatial.arch, spatial.total_cycles, ledger.total_cycles
            ),
            "build the heatmap over the same cycle span the ledger covers",
        ));
    }
    if spatial.busy_total() != ledger.busy_pe_cycles {
        diags.push(Diagnostic::error(
            RuleId::SpatialExactness,
            at(),
            format!(
                "{}: busy plane sums to {} PE-cycles, ledger says {}",
                spatial.arch,
                spatial.busy_total(),
                ledger.busy_pe_cycles
            ),
            "distribute every useful MAC to exactly one cell",
        ));
    }
    for cause in StallCause::ALL {
        let cells = spatial.lost_total(cause);
        let want = ledger.lost(cause);
        if cells != want {
            diags.push(Diagnostic::error(
                RuleId::SpatialExactness,
                at(),
                format!(
                    "{}: {} cells sum to {} lost PE-cycles, ledger says {}",
                    spatial.arch,
                    cause.name(),
                    cells,
                    want
                ),
                "charge every lost PE-cycle to exactly one (cell, cause)",
            ));
        }
    }
    for bank in &spatial.banks {
        if bank.sampled_cycles != spatial.total_cycles {
            diags.push(Diagnostic::error(
                RuleId::SpatialExactness,
                at(),
                format!(
                    "{}: bank {} sampled {} of {} cycles (dropped sample)",
                    spatial.arch, bank.bank, bank.sampled_cycles, spatial.total_cycles
                ),
                "bank occupancy samples must cover the whole layer",
            ));
        }
        if bank.high_water_words > bank.capacity_words {
            diags.push(Diagnostic::error(
                RuleId::SpatialExactness,
                at(),
                format!(
                    "{}: bank {} high-water {} words exceeds its {}-word capacity",
                    spatial.arch, bank.bank, bank.high_water_words, bank.capacity_words
                ),
                "clamp modeled residency to the physical bank size",
            ));
        }
    }
    diags
}

/// [`check_spatial`] over a batch: every spatial record is paired with
/// the ledger of the same `(arch, layer)`; an unpaired record is
/// itself a violation (a heatmap nobody's ledger vouches for).
pub fn check_spatials(spatials: &[LayerSpatial], ledgers: &[LossLedger]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for spatial in spatials {
        match ledgers
            .iter()
            .find(|l| l.arch == spatial.arch && l.layer == spatial.layer)
        {
            Some(ledger) => diags.extend(check_spatial(spatial, ledger)),
            None => diags.push(Diagnostic::error(
                RuleId::SpatialExactness,
                Location::layer(&spatial.layer),
                format!(
                    "{}: heatmap recorded but no loss ledger for this layer",
                    spatial.arch
                ),
                "record the cycle timeline alongside the spatial sink",
            )),
        }
    }
    diags
}

/// CONV views of every layer a program computes on the engine (CONV
/// layers as-is, FC layers as 1×1 convolutions).
fn conv_views(net: &Network) -> Vec<ConvLayer> {
    net.layers()
        .iter()
        .filter_map(|l| match l {
            Layer::Conv(c) => Some(c.clone()),
            Layer::Fc(fc) => Some(fc.as_conv()),
            Layer::Pool(_) => None,
        })
        .collect()
}

/// Systolic rules: the kernel must fit the `K×K` array (rule 6's
/// geometry analogue), row injection must fit the banks (rule 7), and
/// non-unit strides are flagged for the functional model (warning).
fn check_systolic(net: &Network, arch: &ArchParams) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for layer in conv_views(net) {
        if layer.k() > arch.array_k {
            diags.push(Diagnostic::error(
                RuleId::UnrollBounds,
                Location::layer(layer.name()),
                format!(
                    "kernel K={} exceeds the {}x{} systolic array",
                    layer.k(),
                    arch.array_k,
                    arch.array_k
                ),
                "use an array at least K wide (the paper gives AlexNet 11x11 arrays)",
            ));
        }
        if arch.array_k > arch.buffer_banks {
            diags.push(Diagnostic::error(
                RuleId::BankConflict,
                Location::layer(layer.name()),
                format!(
                    "streaming {} kernel rows per cycle needs {} banks, buffer has {}",
                    arch.array_k, arch.array_k, arch.buffer_banks
                ),
                "banks must cover the array side",
            ));
        }
        if layer.stride() != 1 {
            diags.push(Diagnostic::warning(
                RuleId::UnrollBounds,
                Location::layer(layer.name()),
                format!(
                    "stride {} is outside the functional systolic model (analytic only)",
                    layer.stride()
                ),
                "the cycle model covers it; bit-exact replay does not",
            ));
        }
    }
    diags
}

/// 2D-Mapping rules: per-step edge injection (`max(Tr,Tc)` words) must
/// fit the banks; non-unit strides are functional-model warnings.
fn check_mapping2d(net: &Network, arch: &ArchParams) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for layer in conv_views(net) {
        if arch.d > arch.buffer_banks {
            diags.push(Diagnostic::error(
                RuleId::BankConflict,
                Location::layer(layer.name()),
                format!(
                    "injecting a {}-wide tile edge per step needs {} banks, buffer has {}",
                    arch.d, arch.d, arch.buffer_banks
                ),
                "banks must cover the tile edge",
            ));
        }
        if layer.stride() != 1 {
            diags.push(Diagnostic::warning(
                RuleId::UnrollBounds,
                Location::layer(layer.name()),
                format!(
                    "stride {} is outside the functional 2D-mapping model (analytic only)",
                    layer.stride()
                ),
                "the cycle model covers it; bit-exact replay does not",
            ));
        }
    }
    diags
}

/// Tiling rules: the `Tn` input lanes and `Tm` output lanes streamed
/// each cycle must fit the neuron-buffer banks.
fn check_tiling(net: &Network, arch: &ArchParams) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for layer in conv_views(net) {
        for (what, lanes) in [("input (Tn)", arch.d), ("output (Tm)", arch.d)] {
            if lanes > arch.buffer_banks {
                diags.push(Diagnostic::error(
                    RuleId::BankConflict,
                    Location::layer(layer.name()),
                    format!(
                        "streaming {lanes} {what} lanes per cycle needs {lanes} banks, \
                         buffer has {}",
                        arch.buffer_banks
                    ),
                    "banks must cover the lane count",
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use flexsim_dataflow::Unroll;
    use flexsim_model::workloads;

    fn plan_for(layer: &ConvLayer, u: Unroll) -> LayerPlan {
        LayerPlan::derive(layer, 0, u, u, 16, STORE_WORDS).unwrap()
    }

    #[test]
    fn paper_c1_plan_is_clean() {
        let layer = ConvLayer::new("C1", 2, 1, 8, 4);
        let plan = plan_for(&layer, Unroll::new(2, 1, 1, 2, 1, 4));
        let diags = check_layer_plan(&plan, &ArchParams::flexflow_paper());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn candidate_api_matches_per_plan_checks() {
        let arch = ArchParams::flexflow_paper();
        let layer = ConvLayer::new("C3", 16, 6, 10, 5);
        // A clean candidate produces no diagnostics…
        let ok = Unroll::new(16, 3, 1, 1, 1, 5);
        assert!(check_candidate(&layer, 0, ok, &arch).is_empty());
        // …an over-occupying one yields exactly the FXC06 derive error…
        let fat = Unroll::new(16, 4, 2, 1, 2, 4);
        let diags = check_candidate(&layer, 0, fat, &arch);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::UnrollBounds);
        // …and one exceeding a layer bound trips FXC06 via the plan.
        let wide = Unroll::new(16, 8, 1, 1, 1, 2); // Tn=8 > N=6
        assert!(has_errors(&check_candidate(&layer, 0, wide, &arch)));
    }

    #[test]
    fn prune_keeps_legal_candidates_in_input_order() {
        let arch = ArchParams::flexflow_paper();
        let layer = ConvLayer::new("C3", 16, 6, 10, 5);
        let a = Unroll::new(16, 3, 1, 1, 1, 5);
        let bad = Unroll::new(16, 8, 1, 1, 1, 2); // Tn=8 > N=6
        let b = Unroll::new(8, 2, 1, 2, 1, 5);
        let out = prune_candidates(&layer, 0, &[a, bad, b], &arch);
        assert_eq!(out.legal, vec![a, b]);
        assert_eq!(out.pruned, 1);
    }

    #[test]
    fn prune_accepts_the_full_tuner_search_space() {
        // The tuner's exhaustive enumeration already respects
        // Constraint (1) and layer bounds, so flexcheck prunes nothing
        // on a plain CONV layer — the oracle matters for capacity/FSM
        // edge shapes and for corrupted tables, not the common case.
        let layer = ConvLayer::new("C3", 12, 8, 20, 3).with_input_size(22);
        let all = flexsim_dataflow::tune::full_candidates(&layer, 16, Some(6));
        let out = prune_candidates(&layer, 2, &all, &ArchParams::flexflow_paper());
        assert_eq!(out.pruned + out.legal.len(), all.len());
        assert!(!out.legal.is_empty());
    }

    #[test]
    fn every_workload_is_clean_on_every_architecture() {
        for net in workloads::all() {
            for arch in ArchParams::paper_suite(net.name()) {
                let diags = check_network(&net, &arch);
                assert!(
                    !has_errors(&diags),
                    "{} on {}: {}",
                    net.name(),
                    arch.kind.name(),
                    crate::diag::render(&diags)
                );
            }
        }
    }

    #[test]
    fn widened_walk_races_the_bus() {
        let layer = ConvLayer::new("C1", 4, 2, 12, 5).with_input_size(16);
        let u = Unroll::new(2, 2, 1, 2, 1, 2);
        let mut plan = plan_for(&layer, u);
        plan.walk.tj = 4; // the sequencer walks twice the mapped lanes
        let diags = check_layer_plan(&plan, &ArchParams::flexflow_paper());
        assert!(diags.iter().all(|d| d.rule == RuleId::CdbRace), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn fsm_bound_formula_covers_the_doc_example() {
        // fsm.rs's doc example: step 1, window 3, 2 windows/row,
        // rows 8 apart; addresses peak at 3 within a row, 11 across two.
        let cfg = FsmConfig {
            step: 1,
            window: 3,
            windows_per_row: 2,
            row_stride: 8,
        };
        assert_eq!(max_fsm_addr(&cfg, 1), 3);
        assert_eq!(max_fsm_addr(&cfg, 2), 11);
    }

    #[test]
    fn compiled_lenet_program_passes_full_check() {
        let net = workloads::lenet5();
        let program = flexflow::Compiler::new(16).compile(&net);
        let diags = check(&program, &net, &ArchParams::flexflow_paper());
        assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
    }
}
